//! Facade crate re-exporting the COARSE reproduction workspace.
pub use coarse_bench as bench;
pub use coarse_cci as cci;
pub use coarse_collectives as collectives;
pub use coarse_core as core;
pub use coarse_fabric as fabric;
pub use coarse_models as models;
pub use coarse_simcore as simcore;
pub use coarse_trainsim as trainsim;
