//! Cross-crate integration: the full COARSE pipeline (client partitioning →
//! routing → proxy queues → sync-core ring → COW storage → pull/reconstruct)
//! must agree numerically with the functional AllReduce oracle, on every
//! machine model and partition scheme.

use coarse_repro::cci::tensor::{Tensor, TensorId};
use coarse_repro::collectives::functional;
use coarse_repro::core::strategy::CoarseStrategy;
use coarse_repro::core::system::CoarseSystem;
use coarse_repro::fabric::machines::{aws_t4, aws_v100, sdsc_p100, Machine, PartitionScheme};
use coarse_repro::simcore::rng::SimRng;

/// Random gradients with magnitudes that keep ring-order summation within
/// tight floating-point tolerance.
fn random_gradients(rng: &mut SimRng, workers: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
    (0..workers)
        .map(|_| {
            sizes
                .iter()
                .enumerate()
                .map(|(i, &len)| {
                    Tensor::new(
                        TensorId(i as u64),
                        (0..len).map(|_| rng.range_f64(-1.0, 1.0) as f32).collect(),
                    )
                })
                .collect()
        })
        .collect()
}

fn oracle_mean(gradients: &[Vec<Tensor>]) -> Vec<Vec<f32>> {
    (0..gradients[0].len())
        .map(|i| {
            let inputs: Vec<Vec<f32>> = gradients.iter().map(|g| g[i].data().to_vec()).collect();
            functional::allreduce_mean(&inputs)
        })
        .collect()
}

fn check(machine: Machine, scheme: PartitionScheme, seed: u64) {
    let part = machine.partition(scheme);
    let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
    let mut rng = SimRng::seed_from_u64(seed);
    // Sizes spanning the routing regimes: tiny, threshold-ish, huge.
    let sizes = [16usize, 40_000, 3_000_000];
    for _round in 0..2 {
        let grads = random_gradients(&mut rng, part.workers.len(), &sizes);
        let expect = oracle_mean(&grads);
        let results = sys.synchronize(&grads);
        for per_worker in &results {
            for (tensor, want) in per_worker.iter().zip(&expect) {
                assert_eq!(tensor.len(), want.len());
                for (a, b) in tensor.data().iter().zip(want) {
                    assert!(
                        (a - b).abs() <= 1e-4 * b.abs().max(1.0),
                        "{}: value mismatch {a} vs {b}",
                        machine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn coarse_matches_oracle_on_v100() {
    check(aws_v100(), PartitionScheme::OneToOne, 1);
}

#[test]
fn coarse_matches_oracle_on_v100_shared_devices() {
    check(aws_v100(), PartitionScheme::TwoToOne, 2);
}

#[test]
fn coarse_matches_oracle_on_p100() {
    check(sdsc_p100(), PartitionScheme::OneToOne, 3);
}

#[test]
fn coarse_matches_oracle_on_t4() {
    check(aws_t4(), PartitionScheme::OneToOne, 4);
}

#[test]
fn strategy_lifecycle_with_recovery() {
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let mut strategy = CoarseStrategy::new(machine.topology(), &part.workers, &part.mem_devices, 2);
    let workers = part.worker_count();
    let grads = |v: f32| -> Vec<Vec<Tensor>> {
        (0..workers)
            .map(|w| vec![Tensor::new(TensorId(0), vec![v + w as f32; 2048])])
            .collect()
    };
    // Two steps → one epoch checkpoint.
    strategy.run_step(&grads(1.0)).unwrap();
    strategy.run_step(&grads(2.0)).unwrap();
    assert_eq!(strategy.checkpoint_count(), 1);
    let checkpointed = strategy.stored(TensorId(0)).unwrap();
    // A destructive mid-epoch step, then recovery.
    strategy.run_step(&grads(1e9)).unwrap();
    assert_ne!(strategy.stored(TensorId(0)).unwrap(), checkpointed);
    strategy.recover().unwrap();
    assert_eq!(strategy.stored(TensorId(0)).unwrap(), checkpointed);
}

#[test]
fn sync_core_ring_agrees_with_functional_oracle() {
    use coarse_repro::cci::synccore::{RingDirection, SyncGroup};
    let mut rng = SimRng::seed_from_u64(10);
    for n in [2usize, 3, 5, 8] {
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                (0..1337)
                    .map(|_| (rng.next_below(64) as f32) / 4.0)
                    .collect()
            })
            .collect();
        let mut group = SyncGroup::new(n, 100, RingDirection::Reverse);
        let (ring, _) = group.allreduce_sum(&inputs);
        assert_eq!(ring, functional::allreduce_sum(&inputs), "n = {n}");
    }
}

#[test]
fn corrupted_shards_are_rejected_before_reduction() {
    use coarse_repro::cci::integrity::SealedShard;
    use coarse_repro::core::client::ParameterClient;
    use coarse_repro::core::proxy::ParameterProxy;
    use coarse_repro::core::routing::RoutingTable;
    use coarse_repro::simcore::time::SimTime;
    use coarse_repro::simcore::units::ByteSize;

    // A client partitions a tensor into sealed shards; a "flaky link" flips
    // one bit in one shard; the proxy accepts the clean shards and rejects
    // exactly the corrupted one.
    let mut topo = coarse_repro::fabric::topology::Topology::new();
    let w = topo.add_device(coarse_repro::fabric::device::DeviceKind::Gpu, "w", 0);
    let m = topo.add_device(
        coarse_repro::fabric::device::DeviceKind::MemoryDevice,
        "m",
        0,
    );
    let mut client =
        ParameterClient::new(w, RoutingTable::single(m, ByteSize::kib(1), SimTime::ZERO));
    let tensor = Tensor::new(TensorId(1), (0..2000).map(|i| i as f32).collect());
    client.push(&tensor);

    let mut proxy = ParameterProxy::new(m);
    let mut rejected = 0;
    let mut accepted = 0;
    let mut i = 0;
    while let Some(req) = client.dequeue() {
        let mut sealed = SealedShard::seal(req.shard);
        if i == 3 {
            // Inject a single-bit fault in flight.
            let bits = sealed.shard_mut().data[0].to_bits() ^ (1 << 7);
            sealed.shard_mut().data[0] = f32::from_bits(bits);
        }
        match proxy.enqueue_sealed(0, sealed, req.shard_count, req.tensor_len) {
            Ok(()) => accepted += 1,
            Err(err) => {
                rejected += 1;
                assert_eq!(err.tensor, TensorId(1));
            }
        }
        i += 1;
    }
    assert_eq!(rejected, 1, "exactly the injected fault is caught");
    assert!(accepted >= 6, "clean shards flow through");
    assert_eq!(proxy.queued(), accepted);
}
