//! Cross-crate integration: bit-reproducibility. Every experiment in the
//! repository is deterministic — identical inputs produce identical event
//! traces, timings, and numbers on every run.

use coarse_repro::fabric::machines::{aws_v100, sdsc_p100, PartitionScheme};
use coarse_repro::fabric::probe;
use coarse_repro::fabric::topology::LinkMask;
use coarse_repro::models::zoo::bert_large;
use coarse_repro::simcore::units::ByteSize;
use coarse_repro::trainsim::{
    compare_straggler, simulate_allreduce, simulate_coarse, simulate_dense,
};

#[test]
fn training_simulations_are_reproducible() {
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let model = bert_large();
    let a1 = simulate_allreduce(&machine, &part, &model, 2, 3);
    let a2 = simulate_allreduce(&machine, &part, &model, 2, 3);
    assert_eq!(a1, a2);
    let d1 = simulate_dense(&machine, &part, &model, 2, 3);
    let d2 = simulate_dense(&machine, &part, &model, 2, 3);
    assert_eq!(d1, d2);
    let c1 = simulate_coarse(&machine, &part, &model, 2, 3);
    let c2 = simulate_coarse(&machine, &part, &model, 2, 3);
    assert_eq!(c1, c2);
}

#[test]
fn probes_are_reproducible() {
    let machine = sdsc_p100();
    let gpus = machine.gpus().to_vec();
    let m1 =
        probe::bidirectional_matrix(machine.topology(), &gpus, ByteSize::mib(16), LinkMask::ALL);
    let m2 =
        probe::bidirectional_matrix(machine.topology(), &gpus, ByteSize::mib(16), LinkMask::ALL);
    assert_eq!(m1, m2);
}

#[test]
fn straggler_study_is_seeded() {
    let (b1, o1) = compare_straggler(4, 0.25);
    let (b2, o2) = compare_straggler(4, 0.25);
    assert_eq!(b1, b2);
    assert_eq!(o1, o2);
}

#[test]
fn machine_presets_are_stable() {
    // Device and link counts are part of the public contract: experiments
    // reference devices by id order.
    let v = aws_v100();
    assert_eq!(v.topology().device_count(), 13); // 1 cpu + 4 switches + 8 gpus
    let p = sdsc_p100();
    assert_eq!(p.topology().device_count(), 7); // 1 cpu + 2 switches + 4 gpus
    assert_eq!(v.gpus().len(), 8);
    assert_eq!(p.gpus().len(), 4);
}
