//! Property-based invariants across the workspace, exercised through the
//! facade crate with the in-repo deterministic harness
//! (`coarse_repro::simcore::check`).

use coarse_repro::cci::storage::ParameterStore;
use coarse_repro::cci::synccore::{RingDirection, SyncGroup};
use coarse_repro::cci::tensor::{Tensor, TensorId};
use coarse_repro::collectives::functional;
use coarse_repro::core::deadlock::{SchedulingPolicy, SyncScheduler};
use coarse_repro::core::dualsync::{estimate_iteration, optimize, DualSyncInputs};
use coarse_repro::simcore::check::{run_cases, Gen};
use coarse_repro::simcore::queue::EventQueue;
use coarse_repro::simcore::time::{SimDuration, SimTime};
use coarse_repro::simcore::timeline::ResourceTimeline;
use coarse_repro::simcore::units::{Bandwidth, ByteSize};

/// Partition followed by reconstruction is the identity, for any shard
/// size and tensor length.
#[test]
fn tensor_partition_reconstruct_identity() {
    run_cases(
        "tensor_partition_reconstruct_identity",
        64,
        |g: &mut Gen| {
            let len = g.usize_in(1..4096);
            let shard = g.usize_in(1..700);
            let data: Vec<f32> = (0..len).map(|_| g.rng().next_f32()).collect();
            let tensor = Tensor::new(TensorId(7), data);
            let shards = tensor.partition(shard);
            assert_eq!(Tensor::reconstruct(TensorId(7), len, &shards), tensor);
            // Shards tile exactly.
            let total: usize = shards.iter().map(|s| s.data.len()).sum();
            assert_eq!(total, len);
        },
    );
}

/// The sync-core ring reduction equals the functional oracle exactly on
/// dyadic-valued inputs, for any group size, chunking, and direction.
#[test]
fn sync_ring_equals_oracle() {
    run_cases("sync_ring_equals_oracle", 48, |g: &mut Gen| {
        let n = g.usize_in(2..7);
        let len = g.usize_in(1..600);
        let chunk = g.usize_in(1..128);
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..len).map(|_| (g.u64_in(0..256) as f32) / 8.0).collect())
            .collect();
        let dir = if g.bool() {
            RingDirection::Reverse
        } else {
            RingDirection::Forward
        };
        let mut group = SyncGroup::new(n, chunk, dir);
        let (result, stats) = group.allreduce_sum(&inputs);
        assert_eq!(result, functional::allreduce_sum(&inputs));
        // Ring identity: total traffic = 2(n-1) × payload.
        assert_eq!(
            stats.total_bytes_sent.as_u64(),
            2 * (n as u64 - 1) * (len as u64 * 4)
        );
    });
}

/// The event queue pops in nondecreasing time order with stable ties.
#[test]
fn event_queue_ordering() {
    run_cases("event_queue_ordering", 64, |g: &mut Gen| {
        let times = g.vec_of(1..100, |g| g.u64_in(0..1000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt);
                if t == lt {
                    assert!(i > li, "ties must pop in insertion order");
                }
            }
            last = Some((t, i));
        }
    });
}

/// A FIFO resource never serves two requests concurrently and never
/// starts before arrival.
#[test]
fn resource_timeline_serial() {
    run_cases("resource_timeline_serial", 64, |g: &mut Gen| {
        let requests = g.vec_of(1..50, |g| (g.u64_in(0..1000), g.u64_in(1..100)));
        let mut sorted = requests.clone();
        sorted.sort_by_key(|&(arrival, _)| arrival);
        let mut r = ResourceTimeline::new();
        let mut prev_end = SimTime::ZERO;
        for (arrival, dur) in sorted {
            let grant = r.reserve(SimTime::from_nanos(arrival), SimDuration::from_nanos(dur));
            assert!(grant.start >= SimTime::from_nanos(arrival));
            assert!(
                grant.start >= prev_end,
                "service intervals must not overlap"
            );
            assert_eq!(grant.end, grant.start + SimDuration::from_nanos(dur));
            prev_end = grant.end;
        }
        // Busy time equals the sum of durations.
        assert_eq!(r.busy_until(), prev_end);
    });
}

/// Per-client-queue scheduling never deadlocks when all clients push in
/// the same global order, regardless of proxy routing and interleaving.
#[test]
fn queue_scheduling_always_completes() {
    run_cases("queue_scheduling_always_completes", 48, |g: &mut Gen| {
        let proxies = g.usize_in(1..5);
        let clients = g.usize_in(1..5);
        let tensors = g.u64_in(1..30);
        let mut order: Vec<u64> = (0..tensors).collect();
        g.rng().shuffle(&mut order);
        let mut s = SyncScheduler::new(proxies, SchedulingPolicy::PerClientQueues);
        let mut next = vec![0usize; clients];
        let mut remaining = clients as u64 * tensors;
        while remaining > 0 {
            let c = g.usize_in(0..clients);
            if next[c] >= tensors as usize {
                continue;
            }
            let p = g.usize_in(0..proxies);
            s.push(p, c, TensorId(order[next[c]]));
            next[c] += 1;
            remaining -= 1;
        }
        let out = s.run();
        assert!(out.is_deadlock_free());
        assert_eq!(out.completed.len() as u64, tensors);
    });
}

/// The dual-sync optimizer never loses to any point of a fine sweep.
#[test]
fn dualsync_optimum_is_global() {
    run_cases("dualsync_optimum_is_global", 96, |g: &mut Gen| {
        let inputs = DualSyncInputs {
            workers: g.usize_in(2..9),
            total_bytes: ByteSize::mib(g.u64_in(1..4096)),
            proxy_bandwidth: Bandwidth::gib_per_sec(g.u64_in(1..40) as f64),
            gpu_bandwidth: Bandwidth::gib_per_sec(g.u64_in(1..40) as f64),
            forward: SimDuration::from_millis(g.u64_in(1..500)),
            backward: SimDuration::from_millis(g.u64_in(1..1000)),
        };
        let plan = optimize(&inputs);
        for i in 0..=40u64 {
            let m = ByteSize::bytes(inputs.total_bytes.as_u64() * i / 40);
            let est = estimate_iteration(&inputs, m);
            // Allow one nanosecond of rounding slack.
            assert!(
                plan.estimate <= est + SimDuration::from_nanos(1),
                "m={m} beats optimizer: {est} < {}",
                plan.estimate
            );
        }
    });
}

/// Copy-on-write storage: snapshots are immutable under later updates,
/// and restore brings back the exact snapshot state.
#[test]
fn cow_snapshot_isolation() {
    run_cases("cow_snapshot_isolation", 48, |g: &mut Gen| {
        let len = g.usize_in(1..5000);
        let flips = g.vec_of(1..20, |g| {
            (g.usize_in(0..5000), g.u64_in(0..200) as i32 - 100)
        });
        let mut store = ParameterStore::new();
        let orig: Vec<f32> = (0..len).map(|i| i as f32).collect();
        store.insert(&Tensor::new(TensorId(0), orig.clone()));
        let snap = store.snapshot();
        let mut updated = orig.clone();
        for (idx, v) in flips {
            updated[idx % len] = v as f32;
        }
        store.update(TensorId(0), &updated);
        assert_eq!(store.get(TensorId(0)).unwrap().into_data(), updated);
        store.restore(&snap);
        assert_eq!(store.get(TensorId(0)).unwrap().into_data(), orig);
    });
}

/// Bandwidth/transfer-time algebra: time is monotone in size and antitone
/// in rate; never zero for non-empty payloads.
#[test]
fn transfer_time_monotone() {
    run_cases("transfer_time_monotone", 128, |g: &mut Gen| {
        let a = g.u64_in(1..u32::MAX as u64);
        let b = g.u64_in(1..u32::MAX as u64);
        let bw = Bandwidth::bytes_per_sec(g.f64_in(1.0, 1e12));
        let (lo, hi) = (a.min(b), a.max(b));
        let t_lo = bw.transfer_time(ByteSize::bytes(lo));
        let t_hi = bw.transfer_time(ByteSize::bytes(hi));
        assert!(t_lo <= t_hi);
        assert!(t_lo > SimDuration::ZERO);
    });
}
