//! Property-based invariants across the workspace, exercised through the
//! facade crate with `proptest`.

use proptest::prelude::*;

use coarse_repro::cci::storage::ParameterStore;
use coarse_repro::cci::synccore::{RingDirection, SyncGroup};
use coarse_repro::cci::tensor::{Tensor, TensorId};
use coarse_repro::collectives::functional;
use coarse_repro::core::deadlock::{SchedulingPolicy, SyncScheduler};
use coarse_repro::core::dualsync::{estimate_iteration, optimize, DualSyncInputs};
use coarse_repro::simcore::queue::EventQueue;
use coarse_repro::simcore::time::{SimDuration, SimTime};
use coarse_repro::simcore::timeline::ResourceTimeline;
use coarse_repro::simcore::units::{Bandwidth, ByteSize};

proptest! {
    /// Partition followed by reconstruction is the identity, for any shard
    /// size and tensor length.
    #[test]
    fn tensor_partition_reconstruct_identity(
        len in 1usize..4096,
        shard in 1usize..700,
        seed in any::<u64>(),
    ) {
        let mut rng = coarse_repro::simcore::rng::SimRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..len).map(|_| rng.next_f32()).collect();
        let tensor = Tensor::new(TensorId(7), data);
        let shards = tensor.partition(shard);
        prop_assert_eq!(
            Tensor::reconstruct(TensorId(7), len, &shards),
            tensor.clone()
        );
        // Shards tile exactly.
        let total: usize = shards.iter().map(|s| s.data.len()).sum();
        prop_assert_eq!(total, len);
    }

    /// The sync-core ring reduction equals the functional oracle exactly on
    /// dyadic-valued inputs, for any group size, chunking, and direction.
    #[test]
    fn sync_ring_equals_oracle(
        n in 2usize..7,
        len in 1usize..600,
        chunk in 1usize..128,
        reverse in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = coarse_repro::simcore::rng::SimRng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..len).map(|_| (rng.next_below(256) as f32) / 8.0).collect())
            .collect();
        let dir = if reverse { RingDirection::Reverse } else { RingDirection::Forward };
        let mut group = SyncGroup::new(n, chunk, dir);
        let (result, stats) = group.allreduce_sum(&inputs);
        prop_assert_eq!(result, functional::allreduce_sum(&inputs));
        // Ring identity: total traffic = 2(n-1) × payload.
        prop_assert_eq!(
            stats.total_bytes_sent.as_u64(),
            2 * (n as u64 - 1) * (len as u64 * 4)
        );
    }

    /// The event queue pops in nondecreasing time order with stable ties.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "ties must pop in insertion order");
                }
            }
            last = Some((t, i));
        }
    }

    /// A FIFO resource never serves two requests concurrently and never
    /// starts before arrival.
    #[test]
    fn resource_timeline_serial(
        requests in proptest::collection::vec((0u64..1000, 1u64..100), 1..50)
    ) {
        let mut sorted = requests.clone();
        sorted.sort_by_key(|&(arrival, _)| arrival);
        let mut r = ResourceTimeline::new();
        let mut prev_end = SimTime::ZERO;
        for (arrival, dur) in sorted {
            let g = r.reserve(SimTime::from_nanos(arrival), SimDuration::from_nanos(dur));
            prop_assert!(g.start >= SimTime::from_nanos(arrival));
            prop_assert!(g.start >= prev_end, "service intervals must not overlap");
            prop_assert_eq!(g.end, g.start + SimDuration::from_nanos(dur));
            prev_end = g.end;
        }
        // Busy time equals the sum of durations.
        prop_assert_eq!(r.busy_until(), prev_end);
    }

    /// Per-client-queue scheduling never deadlocks when all clients push in
    /// the same global order, regardless of proxy routing and interleaving.
    #[test]
    fn queue_scheduling_always_completes(
        proxies in 1usize..5,
        clients in 1usize..5,
        tensors in 1u64..30,
        seed in any::<u64>(),
    ) {
        let mut rng = coarse_repro::simcore::rng::SimRng::seed_from_u64(seed);
        let mut order: Vec<u64> = (0..tensors).collect();
        rng.shuffle(&mut order);
        let mut s = SyncScheduler::new(proxies, SchedulingPolicy::PerClientQueues);
        let mut next = vec![0usize; clients];
        let mut remaining = clients as u64 * tensors;
        while remaining > 0 {
            let c = rng.next_below(clients as u64) as usize;
            if next[c] >= tensors as usize {
                continue;
            }
            let p = rng.next_below(proxies as u64) as usize;
            s.push(p, c, TensorId(order[next[c]]));
            next[c] += 1;
            remaining -= 1;
        }
        let out = s.run();
        prop_assert!(out.is_deadlock_free());
        prop_assert_eq!(out.completed.len() as u64, tensors);
    }

    /// The dual-sync optimizer never loses to any point of a fine sweep.
    #[test]
    fn dualsync_optimum_is_global(
        total_mib in 1u64..4096,
        proxy_gib in 1u64..40,
        gpu_gib in 1u64..40,
        fwd_ms in 1u64..500,
        bwd_ms in 1u64..1000,
        workers in 2usize..9,
    ) {
        let inputs = DualSyncInputs {
            workers,
            total_bytes: ByteSize::mib(total_mib),
            proxy_bandwidth: Bandwidth::gib_per_sec(proxy_gib as f64),
            gpu_bandwidth: Bandwidth::gib_per_sec(gpu_gib as f64),
            forward: SimDuration::from_millis(fwd_ms),
            backward: SimDuration::from_millis(bwd_ms),
        };
        let plan = optimize(&inputs);
        for i in 0..=40u64 {
            let m = ByteSize::bytes(inputs.total_bytes.as_u64() * i / 40);
            let est = estimate_iteration(&inputs, m);
            // Allow one nanosecond of rounding slack.
            prop_assert!(
                plan.estimate <= est + SimDuration::from_nanos(1),
                "m={m} beats optimizer: {est} < {}",
                plan.estimate
            );
        }
    }

    /// Copy-on-write storage: snapshots are immutable under later updates,
    /// and restore brings back the exact snapshot state.
    #[test]
    fn cow_snapshot_isolation(
        len in 1usize..5000,
        flips in proptest::collection::vec((0usize..5000, -100i32..100), 1..20),
    ) {
        let mut store = ParameterStore::new();
        let orig: Vec<f32> = (0..len).map(|i| i as f32).collect();
        store.insert(&Tensor::new(TensorId(0), orig.clone()));
        let snap = store.snapshot();
        let mut updated = orig.clone();
        for (idx, v) in flips {
            updated[idx % len] = v as f32;
        }
        store.update(TensorId(0), &updated);
        prop_assert_eq!(store.get(TensorId(0)).unwrap().into_data(), updated);
        store.restore(&snap);
        prop_assert_eq!(store.get(TensorId(0)).unwrap().into_data(), orig);
    }

    /// Bandwidth/transfer-time algebra: time is monotone in size and
    /// antitone in rate; never zero for non-empty payloads.
    #[test]
    fn transfer_time_monotone(
        a in 1u64..u32::MAX as u64,
        b in 1u64..u32::MAX as u64,
        rate in 1.0f64..1e12,
    ) {
        let bw = Bandwidth::bytes_per_sec(rate);
        let (lo, hi) = (a.min(b), a.max(b));
        let t_lo = bw.transfer_time(ByteSize::bytes(lo));
        let t_hi = bw.transfer_time(ByteSize::bytes(hi));
        prop_assert!(t_lo <= t_hi);
        prop_assert!(t_lo > SimDuration::ZERO);
    }
}
