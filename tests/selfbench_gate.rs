//! Tier-1 gate: the event-core's deterministic throughput counters must
//! match the committed `BENCH_seed.json` baseline exactly.
//!
//! The self-profiler's kernel dispatch/queue counters and per-region event
//! counts depend only on the simulated program, so any drift against the
//! baseline is a hard failure — the simulation changed behavior without the
//! baseline being regenerated. Wall-clock throughput (events/sec) is
//! machine-dependent and therefore advisory: drift outside the tolerance
//! band prints a warning but never fails the gate.

use coarse_bench::selfbench::{compare_reports, profile_summary, BENCH_SCHEMA, WALL_TOLERANCE};
use coarse_simcore::json::JsonValue;

fn committed_baseline() -> JsonValue {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_seed.json");
    let text = std::fs::read_to_string(path).expect("BENCH_seed.json is committed at the root");
    JsonValue::parse(&text).expect("BENCH_seed.json parses")
}

#[test]
fn profile_counters_match_committed_bench_baseline() {
    let baseline = committed_baseline();
    // Wrap both profile sections in minimal documents: the gate audits the
    // profiled counters, not the baseline's host-specific bench rows.
    let base_doc = JsonValue::object()
        .with(
            "schema",
            baseline.get("schema").cloned().unwrap_or(JsonValue::Null),
        )
        .with(
            "profile",
            baseline.get("profile").cloned().unwrap_or(JsonValue::Null),
        );
    let cur_doc = JsonValue::object()
        .with("schema", JsonValue::str(BENCH_SCHEMA))
        .with("profile", profile_summary());

    let cmp = compare_reports(&cur_doc, &base_doc, WALL_TOLERANCE);
    for w in &cmp.warnings {
        eprintln!("selfbench gate (advisory): {w}");
    }
    assert!(
        cmp.passed(),
        "deterministic selfbench counters drifted from BENCH_seed.json — the \
         simulated program changed; regenerate the baseline if intentional:\n{}",
        cmp.errors.join("\n")
    );
}
