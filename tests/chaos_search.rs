//! End-to-end chaos-search invariants, exercised through the facade crate:
//!
//! 1. a bounded seeded soak across the Fig. 16 presets runs clean (no
//!    oracle violations) and is byte-deterministic across invocations;
//! 2. a deliberately broken resilience path (`Sabotage::InvertRetryOrder`)
//!    is caught by the retry-FIFO oracle, shrunk to a minimal fault plan,
//!    and the serialized repro replays to the same failure;
//! 3. repro documents round-trip byte-for-byte and reconstruct scenarios
//!    that re-run deterministically.

use coarse_repro::trainsim::chaos::{replay, soak, ChaosRepro, SoakConfig};
use coarse_repro::trainsim::{Sabotage, Scenario};

fn bounded_config() -> SoakConfig {
    SoakConfig {
        cases: 25,
        ..SoakConfig::default()
    }
}

#[test]
fn bounded_soak_is_clean_and_byte_deterministic() {
    let cfg = bounded_config();
    let first = soak(&cfg).expect("soak runs");
    assert_eq!(first.cases, cfg.cases);
    assert!(
        first.failures.is_empty(),
        "oracle violations on a healthy build:\n{}",
        first.render_summary()
    );
    assert_eq!(first.clean, first.cases);
    // Every preset participated.
    assert_eq!(first.per_preset.len(), cfg.presets.len());
    // The fleet actually exercised the resilience machinery: across 25
    // seeded schedules at least one retry or failover must have happened,
    // otherwise the fault windows never intersected traffic and the soak
    // is vacuous.
    assert!(
        first.retries + first.failovers > 0,
        "soak never bit: {}",
        first.render_summary()
    );
    let second = soak(&cfg).expect("soak runs again");
    assert_eq!(
        first.render_summary(),
        second.render_summary(),
        "same config must reproduce the same soak, byte for byte"
    );
}

#[test]
fn sabotage_is_caught_shrunk_and_replays_to_the_same_failure() {
    let cfg = SoakConfig {
        presets: vec!["fig16a".to_string()],
        cases: 1,
        sabotage: Sabotage::InvertRetryOrder,
        ..SoakConfig::default()
    };
    let outcome = soak(&cfg).expect("soak runs");
    assert_eq!(
        outcome.failures.len(),
        1,
        "inverted retry order must violate the §III-F FIFO contract:\n{}",
        outcome.render_summary()
    );
    let failure = &outcome.failures[0];
    assert!(
        failure.violations.iter().any(|v| v.contains("retry-fifo")),
        "expected a retry-fifo verdict, got {:?}",
        failure.violations
    );
    assert!(
        failure.shrunk_events <= 3,
        "shrinker left {} events (from {})",
        failure.shrunk_events,
        failure.original_events
    );
    assert!(failure.shrunk_events <= failure.original_events);

    // The serialized repro replays to the same violations.
    let rendered = failure.repro.render();
    let replayed = replay(&rendered).expect("repro replays");
    assert_eq!(
        replayed.rendered_violations(),
        failure.violations,
        "replay must reproduce the shrunk failure exactly"
    );
}

#[test]
fn repro_documents_round_trip_and_rerun_deterministically() {
    let cfg = SoakConfig {
        presets: vec!["fig16b".to_string()],
        cases: 1,
        sabotage: Sabotage::InvertRetryOrder,
        ..SoakConfig::default()
    };
    let outcome = soak(&cfg).expect("soak runs");
    let repro = &outcome.failures[0].repro;

    // Byte-for-byte round trip through the JSON layer.
    let rendered = repro.render();
    let parsed = ChaosRepro::parse(&rendered).expect("own output parses");
    assert_eq!(&parsed, repro);
    assert_eq!(parsed.render(), rendered);

    // The reconstructed scenario re-runs byte-identically.
    let a = Scenario::from_repro(&rendered)
        .expect("repro reconstructs")
        .run_faulty()
        .expect("fits");
    let b = Scenario::from_repro(&rendered)
        .expect("repro reconstructs")
        .run_faulty()
        .expect("fits");
    assert_eq!(a, b, "replayed runs must be deterministic");
}
