//! Golden-output equality gate for the simulator's report documents.
//!
//! The event-core rewrite (calendar queue, route caching, zero-alloc hot
//! paths) is a pure performance change: the `coarse.run-report/v1` and
//! `coarse.explain-report/v1` documents for every Fig. 16 preset must stay
//! **byte-identical** to the pre-rewrite output. The fixtures under
//! `tests/goldens/` were captured from the reference (`BinaryHeap` +
//! uncached-Dijkstra) implementation; any timing or ordering drift in the
//! hot path shows up here as a byte diff.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test report_goldens
//! ```

use std::fs;
use std::path::PathBuf;

use coarse_trainsim::{explain_preset, Scenario};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

/// Compares `got` against the committed fixture, or rewrites the fixture
/// when `UPDATE_GOLDENS=1` is set.
fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create goldens dir");
        fs::write(&path, got).expect("write golden");
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; run UPDATE_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name} drifted from its golden fixture; the hot-path rewrite must be \
         byte-identical (regenerate with UPDATE_GOLDENS=1 only for intentional \
         semantic changes)"
    );
}

#[test]
fn run_reports_match_pre_rewrite_goldens() {
    for preset in Scenario::presets() {
        let report = Scenario::preset(preset).report().render();
        check_golden(&format!("run-report-{preset}.json"), &report);
    }
}

#[test]
fn explain_reports_match_pre_rewrite_goldens() {
    for preset in Scenario::presets() {
        let run = explain_preset(preset).expect("preset explains");
        let mut doc = run.report_json().render_pretty();
        doc.push('\n');
        check_golden(&format!("explain-report-{preset}.json"), &doc);
    }
}
