//! Tier-1 gate: the workspace must lint clean under simlint.
//!
//! Every determinism / simulation-safety finding must be either fixed or
//! carry an inline `// simlint: allow(<rule>, reason = "...")` waiver — an
//! un-waived finding fails this test with the full listing, exactly as CI's
//! `figures -- lint` run would.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_lints_clean() {
    let report = coarse_simlint::lint_workspace(workspace_root())
        .expect("workspace sources must be readable");
    let active: Vec<String> = report
        .active_diagnostics()
        .map(|d| format!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message))
        .collect();
    assert!(
        active.is_empty(),
        "simlint found {} un-waived finding(s); fix them or waive with \
         `// simlint: allow(<rule>, reason = \"...\")`:\n{}",
        active.len(),
        active.join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}); the walker lost the workspace",
        report.files_scanned
    );
}

#[test]
fn lint_report_is_byte_identical_across_runs() {
    let a = coarse_simlint::lint_workspace(workspace_root())
        .expect("workspace sources must be readable")
        .render_json();
    let b = coarse_simlint::lint_workspace(workspace_root())
        .expect("workspace sources must be readable")
        .render_json();
    assert_eq!(
        a, b,
        "lint report must not depend on run order or host state"
    );
}
