//! Cross-crate integration: the headline experimental *shapes* of the
//! paper, asserted end-to-end through the public APIs — who wins, in which
//! regime, and by roughly what factor.

use coarse_repro::fabric::machines::{
    aws_t4, aws_v100, aws_v100_cluster, sdsc_p100, PartitionScheme,
};
use coarse_repro::models::memory::{MemoryModel, Residency};
use coarse_repro::models::zoo::{bert_base, bert_large, resnet50};
use coarse_repro::trainsim::{
    simulate_allreduce, simulate_coarse, simulate_dense, Scenario, Scheme, TrainError,
};

#[test]
fn headline_fig16d_band() {
    // COARSE over DENSE for BERT-Large on the V100 machine: the paper
    // reports 10.8-13.8x.
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let model = bert_large();
    let dense = simulate_dense(&machine, &part, &model, 2, 3);
    let coarse = simulate_coarse(&machine, &part, &model, 2, 3);
    let speedup = coarse.speedup_over(&dense);
    assert!(
        (9.0..16.0).contains(&speedup),
        "fig16d speedup out of band: {speedup:.1}"
    );
}

#[test]
fn coarse_beats_allreduce_only_where_the_paper_says() {
    let model = bert_large();
    // P100 and V100: COARSE reduces blocked communication.
    for machine in [sdsc_p100(), aws_v100()] {
        let part = machine.partition(PartitionScheme::OneToOne);
        let ar = simulate_allreduce(&machine, &part, &model, 2, 3);
        let co = simulate_coarse(&machine, &part, &model, 2, 3);
        assert!(
            co.blocked_comm < ar.blocked_comm,
            "{}: COARSE must reduce blocked comm",
            machine.name()
        );
    }
    // T4 (no p2p): COARSE does not win; the two are comparable.
    let t4 = aws_t4();
    let part = t4.partition(PartitionScheme::OneToOne);
    let model = bert_base();
    let ar = simulate_allreduce(&t4, &part, &model, 2, 3);
    let co = simulate_coarse(&t4, &part, &model, 2, 3);
    let ratio = co.blocked_comm.as_secs_f64() / ar.blocked_comm.as_secs_f64();
    assert!(
        (0.8..1.4).contains(&ratio),
        "T4 BERT blocked-comm ratio {ratio:.2} should be near 1 (paper: +18-20%)"
    );
}

#[test]
fn memory_gate_matches_fig16e() {
    let model = bert_large();
    let mm = MemoryModel::new(&model, 16);
    assert!(mm.fits(2, Residency::AllOnGpu));
    assert!(!mm.fits(4, Residency::AllOnGpu));
    assert!(mm.fits(4, Residency::OffloadedToCci));

    // The top-level entry point (the Scenario builder) enforces the same
    // gate.
    // simlint: allow(preset-exists, reason = "ad-hoc scenario label for the capacity gate, not a preset lookup")
    let scenario = Scenario::new("fig16e-gate", aws_v100(), model.clone())
        .batch_per_gpu(4)
        .iterations(2);
    assert!(matches!(
        scenario.clone().scheme(Scheme::AllReduce).run(),
        Err(TrainError::OutOfMemory { .. })
    ));
    let result = scenario.run().expect("COARSE fits batch 4");
    assert!(result.throughput > 0.0);
}

#[test]
fn large_batch_throughput_beats_small_batch_allreduce() {
    // Fig. 16e: COARSE at batch 4 trains BERT-Large markedly faster per
    // sample than AllReduce at its feasible batch 2 (paper: +48.3%).
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let model = bert_large();
    let ar2 = simulate_allreduce(&machine, &part, &model, 2, 3);
    let co4 = simulate_coarse(&machine, &part, &model, 4, 3);
    let gain = co4.throughput / ar2.throughput;
    assert!(
        (1.2..1.8).contains(&gain),
        "fig16e gain {gain:.2} out of band"
    );
}

#[test]
fn multi_node_network_binds_everyone_but_coarse_overlaps() {
    let model = bert_large();
    let cluster = aws_v100_cluster(2);
    let part = cluster.partition(PartitionScheme::OneToOne);
    let ar = simulate_allreduce(&cluster, &part, &model, 2, 3);
    let co = simulate_coarse(&cluster, &part, &model, 2, 3);
    // Both are network-bound and far slower than single-node...
    let single = aws_v100();
    let spart = single.partition(PartitionScheme::OneToOne);
    let ar_single = simulate_allreduce(&single, &spart, &model, 2, 3);
    assert!(ar.iteration_time > ar_single.iteration_time * 2);
    // ...but COARSE hides part of it behind compute (paper Fig. 16f).
    assert!(
        co.iteration_time < ar.iteration_time,
        "2-node COARSE {:?} must beat AllReduce {:?}",
        co.iteration_time,
        ar.iteration_time
    );
}

#[test]
fn resnet_is_compute_bound_bert_is_not() {
    // The premise of the model choice in §V-D.
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let resnet = simulate_coarse(&machine, &part, &resnet50(), 64, 3);
    let bert = simulate_dense(&machine, &part, &bert_large(), 2, 3);
    assert!(resnet.gpu_utilization() > 0.9);
    assert!(bert.gpu_utilization() < 0.2);
}

#[test]
fn two_to_one_sharing_costs_a_little() {
    // The paper's extra V100 configuration: sharing a memory device between
    // two workers must not collapse, only degrade mildly.
    let machine = aws_v100();
    let model = bert_large();
    let p1 = machine.partition(PartitionScheme::OneToOne);
    let p2 = machine.partition(PartitionScheme::TwoToOne);
    let one = simulate_coarse(&machine, &p1, &model, 2, 3);
    let two = simulate_coarse(&machine, &p2, &model, 2, 3);
    assert!(two.iteration_time >= one.iteration_time);
    assert!(
        two.iteration_time.as_secs_f64() < one.iteration_time.as_secs_f64() * 1.6,
        "2:1 sharing should degrade gracefully: {:?} vs {:?}",
        two.iteration_time,
        one.iteration_time
    );
}
