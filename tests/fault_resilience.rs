//! Property-based fault-injection and resilience invariants, exercised
//! through the facade crate with the in-repo deterministic harness
//! (`coarse_repro::simcore::check`).
//!
//! The three guarantees under test (Issue 3):
//! 1. a zero-fault plan perturbs nothing, byte-for-byte — both at the
//!    timing layer and at the data-plane synchronization layer;
//! 2. any single proxy dropout still converges to the exact synchronized
//!    parameters via failover and routing-table repair;
//! 3. retry-with-backoff never reorders a client's per-proxy tensor queue
//!    (the §III-F deadlock-avoidance invariant).

use coarse_repro::cci::integrity::SealedShard;
use coarse_repro::cci::tensor::{Tensor, TensorId, TensorShard};
use coarse_repro::core::proxy::ParameterProxy;
use coarse_repro::core::resilience::ResiliencePolicy;
use coarse_repro::core::system::CoarseSystem;
use coarse_repro::fabric::machines::{aws_v100, sdsc_p100, Machine, PartitionScheme};
use coarse_repro::models::zoo::{bert_base, resnet50};
use coarse_repro::simcore::check::{run_cases, Gen};
use coarse_repro::simcore::faults::FaultPlan;
use coarse_repro::simcore::time::{SimDuration, SimTime};
use coarse_repro::trainsim::{simulate_coarse, simulate_coarse_faulty};

/// A dyadic value in [-2, 2): sums and means over power-of-two worker
/// counts are exact in f32, so elementwise oracles can use `assert_eq`.
fn dyadic(g: &mut Gen) -> f32 {
    g.usize_in(0..64) as f32 / 16.0 - 2.0
}

/// Random dyadic gradient sets: every worker pushes the same tensor
/// shapes (ids 0..tensors) with independently drawn values.
fn dyadic_grads(g: &mut Gen, workers: usize) -> Vec<Vec<Tensor>> {
    let tensors = g.usize_in(1..3);
    let lens: Vec<usize> = (0..tensors).map(|_| g.usize_in(1..600)).collect();
    (0..workers)
        .map(|_| {
            lens.iter()
                .enumerate()
                .map(|(t, &len)| {
                    let data: Vec<f32> = (0..len).map(|_| dyadic(g)).collect();
                    Tensor::new(TensorId(t as u64), data)
                })
                .collect()
        })
        .collect()
}

/// Elementwise mean across workers, summed in worker order (exact for
/// dyadic values and power-of-two worker counts).
fn oracle_mean(grads: &[Vec<Tensor>]) -> Vec<Tensor> {
    let workers = grads.len() as f32;
    (0..grads[0].len())
        .map(|t| {
            let len = grads[0][t].len();
            let mut acc = vec![0.0f32; len];
            for set in grads {
                for (a, x) in acc.iter_mut().zip(set[t].data()) {
                    *a += x;
                }
            }
            for a in &mut acc {
                *a /= workers;
            }
            Tensor::new(grads[0][t].id(), acc)
        })
        .collect()
}

fn pick_machine(g: &mut Gen) -> Machine {
    if g.bool() {
        sdsc_p100()
    } else {
        aws_v100()
    }
}

/// Invariant 1a (timing layer): an empty fault plan leaves the COARSE
/// simulation byte-identical to the fault-free path, with clean
/// resilience accounting, for any machine/model/batch/iteration draw.
#[test]
fn zero_fault_plan_is_byte_identical_in_simulation() {
    run_cases("zero_fault_plan_is_byte_identical_in_simulation", 4, |g| {
        let machine = pick_machine(g);
        let model = if g.bool() { resnet50() } else { bert_base() };
        let batch = 1 + g.u64_in(0..2) as u32;
        let iterations = 2 + g.u64_in(0..2) as u32;
        let partition = machine.partition(PartitionScheme::OneToOne);
        let clean = simulate_coarse(&machine, &partition, &model, batch, iterations);
        let faulty = simulate_coarse_faulty(
            &machine,
            &partition,
            &model,
            batch,
            iterations,
            &FaultPlan::empty(),
            &ResiliencePolicy::default(),
        );
        assert!(faulty.is_clean(), "empty plan must report a clean run");
        assert_eq!(clean, faulty.result, "empty plan must not perturb timing");
    });
}

/// Invariant 1b (data plane): `synchronize_resilient` with an empty plan
/// returns bitwise the same tensors as plain `synchronize`.
#[test]
fn zero_fault_plan_is_byte_identical_in_synchronization() {
    run_cases(
        "zero_fault_plan_is_byte_identical_in_synchronization",
        24,
        |g| {
            let machine = pick_machine(g);
            let p = machine.partition(PartitionScheme::OneToOne);
            let mut plain = CoarseSystem::new(machine.topology(), &p.workers, &p.mem_devices);
            let mut resilient = CoarseSystem::new(machine.topology(), &p.workers, &p.mem_devices);
            let len = g.usize_in(1..900);
            let grads: Vec<Vec<Tensor>> = (0..p.worker_count())
                .map(|_| {
                    vec![Tensor::new(
                        TensorId(0),
                        (0..len).map(|_| g.rng().next_f32()).collect(),
                    )]
                })
                .collect();
            let want = plain.synchronize(&grads);
            let (got, report) = resilient.synchronize_resilient(
                &grads,
                machine.topology(),
                &FaultPlan::empty(),
                SimTime::ZERO,
                &ResiliencePolicy::default(),
            );
            assert!(report.is_clean(), "empty plan must leave a clean report");
            assert_eq!(got, want, "empty plan must be bitwise inert");
        },
    );
}

/// Invariant 2: dropping any single proxy still converges to the exact
/// elementwise gradient mean — failover removes the victim, routing
/// tables are repaired over the survivors, and the round completes.
#[test]
fn single_proxy_dropout_still_converges_exactly() {
    run_cases("single_proxy_dropout_still_converges_exactly", 16, |g| {
        let machine = pick_machine(g);
        let p = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &p.workers, &p.mem_devices);
        let victim = *g.choose(&sys.proxy_devices());
        let plan = FaultPlan::new(g.any_u64()).drop_device(victim.index() as u32, SimTime::ZERO);
        let grads = dyadic_grads(g, p.worker_count());
        let now = SimTime::ZERO + SimDuration::from_millis(1);
        let (got, report) = sys.synchronize_resilient(
            &grads,
            machine.topology(),
            &plan,
            now,
            &ResiliencePolicy::default(),
        );
        assert_eq!(report.failovers, 1, "exactly one proxy fails over");
        assert!(!report.degraded_to_gpu, "survivors keep the proxy tier up");
        assert!(report.recovery_time > SimDuration::ZERO);
        assert!(
            !sys.proxy_devices().contains(&victim),
            "the victim must leave the deployment"
        );
        let want = oracle_mean(&grads);
        for (w, set) in got.iter().enumerate() {
            assert_eq!(set, &want, "worker {w} must still receive the exact mean");
        }
    });
}

/// Invariant 3: transient corruption plus retry-with-backoff delivers
/// every shard exactly once and never reorders a client's FIFO queue —
/// the arrival order at the proxy equals the push order, regardless of
/// how many attempts each shard needed.
#[test]
fn retries_never_reorder_per_client_queues() {
    run_cases("retries_never_reorder_per_client_queues", 32, |g| {
        let machine = sdsc_p100();
        let p = machine.partition(PartitionScheme::OneToOne);
        let device = p.mem_devices[0];
        let rate = 100_000 + g.u64_in(0..700_000) as u32;
        let plan = FaultPlan::new(g.any_u64()).corrupt_transfers(
            device.index() as u32,
            SimTime::ZERO,
            SimTime::MAX,
            rate,
        );
        let policy = ResiliencePolicy::default();
        let now = SimTime::ZERO + SimDuration::from_millis(1);
        let mut proxy = ParameterProxy::new(device);
        let clients = g.usize_in(1..4);
        let mut transfer_seq = 0u64;
        let mut retries = 0u64;
        let mut backoff = SimDuration::ZERO;
        let mut expected: Vec<Vec<(TensorId, u32)>> = vec![Vec::new(); clients];
        for (c, order) in expected.iter_mut().enumerate() {
            for t in 0..g.usize_in(1..4) {
                let shard_len = g.usize_in(1..9);
                let shards = g.usize_in(1..5) as u32;
                for i in 0..shards {
                    let shard = TensorShard {
                        tensor: TensorId(t as u64),
                        index: i,
                        offset: i as usize * shard_len,
                        data: (0..shard_len).map(|_| dyadic(g)).collect(),
                    };
                    order.push((shard.tensor, shard.index));
                    // The client-side retry loop: reseal and resend until
                    // the CRC32 check passes, backing off each attempt.
                    let mut attempt = 0u32;
                    loop {
                        transfer_seq += 1;
                        let mut sealed = SealedShard::seal(shard.clone());
                        if plan.corrupts(device.index() as u32, now, transfer_seq) {
                            if let Some(x) = sealed.shard_mut().data.first_mut() {
                                *x = f32::from_bits(x.to_bits() ^ 1);
                            }
                        }
                        match proxy.enqueue_sealed(c, sealed, shards, shards as usize * shard_len) {
                            Ok(()) => break,
                            Err(_) => {
                                retries += 1;
                                backoff += policy.backoff_after(attempt);
                                attempt += 1;
                            }
                        }
                    }
                }
            }
        }
        for (c, order) in expected.iter().enumerate() {
            assert_eq!(
                &proxy.queue_order(c),
                order,
                "client {c}'s queue must arrive in push order (after {retries} retries)"
            );
        }
        // Backoff only ever delays — it cannot go negative or be skipped.
        if retries > 0 {
            assert!(backoff > SimDuration::ZERO, "every retry must back off");
        }
    });
}
