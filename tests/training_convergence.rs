//! Cross-crate integration: actual model training through the complete
//! COARSE pipeline converges — gradients partition, route, reduce on sync
//! cores, pass through the optimizer at the storage, and come back as
//! updated weights that minimize a real loss.

use coarse_repro::cci::tensor::{Tensor, TensorId};
use coarse_repro::core::optim::{Adam, Optimizer, Sgd, SgdMomentum};
use coarse_repro::core::strategy::CoarseStrategy;
use coarse_repro::fabric::machines::{sdsc_p100, PartitionScheme};
use coarse_repro::simcore::rng::SimRng;

const FEATURES: usize = 6;

struct Shard {
    xs: Vec<Vec<f32>>,
    ys: Vec<f32>,
}

fn make_shards(seed: u64, workers: usize, true_w: &[f32]) -> Vec<Shard> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..workers)
        .map(|_| {
            let xs: Vec<Vec<f32>> = (0..128)
                .map(|_| {
                    (0..FEATURES)
                        .map(|_| rng.range_f64(-1.0, 1.0) as f32)
                        .collect()
                })
                .collect();
            let ys = xs
                .iter()
                .map(|x| x.iter().zip(true_w).map(|(a, b)| a * b).sum())
                .collect();
            Shard { xs, ys }
        })
        .collect()
}

fn grad(shard: &Shard, w: &[f32]) -> (f32, Vec<f32>) {
    let n = shard.xs.len() as f32;
    let mut g = vec![0.0f32; FEATURES];
    let mut loss = 0.0;
    for (x, &y) in shard.xs.iter().zip(&shard.ys) {
        let err: f32 = x.iter().zip(w).map(|(a, b)| a * b).sum::<f32>() - y;
        loss += err * err / n;
        for (gi, xi) in g.iter_mut().zip(x) {
            *gi += 2.0 * err * xi / n;
        }
    }
    (loss, g)
}

fn train_with(optimizer: Box<dyn Optimizer>, steps: u32) -> (f32, f32) {
    let machine = sdsc_p100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let workers = part.worker_count();
    let true_w: Vec<f32> = (0..FEATURES).map(|i| 0.3 * i as f32 - 0.7).collect();
    let shards = make_shards(7, workers, &true_w);

    let mut strategy =
        CoarseStrategy::new(machine.topology(), &part.workers, &part.mem_devices, 1000);
    strategy.set_optimizer(optimizer);
    strategy.register_parameters(&[Tensor::new(TensorId(0), vec![0.0; FEATURES])]);

    let mut w = vec![0.0f32; FEATURES];
    let mut first_loss = 0.0;
    let mut last_loss = 0.0;
    for step in 0..steps {
        let mut total = 0.0;
        let grads: Vec<Vec<Tensor>> = shards
            .iter()
            .map(|s| {
                let (loss, g) = grad(s, &w);
                total += loss / workers as f32;
                vec![Tensor::new(TensorId(0), g)]
            })
            .collect();
        if step == 0 {
            first_loss = total;
        }
        last_loss = total;
        let updated = strategy.run_step(&grads).unwrap();
        w = updated[0][0].data().to_vec();
    }
    (first_loss, last_loss)
}

#[test]
fn sgd_converges_through_the_pipeline() {
    let (first, last) = train_with(Box::new(Sgd::new(0.1)), 80);
    assert!(last < first / 100.0, "loss {first} → {last}");
}

#[test]
fn momentum_converges_through_the_pipeline() {
    let (first, last) = train_with(Box::new(SgdMomentum::new(0.05, 0.9)), 80);
    assert!(last < first / 100.0, "loss {first} → {last}");
}

#[test]
fn adam_converges_through_the_pipeline() {
    let (first, last) = train_with(Box::new(Adam::new(0.1)), 150);
    assert!(last < first / 50.0, "loss {first} → {last}");
}

#[test]
fn recovery_mid_training_resumes_correctly() {
    // Train, checkpoint each step, corrupt by an absurd step, recover, and
    // confirm the loss trajectory continues downward.
    let machine = sdsc_p100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let workers = part.worker_count();
    let true_w: Vec<f32> = vec![0.5; FEATURES];
    let shards = make_shards(9, workers, &true_w);
    // Epoch = 30 steps: the checkpoint lands right before the corruption.
    let mut strategy =
        CoarseStrategy::new(machine.topology(), &part.workers, &part.mem_devices, 30);
    strategy.set_optimizer(Box::new(Sgd::new(0.1)));
    strategy.register_parameters(&[Tensor::new(TensorId(0), vec![0.0; FEATURES])]);

    let mut w = vec![0.0f32; FEATURES];
    for _ in 0..30 {
        let grads: Vec<Vec<Tensor>> = shards
            .iter()
            .map(|s| vec![Tensor::new(TensorId(0), grad(s, &w).1)])
            .collect();
        w = strategy.run_step(&grads).unwrap()[0][0].data().to_vec();
    }
    let good = w.clone();
    // A bogus gradient blows the weights up...
    let bogus: Vec<Vec<Tensor>> = (0..workers)
        .map(|_| vec![Tensor::new(TensorId(0), vec![1e9; FEATURES])])
        .collect();
    strategy.run_step(&bogus).unwrap();
    // ...recovery rolls the storage back to the last epoch checkpoint.
    strategy.recover().unwrap();
    let restored = strategy.stored(TensorId(0)).unwrap();
    for (a, b) in restored.data().iter().zip(&good) {
        assert!((a - b).abs() < 1e-6);
    }
}
