//! Tracing is observation-only and deterministic: attaching a tracer must
//! not perturb the simulated timings, and the exported trace of a fixed
//! scenario must be byte-identical across runs.

use coarse_repro::fabric::machines::{aws_v100, PartitionScheme};
use coarse_repro::models::zoo::resnet50;
use coarse_repro::simcore::trace::category;
use coarse_repro::trainsim::{
    chrome_trace_json, record_coarse_trace, simulate_coarse, summary_table,
};

/// Same scenario, two recordings: the exported Chrome trace and the text
/// summary are byte-identical (the golden-determinism guarantee exporters
/// and CI diffing rely on).
#[test]
fn exported_trace_is_byte_identical_across_runs() {
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let model = resnet50();
    let (res_a, trace_a) = record_coarse_trace(&machine, &part, &model, 64, 2);
    let (res_b, trace_b) = record_coarse_trace(&machine, &part, &model, 64, 2);
    assert_eq!(res_a, res_b, "simulated results must match");
    assert_eq!(trace_a, trace_b, "recorded events must match exactly");
    assert_eq!(
        chrome_trace_json(&trace_a),
        chrome_trace_json(&trace_b),
        "Chrome export must be byte-identical"
    );
    assert_eq!(summary_table(&trace_a, 10), summary_table(&trace_b, 10));
}

/// A traced run reports exactly the same simulated timings as an untraced
/// one: tracing observes the simulation, never steers it.
#[test]
fn tracing_does_not_change_simulated_timings() {
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let model = resnet50();
    let untraced = simulate_coarse(&machine, &part, &model, 64, 2);
    let (traced, trace) = record_coarse_trace(&machine, &part, &model, 64, 2);
    assert_eq!(untraced, traced);
    assert!(!trace.is_empty(), "the traced run did record events");
}

/// The recorded trace covers every instrumented layer the exporter's
/// timeline promises: fabric links, sync-core ring steps, proxy queue
/// gauges, dual-sync decisions, and training iterations.
#[test]
fn trace_covers_all_instrumented_layers() {
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let (_, trace) = record_coarse_trace(&machine, &part, &resnet50(), 64, 2);
    for cat in [
        category::FABRIC,
        category::SYNC,
        category::PROXY,
        category::DUALSYNC,
        category::TRAIN,
    ] {
        assert!(
            trace.events_in(cat).next().is_some(),
            "no events recorded in category {cat}"
        );
    }
    assert!(trace.find_track("train: iteration").is_some());
    let json = chrome_trace_json(&trace);
    assert!(json.contains("\"cat\":\"fabric\""));
    assert!(json.contains("\"cat\":\"cci.sync\""));
    assert!(json.contains("queue_depth"));
    assert!(json.contains("iteration 0"));
}
