//! BERT-Large training-scheme comparison on the AWS V100 machine — the
//! scenario behind the paper's Figs. 16d/17d.
//!
//! ```text
//! cargo run --release --example train_bert
//! ```

use coarse_repro::fabric::machines::{aws_v100, PartitionScheme};
use coarse_repro::models::zoo::bert_large;
use coarse_repro::trainsim::{trace_coarse, Scenario, Scheme};

fn main() {
    let machine = aws_v100();
    let partition = machine.partition(PartitionScheme::OneToOne);
    let model = bert_large();
    let batch = 2;

    println!(
        "training {} (batch {} per GPU) on {} with {} workers\n",
        model.name(),
        batch,
        machine.name(),
        partition.worker_count()
    );

    // One scenario, three schemes: the Scenario builder is the single
    // front door to the simulator (this is the `fig16d` preset, spelled
    // out to show the knobs).
    let base = Scenario::new("train_bert", machine.clone(), model.clone())
        .batch_per_gpu(batch)
        .iterations(3);
    let run = |scheme| base.clone().scheme(scheme).run().expect("batch fits");
    let dense = run(Scheme::Dense);
    let allreduce = run(Scheme::AllReduce);
    let coarse = run(Scheme::Coarse);

    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "scheme", "iteration", "blocked comm", "GPU util", "samples/s"
    );
    for (name, r) in [
        ("DENSE", &dense),
        ("AllReduce", &allreduce),
        ("COARSE", &coarse),
    ] {
        println!(
            "{:<10} {:>14} {:>14} {:>11.0}% {:>12.1}",
            name,
            r.iteration_time.to_string(),
            r.blocked_comm.to_string(),
            r.gpu_utilization() * 100.0,
            r.throughput
        );
    }
    println!(
        "\nCOARSE speedup over DENSE: {:.1}x (paper Fig. 16d: 10.8-13.8x)",
        coarse.speedup_over(&dense)
    );
    println!(
        "COARSE blocked-communication reduction vs AllReduce: {:.0}% (paper: 20-42%)",
        (1.0 - coarse.blocked_comm.as_secs_f64() / allreduce.blocked_comm.as_secs_f64()) * 100.0
    );

    println!(
        "
one steady-state COARSE iteration (each row's total busy time at right):"
    );
    let trace = trace_coarse(&machine, &partition, &model, batch);
    print!("{}", trace.render_gantt(76));
    println!("(pushes and collectives ride inside the backward window; only the short");
    println!(" GPU ring and the last pulls stick out — that is the 85% GPU utilization)");
}
