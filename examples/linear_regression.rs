//! End-to-end data-parallel training through COARSE: linear regression to
//! convergence. Each worker computes gradients on its own data shard,
//! pushes them through the full client→proxy→sync-core→storage pipeline
//! (where the memory devices run the optimizer step), and pulls back the
//! updated weights — exactly how COARSE plugs into a training framework.
//!
//! ```text
//! cargo run --example linear_regression
//! ```

use coarse_repro::cci::tensor::{Tensor, TensorId};
use coarse_repro::core::optim::SgdMomentum;
use coarse_repro::core::strategy::CoarseStrategy;
use coarse_repro::fabric::machines::{aws_v100, PartitionScheme};
use coarse_repro::simcore::rng::SimRng;

const FEATURES: usize = 8;
const SAMPLES_PER_WORKER: usize = 256;

/// One worker's shard of the synthetic regression dataset.
struct Shard {
    xs: Vec<[f32; FEATURES]>,
    ys: Vec<f32>,
}

fn make_data(rng: &mut SimRng, true_w: &[f32; FEATURES], workers: usize) -> Vec<Shard> {
    (0..workers)
        .map(|_| {
            let xs: Vec<[f32; FEATURES]> = (0..SAMPLES_PER_WORKER)
                .map(|_| std::array::from_fn(|_| rng.range_f64(-1.0, 1.0) as f32))
                .collect();
            let ys = xs
                .iter()
                .map(|x| {
                    let clean: f32 = x.iter().zip(true_w).map(|(a, b)| a * b).sum();
                    clean + rng.next_gaussian() as f32 * 0.01
                })
                .collect();
            Shard { xs, ys }
        })
        .collect()
}

/// Mean-squared-error loss and gradient of `w` on one shard.
fn loss_and_grad(shard: &Shard, w: &[f32]) -> (f32, Vec<f32>) {
    let n = shard.xs.len() as f32;
    let mut grad = vec![0.0f32; FEATURES];
    let mut loss = 0.0f32;
    for (x, &y) in shard.xs.iter().zip(&shard.ys) {
        let pred: f32 = x.iter().zip(w).map(|(a, b)| a * b).sum();
        let err = pred - y;
        loss += err * err;
        for (g, xi) in grad.iter_mut().zip(x) {
            *g += 2.0 * err * xi / n;
        }
    }
    (loss / n, grad)
}

fn main() {
    let machine = aws_v100();
    let partition = machine.partition(PartitionScheme::OneToOne);
    let workers = partition.worker_count();

    let mut rng = SimRng::seed_from_u64(42);
    let true_w: [f32; FEATURES] = std::array::from_fn(|i| (i as f32 - 3.5) * 0.4);
    let shards = make_data(&mut rng, &true_w, workers);

    let mut strategy = CoarseStrategy::new(
        machine.topology(),
        &partition.workers,
        &partition.mem_devices,
        50,
    );
    strategy.set_optimizer(Box::new(SgdMomentum::new(0.05, 0.9)));
    strategy.register_parameters(&[Tensor::new(TensorId(0), vec![0.0; FEATURES])]);

    let mut w = vec![0.0f32; FEATURES];
    println!(
        "training linear regression on {workers} workers ({SAMPLES_PER_WORKER} samples each)\n"
    );
    for step in 0..=60 {
        let mut total_loss = 0.0;
        let gradients: Vec<Vec<Tensor>> = shards
            .iter()
            .map(|shard| {
                let (loss, grad) = loss_and_grad(shard, &w);
                total_loss += loss / workers as f32;
                vec![Tensor::new(TensorId(0), grad)]
            })
            .collect();
        if step % 10 == 0 {
            println!("step {step:>3}: mean loss {total_loss:.6}");
        }
        let updated = strategy.run_step(&gradients).expect("worker count matches");
        w = updated[0][0].data().to_vec();
    }

    let max_err = w
        .iter()
        .zip(&true_w)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("\nrecovered weights: {w:?}");
    println!("true weights:      {true_w:?}");
    println!("max |error| = {max_err:.4}");
    assert!(max_err < 0.05, "training must converge");
    println!("converged — the full COARSE pipeline trains a real model.");
}
