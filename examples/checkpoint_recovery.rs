//! Fault tolerance with copy-on-write snapshots (§IV-A): train under a
//! seeded device-dropout fault, roll back to the latest epoch checkpoint,
//! rebuild the strategy over the surviving memory devices, and verify the
//! recovered loss trajectory is bit-identical to a clean reference resumed
//! from the same checkpoint state.
//!
//! ```text
//! cargo run --example checkpoint_recovery
//! ```

use coarse_repro::cci::tensor::{Tensor, TensorId};
use coarse_repro::core::optim::Sgd;
use coarse_repro::core::strategy::CoarseStrategy;
use coarse_repro::fabric::machines::{aws_v100, PartitionScheme};
use coarse_repro::fabric::DeviceId;
use coarse_repro::simcore::faults::FaultPlan;
use coarse_repro::simcore::time::{SimDuration, SimTime};

const STEPS_PER_EPOCH: u64 = 3;
const TOTAL_STEPS: u64 = 8;
/// Virtual wall-clock length of one training step, used only to map the
/// fault plan's seeded dropout instant onto a step index.
const STEP_PERIOD: SimDuration = SimDuration::from_millis(10);
const SEED: u64 = 0x5EED_CAFE;

/// Deterministic synthetic per-worker gradients for one step.
fn grads(workers: usize, step: u64) -> Vec<Vec<Tensor>> {
    (0..workers)
        .map(|w| {
            let v = (step as f32 * 0.25 + w as f32 * 0.125).sin();
            vec![Tensor::new(TensorId(0), vec![v; 1024])]
        })
        .collect()
}

/// A synthetic loss: half the mean squared weight (so SGD steps visibly
/// move it, and two runs agree only if the weights are bit-identical).
fn loss_of(weights: &Tensor) -> f32 {
    let d = weights.data();
    d.iter().map(|w| w * w).sum::<f32>() / (2.0 * d.len() as f32)
}

/// Builds a strategy over `mem_devices`, seeds it with `params`, and runs
/// steps `from..TOTAL_STEPS`, returning the loss after each step.
fn resume(
    topo: &coarse_repro::fabric::topology::Topology,
    workers: &[DeviceId],
    mem_devices: &[DeviceId],
    params: &Tensor,
    from: u64,
) -> Vec<f32> {
    let mut strategy = CoarseStrategy::new(topo, workers, mem_devices, STEPS_PER_EPOCH);
    strategy.set_optimizer(Box::new(Sgd::new(0.1)));
    strategy.register_parameters(std::slice::from_ref(params));
    (from..TOTAL_STEPS)
        .map(|step| {
            let new_weights = strategy
                .run_step(&grads(workers.len(), step))
                .expect("worker count matches");
            loss_of(&new_weights[0][0])
        })
        .collect()
}

fn main() {
    let machine = aws_v100();
    let partition = machine.partition(PartitionScheme::OneToOne);
    let workers = partition.workers.clone();

    // A seeded fault plan picks the victim proxy and the dropout instant.
    // The window opens after the first epoch checkpoint so recovery always
    // has a snapshot to roll back to.
    let candidates: Vec<u32> = partition
        .mem_devices
        .iter()
        .map(|d| d.index() as u32)
        .collect();
    let plan = FaultPlan::seeded_dropout(
        SEED,
        &candidates,
        SimTime::ZERO + STEP_PERIOD * STEPS_PER_EPOCH,
        SimTime::ZERO + STEP_PERIOD * TOTAL_STEPS,
    );
    let victim = partition
        .mem_devices
        .iter()
        .copied()
        .find(|d| plan.dropout_at(d.index() as u32).is_some())
        .expect("seeded plan drops one device");
    let dropout_at = plan.dropout_at(victim.index() as u32).unwrap();
    let failure_step = (dropout_at - SimTime::ZERO).as_nanos() / STEP_PERIOD.as_nanos();
    println!(
        "fault plan (seed {SEED:#x}): {} drops out at {dropout_at} -> step {failure_step}",
        machine.topology().device(victim).name()
    );

    // Train until the injected dropout, checkpointing each epoch.
    let mut strategy = CoarseStrategy::new(
        machine.topology(),
        &workers,
        &partition.mem_devices,
        STEPS_PER_EPOCH,
    );
    strategy.set_optimizer(Box::new(Sgd::new(0.1)));
    let init = Tensor::new(TensorId(0), vec![1.0; 1024]);
    strategy.register_parameters(std::slice::from_ref(&init));
    for step in 0..failure_step {
        let w = strategy
            .run_step(&grads(workers.len(), step))
            .expect("worker count matches");
        println!("step {step}: loss {:.6}", loss_of(&w[0][0]));
    }
    println!(
        "device dropout at step {failure_step} ({} checkpoint(s) on hand)",
        strategy.checkpoint_count()
    );

    // Recover: roll parameter storage back to the last epoch snapshot,
    // then rebuild the strategy over the *surviving* memory devices and
    // re-register the restored weights.
    let epoch = strategy.recover().expect("a checkpoint exists");
    let restored = strategy.stored(TensorId(0)).expect("params are stored");
    let survivors: Vec<DeviceId> = partition
        .mem_devices
        .iter()
        .copied()
        .filter(|d| *d != victim)
        .collect();
    // Snapshot epochs are 0-based: epoch E is the state after the
    // (E+1)-th completed epoch, i.e. after (E+1)*STEPS_PER_EPOCH steps.
    let resume_from = (epoch + 1) * STEPS_PER_EPOCH;
    println!(
        "recovered to epoch {epoch} (step {resume_from}); resuming on {} of {} proxies",
        survivors.len(),
        partition.mem_devices.len()
    );
    let recovered = resume(
        machine.topology(),
        &workers,
        &survivors,
        &restored,
        resume_from,
    );

    // Clean reference: the same checkpoint state resumed on the full,
    // healthy proxy tier. Losing a proxy must not change the math — only
    // where shards live — so both trajectories must match bit-for-bit.
    let reference = resume(
        machine.topology(),
        &workers,
        &partition.mem_devices,
        &restored,
        resume_from,
    );
    for (i, (got, want)) in recovered.iter().zip(&reference).enumerate() {
        let step = resume_from + i as u64;
        println!("step {step}: loss {got:.6} (reference {want:.6})");
        assert_eq!(
            got, want,
            "recovered trajectory diverged from the clean reference at step {step}"
        );
    }
    println!(
        "recovery verified: {} post-recovery steps bit-identical to the clean reference",
        recovered.len()
    );
}
