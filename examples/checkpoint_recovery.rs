//! Surviving a proxy failure with pool checkpoints (§III-E, §IV-A): train
//! BERT-Large on the AWS V100 panel under a hard mid-run proxy dropout,
//! let the recovery engine restore the parameter image from the surviving
//! pool mirrors, and bound the measured MTTR.
//!
//! The old version of this example drove strategy-level snapshot rollback
//! by hand; the recovery engine now owns that loop — detection, elastic
//! eviction, pool restore, and rollback accounting all happen inside
//! [`Scenario::run_recovering`].
//!
//! ```text
//! cargo run --example checkpoint_recovery
//! ```

use coarse_repro::core::resilience::RecoveryPolicy;
use coarse_repro::fabric::machines::{aws_v100, PartitionScheme};
use coarse_repro::simcore::faults::FaultPlan;
use coarse_repro::simcore::time::{SimDuration, SimTime};
use coarse_repro::trainsim::Scenario;

const ITERATIONS: u32 = 5;
const SEED: u64 = 0x5EED_CAFE;

/// Every committed iteration is at most this far from the nearest
/// checkpoint, so a restore re-reads one image and re-runs at most one
/// iteration: MTTR stays bounded by detection + one pool read.
const MTTR_BOUND: SimDuration = SimDuration::from_millis(100);

fn main() {
    let base = Scenario::preset("fig16d").iterations(ITERATIONS);
    let clean = base.clone().run().expect("fig16d fits in memory");
    println!(
        "clean run: iteration {} ({:.1} samples/s)",
        clean.iteration_time, clean.throughput
    );

    // Drop the second proxy midway through the third iteration. The
    // checkpoint cadence (every iteration) guarantees a recent image.
    let machine = aws_v100();
    let part = machine.partition(PartitionScheme::OneToOne);
    let victim = part.mem_devices[1];
    let at = SimTime::ZERO + clean.iteration_time * 2 + clean.iteration_time / 2;
    let plan = FaultPlan::new(SEED).drop_device(victim.index() as u32, at);
    let policy = RecoveryPolicy {
        checkpoint_interval: 1,
        ..RecoveryPolicy::default()
    };
    println!(
        "fault plan: {} drops out at {at} (checkpoint every iteration)",
        machine.topology().device(victim).name()
    );

    let run = base
        .clone()
        .faults(plan)
        .run_recovering(&policy)
        .expect("faulty run fits in memory");
    println!(
        "faulty run: wall {} vs clean {} ({} checkpoint(s), {} restore(s))",
        run.wall,
        clean.iteration_time * u64::from(ITERATIONS),
        run.checkpoints,
        run.restores
    );
    println!(
        "recovery:   detection {}, restore read {} ({}), {} iteration(s) lost",
        run.detection_time, run.restore_time, run.restore_bytes, run.lost_iterations
    );
    println!("MTTR:       {} (bound {MTTR_BOUND})", run.mttr);

    assert!(run.restores >= 1, "the dropout must force a pool restore");
    assert!(
        !run.degraded_to_gpu,
        "three proxies survive; the pool must stay up"
    );
    assert!(
        run.lost_iterations <= 1,
        "checkpointing every iteration bounds the rollback to one iteration"
    );
    assert!(
        run.mttr <= MTTR_BOUND,
        "MTTR {} exceeded the {MTTR_BOUND} bound",
        run.mttr
    );

    // Zero-perturbation sanity: the engine with nothing to do reproduces
    // the clean run bit-for-bit.
    let idle = base
        .faults(FaultPlan::empty())
        .run_recovering(&RecoveryPolicy {
            checkpoint_interval: 0,
            ..RecoveryPolicy::default()
        })
        .expect("clean run fits in memory");
    assert_eq!(
        idle.result, clean,
        "an idle recovery engine must not perturb the timeline"
    );
    println!("recovery verified: MTTR within bound, idle engine byte-identical to clean run");
}
