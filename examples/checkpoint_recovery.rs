//! Fault tolerance with copy-on-write snapshots (§IV-A): train, fail,
//! recover from the latest epoch checkpoint, and keep training.
//!
//! ```text
//! cargo run --example checkpoint_recovery
//! ```

use coarse_repro::cci::tensor::{Tensor, TensorId};
use coarse_repro::core::strategy::CoarseStrategy;
use coarse_repro::fabric::machines::{aws_v100, PartitionScheme};

fn main() {
    let machine = aws_v100();
    let partition = machine.partition(PartitionScheme::OneToOne);
    let steps_per_epoch = 3;
    let mut strategy = CoarseStrategy::new(
        machine.topology(),
        &partition.workers,
        &partition.mem_devices,
        steps_per_epoch,
    );
    let workers = partition.worker_count();

    let grads = |value: f32| -> Vec<Vec<Tensor>> {
        (0..workers)
            .map(|_| vec![Tensor::new(TensorId(0), vec![value; 4096])])
            .collect()
    };

    // Epoch 0: three steps, checkpoint taken automatically.
    for step in 0..steps_per_epoch {
        strategy.run_step(&grads(step as f32)).unwrap();
    }
    let at_checkpoint = strategy.stored(TensorId(0)).unwrap().data()[0];
    println!(
        "epoch 0 complete: {} checkpoint(s), stored value {at_checkpoint}",
        strategy.checkpoint_count()
    );

    // Mid-epoch work that will be lost to the failure.
    strategy.run_step(&grads(99.0)).unwrap();
    let dirty = strategy.stored(TensorId(0)).unwrap().data()[0];
    println!("mid-epoch update applied: stored value now {dirty}");

    // A worker dies; roll back to the last epoch snapshot.
    let epoch = strategy.recover().expect("checkpoint exists");
    let restored = strategy.stored(TensorId(0)).unwrap().data()[0];
    println!("recovered to epoch {epoch}: stored value {restored}");
    assert_eq!(
        restored, at_checkpoint,
        "recovery must restore the snapshot"
    );

    // Training resumes from the restored state.
    strategy.run_step(&grads(7.0)).unwrap();
    println!(
        "training resumed: stored value {}",
        strategy.stored(TensorId(0)).unwrap().data()[0]
    );
}
