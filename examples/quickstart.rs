//! Quickstart: synchronize gradients across workers with COARSE.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the SDSC P100 machine model, wires a [`CoarseStrategy`] over it
//! (the paper's "2 lines of code change"), and runs a few training steps
//! with synthetic gradients, verifying the result equals the gradient mean.

use coarse_repro::cci::tensor::{Tensor, TensorId};
use coarse_repro::core::strategy::CoarseStrategy;
use coarse_repro::fabric::machines::{sdsc_p100, PartitionScheme};

fn main() {
    // A machine model: 4× P100, two PCIe switches, two GPUs each.
    let machine = sdsc_p100();
    let partition = machine.partition(PartitionScheme::OneToOne);
    println!(
        "machine: {} — {} workers, {} CCI memory devices",
        machine.name(),
        partition.worker_count(),
        partition.mem_device_count()
    );

    // The paper's two-line integration: build the strategy, call run_step.
    let mut strategy = CoarseStrategy::new(
        machine.topology(),
        &partition.workers,
        &partition.mem_devices,
        10, // checkpoint every 10 steps
    );

    // Each worker shows the profiled routing decisions COARSE made for it.
    for step in 0..3 {
        // Synthetic per-worker gradients: worker w contributes `w + step`.
        let gradients: Vec<Vec<Tensor>> = (0..partition.worker_count())
            .map(|w| {
                vec![
                    Tensor::new(TensorId(0), vec![(w + step) as f32; 1_000]),
                    Tensor::new(TensorId(1), vec![(w * 2) as f32; 2_000_000]),
                ]
            })
            .collect();
        let averaged = strategy.run_step(&gradients).expect("worker count matches");
        let got = averaged[0][0].data()[0];
        let expect = (0..partition.worker_count())
            .map(|w| (w + step) as f32)
            .sum::<f32>()
            / partition.worker_count() as f32;
        println!("step {step}: averaged tensor 0 = {got} (expected {expect})");
        assert_eq!(got, expect, "COARSE must produce the exact gradient mean");
    }
    println!("done: {} steps synchronized", strategy.steps());
}
