//! The capacity wall: GPT-2 XL (1.5 B parameters) does not fit on a 16 GiB
//! GPU with on-device parameters and optimizer state at *any* batch size —
//! but trains under COARSE's offload, with the congestion hotspots shown.
//!
//! ```text
//! cargo run --release --example capacity_wall
//! ```

use coarse_repro::fabric::machines::{aws_v100, PartitionScheme};
use coarse_repro::models::memory::{MemoryModel, Residency};
use coarse_repro::models::zoo::gpt2_xl;
use coarse_repro::trainsim::{coarse_hotspots, Scenario};

fn main() {
    let machine = aws_v100();
    let partition = machine.partition(PartitionScheme::OneToOne);
    let model = gpt2_xl();
    println!(
        "{}: {:.2}B parameters, {} tensors, payload {}",
        model.name(),
        model.total_params() as f64 / 1e9,
        model.tensors().len(),
        model.total_bytes()
    );

    let mm = MemoryModel::new(&model, machine.sku().memory_gib());
    println!("\nresident footprint at batch 1 on a 16 GiB GPU:");
    println!(
        "  params + grads + Adam + activations (AllReduce): {}",
        mm.resident_bytes(1, Residency::AllOnGpu)
    );
    println!(
        "  params + shard buffer + activations (COARSE):    {}",
        mm.resident_bytes(1, Residency::OffloadedToCci)
    );
    println!(
        "  max feasible batch: AllReduce = {}, COARSE = {}",
        mm.max_batch(Residency::AllOnGpu),
        mm.max_batch(Residency::OffloadedToCci)
    );

    println!("\nsimulating COARSE at batch 1 on {}...", machine.name());
    let r = Scenario::new("capacity_wall", machine.clone(), model.clone())
        .batch_per_gpu(1)
        .run()
        .expect("COARSE offload fits at batch 1");
    println!(
        "  iteration {} | blocked comm {} | GPU utilization {:.0}% | {:.1} samples/s",
        r.iteration_time,
        r.blocked_comm,
        r.gpu_utilization() * 100.0,
        r.throughput
    );

    println!("\ncongestion hotspots (busiest directed links):");
    for (link, util) in coarse_hotspots(&machine, &partition, &model, 1, 6) {
        println!("  {:>5.1}%  {link}", util * 100.0);
    }
}
