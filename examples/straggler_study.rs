//! Straggler sensitivity: how much time fast workers waste waiting for
//! slow ones under a blocking collective, vs COARSE's overlapped
//! synchronization (§II-B's motivation, quantified).
//!
//! ```text
//! cargo run --example straggler_study
//! ```

use coarse_repro::trainsim::compare_straggler;

fn main() {
    println!("4 workers, 50 iterations, 245 ms nominal compute per iteration\n");
    println!(
        "{:>8} | {:>14} {:>12} | {:>14} {:>12}",
        "jitter", "barrier wait", "util", "overlap wait", "util"
    );
    println!("{}", "-".repeat(72));
    for sigma in [0.0, 0.05, 0.1, 0.2, 0.3, 0.5] {
        let (barrier, overlapped) = compare_straggler(4, sigma);
        println!(
            "{:>7.0}% | {:>14} {:>11.0}% | {:>14} {:>11.0}%",
            sigma * 100.0,
            barrier.mean_wait.to_string(),
            barrier.utilization * 100.0,
            overlapped.mean_wait.to_string(),
            overlapped.utilization * 100.0
        );
    }
    println!("\nworker-count scaling at 20% jitter:");
    println!(
        "{:>8} | {:>14} | {:>14}",
        "workers", "barrier wait", "overlap wait"
    );
    for workers in [2usize, 4, 8, 16] {
        let (barrier, overlapped) = compare_straggler(workers, 0.2);
        println!(
            "{workers:>8} | {:>14} | {:>14}",
            barrier.mean_wait.to_string(),
            overlapped.mean_wait.to_string()
        );
    }
    println!("\n(the paper's §II-B claim: \"MPI creates a synchronous point that");
    println!(" forces the faster workers to wait for the slower ones\" — COARSE's");
    println!(" overlapped proxy path absorbs most of that waiting)");
}
