//! The Fig. 10 deadlock scenario, live: FCFS proxy scheduling wedges on
//! crossed tensor routes; COARSE's per-client queues complete.
//!
//! ```text
//! cargo run --example deadlock_demo
//! ```

use coarse_repro::cci::tensor::TensorId;
use coarse_repro::core::deadlock::{SchedulingPolicy, SyncScheduler};
use coarse_repro::simcore::rng::SimRng;

fn run(policy: SchedulingPolicy, label: &str) {
    // The paper's exact scenario: both clients push tensor 1 then tensor 2,
    // routed to opposite proxies, client 1 arriving second.
    let mut s = SyncScheduler::new(2, policy);
    s.push(0, 0, TensorId(1));
    s.push(1, 0, TensorId(2));
    s.push(1, 1, TensorId(1));
    s.push(0, 1, TensorId(2));
    let out = s.run();
    println!(
        "{label:<18} completed {:?}, deadlocked {:?}",
        out.completed, out.deadlocked
    );
}

fn main() {
    println!("-- Fig. 10 scenario --");
    run(SchedulingPolicy::Fcfs, "FCFS:");
    run(SchedulingPolicy::PerClientQueues, "per-client queues:");

    println!("\n-- randomized stress: 6 clients x 4 proxies x 50 tensors --");
    let mut rng = SimRng::seed_from_u64(2026);
    for (policy, label) in [
        (SchedulingPolicy::Fcfs, "FCFS"),
        (SchedulingPolicy::PerClientQueues, "per-client queues"),
    ] {
        let mut deadlocks = 0;
        let trials = 25;
        for _ in 0..trials {
            let mut s = SyncScheduler::new(4, policy);
            // All clients push in the same backward order; proxies and
            // arrival interleaving are random.
            let mut next = [0u64; 6];
            let mut remaining = 6 * 50;
            while remaining > 0 {
                let c = rng.next_below(6) as usize;
                if next[c] >= 50 {
                    continue;
                }
                let p = rng.next_below(4) as usize;
                s.push(p, c, TensorId(next[c]));
                next[c] += 1;
                remaining -= 1;
            }
            if !s.run().is_deadlock_free() {
                deadlocks += 1;
            }
        }
        println!("{label:<18} deadlocked in {deadlocks}/{trials} trials");
    }
}
