//! Profiles every machine and prints the routing tables COARSE builds —
//! the mechanism behind Fig. 15 and §III-E's tensor routing.
//!
//! ```text
//! cargo run --example routing_profile
//! ```

use coarse_repro::core::profiler::{build_routing_table_for, profile_proxies};
use coarse_repro::fabric::machines::{table1, PartitionScheme};
use coarse_repro::simcore::time::SimTime;

fn main() {
    for machine in table1() {
        let partition = machine.partition(PartitionScheme::OneToOne);
        println!("== {} ==", machine.name());
        let client = partition.workers[0];
        println!("profiling worker 0 against every memory device:");
        for p in profile_proxies(machine.topology(), client, &partition.mem_devices) {
            println!(
                "  proxy {:>6}: latency {:>10} bandwidth {:>6.2} GiB/s",
                p.proxy.to_string(),
                p.latency.to_string(),
                p.bandwidth / (1u64 << 30) as f64
            );
        }
        for (w, &worker) in partition.workers.iter().enumerate() {
            let table = build_routing_table_for(
                machine.topology(),
                worker,
                &partition.mem_devices,
                w,
                SimTime::ZERO,
            );
            if table.is_split() {
                println!(
                    "  worker {w}: LatProxy={} BwProxy={} threshold={} shard={}",
                    table.lat_proxy, table.bw_proxy, table.threshold, table.shard_size
                );
            } else {
                println!(
                    "  worker {w}: single proxy {} shard={}",
                    table.lat_proxy, table.shard_size
                );
            }
        }
        println!();
    }
    println!("(on the anti-local V100, large tensors route to *remote* proxies;");
    println!(" on P100/T4 a single proxy wins both latency and bandwidth)");
}
