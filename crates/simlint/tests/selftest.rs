//! Selftest: proof that every rule is alive. Each deliberately-bad fixture
//! in `fixtures/` is linted under a synthetic path chosen to engage one
//! rule, and the test asserts the expected findings — so a refactor that
//! silently kills a rule fails here, not in production drift.

use coarse_simlint::lint_files;
use coarse_simlint::report::LintReport;
use coarse_simlint::rules::RULES;
use coarse_simlint::semantic::{EXPECTATIONS_PATH, METRICS_PATH, PROF_PATH, SCENARIO_PATH};

const CONTAINER_PATH: &str = "crates/fabric/src/bad_container.rs";
const WALL_CLOCK_PATH: &str = "crates/cci/src/bad_wall_clock.rs";
const RANDOMNESS_PATH: &str = "crates/core/src/bad_randomness.rs";
const PANICS_PATH: &str = "crates/trainsim/src/bad_panics.rs";
const CFG_TEST_PATH: &str = "crates/fabric/src/cfg_test_ok.rs";
const WAIVERS_PATH: &str = "crates/collectives/src/waivers.rs";
const PRESET_PATH: &str = "crates/trainsim/tests/bad_preset.rs";
const HOT_ALLOC_PATH: &str = "crates/simcore/src/sim.rs";
const PARALLEL_PATH: &str = "crates/simcore/src/bad_parallel.rs";
const TAINT_SRC_PATH: &str = "crates/fabric/src/timeutil.rs";
const TAINT_SINK_PATH: &str = "crates/trainsim/src/taint_sink.rs";
const ORACLE_PATH: &str = "crates/simcore/src/bad_oracle.rs";
const LABELS_PATH: &str = "crates/trainsim/src/bad_labels.rs";
const SCHEMA_PATH: &str = "crates/collectives/src/bad_schema.rs";

const CONTAINER: &str = include_str!("../fixtures/bad_container.rs");
const WALL_CLOCK: &str = include_str!("../fixtures/bad_wall_clock.rs");
const RANDOMNESS: &str = include_str!("../fixtures/bad_randomness.rs");
const PANICS: &str = include_str!("../fixtures/bad_panics.rs");
const CFG_TEST_OK: &str = include_str!("../fixtures/cfg_test_ok.rs");
const WAIVERS: &str = include_str!("../fixtures/waivers.rs");
const METRICS_DRIFT: &str = include_str!("../fixtures/metrics_drift.rs");
const EXPECTATIONS_DRIFT: &str = include_str!("../fixtures/expectations_drift.rs");
const SCENARIO_PRESETS: &str = include_str!("../fixtures/scenario_presets.rs");
const BAD_PRESET: &str = include_str!("../fixtures/bad_preset.rs");
const HOT_ALLOC: &str = include_str!("../fixtures/bad_hot_alloc.rs");
const PARALLEL: &str = include_str!("../fixtures/bad_parallel.rs");
const TAINT_SRC: &str = include_str!("../fixtures/taint_timeutil.rs");
const TAINT_SINK: &str = include_str!("../fixtures/taint_sink.rs");
const ORACLE_DRIFT: &str = include_str!("../fixtures/oracle_drift.rs");
const PROF_LABELS: &str = include_str!("../fixtures/prof_labels.rs");
const BAD_LABELS: &str = include_str!("../fixtures/bad_labels.rs");
const BAD_SCHEMA: &str = include_str!("../fixtures/bad_schema.rs");

fn fx(path: &str, content: &str) -> (String, String) {
    (path.to_string(), content.to_string())
}

fn all_fixtures() -> Vec<(String, String)> {
    vec![
        fx(CONTAINER_PATH, CONTAINER),
        fx(WALL_CLOCK_PATH, WALL_CLOCK),
        fx(RANDOMNESS_PATH, RANDOMNESS),
        fx(PANICS_PATH, PANICS),
        fx(CFG_TEST_PATH, CFG_TEST_OK),
        fx(WAIVERS_PATH, WAIVERS),
        fx(METRICS_PATH, METRICS_DRIFT),
        fx(EXPECTATIONS_PATH, EXPECTATIONS_DRIFT),
        fx(SCENARIO_PATH, SCENARIO_PRESETS),
        fx(PRESET_PATH, BAD_PRESET),
        fx(HOT_ALLOC_PATH, HOT_ALLOC),
        fx(PARALLEL_PATH, PARALLEL),
        fx(TAINT_SRC_PATH, TAINT_SRC),
        fx(TAINT_SINK_PATH, TAINT_SINK),
        fx(ORACLE_PATH, ORACLE_DRIFT),
        fx(PROF_PATH, PROF_LABELS),
        fx(LABELS_PATH, BAD_LABELS),
        fx(SCHEMA_PATH, BAD_SCHEMA),
    ]
}

fn active_rules(report: &LintReport, path: &str) -> Vec<&'static str> {
    report
        .active_diagnostics()
        .filter(|d| d.path == path)
        .map(|d| d.rule)
        .collect()
}

#[test]
fn every_rule_fires_on_the_fixture_set() {
    let report = lint_files(&all_fixtures());
    let mut live: Vec<&str> = report.active_diagnostics().map(|d| d.rule).collect();
    live.sort_unstable();
    live.dedup();
    let known: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    assert_eq!(
        live, known,
        "every known rule must produce at least one active finding on the bad fixtures"
    );
}

#[test]
fn unordered_container_findings() {
    let report = lint_files(&[fx(CONTAINER_PATH, CONTAINER)]);
    let rules = active_rules(&report, CONTAINER_PATH);
    // Two in the `use`, one per struct field.
    assert_eq!(rules, vec!["unordered-container"; 4], "{report:?}");
}

#[test]
fn wall_clock_findings() {
    let report = lint_files(&[fx(WALL_CLOCK_PATH, WALL_CLOCK)]);
    let rules = active_rules(&report, WALL_CLOCK_PATH);
    // SystemTime + UNIX_EPOCH in the use, Instant::now, SystemTime::now,
    // duration_since(UNIX_EPOCH). The `.unwrap_or(0)` must NOT add a
    // panic-in-library finding.
    assert_eq!(rules, vec!["wall-clock"; 5], "{report:?}");
}

#[test]
fn ambient_randomness_findings() {
    let report = lint_files(&[fx(RANDOMNESS_PATH, RANDOMNESS)]);
    let rules = active_rules(&report, RANDOMNESS_PATH);
    // RandomState in the use and at the construction site, plus thread_rng.
    assert_eq!(rules, vec!["ambient-randomness"; 3], "{report:?}");
}

#[test]
fn panic_in_library_findings() {
    let report = lint_files(&[fx(PANICS_PATH, PANICS)]);
    let rules = active_rules(&report, PANICS_PATH);
    // unwrap, expect, panic!, unreachable!, todo!.
    assert_eq!(rules, vec!["panic-in-library"; 5], "{report:?}");
}

#[test]
fn cfg_test_code_is_exempt() {
    let report = lint_files(&[fx(CFG_TEST_PATH, CFG_TEST_OK)]);
    assert_eq!(
        report.total(),
        0,
        "the same patterns inside #[cfg(test)] must be clean: {report:?}"
    );
}

#[test]
fn waiver_machinery_polices_itself() {
    let report = lint_files(&[fx(WAIVERS_PATH, WAIVERS)]);
    // The honest waiver absorbs the HashMap on the `use` line.
    let waived: Vec<_> = report.diagnostics.iter().filter(|d| d.waived).collect();
    assert_eq!(waived.len(), 1, "{report:?}");
    assert_eq!(waived[0].rule, "unordered-container");
    assert_eq!(
        waived[0].reason.as_deref(),
        Some("fixture: order never observed")
    );
    // The mis-aimed wall-clock waiver is unused; the HashMap it sat above
    // stays active; the malformed / unknown-rule / unwaivable-rule waivers
    // each raise bad-waiver.
    let mut active = active_rules(&report, WAIVERS_PATH);
    active.sort_unstable();
    assert_eq!(
        active,
        vec![
            "bad-waiver",
            "bad-waiver",
            "bad-waiver",
            "unordered-container",
            "unused-waiver"
        ],
        "{report:?}"
    );
}

#[test]
fn hot_path_alloc_findings() {
    let report = lint_files(&[fx(HOT_ALLOC_PATH, HOT_ALLOC)]);
    let rules = active_rules(&report, HOT_ALLOC_PATH);
    // Vec::new + Box::new in the `for` body, Vec::new in the `while` body.
    // The hoisted allocation and the `impl Clone for` body stay clean.
    assert_eq!(rules, vec!["hot-path-alloc"; 3], "{report:?}");
}

#[test]
fn hot_path_alloc_only_polices_the_allowlist() {
    let report = lint_files(&[fx("crates/trainsim/src/coarse.rs", HOT_ALLOC)]);
    assert!(
        active_rules(&report, "crates/trainsim/src/coarse.rs").is_empty(),
        "the same loops off the hot path must be clean: {report:?}"
    );
}

#[test]
fn metric_coverage_findings_point_both_ways() {
    let report = lint_files(&[
        fx(METRICS_PATH, METRICS_DRIFT),
        fx(EXPECTATIONS_PATH, EXPECTATIONS_DRIFT),
    ]);
    assert_eq!(active_rules(&report, METRICS_PATH), vec!["metric-coverage"]);
    assert_eq!(
        active_rules(&report, EXPECTATIONS_PATH),
        vec!["metric-coverage"]
    );
}

#[test]
fn preset_exists_findings() {
    let report = lint_files(&[
        fx(SCENARIO_PATH, SCENARIO_PRESETS),
        fx(PRESET_PATH, BAD_PRESET),
    ]);
    let diags: Vec<_> = report
        .active_diagnostics()
        .filter(|d| d.path == PRESET_PATH)
        .collect();
    // Only the phantom preset fires; the known one is defined by the
    // scenario fixture, and the registry file itself is never checked.
    assert_eq!(diags.len(), 1, "{report:?}");
    assert_eq!(diags[0].rule, "preset-exists");
    assert_eq!(diags[0].line, 8);
    assert!(active_rules(&report, SCENARIO_PATH).is_empty());
}

#[test]
fn taint_chain_three_hops_across_files() {
    let report = lint_files(&[
        fx(TAINT_SRC_PATH, TAINT_SRC),
        fx(TAINT_SINK_PATH, TAINT_SINK),
    ]);
    // The source file carries only the wall-clock token finding; the sink
    // file carries only the taint finding.
    assert_eq!(active_rules(&report, TAINT_SRC_PATH), vec!["wall-clock"]);
    assert_eq!(
        active_rules(&report, TAINT_SINK_PATH),
        vec!["determinism-taint"],
        "{report:?}"
    );
    let d = report
        .active_diagnostics()
        .find(|d| d.rule == "determinism-taint")
        .unwrap();
    assert_eq!(d.path, TAINT_SINK_PATH);
    assert!(d.message.contains("wall-clock"), "{}", d.message);
    assert!(
        d.message.contains("crates/fabric/src/timeutil.rs"),
        "{}",
        d.message
    );
    // The full three-hop chain, sink to source.
    assert!(
        d.message.contains(
            "trainsim::taint_sink::record_tick -> fabric::timeutil::stamp_coarse_ms -> \
             fabric::timeutil::wall_ns -> fabric::timeutil::raw_instant"
        ),
        "{}",
        d.message
    );
}

#[test]
fn taint_sink_file_alone_is_invisible_to_token_rules() {
    // Without the dataflow pass (or with only this file in view) nothing
    // fires: the nondeterminism lives three calls away in another file.
    let report = lint_files(&[fx(TAINT_SINK_PATH, TAINT_SINK)]);
    assert_eq!(report.total(), 0, "{report:?}");
}

#[test]
fn parallel_ready_findings() {
    let report = lint_files(&[fx(PARALLEL_PATH, PARALLEL)]);
    // use RefCell + use AtomicU64, static mut, RefCell field, AtomicU64
    // static (two mentions, one line, deduped), Ordering::Relaxed — six
    // active; the waived `unsafe fn` makes seven total.
    let active = active_rules(&report, PARALLEL_PATH);
    assert_eq!(active, vec!["parallel-ready"; 6], "{report:?}");
    let waived: Vec<_> = report.diagnostics.iter().filter(|d| d.waived).collect();
    assert_eq!(waived.len(), 1, "{report:?}");
    assert!(waived[0].message.contains("unsafe"));
    for needle in ["static mut", "RefCell", "AtomicU64", "Ordering::Relaxed"] {
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.message.contains(needle)),
            "no finding mentions {needle}: {report:?}"
        );
    }
}

#[test]
fn parallel_ready_only_polices_sim_crates() {
    let report = lint_files(&[fx("crates/bench/src/bad_parallel.rs", PARALLEL)]);
    // bench is out of scope, so the fixture's waiver has nothing to absorb.
    assert_eq!(
        active_rules(&report, "crates/bench/src/bad_parallel.rs"),
        vec!["unused-waiver"],
        "{report:?}"
    );
}

#[test]
fn unregistered_oracle_findings() {
    let report = lint_files(&[fx(ORACLE_PATH, ORACLE_DRIFT)]);
    let diags: Vec<_> = report
        .active_diagnostics()
        .filter(|d| d.path == ORACLE_PATH)
        .collect();
    assert_eq!(diags.len(), 1, "{report:?}");
    assert_eq!(diags[0].rule, "oracle-registered");
    assert!(diags[0].message.contains("`Forgotten`"));
}

#[test]
fn label_registered_findings() {
    let report = lint_files(&[fx(PROF_PATH, PROF_LABELS), fx(LABELS_PATH, BAD_LABELS)]);
    assert_eq!(
        active_rules(&report, LABELS_PATH),
        vec!["label-registered"],
        "{report:?}"
    );
    assert_eq!(
        active_rules(&report, PROF_PATH),
        vec!["label-registered"],
        "{report:?}"
    );
    assert!(report
        .active_diagnostics()
        .any(|d| d.message.contains("ghost.label")));
    assert!(report
        .active_diagnostics()
        .any(|d| d.message.contains("phantom.orphan")));
}

#[test]
fn schema_single_decl_findings() {
    let report = lint_files(&[fx(SCHEMA_PATH, BAD_SCHEMA)]);
    let diags: Vec<_> = report
        .active_diagnostics()
        .filter(|d| d.path == SCHEMA_PATH)
        .collect();
    assert_eq!(diags.len(), 2, "{report:?}");
    assert!(diags
        .iter()
        .any(|d| d.message.contains("re-spells") && d.message.contains("`DEMO_SCHEMA`")));
    // Needle deliberately lacks the `coarse.` prefix so this test file does
    // not itself spell a schema-shaped literal.
    assert!(diags.iter().any(|d| d.message.contains("orphan-report/v1")));
}

#[test]
fn waiver_ledger_counts_per_rule() {
    let report = lint_files(&all_fixtures());
    let stat = |rule: &str| report.waivers.iter().find(|w| w.rule == rule);
    // bad_parallel.rs carries one used parallel-ready waiver.
    let pr = stat("parallel-ready").expect("parallel-ready in ledger");
    assert_eq!((pr.total, pr.used), (1, 1));
    // waivers.rs carries one used unordered-container waiver and one
    // mis-aimed wall-clock waiver.
    let uc = stat("unordered-container").expect("unordered-container in ledger");
    assert_eq!((uc.total, uc.used), (1, 1));
    let wc = stat("wall-clock").expect("wall-clock in ledger");
    assert_eq!(wc.used, 0);
    assert!(wc.unused() > 0);
}

#[test]
fn json_report_snapshot() {
    let report = lint_files(&[fx(CONTAINER_PATH, CONTAINER)]);
    let actual = report.render_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/fixtures/bad_container.report.json"
    );
    if std::env::var("SIMLINT_UPDATE_SNAPSHOT").is_ok() {
        std::fs::write(path, &actual).expect("write snapshot");
    }
    let expected = include_str!("../fixtures/bad_container.report.json");
    assert_eq!(
        actual, expected,
        "lint-report JSON drifted; rerun with SIMLINT_UPDATE_SNAPSHOT=1 and review the diff"
    );
}

#[test]
fn reports_are_byte_identical_across_runs() {
    let a = lint_files(&all_fixtures()).render_json();
    let b = lint_files(&all_fixtures()).render_json();
    assert_eq!(a, b);
}
