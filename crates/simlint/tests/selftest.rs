//! Selftest: proof that every rule is alive. Each deliberately-bad fixture
//! in `fixtures/` is linted under a synthetic path chosen to engage one
//! rule, and the test asserts the expected findings — so a refactor that
//! silently kills a rule fails here, not in production drift.

use coarse_simlint::lint_files;
use coarse_simlint::report::LintReport;
use coarse_simlint::rules::RULES;
use coarse_simlint::semantic::{EXPECTATIONS_PATH, METRICS_PATH, SCENARIO_PATH};

const CONTAINER_PATH: &str = "crates/fabric/src/bad_container.rs";
const WALL_CLOCK_PATH: &str = "crates/cci/src/bad_wall_clock.rs";
const RANDOMNESS_PATH: &str = "crates/core/src/bad_randomness.rs";
const PANICS_PATH: &str = "crates/trainsim/src/bad_panics.rs";
const CFG_TEST_PATH: &str = "crates/fabric/src/cfg_test_ok.rs";
const WAIVERS_PATH: &str = "crates/collectives/src/waivers.rs";
const PRESET_PATH: &str = "crates/trainsim/tests/bad_preset.rs";
const HOT_ALLOC_PATH: &str = "crates/simcore/src/sim.rs";

const CONTAINER: &str = include_str!("../fixtures/bad_container.rs");
const WALL_CLOCK: &str = include_str!("../fixtures/bad_wall_clock.rs");
const RANDOMNESS: &str = include_str!("../fixtures/bad_randomness.rs");
const PANICS: &str = include_str!("../fixtures/bad_panics.rs");
const CFG_TEST_OK: &str = include_str!("../fixtures/cfg_test_ok.rs");
const WAIVERS: &str = include_str!("../fixtures/waivers.rs");
const METRICS_DRIFT: &str = include_str!("../fixtures/metrics_drift.rs");
const EXPECTATIONS_DRIFT: &str = include_str!("../fixtures/expectations_drift.rs");
const SCENARIO_PRESETS: &str = include_str!("../fixtures/scenario_presets.rs");
const BAD_PRESET: &str = include_str!("../fixtures/bad_preset.rs");
const HOT_ALLOC: &str = include_str!("../fixtures/bad_hot_alloc.rs");

fn fx(path: &str, content: &str) -> (String, String) {
    (path.to_string(), content.to_string())
}

fn all_fixtures() -> Vec<(String, String)> {
    vec![
        fx(CONTAINER_PATH, CONTAINER),
        fx(WALL_CLOCK_PATH, WALL_CLOCK),
        fx(RANDOMNESS_PATH, RANDOMNESS),
        fx(PANICS_PATH, PANICS),
        fx(CFG_TEST_PATH, CFG_TEST_OK),
        fx(WAIVERS_PATH, WAIVERS),
        fx(METRICS_PATH, METRICS_DRIFT),
        fx(EXPECTATIONS_PATH, EXPECTATIONS_DRIFT),
        fx(SCENARIO_PATH, SCENARIO_PRESETS),
        fx(PRESET_PATH, BAD_PRESET),
        fx(HOT_ALLOC_PATH, HOT_ALLOC),
    ]
}

fn active_rules(report: &LintReport, path: &str) -> Vec<&'static str> {
    report
        .active_diagnostics()
        .filter(|d| d.path == path)
        .map(|d| d.rule)
        .collect()
}

#[test]
fn every_rule_fires_on_the_fixture_set() {
    let report = lint_files(&all_fixtures());
    let mut live: Vec<&str> = report.active_diagnostics().map(|d| d.rule).collect();
    live.sort_unstable();
    live.dedup();
    let known: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    assert_eq!(
        live, known,
        "every known rule must produce at least one active finding on the bad fixtures"
    );
}

#[test]
fn unordered_container_findings() {
    let report = lint_files(&[fx(CONTAINER_PATH, CONTAINER)]);
    let rules = active_rules(&report, CONTAINER_PATH);
    // Two in the `use`, one per struct field.
    assert_eq!(rules, vec!["unordered-container"; 4], "{report:?}");
}

#[test]
fn wall_clock_findings() {
    let report = lint_files(&[fx(WALL_CLOCK_PATH, WALL_CLOCK)]);
    let rules = active_rules(&report, WALL_CLOCK_PATH);
    // SystemTime + UNIX_EPOCH in the use, Instant::now, SystemTime::now,
    // duration_since(UNIX_EPOCH). The `.unwrap_or(0)` must NOT add a
    // panic-in-library finding.
    assert_eq!(rules, vec!["wall-clock"; 5], "{report:?}");
}

#[test]
fn ambient_randomness_findings() {
    let report = lint_files(&[fx(RANDOMNESS_PATH, RANDOMNESS)]);
    let rules = active_rules(&report, RANDOMNESS_PATH);
    // RandomState in the use and at the construction site, plus thread_rng.
    assert_eq!(rules, vec!["ambient-randomness"; 3], "{report:?}");
}

#[test]
fn panic_in_library_findings() {
    let report = lint_files(&[fx(PANICS_PATH, PANICS)]);
    let rules = active_rules(&report, PANICS_PATH);
    // unwrap, expect, panic!, unreachable!, todo!.
    assert_eq!(rules, vec!["panic-in-library"; 5], "{report:?}");
}

#[test]
fn cfg_test_code_is_exempt() {
    let report = lint_files(&[fx(CFG_TEST_PATH, CFG_TEST_OK)]);
    assert_eq!(
        report.total(),
        0,
        "the same patterns inside #[cfg(test)] must be clean: {report:?}"
    );
}

#[test]
fn waiver_machinery_polices_itself() {
    let report = lint_files(&[fx(WAIVERS_PATH, WAIVERS)]);
    // The honest waiver absorbs the HashMap on the `use` line.
    let waived: Vec<_> = report.diagnostics.iter().filter(|d| d.waived).collect();
    assert_eq!(waived.len(), 1, "{report:?}");
    assert_eq!(waived[0].rule, "unordered-container");
    assert_eq!(
        waived[0].reason.as_deref(),
        Some("fixture: order never observed")
    );
    // The mis-aimed wall-clock waiver is unused; the HashMap it sat above
    // stays active; the malformed / unknown-rule / unwaivable-rule waivers
    // each raise bad-waiver.
    let mut active = active_rules(&report, WAIVERS_PATH);
    active.sort_unstable();
    assert_eq!(
        active,
        vec![
            "bad-waiver",
            "bad-waiver",
            "bad-waiver",
            "unordered-container",
            "unused-waiver"
        ],
        "{report:?}"
    );
}

#[test]
fn hot_path_alloc_findings() {
    let report = lint_files(&[fx(HOT_ALLOC_PATH, HOT_ALLOC)]);
    let rules = active_rules(&report, HOT_ALLOC_PATH);
    // Vec::new + Box::new in the `for` body, Vec::new in the `while` body.
    // The hoisted allocation and the `impl Clone for` body stay clean.
    assert_eq!(rules, vec!["hot-path-alloc"; 3], "{report:?}");
}

#[test]
fn hot_path_alloc_only_polices_the_allowlist() {
    let report = lint_files(&[fx("crates/trainsim/src/coarse.rs", HOT_ALLOC)]);
    assert!(
        active_rules(&report, "crates/trainsim/src/coarse.rs").is_empty(),
        "the same loops off the hot path must be clean: {report:?}"
    );
}

#[test]
fn metric_coverage_findings_point_both_ways() {
    let report = lint_files(&[
        fx(METRICS_PATH, METRICS_DRIFT),
        fx(EXPECTATIONS_PATH, EXPECTATIONS_DRIFT),
    ]);
    assert_eq!(active_rules(&report, METRICS_PATH), vec!["metric-coverage"]);
    assert_eq!(
        active_rules(&report, EXPECTATIONS_PATH),
        vec!["metric-coverage"]
    );
}

#[test]
fn preset_exists_findings() {
    let report = lint_files(&[
        fx(SCENARIO_PATH, SCENARIO_PRESETS),
        fx(PRESET_PATH, BAD_PRESET),
    ]);
    let diags: Vec<_> = report
        .active_diagnostics()
        .filter(|d| d.path == PRESET_PATH)
        .collect();
    // Only the phantom preset fires; the known one is defined by the
    // scenario fixture, and the registry file itself is never checked.
    assert_eq!(diags.len(), 1, "{report:?}");
    assert_eq!(diags[0].rule, "preset-exists");
    assert_eq!(diags[0].line, 8);
    assert!(active_rules(&report, SCENARIO_PATH).is_empty());
}

#[test]
fn json_report_snapshot() {
    let report = lint_files(&[fx(CONTAINER_PATH, CONTAINER)]);
    let actual = report.render_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/fixtures/bad_container.report.json"
    );
    if std::env::var("SIMLINT_UPDATE_SNAPSHOT").is_ok() {
        std::fs::write(path, &actual).expect("write snapshot");
    }
    let expected = include_str!("../fixtures/bad_container.report.json");
    assert_eq!(
        actual, expected,
        "lint-report JSON drifted; rerun with SIMLINT_UPDATE_SNAPSHOT=1 and review the diff"
    );
}

#[test]
fn reports_are_byte_identical_across_runs() {
    let a = lint_files(&all_fixtures()).render_json();
    let b = lint_files(&all_fixtures()).render_json();
    assert_eq!(a, b);
}
