//! Determinism-taint dataflow over the workspace call graph.
//!
//! A function is a **taint source** when its body reads something the host
//! environment controls: the wall clock, ambient randomness, unordered
//! container iteration, pointer formatting, environment variables, or
//! thread identity. Taint propagates from a callee to every (transitive)
//! caller — nondeterministic data returned by a helper infects whatever
//! incorporates it. A **finding** is a function that both reaches a source
//! through the call graph and feeds a determinism-critical **sink**: event
//! scheduling ([`EventSchedule`]), `simcore::metrics` recording, or
//! report/JSON serialization. The diagnostic prints the full source→sink
//! call chain, which is exactly what the per-file token rules cannot see —
//! a helper three calls away that launders `Instant::now()` into a metric.
//!
//! Two deliberate suppressions keep the pass quiet where other rules or
//! design contracts already govern:
//!
//! * Functions in the wall-clock allowlist files (the bench harness,
//!   selfbench, and `simcore::prof`) are **barriers**: their clock reads
//!   are feature-gated and sealed out of every deterministic report
//!   section, so taint neither originates in nor propagates through them.
//! * Zero-hop wall-clock/randomness chains (source and sink in the same
//!   function) are skipped — the `wall-clock` and `ambient-randomness`
//!   token rules already flag the source itself at file granularity.

use std::collections::VecDeque;

use crate::callgraph::Workspace;
use crate::lexer::Tok;
use crate::report::Diagnostic;
use crate::rules::{FileKind, PARALLEL_CRATES, WALL_CLOCK_ALLOWED};
use crate::semantic::LexedFile;

/// Rule id of the taint pass.
pub const RULE: &str = "determinism-taint";

/// One nondeterminism source inside a fn body.
#[derive(Debug, Clone)]
pub struct SourceSite {
    pub kind: &'static str,
    pub what: String,
    pub line: u32,
}

/// One determinism-critical sink inside a fn body.
#[derive(Debug, Clone)]
pub struct SinkSite {
    pub kind: &'static str,
    pub what: String,
    pub line: u32,
}

#[derive(Debug, Default)]
struct FnTaint {
    sources: Vec<SourceSite>,
    sinks: Vec<SinkSite>,
}

const RANDOMNESS: &[&str] = &[
    "thread_rng",
    "OsRng",
    "from_entropy",
    "RandomState",
    "getrandom",
];
const HASH_CONTAINERS: &[&str] = &["HashMap", "HashSet"];
const ITERATORS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "drain",
    "retain",
];
const SCHEDULE_SINKS: &[&str] = &["schedule_at", "schedule_after", "schedule_now"];
const METRIC_SINKS: &[&str] = &["inc", "gauge", "observe"];
const JSON_SINKS: &[&str] = &["to_json", "render_json", "render_pretty"];

/// Scans one fn body for sources and sinks (skipping `#[cfg(test)]` spans).
fn scan_fn(files: &[LexedFile], ws: &Workspace, id: usize) -> FnTaint {
    let f = &ws.fns[id];
    let mut out = FnTaint::default();
    let Some((open, close)) = f.body else {
        return out;
    };
    if f.in_test || WALL_CLOCK_ALLOWED.contains(&files[f.file].info.path.as_str()) {
        return out;
    }
    let file = &files[f.file];
    let toks = &file.lexed.tokens;
    let mut has_hash: Option<u32> = None;
    let mut has_iter = false;
    for k in open..=close.min(toks.len().saturating_sub(1)) {
        if file.mask.get(k).copied().unwrap_or(false) {
            continue;
        }
        let prev_dot = k > 0 && toks[k - 1].tok == Tok::Punct(b'.');
        let next_sep = matches!(toks.get(k + 1), Some(t) if t.tok == Tok::PathSep);
        let next_paren = matches!(toks.get(k + 1), Some(t) if t.tok == Tok::Punct(b'('));
        let prev_fn = k > 0 && toks[k - 1].tok == Tok::Ident("fn".into());
        match &toks[k].tok {
            Tok::Ident(w) => {
                let w = w.as_str();
                let src = |kind: &'static str, what: &str| SourceSite {
                    kind,
                    what: what.to_string(),
                    line: toks[k].line,
                };
                if (w == "Instant" && next_sep) || w == "SystemTime" || w == "UNIX_EPOCH" {
                    out.sources.push(src("wall-clock", w));
                } else if RANDOMNESS.contains(&w) {
                    out.sources.push(src("randomness", w));
                } else if w == "env" && next_sep {
                    if let Some(Tok::Ident(m)) = toks.get(k + 2).map(|t| &t.tok) {
                        if matches!(m.as_str(), "var" | "var_os" | "vars" | "args" | "args_os") {
                            out.sources.push(src("env-var", &format!("env::{m}")));
                        }
                    }
                } else if (w == "thread"
                    && next_sep
                    && matches!(toks.get(k + 2).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "current"))
                    || w == "ThreadId"
                {
                    out.sources.push(src("thread-id", w));
                } else if HASH_CONTAINERS.contains(&w) {
                    has_hash.get_or_insert(toks[k].line);
                } else if ITERATORS.contains(&w) && prev_dot {
                    has_iter = true;
                }
                let sink = |kind: &'static str, what: String| SinkSite {
                    kind,
                    what,
                    line: toks[k].line,
                };
                if SCHEDULE_SINKS.contains(&w) && next_paren && !prev_fn {
                    out.sinks.push(sink("event-schedule", format!("{w}()")));
                } else if METRIC_SINKS.contains(&w) && next_paren && prev_dot {
                    out.sinks.push(sink("metrics", format!(".{w}()")));
                } else if w == "JsonValue" || (JSON_SINKS.contains(&w) && next_paren && !prev_fn) {
                    let what = if w == "JsonValue" {
                        "JsonValue".to_string()
                    } else {
                        format!("{w}()")
                    };
                    out.sinks.push(sink("report-serialization", what));
                }
            }
            Tok::Str(s) if s.contains(":p}") => {
                out.sources.push(SourceSite {
                    kind: "pointer-format",
                    what: "{:p}".to_string(),
                    line: toks[k].line,
                });
            }
            _ => {}
        }
    }
    if let (Some(line), true) = (has_hash, has_iter) {
        out.sources.push(SourceSite {
            kind: "unordered-iter",
            what: "HashMap/HashSet iteration".to_string(),
            line,
        });
    }
    // Deduplicate sinks per (kind, line) so one waiver covers one site.
    out.sinks
        .sort_by(|a, b| (a.line, a.kind).cmp(&(b.line, b.kind)));
    out.sinks
        .dedup_by(|a, b| a.line == b.line && a.kind == b.kind);
    out
}

/// Runs the taint pass: scans every fn, propagates taint from sources up
/// the reverse call graph, and reports every tainted sink in a simulation
/// crate's library sources with its full call chain.
pub fn taint_dataflow(files: &[LexedFile], ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let n = ws.fns.len();
    let per_fn: Vec<FnTaint> = (0..n).map(|id| scan_fn(files, ws, id)).collect();
    // Multi-source BFS over reverse edges (callee → caller). `next` points
    // one hop toward the source; `origin` is the source-bearing fn.
    let mut next: Vec<Option<usize>> = vec![None; n];
    let mut origin: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    let traversable = |id: usize| {
        let f = &ws.fns[id];
        !f.in_test && !WALL_CLOCK_ALLOWED.contains(&files[f.file].info.path.as_str())
    };
    for id in 0..n {
        if !per_fn[id].sources.is_empty() {
            origin[id] = Some(id);
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &caller in &ws.callers[id] {
            if origin[caller].is_none() && traversable(caller) {
                origin[caller] = origin[id];
                next[caller] = Some(id);
                queue.push_back(caller);
            }
        }
    }
    for id in 0..n {
        let Some(src_fn) = origin[id] else { continue };
        if per_fn[id].sinks.is_empty() {
            continue;
        }
        let f = &ws.fns[id];
        let info = &files[f.file].info;
        let in_scope = info.kind == FileKind::LibSrc
            && matches!(&info.crate_name, Some(c) if PARALLEL_CRATES.contains(&c.as_str()));
        if !in_scope {
            continue;
        }
        // Origin fns always hold at least one source, but stay panic-free.
        let Some(source) = per_fn[src_fn]
            .sources
            .iter()
            .min_by_key(|s| (s.line, s.kind))
        else {
            continue;
        };
        // Zero-hop wall-clock/randomness is the token rules' jurisdiction.
        if src_fn == id && matches!(source.kind, "wall-clock" | "randomness") {
            continue;
        }
        let mut chain = vec![ws.label(id)];
        let mut cur = id;
        while let Some(step) = next[cur] {
            chain.push(ws.label(step));
            cur = step;
        }
        let src_path = &files[ws.fns[src_fn].file].info.path;
        for sink in &per_fn[id].sinks {
            out.push(Diagnostic {
                rule: RULE,
                path: info.path.clone(),
                line: sink.line,
                message: format!(
                    "{} sink `{}` receives {}-tainted data (`{}` at {src_path}:{}); \
                     call chain: {}",
                    sink.kind,
                    sink.what,
                    source.kind,
                    source.what,
                    source.line,
                    chain.join(" -> "),
                ),
                waived: false,
                reason: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{test_mask, FileInfo};

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let lexed: Vec<LexedFile> = files
            .iter()
            .map(|(p, s)| {
                let lexed = lex(s);
                let mask = test_mask(&lexed.tokens);
                LexedFile {
                    info: FileInfo::classify(p),
                    lexed,
                    mask,
                }
            })
            .collect();
        let ws = Workspace::build(&lexed);
        let mut out = Vec::new();
        taint_dataflow(&lexed, &ws, &mut out);
        out
    }

    #[test]
    fn one_hop_clock_to_metric_chain() {
        let diags = run(&[(
            "crates/trainsim/src/x.rs",
            "fn wall() -> u64 { std::time::Instant::now(); 0 }\n\
             fn record(m: &M) { m.observe(\"lat\", wall() as f64); }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE);
        assert_eq!(diags[0].line, 2);
        assert!(
            diags[0].message.contains("record -> "),
            "{}",
            diags[0].message
        );
        assert!(diags[0].message.contains("wall"), "{}", diags[0].message);
    }

    #[test]
    fn zero_hop_wall_clock_left_to_token_rules() {
        let diags = run(&[(
            "crates/trainsim/src/x.rs",
            "fn bad(m: &M) { let t = std::time::Instant::now(); m.observe(\"x\", 0.0); }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn zero_hop_env_var_is_reported() {
        let diags = run(&[(
            "crates/core/src/x.rs",
            "fn cfg(q: &mut Q) { let n = std::env::var(\"N\"); q.schedule_now(n); }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("env-var"));
    }

    #[test]
    fn barrier_files_do_not_propagate() {
        let diags = run(&[
            (
                "crates/simcore/src/prof.rs",
                "pub fn wall_ns() -> u64 { std::time::Instant::now(); 0 }\n",
            ),
            (
                "crates/trainsim/src/x.rs",
                "use coarse_simcore::prof::wall_ns;\n\
                 fn record(m: &M) { m.observe(\"lat\", wall_ns() as f64); }\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sinks_outside_sim_crates_are_ignored() {
        let diags = run(&[(
            "crates/bench/src/micro.rs",
            "fn wall() -> u64 { std::time::Instant::now(); 0 }\n\
             fn record(m: &M) { m.observe(\"lat\", wall() as f64); }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unordered_iteration_taints() {
        let diags = run(&[(
            "crates/fabric/src/x.rs",
            "fn order() -> Vec<u32> { let m: HashMap<u32, u32> = make(); m.keys().copied().collect() }\n\
             fn emit(q: &mut Q, o: &[u32]) { for _ in order() { q.schedule_now(0); } }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("unordered-iter"));
    }
}
