//! The lint report: deterministic ordering, text rendering, and the
//! `coarse.lint-report/v1` JSON schema (rendered via `simcore::json`, the
//! same writer behind the scorecard / run-report / chaos-repro artifacts).

use coarse_simcore::json::JsonValue;

use crate::rules::RULES;

/// Schema tag of the JSON lint report.
pub const SCHEMA: &str = "coarse.lint-report/v1";

/// One finding, waived or active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (one of [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// True when an inline waiver covers this finding.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub reason: Option<String>,
}

/// Per-rule waiver ledger entry: how many inline waivers exist for one rule
/// and how many actually absorbed a diagnostic. An unused waiver also raises
/// the `unused-waiver` diagnostic; the ledger makes the count auditable from
/// the artifact alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverStat {
    pub rule: String,
    pub total: usize,
    pub used: usize,
}

impl WaiverStat {
    pub fn unused(&self) -> usize {
        self.total - self.used
    }
}

/// The result of linting a set of files.
#[derive(Debug)]
pub struct LintReport {
    pub files_scanned: usize,
    /// Sorted by (path, line, rule, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule waiver ledger, sorted by rule (rules with ≥1 waiver only).
    pub waivers: Vec<WaiverStat>,
}

impl LintReport {
    pub fn total(&self) -> usize {
        self.diagnostics.len()
    }

    pub fn waived(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.waived).count()
    }

    /// Un-waived findings: the count that gates CI.
    pub fn active(&self) -> usize {
        self.total() - self.waived()
    }

    pub fn active_diagnostics(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.waived)
    }

    /// Canonical sort: report output must not depend on rule execution order.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
        });
        self.waivers.sort_by(|a, b| a.rule.cmp(&b.rule));
    }

    /// The `coarse.lint-report/v1` JSON tree. Every known rule appears in
    /// `rules` (zero counts included) so a silently-dead rule is visible in
    /// the artifact itself.
    pub fn to_json(&self) -> JsonValue {
        let mut rules = Vec::new();
        for r in RULES {
            let total = self.diagnostics.iter().filter(|d| d.rule == r.id).count();
            let waived = self
                .diagnostics
                .iter()
                .filter(|d| d.rule == r.id && d.waived)
                .count();
            rules.push(
                JsonValue::object()
                    .with("id", JsonValue::str(r.id))
                    .with("total", JsonValue::int(total as u64))
                    .with("waived", JsonValue::int(waived as u64))
                    .with("active", JsonValue::int((total - waived) as u64)),
            );
        }
        let mut diags = Vec::new();
        for d in &self.diagnostics {
            let mut obj = JsonValue::object()
                .with("rule", JsonValue::str(d.rule))
                .with("path", JsonValue::str(&d.path))
                .with("line", JsonValue::int(u64::from(d.line)))
                .with("message", JsonValue::str(&d.message))
                .with("waived", JsonValue::Bool(d.waived));
            if let Some(reason) = &d.reason {
                obj = obj.with("reason", JsonValue::str(reason));
            }
            diags.push(obj);
        }
        let mut waivers = Vec::new();
        for w in &self.waivers {
            waivers.push(
                JsonValue::object()
                    .with("rule", JsonValue::str(&w.rule))
                    .with("total", JsonValue::int(w.total as u64))
                    .with("used", JsonValue::int(w.used as u64))
                    .with("unused", JsonValue::int(w.unused() as u64)),
            );
        }
        JsonValue::object()
            .with("schema", JsonValue::str(SCHEMA))
            .with("files_scanned", JsonValue::int(self.files_scanned as u64))
            .with(
                "counts",
                JsonValue::object()
                    .with("total", JsonValue::int(self.total() as u64))
                    .with("waived", JsonValue::int(self.waived() as u64))
                    .with("active", JsonValue::int(self.active() as u64)),
            )
            .with("rules", JsonValue::Array(rules))
            .with("waivers", JsonValue::Array(waivers))
            .with("diagnostics", JsonValue::Array(diags))
    }

    /// Pretty JSON with a trailing newline — the artifact format whose
    /// byte-identity across runs the gate test asserts.
    pub fn render_json(&self) -> String {
        let mut s = self.to_json().render_pretty();
        s.push('\n');
        s
    }

    /// Human-readable rendering. With `include_waived`, waived findings are
    /// listed too (annotated with their reasons).
    pub fn render_text(&self, include_waived: bool) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            if d.waived && !include_waived {
                continue;
            }
            s.push_str(&format!(
                "{}:{}: [{}] {}",
                d.path, d.line, d.rule, d.message
            ));
            if let Some(reason) = &d.reason {
                s.push_str(&format!(" (waived: {reason})"));
            }
            s.push('\n');
        }
        s.push_str(&format!(
            "simlint: {} files scanned, {} diagnostics ({} waived, {} active)\n",
            self.files_scanned,
            self.total(),
            self.waived(),
            self.active()
        ));
        s
    }
}
