//! Cross-file semantic checks: registration exhaustiveness between the
//! layers the token rules cannot see.
//!
//! * metric constants in `simcore::metrics::name` ↔ `bench::expectations::
//!   KNOWN_METRICS` (every recorded series has a declared consumer);
//! * `fig16*` string literals ↔ real `trainsim::Scenario` presets;
//! * every `impl Oracle for X` ↔ a `register(Box::new(X...))` call (an
//!   unregistered oracle silently watches nothing);
//! * `Model::event_label` strings ↔ the profiler's `DISPATCH_LABELS`
//!   taxonomy (the per-event-type counters keep a closed alphabet);
//! * every `coarse.*/v*` schema string ↔ exactly one `const` declaration.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Workspace;
use crate::lexer::{Lexed, Tok};
use crate::report::Diagnostic;
use crate::rules::{FileInfo, FileKind};

/// Path of the file declaring the metric-name constants.
pub const METRICS_PATH: &str = "crates/simcore/src/metrics.rs";
/// Path of the file declaring `KNOWN_METRICS`.
pub const EXPECTATIONS_PATH: &str = "crates/bench/src/expectations.rs";
/// Path of the file defining Scenario presets.
pub const SCENARIO_PATH: &str = "crates/trainsim/src/scenario.rs";
/// Path of the profiler, which declares the `DISPATCH_LABELS` taxonomy.
pub const PROF_PATH: &str = "crates/simcore/src/prof.rs";

/// One classified, lexed file (shared by the engine and these checks).
pub struct LexedFile {
    pub info: FileInfo,
    pub lexed: Lexed,
    pub mask: Vec<bool>,
}

/// Rule `metric-coverage`: diff the `pub mod name` constants in metrics.rs
/// against the `KNOWN_METRICS` list in expectations.rs, both ways. Skipped
/// when either file is absent from the scanned set (e.g. fixture runs).
pub fn metric_coverage(files: &[LexedFile], out: &mut Vec<Diagnostic>) {
    let Some(metrics) = files.iter().find(|f| f.info.path == METRICS_PATH) else {
        return;
    };
    let Some(expect) = files.iter().find(|f| f.info.path == EXPECTATIONS_PATH) else {
        return;
    };
    let declared = metric_name_consts(&metrics.lexed);
    let known = known_metrics_entries(&expect.lexed);
    if known.is_empty() {
        out.push(Diagnostic {
            rule: "metric-coverage",
            path: EXPECTATIONS_PATH.to_string(),
            line: 1,
            message: "expectations.rs declares no KNOWN_METRICS list; every metric constant in \
                      simcore::metrics::name must be mirrored there"
                .to_string(),
            waived: false,
            reason: None,
        });
        return;
    }
    let known_set: BTreeSet<&str> = known.iter().map(|(v, _)| v.as_str()).collect();
    let declared_set: BTreeSet<&str> = declared.iter().map(|(v, _)| v.as_str()).collect();
    for (value, line) in &declared {
        if !known_set.contains(value.as_str()) {
            out.push(Diagnostic {
                rule: "metric-coverage",
                path: METRICS_PATH.to_string(),
                line: *line,
                message: format!(
                    "metric \"{value}\" is recorded by simcore::metrics but missing from \
                     bench::expectations::KNOWN_METRICS"
                ),
                waived: false,
                reason: None,
            });
        }
    }
    for (value, line) in &known {
        if !declared_set.contains(value.as_str()) {
            out.push(Diagnostic {
                rule: "metric-coverage",
                path: EXPECTATIONS_PATH.to_string(),
                line: *line,
                message: format!(
                    "KNOWN_METRICS entry \"{value}\" has no matching constant in \
                     simcore::metrics::name"
                ),
                waived: false,
                reason: None,
            });
        }
    }
}

/// Extracts `(value, line)` for every `const NAME: &str = "value";` inside
/// `mod name { ... }` of metrics.rs.
fn metric_name_consts(lexed: &Lexed) -> Vec<(String, u32)> {
    let toks = &lexed.tokens;
    let mut start = None;
    for i in 0..toks.len() {
        if toks[i].tok == Tok::Ident("mod".into())
            && matches!(toks.get(i + 1), Some(t) if t.tok == Tok::Ident("name".into()))
            && matches!(toks.get(i + 2), Some(t) if t.tok == Tok::Punct(b'{'))
        {
            start = Some(i + 3);
            break;
        }
    }
    let Some(start) = start else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 1usize;
    let mut i = start;
    while i < toks.len() && depth > 0 {
        match &toks[i].tok {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => depth -= 1,
            Tok::Ident(w) if w == "const" => {
                // const NAME : & str = "value" ;
                let pat_str =
                    matches!(toks.get(i + 4), Some(t) if t.tok == Tok::Ident("str".into()));
                let pat = matches!(toks.get(i + 2), Some(t) if t.tok == Tok::Punct(b':'))
                    && matches!(toks.get(i + 3), Some(t) if t.tok == Tok::Punct(b'&'))
                    && pat_str
                    && matches!(toks.get(i + 5), Some(t) if t.tok == Tok::Punct(b'='));
                if pat {
                    if let Some(t) = toks.get(i + 6) {
                        if let Tok::Str(v) = &t.tok {
                            out.push((v.clone(), t.line));
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Extracts `(value, line)` for every string in the `KNOWN_METRICS` slice
/// initializer of expectations.rs.
fn known_metrics_entries(lexed: &Lexed) -> Vec<(String, u32)> {
    let toks = &lexed.tokens;
    let Some(at) = toks
        .iter()
        .position(|t| t.tok == Tok::Ident("KNOWN_METRICS".into()))
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for t in toks.iter().skip(at) {
        match &t.tok {
            Tok::Punct(b';') => break,
            Tok::Str(v) => out.push((v.clone(), t.line)),
            _ => {}
        }
    }
    out
}

/// Rule `preset-exists`: every string literal matching `fig16<tail>` (tail
/// non-empty, lowercase alphanumeric/dash) outside scenario.rs must be a
/// preset that scenario.rs itself names. Panel ids that are not presets
/// (e.g. dense baselines sharing a figure) carry waivers. Skipped when
/// scenario.rs is absent from the scanned set.
pub fn preset_exists(files: &[LexedFile], out: &mut Vec<Diagnostic>) {
    let Some(scenario) = files.iter().find(|f| f.info.path == SCENARIO_PATH) else {
        return;
    };
    let presets: BTreeSet<String> = scenario
        .lexed
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Str(v) if is_preset_shaped(v) => Some(v.clone()),
            _ => None,
        })
        .collect();
    for f in files {
        if f.info.path == SCENARIO_PATH {
            continue;
        }
        for t in &f.lexed.tokens {
            let Tok::Str(v) = &t.tok else { continue };
            if is_preset_shaped(v) && !presets.contains(v) {
                out.push(Diagnostic {
                    rule: "preset-exists",
                    path: f.info.path.clone(),
                    line: t.line,
                    message: format!(
                        "\"{v}\" looks like a Scenario preset but trainsim::scenario does not \
                         define it"
                    ),
                    waived: false,
                    reason: None,
                });
            }
        }
    }
}

/// `fig16` + non-empty `[a-z0-9-]` tail, e.g. `fig16a`, `fig16d-2to1`.
fn is_preset_shaped(s: &str) -> bool {
    match s.strip_prefix("fig16") {
        Some(tail) => {
            !tail.is_empty()
                && tail
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        }
        None => false,
    }
}

/// Rule `oracle-registered`: every `impl Oracle for X` in library code must
/// have a matching `register(Box::new(X ...))` call somewhere in library
/// code. An unregistered oracle compiles fine and silently watches nothing,
/// which is exactly the failure mode an invariant battery must not have.
/// Test-gated impls and registrations (`#[cfg(test)]`) are ignored: a
/// test-only oracle is the test's business.
pub fn oracle_registered(files: &[LexedFile], out: &mut Vec<Diagnostic>) {
    let mut impls: Vec<(String, String, u32)> = Vec::new();
    let mut registered: BTreeSet<String> = BTreeSet::new();
    for f in files {
        if f.info.kind != FileKind::LibSrc {
            continue;
        }
        let toks = &f.lexed.tokens;
        for i in 0..toks.len() {
            if f.mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let Tok::Ident(w) = &toks[i].tok else {
                continue;
            };
            if w == "impl" {
                let (owner, trait_name, _) = crate::items::parse_impl_header(toks, i + 1);
                if trait_name.as_deref() == Some("Oracle") {
                    if let Some(owner) = owner {
                        impls.push((owner, f.info.path.clone(), toks[i].line));
                    }
                }
            } else if w == "register" {
                // register ( Box :: new ( TypeName
                let shape = matches!(toks.get(i + 1), Some(t) if t.tok == Tok::Punct(b'('))
                    && matches!(toks.get(i + 2), Some(t) if t.tok == Tok::Ident("Box".into()))
                    && matches!(toks.get(i + 3), Some(t) if t.tok == Tok::PathSep)
                    && matches!(toks.get(i + 4), Some(t) if t.tok == Tok::Ident("new".into()))
                    && matches!(toks.get(i + 5), Some(t) if t.tok == Tok::Punct(b'('));
                if shape {
                    if let Some(Tok::Ident(ty)) = toks.get(i + 6).map(|t| &t.tok) {
                        registered.insert(ty.clone());
                    }
                }
            }
        }
    }
    for (ty, path, line) in impls {
        if !registered.contains(&ty) {
            out.push(Diagnostic {
                rule: "oracle-registered",
                path,
                line,
                message: format!(
                    "oracle `{ty}` implements Oracle but no library code registers it \
                     (`register(Box::new({ty}...))`); it silently watches nothing"
                ),
                waived: false,
                reason: None,
            });
        }
    }
}

/// Rule `label-registered`: every string a non-test `Model::event_label`
/// impl returns must appear in the profiler's `DISPATCH_LABELS` table, and
/// every table entry must be returned by some impl. Keeps the per-event-type
/// dispatch counters a closed alphabet so profile reports diff cleanly
/// across runs and models. Skipped when prof.rs is absent (fixture runs).
pub fn label_registered(files: &[LexedFile], ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(prof) = files.iter().find(|f| f.info.path == PROF_PATH) else {
        return;
    };
    let toks = &prof.lexed.tokens;
    let Some(at) = toks
        .iter()
        .position(|t| t.tok == Tok::Ident("DISPATCH_LABELS".into()))
    else {
        out.push(Diagnostic {
            rule: "label-registered",
            path: PROF_PATH.to_string(),
            line: 1,
            message: "prof.rs declares no DISPATCH_LABELS table; the event_label alphabet \
                      must be closed there"
                .to_string(),
            waived: false,
            reason: None,
        });
        return;
    };
    let mut table: Vec<(String, u32)> = Vec::new();
    for t in toks.iter().skip(at) {
        match &t.tok {
            Tok::Punct(b';') => break,
            Tok::Str(v) => table.push((v.clone(), t.line)),
            _ => {}
        }
    }
    let table_set: BTreeSet<&str> = table.iter().map(|(v, _)| v.as_str()).collect();
    let mut returned: BTreeSet<String> = BTreeSet::new();
    for f in &ws.fns {
        if f.name != "event_label" || f.in_test {
            continue;
        }
        let file = &files[f.file];
        if file.info.kind != FileKind::LibSrc {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let body = &file.lexed.tokens[open..=close.min(file.lexed.tokens.len() - 1)];
        let masked = &file.mask[open..open + body.len()];
        for (t, m) in body.iter().zip(masked) {
            if *m {
                continue;
            }
            if let Tok::Str(v) = &t.tok {
                returned.insert(v.clone());
                if !table_set.contains(v.as_str()) {
                    out.push(Diagnostic {
                        rule: "label-registered",
                        path: file.info.path.clone(),
                        line: t.line,
                        message: format!(
                            "event_label returns \"{v}\" but prof.rs DISPATCH_LABELS does \
                             not list it; the dispatch-label alphabet must stay closed"
                        ),
                        waived: false,
                        reason: None,
                    });
                }
            }
        }
    }
    for (v, line) in &table {
        if !returned.contains(v) {
            out.push(Diagnostic {
                rule: "label-registered",
                path: PROF_PATH.to_string(),
                line: *line,
                message: format!(
                    "DISPATCH_LABELS entry \"{v}\" is returned by no Model::event_label \
                     impl; remove it or wire the model that emits it"
                ),
                waived: false,
                reason: None,
            });
        }
    }
}

/// Rule `schema-single-decl`: every `coarse.<name>/v<N>` schema string must
/// be declared by exactly one `const NAME: &str = "..."` and every other
/// spelling of it must reference that constant. Re-spelled literals are how
/// schema strings drift apart between writer and checker. Test-gated
/// literals are ignored (goldens assert on the rendered bytes).
pub fn schema_single_decl(files: &[LexedFile], out: &mut Vec<Diagnostic>) {
    // value → (decls, uses); each entry is (path, line, const_name).
    type Sites = (Vec<(String, u32, String)>, Vec<(String, u32)>);
    let mut by_value: BTreeMap<String, Sites> = BTreeMap::new();
    for f in files {
        let toks = &f.lexed.tokens;
        for i in 0..toks.len() {
            if f.mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let Tok::Str(v) = &toks[i].tok else { continue };
            if !is_schema_shaped(v) {
                continue;
            }
            // const NAME : & str = "value"
            let decl_name = if i >= 6
                && toks[i - 1].tok == Tok::Punct(b'=')
                && toks[i - 2].tok == Tok::Ident("str".into())
                && toks[i - 3].tok == Tok::Punct(b'&')
                && toks[i - 4].tok == Tok::Punct(b':')
                && matches!(&toks[i - 6].tok, Tok::Ident(k) if k == "const" || k == "static")
            {
                match &toks[i - 5].tok {
                    Tok::Ident(n) => Some(n.clone()),
                    _ => None,
                }
            } else {
                None
            };
            let entry = by_value.entry(v.clone()).or_default();
            match decl_name {
                Some(n) => entry.0.push((f.info.path.clone(), toks[i].line, n)),
                None => entry.1.push((f.info.path.clone(), toks[i].line)),
            }
        }
    }
    for (value, (decls, uses)) in &by_value {
        match decls.as_slice() {
            [] => {
                for (path, line) in uses {
                    out.push(Diagnostic {
                        rule: "schema-single-decl",
                        path: path.clone(),
                        line: *line,
                        message: format!(
                            "schema \"{value}\" is spelled inline with no `const NAME: &str` \
                             declaration anywhere; declare it once and reference the constant"
                        ),
                        waived: false,
                        reason: None,
                    });
                }
            }
            [(decl_path, decl_line, decl_name)] => {
                for (path, line) in uses {
                    out.push(Diagnostic {
                        rule: "schema-single-decl",
                        path: path.clone(),
                        line: *line,
                        message: format!(
                            "schema \"{value}\" re-spells the literal declared as \
                             `{decl_name}` at {decl_path}:{decl_line}; use the constant"
                        ),
                        waived: false,
                        reason: None,
                    });
                }
            }
            many => {
                for (path, line, _) in many {
                    out.push(Diagnostic {
                        rule: "schema-single-decl",
                        path: path.clone(),
                        line: *line,
                        message: format!(
                            "schema \"{value}\" is declared {} times; exactly one const may \
                             own a schema string",
                            many.len()
                        ),
                        waived: false,
                        reason: None,
                    });
                }
            }
        }
    }
}

/// `coarse.` + dotted lowercase body + `/v<digits>`, e.g.
/// `coarse.lint-report/v1`.
fn is_schema_shaped(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("coarse.") else {
        return false;
    };
    let Some((body, ver)) = rest.rsplit_once("/v") else {
        return false;
    };
    !body.is_empty()
        && body
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'-')
        && !ver.is_empty()
        && ver.bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{test_mask, FileInfo};

    fn file(path: &str, src: &str) -> LexedFile {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        LexedFile {
            info: FileInfo::classify(path),
            lexed,
            mask,
        }
    }

    #[test]
    fn preset_shape() {
        assert!(is_preset_shaped("fig16a"));
        assert!(is_preset_shaped("fig16d-2to1"));
        assert!(!is_preset_shaped("fig16"));
        assert!(!is_preset_shaped("fig16d fits"));
        assert!(!is_preset_shaped("fig9"));
        assert!(!is_preset_shaped("Fig16a"));
    }

    #[test]
    fn preset_usage_checked_against_scenario() {
        let scenario = file(
            SCENARIO_PATH,
            "fn p() { let _ = [\"fig16a\", \"fig16b\"]; }",
        );
        let good = file("tests/a.rs", "const P: &str = \"fig16a\";");
        let bad = file("tests/b.rs", "const P: &str = \"fig16z\";");
        let mut out = Vec::new();
        preset_exists(&[scenario, good, bad], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path, "tests/b.rs");
        // simlint: allow(preset-exists, reason = "deliberately-unknown preset name exercising the preset-exists rule itself")
        assert!(out[0].message.contains("fig16z"));
    }

    #[test]
    fn metric_coverage_diffs_both_ways() {
        let metrics = file(
            METRICS_PATH,
            "pub mod name {\n    pub const A: &str = \"a.count\";\n    pub const B: &str = \"b.count\";\n}\n",
        );
        let expect = file(
            EXPECTATIONS_PATH,
            "pub static KNOWN_METRICS: &[&str] = &[\"a.count\", \"c.count\"];\n",
        );
        let mut out = Vec::new();
        metric_coverage(&[metrics, expect], &mut out);
        let msgs: Vec<_> = out.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(out.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("b.count")));
        assert!(msgs.iter().any(|m| m.contains("c.count")));
    }

    #[test]
    fn metric_coverage_skipped_without_both_files() {
        let metrics = file(METRICS_PATH, "pub mod name { pub const A: &str = \"a\"; }");
        let mut out = Vec::new();
        metric_coverage(&[metrics], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn unregistered_oracle_is_flagged() {
        let lib = file(
            "crates/simcore/src/oracle.rs",
            "pub struct A; pub struct B;\n\
             impl Oracle for A { fn name(&self) -> &str { \"a\" } }\n\
             impl Oracle for B { fn name(&self) -> &str { \"b\" } }\n\
             fn wire(hub: &Hub) { hub.register(Box::new(A::new())); }\n",
        );
        let mut out = Vec::new();
        oracle_registered(&[lib], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`B`"), "{}", out[0].message);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn test_gated_oracles_are_ignored() {
        let lib = file(
            "crates/simcore/src/oracle.rs",
            "#[cfg(test)]\nmod tests {\n    struct T;\n    impl Oracle for T {}\n}\n",
        );
        let mut out = Vec::new();
        oracle_registered(&[lib], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn label_alphabet_is_checked_both_ways() {
        let prof = file(
            PROF_PATH,
            "pub const DISPATCH_LABELS: &[&str] = &[\"known.label\", \"phantom.orphan\"];\n",
        );
        let model = file(
            "crates/trainsim/src/m.rs",
            "impl Model for M {\n    fn event_label(&self, ev: &Ev) -> &'static str {\n        \
             match ev { Ev::A => \"known.label\", Ev::B => \"ghost.label\" }\n    }\n}\n",
        );
        let files = vec![prof, model];
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        label_registered(&files, &ws, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out
            .iter()
            .any(|d| d.message.contains("ghost.label") && d.path == "crates/trainsim/src/m.rs"));
        assert!(out
            .iter()
            .any(|d| d.message.contains("phantom.orphan") && d.path == PROF_PATH));
    }

    #[test]
    fn schema_shape() {
        assert!(is_schema_shaped("coarse.lint-report/v1"));
        assert!(is_schema_shaped("coarse.chaos.repro/v1"));
        assert!(!is_schema_shaped("coarse.lint-report"));
        assert!(!is_schema_shaped("other.report/v1"));
        assert!(!is_schema_shaped("coarse./v1"));
    }

    #[test]
    fn schema_decl_counting() {
        let a = file(
            "crates/simcore/src/report.rs",
            "pub const SCHEMA: &str = \"coarse.x-report/v1\";\n",
        );
        let b = file(
            "crates/bench/src/bin/figures.rs",
            "fn f() { doc.set(\"schema\", \"coarse.x-report/v1\"); \
             let s = \"coarse.orphan-report/v2\"; }\n",
        );
        let mut out = Vec::new();
        schema_single_decl(&[a, b], &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out
            .iter()
            .any(|d| d.message.contains("re-spells") && d.message.contains("`SCHEMA`")));
        assert!(out
            .iter()
            .any(|d| d.message.contains("no `const NAME: &str` declaration")));
    }
}
