//! Cross-file semantic checks: metric-name coverage and preset existence.
//!
//! These rules read *relationships* the token rules cannot see: the metric
//! constants declared in `simcore::metrics::name` must be mirrored by
//! `bench::expectations::KNOWN_METRICS` (so every recorded series has a
//! declared consumer), and every `fig16*` string literal in the workspace
//! must name a real `trainsim::Scenario` preset (so tests and CLI wiring
//! cannot drift from the presets they claim to exercise).

use std::collections::BTreeSet;

use crate::lexer::{Lexed, Tok};
use crate::report::Diagnostic;
use crate::rules::FileInfo;

/// Path of the file declaring the metric-name constants.
pub const METRICS_PATH: &str = "crates/simcore/src/metrics.rs";
/// Path of the file declaring `KNOWN_METRICS`.
pub const EXPECTATIONS_PATH: &str = "crates/bench/src/expectations.rs";
/// Path of the file defining Scenario presets.
pub const SCENARIO_PATH: &str = "crates/trainsim/src/scenario.rs";

/// One classified, lexed file (shared by the engine and these checks).
pub struct LexedFile {
    pub info: FileInfo,
    pub lexed: Lexed,
    pub mask: Vec<bool>,
}

/// Rule `metric-coverage`: diff the `pub mod name` constants in metrics.rs
/// against the `KNOWN_METRICS` list in expectations.rs, both ways. Skipped
/// when either file is absent from the scanned set (e.g. fixture runs).
pub fn metric_coverage(files: &[LexedFile], out: &mut Vec<Diagnostic>) {
    let Some(metrics) = files.iter().find(|f| f.info.path == METRICS_PATH) else {
        return;
    };
    let Some(expect) = files.iter().find(|f| f.info.path == EXPECTATIONS_PATH) else {
        return;
    };
    let declared = metric_name_consts(&metrics.lexed);
    let known = known_metrics_entries(&expect.lexed);
    if known.is_empty() {
        out.push(Diagnostic {
            rule: "metric-coverage",
            path: EXPECTATIONS_PATH.to_string(),
            line: 1,
            message: "expectations.rs declares no KNOWN_METRICS list; every metric constant in \
                      simcore::metrics::name must be mirrored there"
                .to_string(),
            waived: false,
            reason: None,
        });
        return;
    }
    let known_set: BTreeSet<&str> = known.iter().map(|(v, _)| v.as_str()).collect();
    let declared_set: BTreeSet<&str> = declared.iter().map(|(v, _)| v.as_str()).collect();
    for (value, line) in &declared {
        if !known_set.contains(value.as_str()) {
            out.push(Diagnostic {
                rule: "metric-coverage",
                path: METRICS_PATH.to_string(),
                line: *line,
                message: format!(
                    "metric \"{value}\" is recorded by simcore::metrics but missing from \
                     bench::expectations::KNOWN_METRICS"
                ),
                waived: false,
                reason: None,
            });
        }
    }
    for (value, line) in &known {
        if !declared_set.contains(value.as_str()) {
            out.push(Diagnostic {
                rule: "metric-coverage",
                path: EXPECTATIONS_PATH.to_string(),
                line: *line,
                message: format!(
                    "KNOWN_METRICS entry \"{value}\" has no matching constant in \
                     simcore::metrics::name"
                ),
                waived: false,
                reason: None,
            });
        }
    }
}

/// Extracts `(value, line)` for every `const NAME: &str = "value";` inside
/// `mod name { ... }` of metrics.rs.
fn metric_name_consts(lexed: &Lexed) -> Vec<(String, u32)> {
    let toks = &lexed.tokens;
    let mut start = None;
    for i in 0..toks.len() {
        if toks[i].tok == Tok::Ident("mod".into())
            && matches!(toks.get(i + 1), Some(t) if t.tok == Tok::Ident("name".into()))
            && matches!(toks.get(i + 2), Some(t) if t.tok == Tok::Punct(b'{'))
        {
            start = Some(i + 3);
            break;
        }
    }
    let Some(start) = start else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 1usize;
    let mut i = start;
    while i < toks.len() && depth > 0 {
        match &toks[i].tok {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => depth -= 1,
            Tok::Ident(w) if w == "const" => {
                // const NAME : & str = "value" ;
                let pat_str =
                    matches!(toks.get(i + 4), Some(t) if t.tok == Tok::Ident("str".into()));
                let pat = matches!(toks.get(i + 2), Some(t) if t.tok == Tok::Punct(b':'))
                    && matches!(toks.get(i + 3), Some(t) if t.tok == Tok::Punct(b'&'))
                    && pat_str
                    && matches!(toks.get(i + 5), Some(t) if t.tok == Tok::Punct(b'='));
                if pat {
                    if let Some(t) = toks.get(i + 6) {
                        if let Tok::Str(v) = &t.tok {
                            out.push((v.clone(), t.line));
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Extracts `(value, line)` for every string in the `KNOWN_METRICS` slice
/// initializer of expectations.rs.
fn known_metrics_entries(lexed: &Lexed) -> Vec<(String, u32)> {
    let toks = &lexed.tokens;
    let Some(at) = toks
        .iter()
        .position(|t| t.tok == Tok::Ident("KNOWN_METRICS".into()))
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for t in toks.iter().skip(at) {
        match &t.tok {
            Tok::Punct(b';') => break,
            Tok::Str(v) => out.push((v.clone(), t.line)),
            _ => {}
        }
    }
    out
}

/// Rule `preset-exists`: every string literal matching `fig16<tail>` (tail
/// non-empty, lowercase alphanumeric/dash) outside scenario.rs must be a
/// preset that scenario.rs itself names. Panel ids that are not presets
/// (e.g. dense baselines sharing a figure) carry waivers. Skipped when
/// scenario.rs is absent from the scanned set.
pub fn preset_exists(files: &[LexedFile], out: &mut Vec<Diagnostic>) {
    let Some(scenario) = files.iter().find(|f| f.info.path == SCENARIO_PATH) else {
        return;
    };
    let presets: BTreeSet<String> = scenario
        .lexed
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Str(v) if is_preset_shaped(v) => Some(v.clone()),
            _ => None,
        })
        .collect();
    for f in files {
        if f.info.path == SCENARIO_PATH {
            continue;
        }
        for t in &f.lexed.tokens {
            let Tok::Str(v) = &t.tok else { continue };
            if is_preset_shaped(v) && !presets.contains(v) {
                out.push(Diagnostic {
                    rule: "preset-exists",
                    path: f.info.path.clone(),
                    line: t.line,
                    message: format!(
                        "\"{v}\" looks like a Scenario preset but trainsim::scenario does not \
                         define it"
                    ),
                    waived: false,
                    reason: None,
                });
            }
        }
    }
}

/// `fig16` + non-empty `[a-z0-9-]` tail, e.g. `fig16a`, `fig16d-2to1`.
fn is_preset_shaped(s: &str) -> bool {
    match s.strip_prefix("fig16") {
        Some(tail) => {
            !tail.is_empty()
                && tail
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{test_mask, FileInfo};

    fn file(path: &str, src: &str) -> LexedFile {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        LexedFile {
            info: FileInfo::classify(path),
            lexed,
            mask,
        }
    }

    #[test]
    fn preset_shape() {
        assert!(is_preset_shaped("fig16a"));
        assert!(is_preset_shaped("fig16d-2to1"));
        assert!(!is_preset_shaped("fig16"));
        assert!(!is_preset_shaped("fig16d fits"));
        assert!(!is_preset_shaped("fig9"));
        assert!(!is_preset_shaped("Fig16a"));
    }

    #[test]
    fn preset_usage_checked_against_scenario() {
        let scenario = file(
            SCENARIO_PATH,
            "fn p() { let _ = [\"fig16a\", \"fig16b\"]; }",
        );
        let good = file("tests/a.rs", "const P: &str = \"fig16a\";");
        let bad = file("tests/b.rs", "const P: &str = \"fig16z\";");
        let mut out = Vec::new();
        preset_exists(&[scenario, good, bad], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path, "tests/b.rs");
        // simlint: allow(preset-exists, reason = "deliberately-unknown preset name exercising the preset-exists rule itself")
        assert!(out[0].message.contains("fig16z"));
    }

    #[test]
    fn metric_coverage_diffs_both_ways() {
        let metrics = file(
            METRICS_PATH,
            "pub mod name {\n    pub const A: &str = \"a.count\";\n    pub const B: &str = \"b.count\";\n}\n",
        );
        let expect = file(
            EXPECTATIONS_PATH,
            "pub static KNOWN_METRICS: &[&str] = &[\"a.count\", \"c.count\"];\n",
        );
        let mut out = Vec::new();
        metric_coverage(&[metrics, expect], &mut out);
        let msgs: Vec<_> = out.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(out.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("b.count")));
        assert!(msgs.iter().any(|m| m.contains("c.count")));
    }

    #[test]
    fn metric_coverage_skipped_without_both_files() {
        let metrics = file(METRICS_PATH, "pub mod name { pub const A: &str = \"a\"; }");
        let mut out = Vec::new();
        metric_coverage(&[metrics], &mut out);
        assert!(out.is_empty());
    }
}
