//! The workspace call graph: functions from [`crate::items`] joined by
//! resolved call edges.
//!
//! Resolution is name-based and deliberately conservative: an edge is added
//! only when the callee resolves *uniquely* under the caller's visibility
//! (use-bindings, same module, same crate, then workspace-wide, then glob
//! imports; method calls resolve only when the method name is unique among
//! all impl methods). Ambiguous names produce **no** edge — a documented
//! false-negative class (see DESIGN.md §17) — so taint chains never jump
//! between unrelated same-named helpers.

use std::collections::BTreeMap;

use crate::items::{self, FileItems, FnItem};
use crate::lexer::Tok;
use crate::semantic::LexedFile;

/// One resolved call site.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// Callee's index in [`Workspace::fns`].
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// Per-file parse results kept alongside the global function table.
#[derive(Debug)]
pub struct FileMeta {
    pub module: Vec<String>,
    pub items: FileItems,
}

/// The parsed workspace: every function, every resolved call edge.
#[derive(Debug)]
pub struct Workspace {
    pub files: Vec<FileMeta>,
    pub fns: Vec<FnItem>,
    /// Outgoing edges per function (caller → callees), call-site ordered.
    pub calls: Vec<Vec<CallEdge>>,
    /// Incoming edges per function (callee → callers), sorted, deduped.
    pub callers: Vec<Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Identifiers that look like calls but are control flow, constructors, or
/// macro-adjacent noise; never resolved.
const SKIP_NAMES: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "let", "else", "fn",
    "unsafe", "await", "Some", "None", "Ok", "Err", "Self",
];

/// Method names ubiquitous in std (iterators, collections, Option/Result,
/// strings, numerics). A `.name(...)` call with one of these names is far
/// more likely to be the std method than a workspace method that happens to
/// share the name — e.g. every iterator `.collect()` would otherwise
/// resolve to `RunReport::collect` — so these never produce method edges.
/// Workspace methods with these names are reachable only via qualified
/// paths (`Type::collect(...)`); another documented false-negative class.
const COMMON_METHODS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_bytes",
    "as_ref",
    "as_slice",
    "as_str",
    "by_ref",
    "ceil",
    "chain",
    "clamp",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "floor",
    "fold",
    "get",
    "get_mut",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "nth",
    "ok",
    "or",
    "or_else",
    "or_insert",
    "parse",
    "peek",
    "pop",
    "position",
    "powf",
    "powi",
    "push",
    "push_str",
    "remove",
    "repeat",
    "replace",
    "resize",
    "rev",
    "reverse",
    "round",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "take",
    "then",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "zip",
];

impl Workspace {
    /// Parses every file and resolves every call site.
    pub fn build(files: &[LexedFile]) -> Workspace {
        let mut fns: Vec<FnItem> = Vec::new();
        let mut metas: Vec<FileMeta> = Vec::new();
        for (idx, f) in files.iter().enumerate() {
            let items = items::parse_file(idx, &f.info, &f.lexed, &f.mask, &mut fns);
            metas.push(FileMeta {
                module: items::module_of(&f.info),
                items,
            });
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(id);
        }
        let mut ws = Workspace {
            files: metas,
            fns,
            calls: Vec::new(),
            callers: Vec::new(),
            by_name,
        };
        let mut calls = Vec::with_capacity(ws.fns.len());
        for id in 0..ws.fns.len() {
            calls.push(ws.extract_calls(id, files));
        }
        let mut callers = vec![Vec::new(); ws.fns.len()];
        for (caller, edges) in calls.iter().enumerate() {
            for e in edges {
                callers[e.callee].push(caller);
            }
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }
        ws.calls = calls;
        ws.callers = callers;
        ws
    }

    /// Scans one fn body for call sites and resolves them.
    fn extract_calls(&self, id: usize, files: &[LexedFile]) -> Vec<CallEdge> {
        let f = &self.fns[id];
        let Some((open, close)) = f.body else {
            return Vec::new();
        };
        let toks = &files[f.file].lexed.tokens;
        let mut out = Vec::new();
        for k in open..=close.min(toks.len().saturating_sub(1)) {
            let Tok::Ident(name) = &toks[k].tok else {
                continue;
            };
            if !matches!(toks.get(k + 1), Some(t) if t.tok == Tok::Punct(b'(')) {
                continue;
            }
            if SKIP_NAMES.contains(&name.as_str()) {
                continue;
            }
            if k > 0 && toks[k - 1].tok == Tok::Ident("fn".into()) {
                continue; // nested fn declaration, not a call
            }
            let resolved = if k > 0 && toks[k - 1].tok == Tok::PathSep {
                // Qualified call: walk the path back.
                let mut segs = vec![items::normalize_seg(name).to_string()];
                let mut j = k;
                while j >= 2 && toks[j - 1].tok == Tok::PathSep {
                    if let Tok::Ident(seg) = &toks[j - 2].tok {
                        segs.insert(0, items::normalize_seg(seg).to_string());
                        j -= 2;
                    } else {
                        break; // turbofish or `<T as Trait>` — give up on the prefix
                    }
                }
                self.resolve_path(f, &segs)
            } else if k > 0 && toks[k - 1].tok == Tok::Punct(b'.') {
                self.resolve_method(name)
            } else {
                self.resolve_free(f, name)
            };
            if let Some(callee) = resolved {
                if callee != id {
                    out.push(CallEdge {
                        callee,
                        line: toks[k].line,
                    });
                }
            }
        }
        out
    }

    fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    fn unique(ids: impl Iterator<Item = usize> + Clone) -> Option<usize> {
        let mut it = ids;
        let first = it.next()?;
        if it.next().is_some() {
            None
        } else {
            Some(first)
        }
    }

    /// Resolves a fully- or partially-qualified call path.
    fn resolve_path(&self, caller: &FnItem, segs: &[String]) -> Option<usize> {
        let base = &self.files[caller.file].module;
        let segs = items::resolve_relative(segs, base);
        let (name, prefix) = segs.split_last()?;
        if prefix.is_empty() {
            return self.resolve_free(caller, name);
        }
        let cands = self.candidates(name);
        // Exact module match.
        if let Some(id) = Self::unique(
            cands
                .iter()
                .copied()
                .filter(|&id| self.fns[id].module == prefix),
        ) {
            return Some(id);
        }
        // `Type::method` — match the impl owner on the last prefix segment.
        let owner = prefix.last().map(String::as_str);
        if let Some(id) = Self::unique(
            cands
                .iter()
                .copied()
                .filter(|&id| self.fns[id].owner.as_deref() == owner),
        ) {
            return Some(id);
        }
        // Module-suffix match (`engine::route` from inside the same crate).
        Self::unique(
            cands
                .iter()
                .copied()
                .filter(|&id| self.fns[id].module.ends_with(prefix)),
        )
    }

    /// Resolves a bare-name call under the caller's scope.
    fn resolve_free(&self, caller: &FnItem, name: &str) -> Option<usize> {
        let meta = &self.files[caller.file];
        // A use-binding shadows everything.
        if let Some(b) = meta.items.uses.iter().find(|u| u.name == name) {
            if let Some(id) = self.resolve_path(caller, &b.path) {
                return Some(id);
            }
        }
        let cands = self.candidates(name);
        // Same module.
        if let Some(id) = Self::unique(
            cands
                .iter()
                .copied()
                .filter(|&id| self.fns[id].module == caller.module && self.fns[id].owner.is_none()),
        ) {
            return Some(id);
        }
        // Same crate, unique.
        let crate_root = caller.module.first();
        if let Some(id) = Self::unique(cands.iter().copied().filter(|&id| {
            self.fns[id].module.first() == crate_root && self.fns[id].owner.is_none()
        })) {
            return Some(id);
        }
        // Workspace-unique free fn.
        if let Some(id) = Self::unique(
            cands
                .iter()
                .copied()
                .filter(|&id| self.fns[id].owner.is_none()),
        ) {
            return Some(id);
        }
        // Glob imports.
        for glob in &meta.items.glob_uses {
            if let Some(id) = Self::unique(
                cands
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].module == *glob),
            ) {
                return Some(id);
            }
        }
        None
    }

    /// Resolves `.name(...)` by unique method name across all impls, except
    /// names std makes ubiquitous (see [`COMMON_METHODS`]).
    fn resolve_method(&self, name: &str) -> Option<usize> {
        if COMMON_METHODS.contains(&name) {
            return None;
        }
        Self::unique(
            self.candidates(name)
                .iter()
                .copied()
                .filter(|&id| self.fns[id].owner.is_some()),
        )
    }

    /// Human label for a function: `module::name` or `module::Type::name`.
    pub fn label(&self, id: usize) -> String {
        let f = &self.fns[id];
        let mut s = f.module.join("::");
        if let Some(o) = &f.owner {
            s.push_str("::");
            s.push_str(o);
        }
        s.push_str("::");
        s.push_str(&f.name);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{test_mask, FileInfo};

    fn ws(files: &[(&str, &str)]) -> (Workspace, Vec<LexedFile>) {
        let lexed: Vec<LexedFile> = files
            .iter()
            .map(|(p, s)| {
                let lexed = lex(s);
                let mask = test_mask(&lexed.tokens);
                LexedFile {
                    info: FileInfo::classify(p),
                    lexed,
                    mask,
                }
            })
            .collect();
        (Workspace::build(&lexed), Vec::new())
    }

    fn edge(w: &Workspace, caller: &str, callee: &str) -> bool {
        let find = |n: &str| {
            w.fns
                .iter()
                .position(|f| f.name == n)
                .unwrap_or_else(|| panic!("no fn {n}"))
        };
        let (a, b) = (find(caller), find(callee));
        w.calls[a].iter().any(|e| e.callee == b)
    }

    #[test]
    fn same_file_and_cross_file_resolution() {
        let (w, _) = ws(&[
            (
                "crates/fabric/src/a.rs",
                "use crate::b::helper;\npub fn top() { helper(); local(); }\nfn local() {}\n",
            ),
            (
                "crates/fabric/src/b.rs",
                "pub fn helper() { leaf(); }\nfn leaf() {}\n",
            ),
        ]);
        assert!(edge(&w, "top", "helper"));
        assert!(edge(&w, "top", "local"));
        assert!(edge(&w, "helper", "leaf"));
    }

    #[test]
    fn qualified_and_method_calls() {
        let (w, _) = ws(&[(
            "crates/cci/src/x.rs",
            "struct S;\nimpl S {\n    fn only_method(&self) {}\n}\n\
             mod util { pub fn tick() {} }\n\
             fn run(s: &S) { s.only_method(); util::tick(); S::only_method(s); }\n",
        )]);
        assert!(edge(&w, "run", "only_method"));
        assert!(edge(&w, "run", "tick"));
    }

    #[test]
    fn ambiguous_names_produce_no_edge() {
        let (w, _) = ws(&[
            (
                "crates/fabric/src/a.rs",
                "pub fn dup() {}\nfn go() { dup(); }\n",
            ),
            ("crates/cci/src/b.rs", "pub fn dup() {}\n"),
        ]);
        // `go` is in fabric: same-crate unique resolution still finds
        // fabric's dup even though cci has one too.
        assert!(edge(&w, "go", "dup"));
        let (w2, _) = ws(&[
            ("crates/fabric/src/a.rs", "pub fn dup() {}\n"),
            (
                "crates/fabric/src/b.rs",
                "pub fn dup() {}\nfn go2() { dup(); }\n",
            ),
        ]);
        // Two in the same crate, caller's own module wins.
        let go2 = w2.fns.iter().position(|f| f.name == "go2").unwrap();
        let target = w2.calls[go2][0].callee;
        assert_eq!(w2.fns[target].module, vec!["fabric", "b"]);
    }

    #[test]
    fn cross_crate_via_use_binding() {
        let (w, _) = ws(&[
            (
                "crates/trainsim/src/x.rs",
                "use coarse_fabric::timeutil::stamp;\nfn record() { stamp(); }\n",
            ),
            ("crates/fabric/src/timeutil.rs", "pub fn stamp() {}\n"),
        ]);
        assert!(edge(&w, "record", "stamp"));
    }

    #[test]
    fn callers_are_the_reverse_edges() {
        let (w, _) = ws(&[(
            "crates/core/src/x.rs",
            "fn a() { c(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let c = w.fns.iter().position(|f| f.name == "c").unwrap();
        assert_eq!(w.callers[c].len(), 2);
    }
}
