//! Item extraction: a token-level parser recovering the workspace's `fn`,
//! `impl`, inline-`mod`, and `use` structure from the [`crate::lexer`]
//! stream.
//!
//! This is deliberately not a full Rust parser. It recovers exactly what the
//! call graph and the cross-file analyses need — which function starts where,
//! which impl block (and trait) owns it, what module path it lives under,
//! and which names the file's `use` declarations bind — and tolerates
//! anything it does not understand by skipping it. Known approximations:
//!
//! * Module paths come from the file's repo-relative path plus inline
//!   `mod name { ... }` nesting; `#[path]` attributes are ignored.
//! * Generic parameters are skipped textually; a const-generic default
//!   containing `{ ... }` in a signature would confuse body detection
//!   (none exist in this workspace).
//! * Macro-generated items are invisible (none of the sim crates generate
//!   functions by macro).

use crate::lexer::{Lexed, Tok, Token};
use crate::rules::{FileInfo, FileKind};

/// One `use` binding: `name` as visible in the file, mapped to the full
/// normalized path (crate-dir first segment, e.g. `["simcore", "metrics",
/// "MetricRegistry"]`).
#[derive(Debug, Clone)]
pub struct UseBinding {
    pub name: String,
    pub path: Vec<String>,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the file in the scanned set.
    pub file: usize,
    /// Normalized module path, e.g. `["fabric", "engine"]`.
    pub module: Vec<String>,
    pub name: String,
    /// Self-type name when the fn sits in an `impl` block.
    pub owner: Option<String>,
    /// Trait name for `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range `[open_brace, close_brace]` of the body, when the
    /// fn has one (trait method declarations do not).
    pub body: Option<(usize, usize)>,
    /// True when the fn sits inside `#[cfg(test)]`-gated code.
    pub in_test: bool,
}

/// Per-file parse output (the `FnItem`s land in a workspace-global vec).
#[derive(Debug, Default)]
pub struct FileItems {
    pub uses: Vec<UseBinding>,
    /// Prefixes of glob imports (`use a::b::*;`).
    pub glob_uses: Vec<Vec<String>>,
}

/// Strips the `coarse_` lib-name prefix so use-paths (`coarse_fabric::x`)
/// and crate directory names (`fabric`) meet in one namespace.
pub fn normalize_seg(seg: &str) -> &str {
    seg.strip_prefix("coarse_").unwrap_or(seg)
}

/// The module path a file's items live under, derived from its path: crate
/// directory plus `src/` sub-path for library sources; the file stem alone
/// for bins, tests, and examples (each is its own crate root).
pub fn module_of(info: &FileInfo) -> Vec<String> {
    let mut out = Vec::new();
    let stem_path = info.path.trim_end_matches(".rs");
    match info.kind {
        FileKind::LibSrc => {
            if let Some(c) = &info.crate_name {
                out.push(c.clone());
            } else {
                out.push("repro".to_string());
            }
            let tail = match stem_path.split_once("src/") {
                Some((_, tail)) => tail,
                None => "",
            };
            for seg in tail.split('/') {
                if seg.is_empty() || seg == "lib" || seg == "mod" {
                    continue;
                }
                out.push(seg.to_string());
            }
        }
        FileKind::BinSrc | FileKind::TestSrc | FileKind::ExampleSrc => {
            let stem = stem_path.rsplit('/').next().unwrap_or(stem_path);
            out.push(stem.to_string());
        }
    }
    out
}

/// What a brace on the scope stack belongs to.
#[derive(Debug, Clone)]
enum Scope {
    Mod(String),
    Impl {
        owner: Option<String>,
        trait_name: Option<String>,
    },
    Other,
}

/// Parses one lexed file, appending its functions to `fns` (tagged with
/// `file_idx`) and returning its `use` bindings.
pub fn parse_file(
    file_idx: usize,
    info: &FileInfo,
    lexed: &Lexed,
    mask: &[bool],
    fns: &mut Vec<FnItem>,
) -> FileItems {
    let base = module_of(info);
    let toks = &lexed.tokens;
    let mut out = FileItems::default();
    // Scope stack: one entry per currently-open brace.
    let mut stack: Vec<Scope> = Vec::new();
    // Scope to attach to the next `{` (set by `mod`/`impl` headers).
    let mut pending: Option<Scope> = None;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct(b'{') => {
                stack.push(pending.take().unwrap_or(Scope::Other));
                i += 1;
            }
            Tok::Punct(b'}') => {
                stack.pop();
                i += 1;
            }
            Tok::Ident(w) if w == "mod" => {
                // `mod name { ... }` opens a module scope; `mod name;` is an
                // out-of-line declaration carrying no items here.
                if let Some(Token {
                    tok: Tok::Ident(name),
                    ..
                }) = toks.get(i + 1)
                {
                    if matches!(toks.get(i + 2), Some(t) if t.tok == Tok::Punct(b'{')) {
                        pending = Some(Scope::Mod(name.clone()));
                    }
                }
                i += 1;
            }
            Tok::Ident(w) if w == "impl" => {
                let (owner, trait_name, after) = parse_impl_header(toks, i + 1);
                pending = Some(Scope::Impl { owner, trait_name });
                i = after;
            }
            Tok::Ident(w) if w == "fn" => {
                let Some(Token {
                    tok: Tok::Ident(name),
                    ..
                }) = toks.get(i + 1)
                else {
                    i += 1;
                    continue;
                };
                let mut module = base.clone();
                let mut owner = None;
                let mut trait_name = None;
                for s in &stack {
                    match s {
                        Scope::Mod(m) => module.push(m.clone()),
                        Scope::Impl {
                            owner: o,
                            trait_name: t,
                        } => {
                            owner = o.clone();
                            trait_name = t.clone();
                        }
                        Scope::Other => {}
                    }
                }
                let body = fn_body_extent(toks, i + 2);
                fns.push(FnItem {
                    file: file_idx,
                    module,
                    name: name.clone(),
                    owner,
                    trait_name,
                    line: toks[i].line,
                    body,
                    in_test: mask.get(i).copied().unwrap_or(false),
                });
                // Continue scanning from just after the name so the body's
                // own braces flow through the scope stack (nested fns and
                // inline mods inside bodies are still discovered).
                i += 2;
            }
            Tok::Ident(w) if w == "use" => {
                i = parse_use(toks, i + 1, &base, &mut out);
            }
            _ => i += 1,
        }
    }
    out
}

/// Finds the fn body's `[open, close]` token range: the first top-level `{`
/// after the signature, or `None` when a `;` ends a bodiless declaration.
fn fn_body_extent(toks: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut open = None;
    for (k, t) in toks.iter().enumerate().skip(from) {
        match t.tok {
            Tok::Punct(b'{') => {
                open = Some(k);
                break;
            }
            Tok::Punct(b';') => return None,
            _ => {}
        }
    }
    let open = open?;
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
    }
    Some((open, toks.len().saturating_sub(1)))
}

/// Parses an `impl` header starting just past the `impl` keyword. Returns
/// `(self_type, trait_name, index)` where `index` points at the body's `{`
/// (or wherever parsing gave up). Handles `impl<T> Trait<U> for Type<T>`,
/// skipping generic argument lists by angle-bracket matching.
pub(crate) fn parse_impl_header(
    toks: &[Token],
    mut i: usize,
) -> (Option<String>, Option<String>, usize) {
    i = skip_generics(toks, i);
    let (first, after_first) = read_type_head(toks, i);
    let mut owner = first.clone();
    let mut trait_name = None;
    let mut i = after_first;
    if matches!(toks.get(i), Some(t) if t.tok == Tok::Ident("for".into())) {
        let (second, after_second) = read_type_head(toks, i + 1);
        trait_name = first;
        owner = second;
        i = after_second;
    }
    // Skip any `where` clause up to the opening brace.
    while i < toks.len() && toks[i].tok != Tok::Punct(b'{') {
        i += 1;
    }
    (owner, trait_name, i)
}

/// If `toks[i]` opens a `<...>` generic list, returns the index past its
/// matching `>`; otherwise `i`. Matching is by plain angle-bracket depth,
/// good enough for parameter lists (no shift operators appear there).
fn skip_generics(toks: &[Token], i: usize) -> usize {
    if !matches!(toks.get(i), Some(t) if t.tok == Tok::Punct(b'<')) {
        return i;
    }
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(i) {
        match t.tok {
            Tok::Punct(b'<') => depth += 1,
            Tok::Punct(b'>') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Reads a type path (`a::b::Name<...>`, possibly `&`/`dyn`-prefixed),
/// returning the final path segment (the type's own name) and the index
/// past the head.
fn read_type_head(toks: &[Token], mut i: usize) -> (Option<String>, usize) {
    let mut last = None;
    loop {
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(b'&')) | Some(Tok::Lifetime) => i += 1,
            Some(Tok::Ident(w)) if w == "dyn" || w == "mut" => i += 1,
            Some(Tok::Ident(w)) => {
                last = Some(w.clone());
                i += 1;
                i = skip_generics(toks, i);
                if matches!(toks.get(i), Some(t) if t.tok == Tok::PathSep) {
                    i += 1;
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    (last, i)
}

/// Parses a `use` declaration starting just past the `use` keyword, through
/// its `;`. Builds flat bindings for leaf names (honouring `as` renames and
/// `{...}` groups) and records glob prefixes.
fn parse_use(toks: &[Token], i: usize, base: &[String], out: &mut FileItems) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    parse_use_tree(toks, i, base, &mut prefix, out)
}

fn parse_use_tree(
    toks: &[Token],
    mut i: usize,
    base: &[String],
    prefix: &mut Vec<String>,
    out: &mut FileItems,
) -> usize {
    let depth_in = prefix.len();
    let mut last: Option<String> = None;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(w) if w == "as" => {
                // Rename: bind the alias to the path accumulated so far.
                if let (
                    Some(orig),
                    Some(Token {
                        tok: Tok::Ident(alias),
                        ..
                    }),
                ) = (last.take(), toks.get(i + 1))
                {
                    let mut path = prefix.clone();
                    path.push(orig);
                    out.uses.push(UseBinding {
                        name: alias.clone(),
                        path: resolve_relative(&path, base),
                    });
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(w) => {
                last = Some(normalize_seg(w).to_string());
                i += 1;
            }
            Tok::PathSep => {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                i += 1;
            }
            Tok::Punct(b'{') => {
                i += 1;
                loop {
                    i = parse_use_tree(toks, i, base, prefix, out);
                    match toks.get(i).map(|t| &t.tok) {
                        Some(Tok::Punct(b',')) => i += 1,
                        Some(Tok::Punct(b'}')) => {
                            i += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                prefix.truncate(depth_in);
                return i;
            }
            Tok::Punct(b'*') => {
                out.glob_uses.push(resolve_relative(prefix, base));
                i += 1;
            }
            Tok::Punct(b',') | Tok::Punct(b'}') => break,
            Tok::Punct(b';') => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    if let Some(name) = last {
        let mut path = prefix.clone();
        // `use a::b::self` (inside a group) binds the module itself.
        if name != "self" {
            path.push(name.clone());
        }
        let bound = if name == "self" {
            prefix.last().cloned().unwrap_or(name)
        } else {
            name
        };
        out.uses.push(UseBinding {
            name: bound,
            path: resolve_relative(&path, base),
        });
    }
    prefix.truncate(depth_in);
    i
}

/// Resolves `crate`/`self`/`super` prefixes of a path against the file's
/// base module, and drops a leading `std`/`core`/`alloc` unchanged (they
/// never resolve to workspace items anyway).
pub fn resolve_relative(path: &[String], base: &[String]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut rest = path;
    match path.first().map(String::as_str) {
        Some("crate") => {
            out.extend(base.first().cloned());
            rest = &path[1..];
        }
        Some("self") => {
            out.extend(base.iter().cloned());
            rest = &path[1..];
        }
        Some("super") => {
            let mut b = base.to_vec();
            let mut k = 0;
            while path.get(k).map(String::as_str) == Some("super") {
                b.pop();
                k += 1;
            }
            out.extend(b);
            rest = &path[k..];
        }
        _ => {}
    }
    out.extend(rest.iter().map(|s| normalize_seg(s).to_string()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{test_mask, FileInfo};

    fn parse(path: &str, src: &str) -> (Vec<FnItem>, FileItems) {
        let info = FileInfo::classify(path);
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let mut fns = Vec::new();
        let items = parse_file(0, &info, &lexed, &mask, &mut fns);
        (fns, items)
    }

    #[test]
    fn module_paths_from_file_paths() {
        let m = |p: &str| module_of(&FileInfo::classify(p));
        assert_eq!(m("crates/fabric/src/engine.rs"), vec!["fabric", "engine"]);
        assert_eq!(m("crates/fabric/src/lib.rs"), vec!["fabric"]);
        assert_eq!(
            m("crates/cci/src/sync/ring.rs"),
            vec!["cci", "sync", "ring"]
        );
        assert_eq!(m("crates/cci/src/sync/mod.rs"), vec!["cci", "sync"]);
        assert_eq!(m("tests/determinism.rs"), vec!["determinism"]);
        assert_eq!(m("src/lib.rs"), vec!["repro"]);
    }

    #[test]
    fn fns_with_modules_impls_and_traits() {
        let src = "fn top() {}\n\
                   mod inner {\n    pub fn nested() {}\n}\n\
                   struct S;\n\
                   impl S {\n    fn method(&self) {}\n}\n\
                   impl<E> Clone for Wrapper<E> {\n    fn clone(&self) -> Self { todo() }\n}\n";
        let (fns, _) = parse("crates/fabric/src/engine.rs", src);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["top", "nested", "method", "clone"]);
        assert_eq!(fns[1].module, vec!["fabric", "engine", "inner"]);
        assert_eq!(fns[2].owner.as_deref(), Some("S"));
        assert_eq!(fns[2].trait_name, None);
        assert_eq!(fns[3].owner.as_deref(), Some("Wrapper"));
        assert_eq!(fns[3].trait_name.as_deref(), Some("Clone"));
    }

    #[test]
    fn bodiless_trait_methods_and_test_fns() {
        let src = "trait T {\n    fn decl(&self);\n    fn with_default(&self) {}\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let (fns, _) = parse("crates/cci/src/lib.rs", src);
        assert_eq!(fns[0].body, None);
        assert!(fns[1].body.is_some());
        assert!(fns[2].in_test);
        assert!(!fns[0].in_test);
    }

    #[test]
    fn use_bindings_with_groups_renames_and_globs() {
        let src = "use coarse_simcore::metrics::{MetricRegistry, metered as m};\n\
                   use crate::engine::route;\nuse super::shared;\nuse std::fmt::*;\n";
        let (_, items) = parse("crates/fabric/src/topology.rs", src);
        let find = |n: &str| items.uses.iter().find(|u| u.name == n).unwrap();
        assert_eq!(
            find("MetricRegistry").path,
            vec!["simcore", "metrics", "MetricRegistry"]
        );
        assert_eq!(find("m").path, vec!["simcore", "metrics", "metered"]);
        assert_eq!(find("route").path, vec!["fabric", "engine", "route"]);
        assert_eq!(find("shared").path, vec!["fabric", "shared"]);
        assert_eq!(items.glob_uses, vec![vec!["std", "fmt"]]);
    }

    #[test]
    fn fn_bodies_span_their_braces() {
        let src = "fn f() { if x { y(); } }\nfn g() {}\n";
        let (fns, _) = parse("crates/core/src/x.rs", src);
        let lexed = lex(src);
        let (open, close) = fns[0].body.unwrap();
        assert_eq!(lexed.tokens[open].tok, Tok::Punct(b'{'));
        assert_eq!(lexed.tokens[close].tok, Tok::Punct(b'}'));
        assert!(close > open);
        assert!(fns[1].body.is_some());
    }
}
