//! A minimal Rust lexer with just enough fidelity for line/token lint rules.
//!
//! The lexer understands comments (line, doc, nested block), string literals
//! (plain, raw, byte, C-string, with arbitrary `#` guards), character
//! literals vs lifetimes, raw identifiers, and numeric literals, and records
//! the 1-based line every token starts on. It deliberately does **not**
//! decode escapes or validate syntax: unterminated literals are tolerated so
//! the rule engine can still inspect the prefix of a broken file, and doc
//! comments are captured as comments (so code inside doc examples is never
//! mistaken for library code).

/// One lexed token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers are stripped of `r#`).
    Ident(String),
    /// String literal: the undecoded text between the quotes.
    Str(String),
    /// Character or byte-character literal (content is irrelevant to rules).
    Char,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Numeric literal, including any type suffix.
    Num,
    /// The `::` path separator, lexed as one token so path-position rules
    /// and the item/call-graph parsers never have to re-pair colons.
    PathSep,
    /// A single punctuation byte.
    Punct(u8),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment stripped of its delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after `//` (line) or between `/*` and `*/` (block). For doc
    /// comments the extra `/` or `!` is part of the text, which conveniently
    /// keeps doc text from ever parsing as a waiver.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
    /// True for `/* ... */` comments. Waivers must be line comments.
    pub block: bool,
}

/// The full lex of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `source`, never failing: malformed input degrades to a best-effort
/// token stream rather than an error.
pub fn lex(source: &str) -> Lexed {
    let mut lx = Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        line_has_token: false,
        out: Lexed::default(),
    };
    lx.run();
    lx.out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_has_token: bool,
    out: Lexed,
}

impl Lexer<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.line_has_token = false;
            }
        }
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.line_has_token = true;
        self.out.tokens.push(Token { tok, line });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.at(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    let line = self.line;
                    let s = self.plain_string();
                    self.push(Tok::Str(s), line);
                }
                b'\'' => self.char_or_lifetime(),
                b':' if self.at(1) == Some(b':') => {
                    let line = self.line;
                    self.bump();
                    self.bump();
                    self.push(Tok::PathSep, line);
                }
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(Tok::Punct(b), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let own_line = !self.line_has_token;
        let line = self.line;
        self.pos += 2; // `//`
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: self.src[start..self.pos].to_string(),
            line,
            own_line,
            block: false,
        });
    }

    fn block_comment(&mut self) {
        let own_line = !self.line_has_token;
        let line = self.line;
        self.pos += 2; // `/*`
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while let Some(b) = self.peek() {
            if b == b'/' && self.at(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if b == b'*' && self.at(1) == Some(b'/') {
                depth -= 1;
                end = self.pos;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
                end = self.pos;
            }
        }
        if depth != 0 {
            end = self.pos; // unterminated: take what we have
        }
        self.out.comments.push(Comment {
            text: self.src[start..end].to_string(),
            line,
            own_line,
            block: true,
        });
    }

    /// Consumes a `"..."` string (opening quote at `pos`), returning its
    /// undecoded contents. Escaped quotes do not terminate it; newlines are
    /// tracked so multi-line strings keep line numbers accurate.
    fn plain_string(&mut self) -> String {
        self.bump(); // opening `"`
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\\' {
                self.bump();
                self.bump();
            } else if b == b'"' {
                break;
            } else {
                self.bump();
            }
        }
        let end = self.pos.min(self.bytes.len());
        let s = self.src[start..end].to_string();
        self.bump(); // closing `"` (no-op at EOF)
        s
    }

    /// Consumes a raw string whose opening `"` is at `pos`, terminated by
    /// `"` followed by `hashes` `#` characters.
    fn raw_string(&mut self, hashes: usize) -> String {
        self.bump(); // opening `"`
        let start = self.pos;
        loop {
            match self.peek() {
                None => return self.src[start..self.pos].to_string(),
                Some(b'"') => {
                    let closed = (0..hashes).all(|i| self.at(1 + i) == Some(b'#'));
                    if closed {
                        let s = self.src[start..self.pos].to_string();
                        self.bump(); // `"`
                        self.pos += hashes;
                        return s;
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
            }
        }
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // `'`
        match self.peek() {
            Some(b'\\') => {
                // Escaped char literal: consume the escape, then everything
                // up to and including the closing quote.
                self.bump();
                self.bump();
                while let Some(b) = self.peek() {
                    let done = b == b'\'';
                    self.bump();
                    if done {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            Some(b) if is_ident_start(b) => {
                // `'a'` is a char literal, `'a` (no closing quote) a lifetime.
                while let Some(c) = self.peek() {
                    if is_ident_continue(c) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.peek() == Some(b'\'') {
                    self.bump();
                    self.push(Tok::Char, line);
                } else {
                    self.push(Tok::Lifetime, line);
                }
            }
            Some(_) => {
                // Punctuation char literal such as `'('`.
                self.bump();
                while let Some(b) = self.peek() {
                    let done = b == b'\'';
                    self.bump();
                    if done {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            None => self.push(Tok::Punct(b'\''), line),
        }
    }

    fn number(&mut self) {
        let line = self.line;
        if self.peek() == Some(b'0')
            && matches!(self.at(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.pos += 2;
            while matches!(self.peek(), Some(b) if b.is_ascii_hexdigit() || b == b'_') {
                self.pos += 1;
            }
        } else {
            while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'_') {
                self.pos += 1;
            }
            // A fractional part only when a digit follows the dot, so
            // `x.0.unwrap()` and ranges like `0..10` stay separate tokens.
            if self.peek() == Some(b'.') && matches!(self.at(1), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
                while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'_') {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                let (skip, ok) = match self.at(1) {
                    Some(b'+' | b'-') => (2, matches!(self.at(2), Some(b) if b.is_ascii_digit())),
                    Some(b) => (1, b.is_ascii_digit()),
                    None => (0, false),
                };
                if ok {
                    self.pos += skip;
                    while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'_') {
                        self.pos += 1;
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, `usize`, ...).
        while matches!(self.peek(), Some(b) if is_ident_continue(b)) {
            self.pos += 1;
        }
        self.push(Tok::Num, line);
    }

    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(), Some(b) if is_ident_continue(b)) {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        let raw = matches!(word, "r" | "br" | "cr");
        let plain_prefix = matches!(word, "b" | "c");
        if (raw || plain_prefix) && self.peek() == Some(b'"') {
            let s = if raw {
                self.raw_string(0)
            } else {
                self.plain_string()
            };
            self.push(Tok::Str(s), line);
            return;
        }
        if raw && self.peek() == Some(b'#') {
            let mut hashes = 0usize;
            while self.at(hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.at(hashes) == Some(b'"') {
                self.pos += hashes;
                let s = self.raw_string(hashes);
                self.push(Tok::Str(s), line);
                return;
            }
            if word == "r" && hashes == 1 && matches!(self.at(1), Some(b) if is_ident_start(b)) {
                // Raw identifier `r#type`: emit the bare identifier.
                self.pos += 1; // `#`
                let istart = self.pos;
                while matches!(self.peek(), Some(b) if is_ident_continue(b)) {
                    self.pos += 1;
                }
                let ident = self.src[istart..self.pos].to_string();
                self.push(Tok::Ident(ident), line);
                return;
            }
        }
        let ident = word.to_string();
        self.push(Tok::Ident(ident), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn strings(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Str(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let out = lex("// HashMap\n/* HashSet */\n/// Instant::now()\nlet x = 1;");
        assert_eq!(idents("// HashMap\nlet x = 1;"), vec!["let", "x"]);
        assert_eq!(out.comments.len(), 3);
        assert!(out
            .tokens
            .iter()
            .all(|t| t.tok != Tok::Ident("HashMap".into())));
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(out.comments.len(), 1);
        assert_eq!(out.comments[0].text, " outer /* inner */ still comment ");
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(
            strings(r#"let s = "HashMap::new()";"#),
            vec!["HashMap::new()"]
        );
        assert!(!idents(r#"let s = "HashMap";"#).contains(&"HashMap".to_string()));
        // Escaped quotes do not terminate the literal.
        assert_eq!(strings(r#"let s = "a\"b";"#), vec![r#"a\"b"#]);
    }

    #[test]
    fn raw_and_byte_strings() {
        assert_eq!(
            strings(r###"let s = r#"un "quoted" unwrap()"#;"###),
            vec![r#"un "quoted" unwrap()"#]
        );
        assert_eq!(strings("let s = r\"plain raw\";"), vec!["plain raw"]);
        assert_eq!(strings("let s = b\"bytes\";"), vec!["bytes"]);
        assert_eq!(strings("let s = br#\"raw bytes\"#;"), vec!["raw bytes"]);
        // `//` inside a raw string is not a comment.
        let out = lex("let s = r\"http://x\";");
        assert!(out.comments.is_empty());
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; let e = '\\''; }");
        let chars = out.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        let lifetimes = out.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(chars, 3);
        assert_eq!(lifetimes, 2);
        // A comment-ish string inside a char literal never leaks.
        assert!(idents("let c = 'x'; let y = 1;").contains(&"y".to_string()));
    }

    #[test]
    fn tuple_field_access_is_not_swallowed_by_numbers() {
        // `self.0.unwrap()` must still expose the `unwrap` identifier.
        let ids = idents("self.0.unwrap()");
        assert!(ids.contains(&"unwrap".to_string()));
        // while real float literals stay one token.
        let out = lex("let x = 1.25e-3f64;");
        let nums = out.tokens.iter().filter(|t| t.tok == Tok::Num).count();
        assert_eq!(nums, 1);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn path_separator_is_one_token() {
        let out = lex("a::b::c(x: &y)");
        let seps = out.tokens.iter().filter(|t| t.tok == Tok::PathSep).count();
        assert_eq!(seps, 2);
        // A single colon (type ascription) stays plain punctuation.
        let single: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Punct(b':'))
            .collect();
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"line\nline\nline\";\nlet b = 2;";
        let out = lex(src);
        let b_line = out
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .map(|t| t.line);
        assert_eq!(b_line, Some(4));
    }

    #[test]
    fn own_line_flag_distinguishes_trailing_comments() {
        let out = lex("let x = 1; // trailing\n// own line\nlet y = 2;");
        assert_eq!(out.comments.len(), 2);
        assert!(!out.comments[0].own_line);
        assert!(out.comments[1].own_line);
    }

    #[test]
    fn unterminated_literals_are_tolerated() {
        // Must not panic, and earlier tokens survive.
        assert!(idents("let x = 1; let s = \"oops").contains(&"x".to_string()));
        assert!(idents("let x = 1; let s = r#\"oops").contains(&"x".to_string()));
        assert!(idents("let x = 1; /* oops").contains(&"x".to_string()));
    }
}
