//! simlint — a zero-dependency determinism & simulation-safety static
//! analyzer for the COARSE workspace.
//!
//! The repo's central contract is byte-identical replay: the chaos-repro,
//! oracle, and fidelity layers are only trustworthy if a simulation run is a
//! pure function of its inputs. The dynamic double-run tests catch order
//! dependence only when the ambient hash seed happens to differ; simlint
//! rejects the hazardous patterns statically, at CI time:
//!
//! * `unordered-container` — no `HashMap`/`HashSet` in simulation crates.
//! * `wall-clock` — no host-clock reads outside `crates/bench`.
//! * `ambient-randomness` — no OS-seeded randomness outside `crates/bench`.
//! * `panic-in-library` — no `unwrap()`/`expect()`/`panic!` in library code
//!   outside `#[cfg(test)]`.
//! * `metric-coverage` / `preset-exists` — semantic cross-checks keeping
//!   `simcore::metrics`, `bench::expectations`, and the `fig16*` presets in
//!   `trainsim::scenario` mutually consistent.
//! * `determinism-taint` — whole-workspace dataflow: nondeterminism sources
//!   (wall clock, randomness, unordered iteration, env vars, thread ids,
//!   pointer formatting) propagate through the [`callgraph`], and any
//!   tainted path reaching an event-schedule / metrics / report sink is
//!   reported with its full source→sink call chain.
//! * `parallel-ready` — audit of shared-mutable-state constructs
//!   (`static mut`, `unsafe`, interior mutability, locks, relaxed atomics)
//!   in the crates the parallel-kernel roadmap item will touch.
//! * `oracle-registered` / `label-registered` / `schema-single-decl` —
//!   registration exhaustiveness: every Oracle impl is in a battery, every
//!   `event_label` string is in the profiler's `DISPATCH_LABELS` alphabet,
//!   every `coarse.*/v*` schema string has exactly one declaring const.
//! * `bad-waiver` / `unused-waiver` — the waiver ledger polices itself.
//!
//! Findings are waivable inline with
//! `// simlint: allow(<rule>, reason = "...")` and the report renders as
//! text or `coarse.lint-report/v1` JSON (now with a per-rule waiver
//! ledger); [`baseline`] diffs a run against a committed report so CI can
//! gate on *new* findings only. The analyzer is itself built from a
//! hand-rolled lexer and item parser (no third-party parser), in the same
//! spirit as `simcore::check`: offline, deterministic, and small enough to
//! audit.

pub mod baseline;
pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod taint;
pub mod waiver;
pub mod walk;

use std::fmt;
use std::path::Path;

use report::LintReport;
use rules::FileInfo;
use semantic::LexedFile;

/// Failure to assemble the file set (the analysis itself cannot fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintError {
    /// A source file could not be read.
    Io { path: String, message: String },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Lints an in-memory file set of `(repo_relative_path, contents)` pairs.
/// Rule applicability is derived from each path, so fixtures can exercise
/// any context by choosing synthetic paths.
pub fn lint_files(files: &[(String, String)]) -> LintReport {
    let lexed: Vec<LexedFile> = files
        .iter()
        .map(|(path, src)| {
            let lexed = lexer::lex(src);
            let mask = rules::test_mask(&lexed.tokens);
            LexedFile {
                info: FileInfo::classify(path),
                lexed,
                mask,
            }
        })
        .collect();
    let mut diags = Vec::new();
    let mut waivers = Vec::new();
    for f in &lexed {
        waivers.extend(waiver::collect(&f.info.path, &f.lexed, &mut diags));
        rules::token_rules(&f.info, &f.lexed, &f.mask, &mut diags);
    }
    let ws = callgraph::Workspace::build(&lexed);
    taint::taint_dataflow(&lexed, &ws, &mut diags);
    semantic::metric_coverage(&lexed, &mut diags);
    semantic::preset_exists(&lexed, &mut diags);
    semantic::oracle_registered(&lexed, &mut diags);
    semantic::label_registered(&lexed, &ws, &mut diags);
    semantic::schema_single_decl(&lexed, &mut diags);
    waiver::apply(&mut diags, &mut waivers);
    let mut report = LintReport {
        files_scanned: files.len(),
        diagnostics: diags,
        waivers: waiver::stats(&waivers),
    };
    report.normalize();
    report
}

/// Walks the workspace rooted at `root` and lints every `.rs` source.
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    let files = walk::workspace_sources(root)?;
    Ok(lint_files(&files))
}
