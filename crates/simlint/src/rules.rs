//! The lint rule battery: file classification, `#[cfg(test)]` scoping, and
//! the per-file token rules.
//!
//! Cross-file (semantic) rules live in [`crate::semantic`]; waiver syntax in
//! [`crate::waiver`].

use crate::lexer::{Lexed, Tok, Token};
use crate::report::Diagnostic;

/// Descriptive metadata for one rule, surfaced in the JSON report.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub id: &'static str,
    pub description: &'static str,
}

/// Every rule simlint knows, sorted by id. The JSON report lists all of them
/// (with zero counts where clean) so a silently-dead rule is visible.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "ambient-randomness",
        description:
            "no ambient randomness (thread_rng, RandomState, OsRng) outside crates/bench; \
                      use the seeded generators in simcore",
    },
    RuleInfo {
        id: "bad-waiver",
        description: "a `// simlint: allow(...)` comment that does not parse or names an unknown \
                      or unwaivable rule",
    },
    RuleInfo {
        id: "determinism-taint",
        description: "no call chain from a nondeterminism source (wall clock, ambient \
                      randomness, unordered iteration, pointer formatting, env vars, thread \
                      ids) into a determinism-critical sink (event scheduling, metrics \
                      recording, report serialization); the diagnostic prints the full \
                      source→sink chain",
    },
    RuleInfo {
        id: "hot-path-alloc",
        description: "no `Box::new`/`Vec::new` inside loop bodies of the event-dispatch hot \
                      path (queue, sim driver, timelines, fabric engine, sync ring); reuse \
                      arenas/buffers, or waive for observation-only allocations",
    },
    RuleInfo {
        id: "label-registered",
        description: "every string a `Model::event_label` impl returns must appear in \
                      simcore::prof's DISPATCH_LABELS taxonomy, and vice versa, so the \
                      profiler's per-event-type counters keep a closed, documented alphabet",
    },
    RuleInfo {
        id: "metric-coverage",
        description: "every metric constant in simcore::metrics::name must appear in \
                      bench::expectations::KNOWN_METRICS, and vice versa",
    },
    RuleInfo {
        id: "oracle-registered",
        description: "every `impl Oracle for X` must be registered somewhere (`register(\
                      Box::new(X...)`) — an unregistered oracle silently watches nothing",
    },
    RuleInfo {
        id: "panic-in-library",
        description: "no unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in library \
                      code outside #[cfg(test)]; return typed errors or waive with the invariant",
    },
    RuleInfo {
        id: "parallel-ready",
        description: "inventory of shared-state hazards ahead of the parallel kernel: \
                      `static mut`, `unsafe`, interior mutability (RefCell/Cell/UnsafeCell), \
                      locks, atomics, and `Ordering::Relaxed` in simulation crates; each \
                      site needs a waiver arguing why it stays sound under parallel dispatch",
    },
    RuleInfo {
        id: "preset-exists",
        description: "every `fig16*` string literal outside trainsim::scenario must name a real \
                      Scenario preset",
    },
    RuleInfo {
        id: "schema-single-decl",
        description: "every `coarse.*/v*` schema string must be declared by exactly one \
                      `const`; re-spelled literals drift when the schema version bumps",
    },
    RuleInfo {
        id: "unordered-container",
        description: "no HashMap/HashSet in simulation crates (fabric/cci/collectives/core/\
                      trainsim); iteration order is nondeterministic — use BTreeMap/BTreeSet",
    },
    RuleInfo {
        id: "unused-waiver",
        description: "a waiver that matches no diagnostic; delete it so waivers stay honest",
    },
    RuleInfo {
        id: "wall-clock",
        description: "no wall-clock reads (Instant, SystemTime, UNIX_EPOCH) outside the timing \
                      allowlist (bench harness, selfbench, simcore::prof); simulated time comes \
                      from simcore::time",
    },
];

/// Rules that may not themselves be waived (they police the waiver system).
pub const UNWAIVABLE: &[&str] = &["bad-waiver", "unused-waiver"];

/// True when `id` names a known rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Crates whose in-memory state drives simulation outcomes: any iteration
/// order leak here breaks byte-identical replays.
const SIM_CRATES: &[&str] = &["cci", "collectives", "core", "fabric", "trainsim"];

/// The crates the parallel-readiness audit and taint dataflow police:
/// [`SIM_CRATES`] plus `simcore`, whose kernel/queue/profiler state a
/// parallel event kernel will share across worker threads.
pub const PARALLEL_CRATES: &[&str] = &[
    "cci",
    "collectives",
    "core",
    "fabric",
    "simcore",
    "trainsim",
];

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<x>/src/**` or the root `src/**` (excluding `src/bin`).
    LibSrc,
    /// `src/bin/**` of any package.
    BinSrc,
    /// `tests/**` of any package.
    TestSrc,
    /// `examples/**` of any package.
    ExampleSrc,
}

/// Where a file sits in the workspace, derived purely from its relative path.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Repo-relative path with forward slashes, e.g. `crates/fabric/src/engine.rs`.
    pub path: String,
    /// Crate directory name under `crates/`, or `None` for the root package.
    pub crate_name: Option<String>,
    pub kind: FileKind,
}

impl FileInfo {
    /// Classifies a repo-relative path (forward slashes).
    pub fn classify(path: &str) -> FileInfo {
        let (crate_name, rest) = match path.strip_prefix("crates/") {
            Some(tail) => match tail.split_once('/') {
                Some((name, rest)) => (Some(name.to_string()), rest),
                None => (None, path),
            },
            None => (None, path),
        };
        let kind = if rest.starts_with("src/bin/") {
            FileKind::BinSrc
        } else if rest.starts_with("src/") {
            FileKind::LibSrc
        } else if rest.starts_with("tests/") {
            FileKind::TestSrc
        } else {
            // examples/, benches/, or anything else outside a library target.
            FileKind::ExampleSrc
        };
        FileInfo {
            path: path.to_string(),
            crate_name,
            kind,
        }
    }

    fn in_crate(&self, name: &str) -> bool {
        self.crate_name.as_deref() == Some(name)
    }

    fn in_sim_crate(&self) -> bool {
        matches!(&self.crate_name, Some(c) if SIM_CRATES.contains(&c.as_str()))
    }
}

/// Computes, for each token, whether it sits inside a `#[cfg(test)]`-gated
/// item (attribute included). Detection is purely token-based: the attribute
/// pattern `# [ cfg ( test ) ]` followed by the next item, whose extent is
/// the matching `}` of its first brace (or a `;` for braceless items such as
/// gated `use` declarations).
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = match_cfg_test(tokens, i) {
            let mut j = attr_end;
            // Skip any further attributes on the same item.
            while let Some(next) = skip_attribute(tokens, j) {
                j = next;
            }
            let item_end = item_extent(tokens, j);
            for m in mask.iter_mut().take(item_end.min(tokens.len())).skip(i) {
                *m = true;
            }
            i = attr_end;
        } else {
            i += 1;
        }
    }
    mask
}

/// If `tokens[i..]` opens with `#[cfg(test)]` (or `#[cfg(test, ...)]` /
/// nothing fancier), returns the index just past the closing `]`.
fn match_cfg_test(tokens: &[Token], i: usize) -> Option<usize> {
    let is = |k: usize, want: &Tok| tokens.get(i + k).map(|t| &t.tok) == Some(want);
    if !(is(0, &Tok::Punct(b'#')) && is(1, &Tok::Punct(b'['))) {
        return None;
    }
    let cfg = matches!(tokens.get(i + 2), Some(t) if t.tok == Tok::Ident("cfg".into()));
    let test = matches!(tokens.get(i + 4), Some(t) if t.tok == Tok::Ident("test".into()));
    if !(cfg && is(3, &Tok::Punct(b'(')) && test) {
        return None;
    }
    // Find the closing `]` of the attribute.
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(i + 1) {
        match t.tok {
            Tok::Punct(b'[') => depth += 1,
            Tok::Punct(b']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// If `tokens[i..]` starts with any `#[...]` attribute, returns the index
/// past its closing `]`.
fn skip_attribute(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i).map(|t| &t.tok) == Some(&Tok::Punct(b'#'))
        && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(b'[')))
    {
        return None;
    }
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(i + 1) {
        match t.tok {
            Tok::Punct(b'[') => depth += 1,
            Tok::Punct(b']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Returns the index one past the end of the item starting at `i`: the
/// matching `}` of its first `{`, or a top-level `;` if one comes first.
fn item_extent(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(i) {
        match t.tok {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
            Tok::Punct(b';') if depth == 0 => return k + 1,
            _ => {}
        }
    }
    tokens.len()
}

/// Runs every per-file token rule over one lexed file, appending diagnostics.
pub fn token_rules(info: &FileInfo, lexed: &Lexed, mask: &[bool], out: &mut Vec<Diagnostic>) {
    unordered_container(info, lexed, mask, out);
    wall_clock(info, lexed, out);
    ambient_randomness(info, lexed, out);
    panic_in_library(info, lexed, mask, out);
    hot_path_alloc(info, lexed, mask, out);
    parallel_ready(info, lexed, mask, out);
}

fn diag(info: &FileInfo, rule: &'static str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: info.path.clone(),
        line,
        message,
        waived: false,
        reason: None,
    }
}

/// Rule `unordered-container`: any mention of HashMap/HashSet in the library
/// sources of a simulation crate. Conservative by design — even a non-iterated
/// map is one refactor away from leaking order into results; waive with a
/// justification when ordering provably cannot escape.
fn unordered_container(info: &FileInfo, lexed: &Lexed, mask: &[bool], out: &mut Vec<Diagnostic>) {
    if !(info.in_sim_crate() && info.kind == FileKind::LibSrc) {
        return;
    }
    for (idx, t) in lexed.tokens.iter().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        if let Tok::Ident(name) = &t.tok {
            if name == "HashMap" || name == "HashSet" {
                out.push(diag(
                    info,
                    "unordered-container",
                    t.line,
                    format!(
                        "`{name}` in a simulation crate: iteration order is nondeterministic, \
                         use BTreeMap/BTreeSet or drain through a sorted buffer"
                    ),
                ));
            }
        }
    }
}

const WALL_CLOCK_IDENTS: &[&str] = &["SystemTime", "UNIX_EPOCH"];

/// The only source files allowed to read the host clock: the bench timing
/// harness, the selfbench artifact writer, and the profiler's wall-clock
/// section (which is both feature-gated behind `prof-wallclock` and kept
/// out of the report's deterministic half). Everything else — including
/// the rest of `crates/bench` — must use simulated time.
pub const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/bench/src/harness.rs",
    "crates/bench/src/selfbench.rs",
    "crates/simcore/src/prof.rs",
];

/// Rule `wall-clock`: host-time reads anywhere outside the
/// [`WALL_CLOCK_ALLOWED`] file allowlist (including tests — replays must
/// not depend on the host clock).
/// `SystemTime`/`UNIX_EPOCH` are flagged on any mention; `Instant` only in
/// path position (`Instant::now()` etc.), because the bare identifier also
/// names the zero-duration trace event kind (`TraceEventKind::Instant`) and
/// a clock value cannot be obtained without the path form.
fn wall_clock(info: &FileInfo, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if WALL_CLOCK_ALLOWED.contains(&info.path.as_str()) {
        return;
    }
    let toks = &lexed.tokens;
    for (idx, t) in toks.iter().enumerate() {
        if let Tok::Ident(name) = &t.tok {
            let path_position = matches!(toks.get(idx + 1), Some(a) if a.tok == Tok::PathSep);
            if WALL_CLOCK_IDENTS.contains(&name.as_str()) || (name == "Instant" && path_position) {
                out.push(diag(
                    info,
                    "wall-clock",
                    t.line,
                    format!(
                        "`{name}` reads the host clock; simulated time must come from \
                         simcore::time (wall-clock is allowed only in the bench harness, \
                         selfbench, and simcore::prof)"
                    ),
                ));
            }
        }
    }
}

const RANDOMNESS_IDENTS: &[&str] = &[
    "thread_rng",
    "RandomState",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// Rule `ambient-randomness`: OS-seeded randomness anywhere outside
/// `crates/bench`. Seeded generators (simcore's splitmix/LCG) are fine.
fn ambient_randomness(info: &FileInfo, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if info.in_crate("bench") {
        return;
    }
    for t in &lexed.tokens {
        if let Tok::Ident(name) = &t.tok {
            if RANDOMNESS_IDENTS.contains(&name.as_str()) {
                out.push(diag(
                    info,
                    "ambient-randomness",
                    t.line,
                    format!(
                        "`{name}` draws ambient (OS-seeded) randomness; use an explicitly \
                         seeded generator so runs replay byte-identically"
                    ),
                ));
            }
        }
    }
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Rule `panic-in-library`: `.unwrap()` / `.expect(` / panicking macros in
/// library sources outside `#[cfg(test)]`. `crates/bench` (the measurement
/// harness, where aborting on a broken expectation is the point), bin
/// targets, tests and examples are exempt. `assert!` is deliberately allowed:
/// it documents an invariant rather than extracting a value.
fn panic_in_library(info: &FileInfo, lexed: &Lexed, mask: &[bool], out: &mut Vec<Diagnostic>) {
    if info.kind != FileKind::LibSrc || info.in_crate("bench") {
        return;
    }
    let toks = &lexed.tokens;
    for (idx, t) in toks.iter().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let next_is = |want: u8| matches!(toks.get(idx + 1), Some(n) if n.tok == Tok::Punct(want));
        let prev_is_dot =
            idx > 0 && matches!(toks.get(idx - 1), Some(p) if p.tok == Tok::Punct(b'.'));
        if (name == "unwrap" || name == "expect") && prev_is_dot && next_is(b'(') {
            out.push(diag(
                info,
                "panic-in-library",
                t.line,
                format!(
                    "`.{name}()` in library code panics on the error path; return a typed \
                     error, or waive stating the invariant that rules the panic out"
                ),
            ));
        } else if PANIC_MACROS.contains(&name.as_str()) && next_is(b'!') {
            out.push(diag(
                info,
                "panic-in-library",
                t.line,
                format!(
                    "`{name}!` in library code aborts the simulation; return a typed error, \
                     or waive stating why this is unreachable"
                ),
            ));
        }
    }
}

/// The event-dispatch hot path: files whose loop bodies run once per event,
/// transfer, or ring step, where a per-iteration heap allocation is a
/// steady-state throughput leak.
const HOT_PATH_FILES: &[&str] = &[
    "crates/cci/src/synccore.rs",
    "crates/collectives/src/timed.rs",
    "crates/fabric/src/bandwidth.rs",
    "crates/fabric/src/engine.rs",
    "crates/fabric/src/topology.rs",
    "crates/simcore/src/queue.rs",
    "crates/simcore/src/sim.rs",
    "crates/simcore/src/timeline.rs",
];

/// Rule `hot-path-alloc`: `Box::new(...)` / `Vec::new(...)` inside a loop
/// body of a [`HOT_PATH_FILES`] source. Loop extents are token-derived: a
/// `loop`/`while`/`for` keyword (excluding `impl ... for ...` and HRTB
/// `for<...>`) owns the brace block that follows its header. Allocations
/// that are genuinely once-per-observation (tracing, critical-path capture)
/// can be waived with the standard ledger.
fn hot_path_alloc(info: &FileInfo, lexed: &Lexed, mask: &[bool], out: &mut Vec<Diagnostic>) {
    if !HOT_PATH_FILES.contains(&info.path.as_str()) {
        return;
    }
    let toks = &lexed.tokens;
    // Mark every token lying inside at least one loop body.
    let mut in_loop = vec![false; toks.len()];
    for idx in 0..toks.len() {
        let Tok::Ident(name) = &toks[idx].tok else {
            continue;
        };
        let is_loop_kw = match name.as_str() {
            "loop" | "while" => true,
            "for" => {
                // `impl Trait for Type` has an identifier or `>` before the
                // keyword; `for<'a>` bounds are followed by `<`. A real loop
                // is neither.
                let prev_disqualifies = idx > 0
                    && (matches!(&toks[idx - 1].tok, Tok::Ident(_))
                        || toks[idx - 1].tok == Tok::Punct(b'>'));
                let next_disqualifies =
                    matches!(toks.get(idx + 1), Some(n) if n.tok == Tok::Punct(b'<'));
                !(prev_disqualifies || next_disqualifies)
            }
            _ => false,
        };
        if !is_loop_kw {
            continue;
        }
        // The loop body is the first brace block after the header.
        let Some(open) = toks[idx..].iter().position(|t| t.tok == Tok::Punct(b'{')) else {
            continue;
        };
        let start = idx + open;
        let mut depth = 0usize;
        for (k, t) in toks.iter().enumerate().skip(start) {
            match t.tok {
                Tok::Punct(b'{') => depth += 1,
                Tok::Punct(b'}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        for slot in in_loop.iter_mut().take(k).skip(start) {
                            *slot = true;
                        }
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    for (idx, t) in toks.iter().enumerate() {
        if !in_loop[idx] || mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        if name != "Box" && name != "Vec" {
            continue;
        }
        let path_new = matches!(toks.get(idx + 1), Some(a) if a.tok == Tok::PathSep)
            && matches!(toks.get(idx + 2), Some(c) if c.tok == Tok::Ident("new".into()))
            && matches!(toks.get(idx + 3), Some(d) if d.tok == Tok::Punct(b'('));
        if path_new {
            out.push(diag(
                info,
                "hot-path-alloc",
                t.line,
                format!(
                    "`{name}::new` inside a loop body of the event-dispatch hot path \
                     allocates per iteration; hoist the allocation or reuse a \
                     cleared buffer (waive only for observation-only allocations)"
                ),
            ));
        }
    }
}

/// Construct classes the parallel-readiness audit inventories. One finding
/// per `(line, class)` keeps the waiver burden proportional to real sites.
const INTERIOR_MUT: &[&str] = &["Cell", "OnceCell", "RefCell", "UnsafeCell"];
const LOCKS: &[&str] = &["Condvar", "Mutex", "RwLock"];

/// Rule `parallel-ready`: an inventory of everything a deterministic
/// parallel kernel must reckon with — `static mut`, `unsafe` items/blocks,
/// interior mutability, locks, atomics, and `Ordering::Relaxed` — across
/// the library sources of [`PARALLEL_CRATES`]. Each finding is waivable
/// per-site with an argument for why it stays sound under parallel
/// dispatch, so the parallel-kernel PR starts from a zero-surprise
/// baseline. Everything lexically inside an already-flagged `unsafe`
/// item/block counts as part of that one site.
fn parallel_ready(info: &FileInfo, lexed: &Lexed, mask: &[bool], out: &mut Vec<Diagnostic>) {
    let in_scope = info.kind == FileKind::LibSrc
        && matches!(&info.crate_name, Some(c) if PARALLEL_CRATES.contains(&c.as_str()));
    if !in_scope {
        return;
    }
    let toks = &lexed.tokens;
    // First pass: flag `unsafe` and mark each unsafe item/block's extent so
    // constructs inside it are subsumed into the one finding.
    let mut in_unsafe = vec![false; toks.len()];
    for (idx, t) in toks.iter().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) || in_unsafe[idx] {
            continue;
        }
        if t.tok == Tok::Ident("unsafe".into()) {
            out.push(diag(
                info,
                "parallel-ready",
                t.line,
                "`unsafe` in a simulation crate: audit for data races before the parallel \
                 kernel shares this state across workers"
                    .to_string(),
            ));
            let end = item_extent(toks, idx);
            for slot in in_unsafe.iter_mut().take(end.min(toks.len())).skip(idx) {
                *slot = true;
            }
        }
    }
    // Second pass: the remaining construct classes, deduped per (line, class).
    let mut last: Option<(u32, &'static str)> = None;
    let mut hits: Vec<(u32, &'static str, String)> = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) || in_unsafe[idx] {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let next_sep = matches!(toks.get(idx + 1), Some(n) if n.tok == Tok::PathSep);
        let (class, detail) = if name == "static"
            && matches!(toks.get(idx + 1), Some(n) if n.tok == Tok::Ident("mut".into()))
        {
            (
                "static-mut",
                "`static mut` is a data race waiting for the second thread; use an \
                 explicit handle or atomic"
                    .to_string(),
            )
        } else if INTERIOR_MUT.contains(&name.as_str()) {
            (
                "interior-mutability",
                format!(
                    "`{name}` hides mutation from the borrow checker; the parallel kernel \
                     needs this single-threaded assumption stated"
                ),
            )
        } else if LOCKS.contains(&name.as_str()) {
            (
                "lock",
                format!(
                    "`{name}` in a simulation crate: lock acquisition order becomes a \
                     determinism hazard under parallel dispatch"
                ),
            )
        } else if name.starts_with("Atomic") && name.len() > "Atomic".len() {
            (
                "atomic",
                format!("`{name}` shared-state atomic; document its ordering contract"),
            )
        } else if name == "Ordering"
            && next_sep
            && matches!(toks.get(idx + 2), Some(n) if n.tok == Tok::Ident("Relaxed".into()))
        {
            (
                "relaxed-ordering",
                "`Ordering::Relaxed` gives no cross-thread visibility guarantee; justify \
                 or strengthen before parallel dispatch"
                    .to_string(),
            )
        } else {
            continue;
        };
        if last == Some((t.line, class)) {
            continue;
        }
        last = Some((t.line, class));
        hits.push((t.line, class, detail));
    }
    for (line, _class, detail) in hits {
        out.push(diag(info, "parallel-ready", line, detail));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
        let info = FileInfo::classify(path);
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let mut out = Vec::new();
        token_rules(&info, &lexed, &mask, &mut out);
        out
    }

    #[test]
    fn classify_paths() {
        let f = FileInfo::classify("crates/fabric/src/engine.rs");
        assert_eq!(f.crate_name.as_deref(), Some("fabric"));
        assert_eq!(f.kind, FileKind::LibSrc);
        assert_eq!(
            FileInfo::classify("crates/bench/src/bin/figures.rs").kind,
            FileKind::BinSrc
        );
        assert_eq!(
            FileInfo::classify("tests/determinism.rs").kind,
            FileKind::TestSrc
        );
        assert_eq!(
            FileInfo::classify("examples/quickstart.rs").kind,
            FileKind::ExampleSrc
        );
        let root = FileInfo::classify("src/lib.rs");
        assert_eq!(root.crate_name, None);
        assert_eq!(root.kind, FileKind::LibSrc);
    }

    #[test]
    fn hashmap_flagged_only_in_sim_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_one("crates/fabric/src/engine.rs", src).len(), 1);
        assert_eq!(lint_one("crates/simcore/src/queue.rs", src).len(), 0);
        assert_eq!(lint_one("crates/fabric/tests/x.rs", src).len(), 0);
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "pub fn f() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { f().checked_add(1).unwrap(); panic!(\"x\"); }\n}\n";
        assert_eq!(lint_one("crates/core/src/lib.rs", src).len(), 0);
    }

    #[test]
    fn cfg_test_gated_use_does_not_mask_rest_of_file() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn f(){ let x = [1]; x.first().unwrap(); }\n";
        let diags = lint_one("crates/cci/src/lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic-in-library");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn unwrap_expect_and_macros_flagged() {
        let src = "fn f(o: Option<u32>) -> u32 {\n    let a = o.unwrap();\n    let b = o.expect(\"msg\");\n    if a > b { panic!(\"no\") } else { unreachable!() }\n}\n";
        let diags = lint_one("crates/trainsim/src/x.rs", src);
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["panic-in-library"; 4]);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(3).max(o.unwrap_or_default()) }\n";
        assert_eq!(lint_one("crates/core/src/x.rs", src).len(), 0);
    }

    #[test]
    fn bench_and_bins_exempt_from_panic_rule() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        assert_eq!(lint_one("crates/bench/src/harness.rs", src).len(), 0);
        assert_eq!(lint_one("crates/bench/src/bin/figures.rs", src).len(), 0);
        assert_eq!(lint_one("crates/simcore/src/x.rs", src).len(), 1);
    }

    #[test]
    fn wall_clock_and_randomness_flagged_outside_allowlist() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        assert_eq!(lint_one("crates/simcore/src/x.rs", src).len(), 1);
        for allowed in super::WALL_CLOCK_ALLOWED {
            assert_eq!(lint_one(allowed, src).len(), 0, "{allowed} is allowlisted");
        }
        let sys = "fn f() { let _ = std::time::SystemTime::now(); }\n";
        assert_eq!(lint_one("crates/core/src/x.rs", sys).len(), 1);
        let rng = "use std::collections::hash_map::RandomState;\n";
        assert_eq!(lint_one("tests/determinism.rs", rng).len(), 1);
    }

    #[test]
    fn wall_clock_rule_covers_the_rest_of_bench() {
        // The crate-wide bench exemption is gone: only the harness and
        // selfbench may read the clock, not e.g. the figures binary.
        let src = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(lint_one("crates/bench/src/bin/figures.rs", src).len(), 1);
        assert_eq!(lint_one("crates/bench/src/micro.rs", src).len(), 1);
    }

    #[test]
    fn trace_event_kind_instant_is_not_wall_clock() {
        let src = "fn f(k: TraceEventKind) -> bool { k == TraceEventKind::Instant }\n";
        assert_eq!(lint_one("crates/simcore/src/trace.rs", src).len(), 0);
    }

    #[test]
    fn mentions_in_strings_and_comments_do_not_fire() {
        let src = "// HashMap here\nconst HELP: &str = \"avoid Instant::now and HashMap\";\n";
        assert_eq!(lint_one("crates/fabric/src/x.rs", src).len(), 0);
    }
}
