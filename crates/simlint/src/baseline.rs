//! Baseline diff mode: compare a fresh lint run against a committed
//! `coarse.lint-report/v1` artifact and surface only **new** active
//! findings.
//!
//! This is the ratchet that lets a rule land before the workspace is fully
//! clean: the accepted debt lives in `lint-baseline.json`, CI fails only
//! when a change introduces a finding that is not in the baseline, and
//! shrinking the baseline is always safe. A finding's identity is
//! `(rule, path, message)` — deliberately **not** the line number, so
//! unrelated edits that shift code downward do not churn the baseline
//! (taint messages embed their call chain, which keeps same-file duplicates
//! distinct in practice).

use std::collections::BTreeSet;

use coarse_simcore::json::JsonValue;

use crate::report::{Diagnostic, LintReport, SCHEMA};

/// A parsed baseline: identity keys of the previously-accepted active
/// findings.
#[derive(Debug)]
pub struct Baseline {
    keys: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// Parses a `coarse.lint-report/v1` document, keeping every *active*
    /// (un-waived) diagnostic's identity. Waived findings are excluded: a
    /// waiver that later disappears should surface as new debt, not ride
    /// along silently.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(format!("baseline schema is \"{s}\", expected \"{SCHEMA}\"")),
            None => return Err("baseline has no schema field".to_string()),
        }
        let mut keys = BTreeSet::new();
        let diags = doc
            .get("diagnostics")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "baseline has no diagnostics array".to_string())?;
        for d in diags {
            if d.get("waived").and_then(JsonValue::as_bool) == Some(true) {
                continue;
            }
            let field = |k: &str| {
                d.get(k)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline diagnostic missing string field `{k}`"))
            };
            keys.insert((field("rule")?, field("path")?, field("message")?));
        }
        Ok(Baseline { keys })
    }

    /// True when the baseline already accepts this finding.
    pub fn contains(&self, d: &Diagnostic) -> bool {
        // Key without allocating: BTreeSet<(String,String,String)> lookups
        // need owned keys, and the set is small, so build one.
        self.keys
            .contains(&(d.rule.to_string(), d.path.clone(), d.message.clone()))
    }

    /// Active findings in `report` that the baseline does not accept — the
    /// set that fails a `--baseline` run.
    pub fn new_findings<'r>(&self, report: &'r LintReport) -> Vec<&'r Diagnostic> {
        report
            .active_diagnostics()
            .filter(|d| !self.contains(d))
            .collect()
    }

    /// Accepted findings that no longer occur — safe to remove from the
    /// baseline (reported informationally so the ratchet actually tightens).
    pub fn stale(&self, report: &LintReport) -> Vec<(String, String, String)> {
        let current: BTreeSet<(String, String, String)> = report
            .active_diagnostics()
            .map(|d| (d.rule.to_string(), d.path.clone(), d.message.clone()))
            .collect();
        self.keys.difference(&current).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_files;

    fn report_for(src: &str) -> LintReport {
        lint_files(&[("crates/fabric/src/x.rs".to_string(), src.to_string())])
    }

    #[test]
    fn new_findings_are_the_difference() {
        let old = report_for("fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n");
        let baseline = Baseline::parse(&old.render_json()).unwrap();
        // Same finding again: nothing new.
        let same = report_for("fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n");
        assert!(baseline.new_findings(&same).is_empty());
        // An extra finding: exactly the new one surfaces.
        let more = report_for(
            "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n\
             fn g() { let s: HashSet<u8> = HashSet::new(); }\n",
        );
        let fresh = baseline.new_findings(&more);
        assert!(!fresh.is_empty());
        assert!(fresh.iter().all(|d| d.message.contains("HashSet")));
    }

    #[test]
    fn line_shifts_do_not_churn() {
        let old = report_for("fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n");
        let baseline = Baseline::parse(&old.render_json()).unwrap();
        let shifted = report_for("\n\n\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n");
        assert!(baseline.new_findings(&shifted).is_empty());
    }

    #[test]
    fn fixed_findings_go_stale() {
        let old = report_for("fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n");
        let baseline = Baseline::parse(&old.render_json()).unwrap();
        let clean = report_for("fn f() {}\n");
        assert!(!baseline.stale(&clean).is_empty());
        assert!(baseline.new_findings(&clean).is_empty());
    }

    #[test]
    fn bad_baselines_are_rejected() {
        assert!(Baseline::parse("not json").is_err());
        assert!(
            Baseline::parse("{\"schema\": \"coarse.other/v1\", \"diagnostics\": []}")
                .unwrap_err()
                .contains("schema")
        );
        assert!(Baseline::parse("{\"schema\": \"coarse.lint-report/v1\"}").is_err());
    }
}
