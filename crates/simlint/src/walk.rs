//! Deterministic workspace source discovery.
//!
//! Walks `crates/*/{src,tests,examples,benches}` plus the root package's
//! `src/`, `tests/`, and `examples/`, collecting `.rs` files sorted by
//! repo-relative path. Fixture directories (e.g. `crates/simlint/fixtures`)
//! are deliberately outside the walked set: they hold intentionally-bad
//! code for the selftest.

use std::fs;
use std::path::Path;

use crate::LintError;

/// Subdirectories of each package that hold Rust sources.
const TARGET_DIRS: &[&str] = &["benches", "examples", "src", "tests"];

/// Collects `(repo_relative_path, contents)` for every workspace `.rs`
/// source, sorted by path.
pub fn workspace_sources(root: &Path) -> Result<Vec<(String, String)>, LintError> {
    let mut out = Vec::new();
    let mut crate_names = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                if let Some(name) = entry.file_name().to_str() {
                    crate_names.push(name.to_string());
                }
            }
        }
    }
    crate_names.sort();
    for name in &crate_names {
        for sub in TARGET_DIRS {
            collect_rs(
                &crates_dir.join(name).join(sub),
                &format!("crates/{name}/{sub}"),
                &mut out,
            )?;
        }
    }
    for sub in TARGET_DIRS {
        collect_rs(&root.join(sub), sub, &mut out)?;
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, labelling them with
/// forward-slash paths rooted at `rel`.
fn collect_rs(dir: &Path, rel: &str, out: &mut Vec<(String, String)>) -> Result<(), LintError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()), // absent target dir (e.g. no tests/) is fine
    };
    let mut names = Vec::new();
    for entry in entries.flatten() {
        if let Some(name) = entry.file_name().to_str() {
            names.push((name.to_string(), entry.path().is_dir()));
        }
    }
    names.sort();
    for (name, is_dir) in names {
        let child = dir.join(&name);
        let child_rel = format!("{rel}/{name}");
        if is_dir {
            collect_rs(&child, &child_rel, out)?;
        } else if name.ends_with(".rs") {
            let contents = fs::read_to_string(&child).map_err(|e| LintError::Io {
                path: child_rel.clone(),
                message: e.to_string(),
            })?;
            out.push((child_rel, contents));
        }
    }
    Ok(())
}
