//! Inline waiver comments: `// simlint: allow(<rule>, reason = "...")`.
//!
//! A waiver on its own line covers the next line that contains code; a
//! trailing waiver covers its own line. Several own-line waivers may stack
//! above one line. Waivers must be plain line comments: doc comments can
//! never waive (their text starts with `/` or `!`), and block comments are
//! ignored by design. Every waiver must match a diagnostic — otherwise the
//! `unused-waiver` rule fires — and malformed waivers raise `bad-waiver`,
//! so the waiver ledger can only shrink, never rot.

use std::collections::BTreeMap;

use crate::lexer::{Comment, Lexed};
use crate::report::{Diagnostic, WaiverStat};
use crate::rules::{is_known_rule, UNWAIVABLE};

/// One parsed waiver, located and aimed.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Repo-relative path of the file the waiver sits in.
    pub path: String,
    /// Rule id being waived.
    pub rule: String,
    /// Human justification (non-empty by construction).
    pub reason: String,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// Line the waiver covers, when one exists.
    pub target: Option<u32>,
    /// Set once the waiver absorbs at least one diagnostic.
    pub used: bool,
}

/// Scans a file's comments for waivers. Malformed waivers become `bad-waiver`
/// diagnostics; well-formed ones are returned with their target line resolved.
pub fn collect(path: &str, lexed: &Lexed, out_diags: &mut Vec<Diagnostic>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in &lexed.comments {
        if c.block {
            continue;
        }
        let Some(parsed) = parse(&c.text) else {
            continue;
        };
        match parsed {
            Ok((rule, reason)) => {
                let target = if c.own_line {
                    next_code_line(lexed, c)
                } else {
                    Some(c.line)
                };
                waivers.push(Waiver {
                    path: path.to_string(),
                    rule,
                    reason,
                    line: c.line,
                    target,
                    used: false,
                });
            }
            Err(message) => out_diags.push(Diagnostic {
                rule: "bad-waiver",
                path: path.to_string(),
                line: c.line,
                message,
                waived: false,
                reason: None,
            }),
        }
    }
    waivers
}

/// The first line after the waiver comment that carries a token.
fn next_code_line(lexed: &Lexed, c: &Comment) -> Option<u32> {
    lexed.tokens.iter().map(|t| t.line).find(|&l| l > c.line)
}

/// Parses comment text. `None` — not a waiver at all. `Some(Err(_))` — meant
/// to be a waiver but malformed.
fn parse(text: &str) -> Option<Result<(String, String), String>> {
    let rest = text.trim_start().strip_prefix("simlint:")?;
    Some(parse_body(rest))
}

fn parse_body(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Err("waiver must be `simlint: allow(<rule>, reason = \"...\")`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let rest = rest.trim_start();
    let rule_len = rest
        .bytes()
        .take_while(|b| b.is_ascii_lowercase() || *b == b'-')
        .count();
    let (rule, rest) = rest.split_at(rule_len);
    if rule.is_empty() {
        return Err("missing rule name in waiver".to_string());
    }
    if !is_known_rule(rule) {
        return Err(format!("unknown rule `{rule}` in waiver"));
    }
    if UNWAIVABLE.contains(&rule) {
        return Err(format!("rule `{rule}` cannot be waived"));
    }
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix(',') else {
        return Err("expected `, reason = \"...\"` after rule name".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("reason") else {
        return Err("expected `reason = \"...\"`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return Err("reason must be a double-quoted string".to_string());
    };
    let Some((reason, rest)) = rest.split_once('"') else {
        return Err("unterminated reason string".to_string());
    };
    if reason.trim().is_empty() {
        return Err("waiver reason must be non-empty".to_string());
    }
    let rest = rest.trim_start();
    if !rest.starts_with(')') {
        return Err("expected `)` closing the waiver".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// Marks diagnostics covered by a waiver (same file, rule, and line) as
/// waived, then reports every unused waiver. Unwaivable rules are skipped.
pub fn apply(diags: &mut Vec<Diagnostic>, waivers: &mut [Waiver]) {
    for d in diags.iter_mut() {
        if UNWAIVABLE.contains(&d.rule) {
            continue;
        }
        for w in waivers.iter_mut() {
            if w.path == d.path && w.rule == d.rule && w.target == Some(d.line) {
                d.waived = true;
                d.reason = Some(w.reason.clone());
                w.used = true;
                break;
            }
        }
    }
    for w in waivers.iter().filter(|w| !w.used) {
        let aim = match w.target {
            Some(l) => format!("line {l}"),
            None => "any line".to_string(),
        };
        diags.push(Diagnostic {
            rule: "unused-waiver",
            path: w.path.clone(),
            line: w.line,
            message: format!(
                "waiver for `{}` does not match any diagnostic on {aim}; delete it",
                w.rule
            ),
            waived: false,
            reason: None,
        });
    }
}

/// Per-rule ledger counts for the report's `waivers` section (call after
/// [`apply`] so `used` flags are final).
pub fn stats(waivers: &[Waiver]) -> Vec<WaiverStat> {
    let mut by_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for w in waivers {
        let e = by_rule.entry(w.rule.as_str()).or_default();
        e.0 += 1;
        if w.used {
            e.1 += 1;
        }
    }
    by_rule
        .into_iter()
        .map(|(rule, (total, used))| WaiverStat {
            rule: rule.to_string(),
            total,
            used,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(text: &str) -> (String, String) {
        match parse(text) {
            Some(Ok(pair)) => pair,
            other => panic!("expected Ok waiver, got {other:?}"),
        }
    }

    #[test]
    fn parses_well_formed_waivers() {
        let (rule, reason) =
            parse_ok(" simlint: allow(panic-in-library, reason = \"ring is non-empty\")");
        assert_eq!(rule, "panic-in-library");
        assert_eq!(reason, "ring is non-empty");
        // Whitespace tolerance.
        let (rule, _) = parse_ok("simlint:allow( wall-clock ,reason=\"x\" )");
        assert_eq!(rule, "wall-clock");
    }

    #[test]
    fn non_waiver_comments_are_ignored() {
        assert!(parse("ordinary comment").is_none());
        assert!(parse("/ doc comment mentioning simlint: allow(x)").is_none());
    }

    #[test]
    fn malformed_waivers_are_errors() {
        assert!(parse("simlint: allow(panic-in-library)").is_some_and(|r| r.is_err()));
        assert!(parse("simlint: deny(wall-clock, reason = \"x\")").is_some_and(|r| r.is_err()));
        assert!(parse("simlint: allow(no-such-rule, reason = \"x\")").is_some_and(|r| r.is_err()));
        assert!(parse("simlint: allow(unused-waiver, reason = \"x\")").is_some_and(|r| r.is_err()));
        assert!(parse("simlint: allow(wall-clock, reason = \"  \")").is_some_and(|r| r.is_err()));
    }

    #[test]
    fn own_line_waiver_targets_next_code_line() {
        let src = "// simlint: allow(wall-clock, reason = \"startup stamp\")\n\nlet t = Instant::now();\n";
        let lexed = lex(src);
        let mut diags = Vec::new();
        let ws = collect("crates/simcore/src/x.rs", &lexed, &mut diags);
        assert!(diags.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].target, Some(3));
    }

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let src = "let t = Instant::now(); // simlint: allow(wall-clock, reason = \"stamp\")\n";
        let lexed = lex(src);
        let mut diags = Vec::new();
        let ws = collect("x.rs", &lexed, &mut diags);
        assert_eq!(ws[0].target, Some(1));
    }

    #[test]
    fn unused_waiver_is_reported() {
        let src = "// simlint: allow(wall-clock, reason = \"nothing here\")\nlet x = 1;\n";
        let lexed = lex(src);
        let mut diags = Vec::new();
        let mut ws = collect("x.rs", &lexed, &mut diags);
        apply(&mut diags, &mut ws);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-waiver");
        assert_eq!(diags[0].line, 1);
    }
}
