//! Fixture: the waiver machinery policing itself — one honest waiver, one
//! unused, one malformed, one naming an unknown rule, and one trying to
//! waive the waiver police. Never compiled; linted by tests/selftest.rs
//! under a synthetic `crates/collectives/src/` path.

// simlint: allow(unordered-container, reason = "fixture: order never observed")
use std::collections::HashMap;

// simlint: allow(wall-clock, reason = "fixture: nothing on this line reads a clock")
pub type Table = HashMap<u64, u64>;

// simlint: allow(unordered-container)
// simlint: allow(no-such-rule, reason = "unknown rule id")
// simlint: allow(bad-waiver, reason = "cannot waive the waiver police")
pub const N: usize = 3;
