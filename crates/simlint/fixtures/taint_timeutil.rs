//! Fixture: a wall-clock read laundered through two helper hops. Never
//! compiled — linted by tests/selftest.rs under a synthetic
//! `crates/fabric/src/timeutil.rs` path. The wall-clock token rule flags
//! `Instant::now` here; the taint selftest proves the *chain* into the
//! sink file is visible only to the dataflow pass.

pub fn raw_instant() -> u64 {
    let t0 = std::time::Instant::now();
    drop(t0);
    0
}

pub fn wall_ns() -> u64 {
    raw_instant() + 1
}

pub fn stamp_coarse_ms() -> u64 {
    wall_ns() / 1_000_000
}
