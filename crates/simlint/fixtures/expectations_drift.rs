//! Fixture: a KNOWN_METRICS list with one stale entry and one missing.
//! Never compiled; linted by tests/selftest.rs under the real
//! `crates/bench/src/expectations.rs` path so metric-coverage engages.

pub static KNOWN_METRICS: &[&str] = &["fixture.shared", "fixture.stale"];
