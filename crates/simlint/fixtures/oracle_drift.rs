//! Fixture: two Oracle impls, one forgotten by the registration wiring —
//! it compiles fine and silently watches nothing. Never compiled — linted
//! by tests/selftest.rs under a synthetic `crates/simcore/src/` path.

pub struct Counted;
pub struct Forgotten;

impl Oracle for Counted {
    fn name(&self) -> &'static str {
        "counted"
    }
}

impl Oracle for Forgotten {
    fn name(&self) -> &'static str {
        "forgotten"
    }
}

pub fn wire(hub: &OracleHub) {
    hub.register(Box::new(Counted));
}
