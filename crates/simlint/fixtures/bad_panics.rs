//! Fixture: panicking value extraction in library code. Never compiled —
//! linted by tests/selftest.rs under a synthetic `crates/trainsim/src/` path.

pub fn pick(xs: &[u64]) -> u64 {
    let first = xs.first().unwrap();
    let last = xs.last().expect("non-empty");
    if first > last {
        panic!("unsorted");
    }
    match xs.len() {
        0 => unreachable!(),
        1 => todo!(),
        _ => first + last,
    }
}
