//! Fixture: the same hazardous patterns, but gated behind `#[cfg(test)]` —
//! simlint must report nothing here. Never compiled; linted by
//! tests/selftest.rs under a synthetic `crates/fabric/src/` path.

pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scratch_maps_and_unwraps_are_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1u64, double(2));
        assert_eq!(m.remove(&1).unwrap(), 4);
        if m.remove(&1).is_some() {
            panic!("empty after remove");
        }
    }
}
