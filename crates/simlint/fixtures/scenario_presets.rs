//! Fixture: the preset registry as the preset-exists rule sees it — any
//! `fig16*`-shaped string in this file counts as a defined preset. Never
//! compiled; linted by tests/selftest.rs under the real
//! `crates/trainsim/src/scenario.rs` path.

pub fn presets() -> &'static [&'static str] {
    &["fig16a", "fig16d-2to1"]
}
