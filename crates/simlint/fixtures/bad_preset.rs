//! Fixture: a test naming a preset the scenario registry does not define.
//! Never compiled; linted by tests/selftest.rs under a synthetic
//! `crates/trainsim/tests/` path.

#[test]
fn runs_the_known_and_the_phantom_preset() {
    let known = "fig16a";
    let phantom = "fig16-bogus";
    assert_ne!(known, phantom);
}
