//! Fixture: a metrics module whose constants drifted from KNOWN_METRICS.
//! Never compiled; linted by tests/selftest.rs under the real
//! `crates/simcore/src/metrics.rs` path so the metric-coverage rule engages.

pub mod name {
    pub const RECORDED: &str = "fixture.recorded";
    pub const SHARED: &str = "fixture.shared";
}
