//! Fixture: per-iteration heap allocation in the event-dispatch hot path.
//! Never compiled — linted by tests/selftest.rs under a synthetic
//! `crates/simcore/src/sim.rs` path, which is on the hot-path allowlist.

pub fn drain(batches: &[usize]) -> usize {
    let mut total = 0;
    for n in batches {
        let scratch = Vec::new();
        let boxed = Box::new(*n);
        total += scratch.len() + *boxed;
    }
    while total > 128 {
        let halves: Vec<usize> = Vec::new();
        total -= halves.len() + 1;
    }
    // Outside any loop: hoisted allocations are fine.
    let hoisted: Vec<usize> = Vec::new();
    total + hoisted.len()
}

impl Clone for Wrapper {
    // `impl ... for ...` must not be mistaken for a loop header.
    fn clone(&self) -> Self {
        Wrapper(Box::new(*self.0))
    }
}

pub struct Wrapper(Box<usize>);
