//! Fixture: a metrics sink three call hops from `Instant::now`. No clock
//! token appears in this file, so every per-file rule sees nothing — only
//! the determinism-taint dataflow pass reports it, with the full
//! source→sink call chain. Never compiled — linted by tests/selftest.rs
//! under a synthetic `crates/trainsim/src/` path.

use coarse_fabric::timeutil::stamp_coarse_ms;

pub fn record_tick(m: &M) {
    m.observe("tick.latency_ms", stamp_coarse_ms() as f64);
}
