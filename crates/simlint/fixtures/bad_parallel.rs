//! Fixture: shared-mutable-state constructs the parallel-readiness audit
//! must flag. Never compiled — linted by tests/selftest.rs under a
//! synthetic `crates/simcore/src/` path.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

static mut GLOBAL_TICKS: u64 = 0;

pub struct Cache {
    warm: RefCell<u64>,
}

pub static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

// simlint: allow(parallel-ready, reason = "fixture: waived unsafe site proving the audit is waivable per-site")
pub unsafe fn poke() {
    GLOBAL_TICKS += 1;
}
