//! Fixture: unordered containers in a simulation crate. Never compiled —
//! linted by tests/selftest.rs under a synthetic `crates/fabric/src/` path.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    entries: HashMap<u64, String>,
    seen: HashSet<u64>,
}
