//! Fixture: schema strings — one re-spelled beside its declaring const,
//! one declared nowhere at all. Never compiled — linted by
//! tests/selftest.rs under a synthetic `crates/collectives/src/` path.

pub const DEMO_SCHEMA: &str = "coarse.demo-report/v1";

pub fn tag() -> &'static str {
    "coarse.demo-report/v1"
}

pub fn orphan_tag() -> &'static str {
    "coarse.orphan-report/v1"
}
