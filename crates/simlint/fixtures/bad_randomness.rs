//! Fixture: ambient (OS-seeded) randomness outside crates/bench. Never
//! compiled — linted by tests/selftest.rs under a synthetic
//! `crates/core/src/` path.

use std::collections::hash_map::RandomState;

pub fn ambient_seed() -> u64 {
    let _state = RandomState::new();
    let mut rng = thread_rng();
    rng.next_u64()
}
