//! Fixture: a DISPATCH_LABELS table with an orphan entry no model emits.
//! Never compiled — linted by tests/selftest.rs under the real
//! `crates/simcore/src/prof.rs` path so the label-registered rule engages.

pub const DISPATCH_LABELS: &[&str] = &["known.label", "phantom.orphan"];
