//! Fixture: an event_label impl returning a string missing from the
//! profiler's DISPATCH_LABELS alphabet. Never compiled — linted by
//! tests/selftest.rs under a synthetic `crates/trainsim/src/` path.

impl Model for Demo {
    fn event_label(&self, ev: &Ev) -> &'static str {
        match ev {
            Ev::Known => "known.label",
            Ev::Ghost => "ghost.label",
        }
    }
}
