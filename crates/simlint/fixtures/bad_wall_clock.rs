//! Fixture: host-clock reads outside crates/bench. Never compiled — linted
//! by tests/selftest.rs under a synthetic `crates/cci/src/` path.

use std::time::{SystemTime, UNIX_EPOCH};

pub fn stamp_ms() -> u128 {
    let t0 = std::time::Instant::now();
    let wall = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let _ = t0.elapsed();
    wall
}
