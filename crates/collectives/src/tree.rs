//! Tree allreduce: the latency-optimal alternative to the ring.
//!
//! A ring needs `2(p−1)` sequential steps; a binomial reduce-broadcast tree
//! needs `2⌈log₂ p⌉` rounds but moves the *whole* payload on every hop.
//! Small, latency-critical payloads therefore favor the tree while large
//! payloads favor the ring — the same size-dependence COARSE's tensor
//! routing exploits for proxy selection (§III-E). The crossover is measured
//! in `crossover_payload` and exercised by the ablation tests.

use coarse_fabric::device::DeviceId;
use coarse_fabric::engine::{TransferEngine, TransferError};
use coarse_fabric::topology::LinkMask;
use coarse_simcore::time::SimTime;
use coarse_simcore::units::ByteSize;

use crate::timed::CollectiveResult;

/// Binomial-tree allreduce: reduce up to member 0 in ⌈log₂ p⌉ rounds, then
/// broadcast back down. Each hop carries the full payload.
///
/// # Errors
///
/// Returns [`TransferError::NoRoute`] if members are not connected through
/// link classes in `mask`.
///
/// # Panics
///
/// Panics if `members` has fewer than two entries or `ready` has the wrong
/// length.
pub fn tree_allreduce(
    engine: &mut TransferEngine,
    members: &[DeviceId],
    payload: ByteSize,
    ready: &[SimTime],
    mask: LinkMask,
) -> Result<CollectiveResult, TransferError> {
    let p = members.len();
    assert!(p >= 2, "a tree collective needs at least two members");
    assert_eq!(ready.len(), p, "one ready time per member");
    let start = ready.iter().copied().fold(SimTime::ZERO, SimTime::max);

    // Reduce phase: in round r, member i (with i mod 2^(r+1) == 2^r) sends
    // to member i - 2^r.
    let mut done = vec![start; p];
    let mut stride = 1usize;
    while stride < p {
        let mut next_done = done.clone();
        let mut i = stride;
        while i < p {
            let parent = i - stride;
            let rec = engine.transfer_masked(
                members[i],
                members[parent],
                payload,
                done[i].max(done[parent]),
                mask,
            )?;
            next_done[parent] = next_done[parent].max(rec.end);
            i += stride * 2;
        }
        done = next_done;
        stride *= 2;
    }

    // Broadcast phase: mirror of the reduce.
    let mut avail = vec![SimTime::MAX; p];
    avail[0] = done[0];
    let mut stride = stride / 2;
    while stride >= 1 {
        let mut i = stride;
        while i < p {
            let parent = i - stride;
            let rec = engine.transfer_masked(
                members[parent],
                members[i],
                payload,
                avail[parent],
                mask,
            )?;
            avail[i] = rec.end;
            i += stride * 2;
        }
        if stride == 1 {
            break;
        }
        stride /= 2;
    }
    let end = avail.into_iter().fold(SimTime::ZERO, SimTime::max);
    Ok(CollectiveResult {
        start,
        end,
        payload,
    })
}

/// Finds the smallest payload (among `candidates`, ascending) at which the
/// ring beats the tree on the given membership, or `None` if the tree wins
/// throughout. Each measurement runs on a fresh engine.
pub fn crossover_payload(
    make_engine: impl Fn() -> TransferEngine,
    members: &[DeviceId],
    candidates: &[ByteSize],
    mask: LinkMask,
) -> Option<ByteSize> {
    use crate::timed::ring_allreduce;
    use coarse_cci::synccore::RingDirection;
    let ready = vec![SimTime::ZERO; members.len()];
    candidates.iter().copied().find(|&size| {
        let mut e1 = make_engine();
        let ring = ring_allreduce(&mut e1, members, size, &ready, RingDirection::Forward, mask)
            // simlint: allow(panic-in-library, reason = "documented # Panics contract: crossover_payload measures caller-supplied connected topologies")
            .expect("connected");
        let mut e2 = make_engine();
        // simlint: allow(panic-in-library, reason = "documented # Panics contract: crossover_payload measures caller-supplied connected topologies")
        let tree = tree_allreduce(&mut e2, members, size, &ready, mask).expect("connected");
        ring.elapsed() <= tree.elapsed()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timed::ring_allreduce;
    use coarse_cci::synccore::RingDirection;
    use coarse_fabric::machines::{aws_v100, PartitionScheme};
    use coarse_fabric::topology::LinkClass;

    const CCI_ONLY: LinkMask = LinkMask::only(LinkClass::Cci);

    fn cci_machine() -> (coarse_fabric::machines::Machine, Vec<DeviceId>) {
        let mut m = aws_v100();
        let part = m.partition(PartitionScheme::OneToOne);
        // A full mesh: tree hops are not ring-adjacent.
        m.augment_cci_mesh(&part.mem_devices);
        let devs = part.mem_devices.clone();
        (m, devs)
    }

    #[test]
    fn tree_completes_and_scales_with_payload() {
        let (m, devs) = cci_machine();
        let ready = vec![SimTime::ZERO; devs.len()];
        let mut e = TransferEngine::new(m.topology().clone());
        let small = tree_allreduce(&mut e, &devs, ByteSize::kib(4), &ready, CCI_ONLY).unwrap();
        let mut e2 = TransferEngine::new(m.topology().clone());
        let large = tree_allreduce(&mut e2, &devs, ByteSize::mib(64), &ready, CCI_ONLY).unwrap();
        assert!(large.elapsed() > small.elapsed() * 100);
    }

    #[test]
    fn tree_wins_small_ring_wins_large() {
        let (m, devs) = cci_machine();
        let ready = vec![SimTime::ZERO; devs.len()];
        // Small payload: the ring's 6 latency-bound steps lose to the
        // tree's 4.
        let tiny = ByteSize::bytes(256);
        let mut e1 = TransferEngine::new(m.topology().clone());
        let ring_s = ring_allreduce(
            &mut e1,
            &devs,
            tiny,
            &ready,
            RingDirection::Forward,
            CCI_ONLY,
        )
        .unwrap();
        let mut e2 = TransferEngine::new(m.topology().clone());
        let tree_s = tree_allreduce(&mut e2, &devs, tiny, &ready, CCI_ONLY).unwrap();
        assert!(
            tree_s.elapsed() < ring_s.elapsed(),
            "tree {:?} must beat ring {:?} on tiny payloads",
            tree_s.elapsed(),
            ring_s.elapsed()
        );
        // Large payload: the ring's 2(p-1)/p bytes-per-link beat the tree's
        // full-payload hops.
        let big = ByteSize::mib(64);
        let mut e3 = TransferEngine::new(m.topology().clone());
        let ring_l = ring_allreduce(
            &mut e3,
            &devs,
            big,
            &ready,
            RingDirection::Forward,
            CCI_ONLY,
        )
        .unwrap();
        let mut e4 = TransferEngine::new(m.topology().clone());
        let tree_l = tree_allreduce(&mut e4, &devs, big, &ready, CCI_ONLY).unwrap();
        assert!(
            ring_l.elapsed() < tree_l.elapsed(),
            "ring {:?} must beat tree {:?} on large payloads",
            ring_l.elapsed(),
            tree_l.elapsed()
        );
    }

    #[test]
    fn crossover_exists_and_is_monotone() {
        let (m, devs) = cci_machine();
        let candidates: Vec<ByteSize> = (8..=26).map(|p| ByteSize::bytes(1 << p)).collect();
        let topo = m.topology().clone();
        let crossover = crossover_payload(
            || TransferEngine::new(topo.clone()),
            &devs,
            &candidates,
            CCI_ONLY,
        )
        .expect("a crossover point exists");
        assert!(crossover > ByteSize::bytes(256));
        assert!(crossover < ByteSize::mib(64));
    }

    #[test]
    fn tree_handles_non_power_of_two() {
        let (m, devs) = cci_machine();
        let three = &devs[..3];
        let ready = vec![SimTime::ZERO; 3];
        let mut e = TransferEngine::new(m.topology().clone());
        let r = tree_allreduce(&mut e, three, ByteSize::mib(1), &ready, CCI_ONLY).unwrap();
        assert!(r.end > r.start);
    }

    #[test]
    fn tree_respects_ready_times() {
        let (m, devs) = cci_machine();
        let mut ready = vec![SimTime::ZERO; devs.len()];
        ready[2] = SimTime::from_nanos(1_000_000);
        let mut e = TransferEngine::new(m.topology().clone());
        let r = tree_allreduce(&mut e, &devs, ByteSize::kib(64), &ready, CCI_ONLY).unwrap();
        assert_eq!(r.start, SimTime::from_nanos(1_000_000));
    }
}
