//! # coarse-collectives
//!
//! Collective communication for the COARSE reproduction:
//!
//! - [`functional`] — untimed reference reductions (numerical oracles);
//! - [`timed`] — fabric-scheduled ring allreduce (the NCCL/MPI baseline and
//!   its blocking-synchronization semantics), the near-memory sync-core
//!   group collective with alternating ring directions, and a hierarchical
//!   multi-node allreduce;
//! - [`tree`] — the latency-optimal binomial-tree alternative, with the
//!   ring/tree crossover measurement.

#![warn(missing_docs)]

pub mod functional;
pub mod timed;
pub mod tree;

pub use timed::{
    hierarchical_allreduce, ring_allreduce, ring_bandwidth_utilization, sync_core_allreduce,
    sync_waits, CollectiveResult,
};
pub use tree::{crossover_payload, tree_allreduce};
