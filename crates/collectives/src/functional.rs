//! Reference (untimed) collective implementations, used as numerical
//! oracles for the sync-core and pipeline paths.

/// Elementwise sum across per-member buffers.
///
/// # Panics
///
/// Panics if `inputs` is empty or lengths differ.
pub fn allreduce_sum(inputs: &[Vec<f32>]) -> Vec<f32> {
    assert!(!inputs.is_empty(), "allreduce needs at least one input");
    let len = inputs[0].len();
    assert!(
        inputs.iter().all(|v| v.len() == len),
        "all inputs must have equal length"
    );
    let mut out = vec![0.0f32; len];
    for v in inputs {
        for (a, b) in out.iter_mut().zip(v) {
            *a += *b;
        }
    }
    out
}

/// Elementwise mean across per-member buffers (parameter averaging).
///
/// # Panics
///
/// Panics if `inputs` is empty or lengths differ.
pub fn allreduce_mean(inputs: &[Vec<f32>]) -> Vec<f32> {
    let mut sum = allreduce_sum(inputs);
    let inv = 1.0 / inputs.len() as f32;
    for x in &mut sum {
        *x *= inv;
    }
    sum
}

/// Reduce-scatter: member `i` receives the fully reduced `i`-th segment.
/// Segments differ in size by at most one element.
///
/// # Panics
///
/// Panics if `inputs` is empty or lengths differ.
pub fn reduce_scatter(inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let sum = allreduce_sum(inputs);
    let n = inputs.len();
    let len = sum.len();
    (0..n).map(|k| sum[segment(len, n, k)].to_vec()).collect()
}

/// All-gather: concatenates per-member segments into the full buffer on
/// every member.
pub fn all_gather(segments: &[Vec<f32>]) -> Vec<f32> {
    segments.iter().flatten().copied().collect()
}

/// The standard balanced segment split used by ring collectives.
pub fn segment(len: usize, n: usize, k: usize) -> std::ops::Range<usize> {
    let base = len / n;
    let rem = len % n;
    let start = k * base + k.min(rem);
    start..start + base + usize::from(k < rem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let inputs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(allreduce_sum(&inputs), vec![4.0, 6.0]);
        assert_eq!(allreduce_mean(&inputs), vec![2.0, 3.0]);
    }

    #[test]
    fn reduce_scatter_then_gather_is_allreduce() {
        let inputs: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..37).map(|j| (i * j) as f32).collect())
            .collect();
        let scattered = reduce_scatter(&inputs);
        assert_eq!(all_gather(&scattered), allreduce_sum(&inputs));
    }

    #[test]
    fn segments_tile_exactly() {
        for len in [0usize, 1, 7, 64, 100] {
            for n in [1usize, 2, 3, 5, 8] {
                let mut covered = 0;
                for k in 0..n {
                    let r = segment(len, n, k);
                    assert_eq!(r.start, covered, "segments must be contiguous");
                    covered = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn matches_sync_core_group() {
        use coarse_cci::synccore::{RingDirection, SyncGroup};
        let inputs: Vec<Vec<f32>> = (0..4)
            .map(|i| {
                (0..101)
                    .map(|j| ((i + 1) * (j + 3)) as f32 * 0.25)
                    .collect()
            })
            .collect();
        let mut g = SyncGroup::new(4, 32, RingDirection::Forward);
        let (ring_result, _) = g.allreduce_sum(&inputs);
        assert_eq!(ring_result, allreduce_sum(&inputs));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_inputs_rejected() {
        let _ = allreduce_sum(&[]);
    }
}
