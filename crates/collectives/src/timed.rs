//! Timed collectives over the fabric: ring allreduce (the NCCL / MPI
//! baseline), the near-memory sync-core group collective, and a hierarchical
//! multi-node variant.
//!
//! All of these schedule real transfers on a
//! [`TransferEngine`], so collectives
//! contend with any other traffic in flight and the two directions of each
//! link are priced independently.

use coarse_fabric::device::DeviceId;
use coarse_fabric::engine::{TransferEngine, TransferError};
use coarse_fabric::topology::LinkMask;
use coarse_simcore::critpath::{class as crit_class, NodeId};
use coarse_simcore::metrics::name as metric;
use coarse_simcore::prof::region as prof_region;
use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::trace::category;
use coarse_simcore::units::ByteSize;

use coarse_cci::synccore::RingDirection;

/// Timing of one completed collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveResult {
    /// When the collective began (all members ready).
    pub start: SimTime,
    /// When the last member finished.
    pub end: SimTime,
    /// Logical payload synchronized.
    pub payload: ByteSize,
}

impl CollectiveResult {
    /// Wall-clock duration of the collective.
    pub fn elapsed(&self) -> SimDuration {
        self.end - self.start
    }

    /// Effective per-member synchronization rate in bytes/sec: payload over
    /// elapsed time.
    ///
    /// # Panics
    ///
    /// Panics if the collective took zero time.
    pub fn rate_bytes_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        assert!(secs > 0.0, "zero-duration collective");
        self.payload.as_f64() / secs
    }
}

/// Why a collective could not run. Shape violations that previous revisions
/// asserted on are now first-class errors, in the same direction as
/// `Scenario::validate`: callers building rings from dynamic topology state
/// (failover, dropouts) get a diagnosable error instead of an abort.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveError {
    /// A fabric transfer failed underneath the collective.
    Transfer(TransferError),
    /// The collective needs more members than it was given.
    TooFewMembers {
        /// Minimum member count for this collective.
        needed: usize,
        /// Members actually supplied.
        got: usize,
    },
    /// `ready` must carry exactly one entry per member.
    ReadyLenMismatch {
        /// Members participating in the collective.
        members: usize,
        /// Ready times supplied.
        ready: usize,
    },
    /// The sync-core variant needs at least one group.
    ZeroGroups,
    /// The CCI wire amplification factor cannot deflate traffic.
    WireFactorBelowOne {
        /// The offending factor.
        got: f64,
    },
    /// Hierarchical allreduce needs at least one node ring.
    NoNodes,
    /// Hierarchical allreduce needs equally sized, non-empty node rings.
    UnevenNodeRings,
}

impl From<TransferError> for CollectiveError {
    fn from(e: TransferError) -> Self {
        CollectiveError::Transfer(e)
    }
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::Transfer(e) => write!(f, "transfer failed: {e}"),
            CollectiveError::TooFewMembers { needed, got } => {
                write!(f, "collective needs at least {needed} members, got {got}")
            }
            CollectiveError::ReadyLenMismatch { members, ready } => {
                write!(f, "{members} members but {ready} ready times")
            }
            CollectiveError::ZeroGroups => {
                write!(f, "sync-core collective needs at least one group")
            }
            CollectiveError::WireFactorBelowOne { got } => {
                write!(f, "wire factor must be >= 1, got {got}")
            }
            CollectiveError::NoNodes => write!(f, "hierarchical allreduce needs at least one node"),
            CollectiveError::UnevenNodeRings => {
                write!(f, "node rings must be equally sized and non-empty")
            }
        }
    }
}

impl std::error::Error for CollectiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CollectiveError::Transfer(e) => Some(e),
            _ => None,
        }
    }
}

/// The synchronization wait each member experienced before a collective
/// could begin — the cost of MPI's synchronous point (§II-B).
pub fn sync_waits(ready: &[SimTime]) -> Vec<SimDuration> {
    let start = ready.iter().copied().max().unwrap_or(SimTime::ZERO);
    ready
        .iter()
        .map(|&r| start.saturating_duration_since(r))
        .collect()
}

/// Ring allreduce across `ring` members: `2·(p−1)` synchronous steps moving
/// `payload/p` segments to the next neighbor. The collective begins only
/// when every member is ready (`max(ready)`), modeling the blocking
/// semantics of MPI/NCCL AllReduce.
///
/// `direction` selects which way segments travel; two concurrent calls with
/// opposite directions use the two link directions of each pair
/// simultaneously.
///
/// # Errors
///
/// Returns [`CollectiveError::Transfer`] if neighbors are not connected
/// through link classes in `mask`, and a shape error if `ring` has fewer than two
/// members or `ready` has the wrong length.
pub fn ring_allreduce(
    engine: &mut TransferEngine,
    ring: &[DeviceId],
    payload: ByteSize,
    ready: &[SimTime],
    direction: RingDirection,
    mask: LinkMask,
) -> Result<CollectiveResult, CollectiveError> {
    let p = ring.len();
    if p < 2 {
        return Err(CollectiveError::TooFewMembers { needed: 2, got: p });
    }
    if ready.len() != p {
        return Err(CollectiveError::ReadyLenMismatch {
            members: p,
            ready: ready.len(),
        });
    }
    let start = ready.iter().copied().fold(SimTime::ZERO, SimTime::max);
    let segment = ByteSize::bytes(payload.as_u64().div_ceil(p as u64));
    let neighbor = |i: usize| -> usize {
        match direction {
            RingDirection::Forward => (i + 1) % p,
            RingDirection::Reverse => (i + p - 1) % p,
        }
    };
    // One trace track per ring identity: every step span of this collective
    // lands on the same row, named "<phase> step k/n (dir)".
    let ring_track = engine.tracer().cloned().map(|t| {
        let name = format!(
            "sync ring {}..{} x{p}",
            engine.topology().device(ring[0]).name(),
            engine.topology().device(ring[p - 1]).name(),
        );
        (t.track(&name), t)
    });
    let metrics = engine.metrics().cloned();
    let prof = engine.profiler().cloned();
    let _prof_guard = prof.as_ref().map(|p| p.enter(prof_region::CCI_SYNC_RING));
    let critpath = engine.critpath().cloned();
    // "ring step S waited on peer P": each step node depends on every
    // member's transfer of the step plus the previous step node; the
    // barrier node owns the wait for the last-ready member and adopts any
    // caller-staged arrival dependencies (push completions).
    let mut carry: Vec<NodeId> = engine.take_crit_deps();
    let mut prev_step: Option<NodeId> = None;
    if let Some(cp) = &critpath {
        let earliest = ready.iter().copied().min().unwrap_or(SimTime::ZERO);
        if start > earliest {
            prev_step = Some(cp.span(
                crit_class::SYNC,
                "collective barrier",
                earliest,
                start,
                &carry,
            ));
            carry.clear();
        }
    }
    let steps = 2 * (p - 1);
    let mut step_start = start;
    for step in 0..steps {
        let mut step_end = step_start;
        // What this step waited for: the previous step on every peer (or,
        // for the first step, the barrier / staged arrivals). These edges
        // also go onto each member transfer so the backward walk can leave
        // the fabric chain at the true enabling event.
        let waits: Vec<NodeId> = prev_step.into_iter().chain(carry.drain(..)).collect();
        let mut step_deps: Vec<NodeId> = waits.clone();
        for i in 0..p {
            let rec =
                engine.transfer_masked(ring[i], ring[neighbor(i)], segment, step_start, mask)?;
            step_end = step_end.max(rec.end);
            if let Some(cp) = &critpath {
                // Wait edges land on the transfer's *entry* node (the first
                // staging leg when the route stages through the host), so
                // the walk can leave the fabric chain at the step's true
                // enabling event; the step node still waits on delivery.
                if let Some(n) = engine.last_crit_entry_node() {
                    for &d in &waits {
                        cp.add_dep(n, d);
                    }
                }
                step_deps.extend(engine.last_crit_node());
            }
        }
        if let Some(m) = &metrics {
            m.inc(metric::RING_STEPS, 1);
            m.inc(metric::RING_BYTES, segment.as_u64() * p as u64);
        }
        if let Some(p) = &prof {
            p.count(prof_region::CCI_SYNC_RING, 1);
        }
        if let Some((track, tracer)) = &ring_track {
            let phase = if step < p - 1 {
                "reduce-scatter"
            } else {
                "all-gather"
            };
            let dir = match direction {
                RingDirection::Forward => "fwd",
                RingDirection::Reverse => "rev",
            };
            tracer.span(
                step_start,
                step_end,
                category::SYNC,
                *track,
                &format!("{phase} step {}/{steps} ({dir})", step + 1),
            );
        }
        if let Some(cp) = &critpath {
            prev_step = Some(cp.span(
                crit_class::SYNC,
                format!("ring step {}/{steps}", step + 1),
                step_start,
                step_end,
                &step_deps,
            ));
        }
        step_start = step_end;
    }
    if let Some(n) = prev_step {
        engine.note_crit_node(n);
    }
    Ok(CollectiveResult {
        start,
        end: step_start,
        payload,
    })
}

/// The sync-core group collective of §IV-A: the payload is split across
/// `groups` rings over the memory devices, adjacent groups running in
/// opposite directions so device-pair links are driven bidirectionally
/// (Fig. 11b). `wire_factor ≥ 1` inflates on-wire bytes for CCI protocol
/// efficiency and coherence overhead.
///
/// # Errors
///
/// Returns [`CollectiveError::Transfer`] if the devices are not connected,
/// and a shape error if `devices` has fewer than two members, `groups` is
/// zero, or `wire_factor < 1`.
pub fn sync_core_allreduce(
    engine: &mut TransferEngine,
    devices: &[DeviceId],
    payload: ByteSize,
    groups: usize,
    ready: SimTime,
    wire_factor: f64,
    mask: LinkMask,
) -> Result<CollectiveResult, CollectiveError> {
    if devices.len() < 2 {
        return Err(CollectiveError::TooFewMembers {
            needed: 2,
            got: devices.len(),
        });
    }
    if groups == 0 {
        return Err(CollectiveError::ZeroGroups);
    }
    if wire_factor < 1.0 {
        return Err(CollectiveError::WireFactorBelowOne { got: wire_factor });
    }
    let per_group =
        ByteSize::bytes(((payload.as_u64().div_ceil(groups as u64)) as f64 * wire_factor) as u64);
    let ready_vec = vec![ready; devices.len()];
    let mut end = ready;
    let record = engine.critpath().is_some();
    let mut group_nodes: Vec<NodeId> = Vec::new();
    // Groups run concurrently: each schedules its own transfers starting at
    // `ready`; contention on shared links is resolved by the engine.
    for g in 0..groups {
        let result = ring_allreduce(
            engine,
            devices,
            per_group,
            &ready_vec,
            RingDirection::for_group(g),
            mask,
        )?;
        end = end.max(result.end);
        if record {
            if let Some(n) = engine.last_crit_node() {
                group_nodes.push(n);
            }
        }
    }
    // Join node: the collective completes only when the slowest group does.
    if let Some(cp) = engine.critpath().cloned() {
        if !group_nodes.is_empty() {
            let join = cp.span(
                crit_class::SYNC,
                format!("sync-core join x{groups}"),
                end,
                end,
                &group_nodes,
            );
            engine.note_crit_node(join);
        }
    }
    Ok(CollectiveResult {
        start: ready,
        end,
        payload,
    })
}

/// One ring phase: `steps` synchronous rounds in which every member sends
/// `segment` to its ring successor.
fn ring_phase(
    engine: &mut TransferEngine,
    ring: &[DeviceId],
    segment: ByteSize,
    steps: usize,
    mut step_start: SimTime,
    mask: LinkMask,
) -> Result<SimTime, TransferError> {
    let p = ring.len();
    let ring_track = engine.tracer().cloned().map(|t| {
        let name = format!(
            "hier ring {}..{} x{p}",
            engine.topology().device(ring[0]).name(),
            engine.topology().device(ring[p - 1]).name(),
        );
        (t.track(&name), t)
    });
    let metrics = engine.metrics().cloned();
    let prof = engine.profiler().cloned();
    let _prof_guard = prof.as_ref().map(|p| p.enter(prof_region::CCI_SYNC_RING));
    let critpath = engine.critpath().cloned();
    let mut carry: Vec<NodeId> = engine.take_crit_deps();
    let mut prev_step: Option<NodeId> = None;
    for step in 0..steps {
        let mut step_end = step_start;
        // Same wait edges as in [`ring_allreduce`]: onto the step node and
        // every member transfer, so the walk can leave the fabric chain.
        let waits: Vec<NodeId> = prev_step.into_iter().chain(carry.drain(..)).collect();
        let mut step_deps: Vec<NodeId> = waits.clone();
        for i in 0..p {
            let rec =
                engine.transfer_masked(ring[i], ring[(i + 1) % p], segment, step_start, mask)?;
            step_end = step_end.max(rec.end);
            if let Some(cp) = &critpath {
                // Wait edges land on the transfer's *entry* node (the first
                // staging leg when the route stages through the host), so
                // the walk can leave the fabric chain at the step's true
                // enabling event; the step node still waits on delivery.
                if let Some(n) = engine.last_crit_entry_node() {
                    for &d in &waits {
                        cp.add_dep(n, d);
                    }
                }
                step_deps.extend(engine.last_crit_node());
            }
        }
        if let Some(m) = &metrics {
            m.inc(metric::RING_STEPS, 1);
            m.inc(metric::RING_BYTES, segment.as_u64() * p as u64);
        }
        if let Some(p) = &prof {
            p.count(prof_region::CCI_SYNC_RING, 1);
        }
        if let Some((track, tracer)) = &ring_track {
            tracer.span(
                step_start,
                step_end,
                category::SYNC,
                *track,
                &format!("phase step {}/{steps}", step + 1),
            );
        }
        if let Some(cp) = &critpath {
            prev_step = Some(cp.span(
                crit_class::SYNC,
                format!("phase step {}/{steps}", step + 1),
                step_start,
                step_end,
                &step_deps,
            ));
        }
        step_start = step_end;
    }
    if let Some(n) = prev_step {
        engine.note_crit_node(n);
    }
    Ok(step_start)
}

/// Hierarchical multi-node allreduce: intra-node ring reduce-scatter, then
/// per-segment rings across nodes (every member exchanges its reduced
/// segment with its peers on the other nodes, all sharing the network
/// concurrently), then an intra-node ring all-gather — the standard
/// bandwidth-optimal decomposition.
///
/// # Errors
///
/// Returns [`CollectiveError::Transfer`] on connectivity failures, and a
/// shape error if `node_rings` is empty, nodes have unequal or zero member
/// counts, or `ready` does not match the total member count (flattened node
/// order).
pub fn hierarchical_allreduce(
    engine: &mut TransferEngine,
    node_rings: &[Vec<DeviceId>],
    payload: ByteSize,
    ready: &[SimTime],
    mask: LinkMask,
) -> Result<CollectiveResult, CollectiveError> {
    if node_rings.is_empty() {
        return Err(CollectiveError::NoNodes);
    }
    let local = node_rings[0].len();
    if local == 0 || node_rings.iter().any(|r| r.len() != local) {
        return Err(CollectiveError::UnevenNodeRings);
    }
    let total: usize = node_rings.iter().map(Vec::len).sum();
    if ready.len() != total {
        return Err(CollectiveError::ReadyLenMismatch {
            members: total,
            ready: ready.len(),
        });
    }
    let start = ready.iter().copied().fold(SimTime::ZERO, SimTime::max);
    let nodes = node_rings.len();

    // Phase 1: intra-node reduce-scatter (p−1 steps of payload/p).
    let critpath = engine.critpath().cloned();
    let staged = engine.take_crit_deps();
    let mut phase_nodes: Vec<NodeId> = Vec::new();
    let segment = ByteSize::bytes(payload.as_u64().div_ceil(local as u64));
    let mut phase1_end = start;
    let mut p1_nodes: Vec<NodeId> = Vec::new();
    if local >= 2 {
        for ring in node_rings {
            // Every node's first intra-node step adopts the caller-staged
            // arrival dependencies.
            engine.stage_crit_deps(&staged);
            let end = ring_phase(engine, ring, segment, local - 1, start, mask)?;
            phase1_end = phase1_end.max(end);
            p1_nodes.extend(engine.last_crit_node());
        }
        phase_nodes.extend_from_slice(&p1_nodes);
    }

    // Phase 2: cross-node allreduce of each segment, one ring per member
    // slot, all contending for the network concurrently. Each cross ring
    // starts at phase1_end — a barrier over every node's reduce-scatter —
    // so it depends on all phase-1 ring tails (or, when no intra-node
    // phase ran, on the caller-staged arrivals directly).
    let mut phase2_end = phase1_end;
    let mut p2_nodes: Vec<NodeId> = Vec::new();
    if nodes >= 2 {
        let sub = ByteSize::bytes(segment.as_u64().div_ceil(nodes as u64));
        for j in 0..local {
            if local < 2 {
                engine.stage_crit_deps(&staged);
            } else {
                engine.stage_crit_deps(&p1_nodes);
            }
            let cross: Vec<DeviceId> = node_rings.iter().map(|r| r[j]).collect();
            let end = ring_phase(engine, &cross, sub, 2 * (nodes - 1), phase1_end, mask)?;
            phase2_end = phase2_end.max(end);
            p2_nodes.extend(engine.last_crit_node());
        }
        phase_nodes.extend_from_slice(&p2_nodes);
    }

    // Phase 3: intra-node all-gather (p−1 steps of payload/p), gated on
    // every cross-node ring (phase2_end is their barrier).
    let prev_phase = if p2_nodes.is_empty() {
        &p1_nodes
    } else {
        &p2_nodes
    };
    let mut end = phase2_end;
    if local >= 2 {
        for ring in node_rings {
            engine.stage_crit_deps(prev_phase);
            let e = ring_phase(engine, ring, segment, local - 1, phase2_end, mask)?;
            end = end.max(e);
            phase_nodes.extend(engine.last_crit_node());
        }
    }
    if let Some(cp) = &critpath {
        // Join every phase ring so the path can route into whichever one
        // actually finished last.
        let join = cp.span(
            crit_class::SYNC,
            format!("hierarchical join x{}", node_rings.len()),
            end,
            end,
            &phase_nodes,
        );
        engine.note_crit_node(join);
    }
    Ok(CollectiveResult {
        start,
        end,
        payload,
    })
}

/// The bandwidth-utilization figure the paper quotes for ring AllReduce on
/// DGX-1 (§II-B, "as low as 34%"): achieved algorithmic bandwidth
/// `2·(p−1)/p · payload / elapsed` over the peak bandwidth of the slowest
/// link used.
pub fn ring_bandwidth_utilization(
    result: &CollectiveResult,
    members: usize,
    peak_link_bytes_per_sec: f64,
) -> f64 {
    let algo_bytes = 2.0 * (members as f64 - 1.0) / members as f64 * result.payload.as_f64();
    algo_bytes / result.elapsed().as_secs_f64() / peak_link_bytes_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_fabric::machines::{aws_v100, sdsc_p100, PartitionScheme};
    use coarse_fabric::topology::LinkClass;

    const PCIE_ONLY: LinkMask = LinkMask::ALL.without(LinkClass::NvLink);
    const ALL_LINKS: LinkMask = LinkMask::ALL;

    #[test]
    fn critpath_records_barrier_and_ring_steps() {
        use coarse_simcore::critpath::{class, CritPath};

        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        let mut e = TransferEngine::new(m.into_topology());
        let cp = CritPath::new();
        e.set_critpath(cp.clone());
        let mut ready = vec![SimTime::ZERO; gpus.len()];
        ready[0] = SimTime::from_nanos(5_000); // one straggler
        let r = ring_allreduce(
            &mut e,
            &gpus,
            ByteSize::mib(4),
            &ready,
            RingDirection::Forward,
            PCIE_ONLY,
        )
        .unwrap();
        let sink = e.last_crit_node().expect("final ring step node");
        assert_eq!(cp.node_end(sink), r.end);
        cp.mark_iteration(0, sink);
        let ex = cp.analyze();
        // 2(p-1) step nodes plus the straggler barrier.
        let steps = 2 * (gpus.len() - 1) as u64;
        assert_eq!(ex.class_events[class::SYNC], steps + 1);
        assert!(ex.class_events[class::FABRIC_BUSY] >= steps);
        let total: f64 = class::ALL.iter().map(|c| ex.fraction(c)).sum();
        assert!((total - 1.0).abs() < 1e-12, "fractions sum to {total}");
    }

    #[test]
    fn critpath_recording_does_not_perturb_collectives() {
        use coarse_simcore::critpath::CritPath;

        let run = |record: bool| {
            let m = sdsc_p100();
            let gpus = m.gpus().to_vec();
            let mut e = TransferEngine::new(m.into_topology());
            if record {
                e.set_critpath(CritPath::new());
            }
            ring_allreduce(
                &mut e,
                &gpus,
                ByteSize::mib(16),
                &vec![SimTime::ZERO; gpus.len()],
                RingDirection::Forward,
                ALL_LINKS,
            )
            .unwrap()
        };
        assert_eq!(run(true), run(false), "recording must not perturb");
    }

    #[test]
    fn shape_violations_are_typed_errors() {
        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        let mut e = TransferEngine::new(m.into_topology());
        let one = &gpus[..1];
        let r = ring_allreduce(
            &mut e,
            one,
            ByteSize::mib(1),
            &[SimTime::ZERO],
            RingDirection::Forward,
            ALL_LINKS,
        );
        assert_eq!(
            r.unwrap_err(),
            CollectiveError::TooFewMembers { needed: 2, got: 1 }
        );
        let r = ring_allreduce(
            &mut e,
            &gpus,
            ByteSize::mib(1),
            &[SimTime::ZERO],
            RingDirection::Forward,
            ALL_LINKS,
        );
        assert!(matches!(r, Err(CollectiveError::ReadyLenMismatch { .. })));
        let r = sync_core_allreduce(
            &mut e,
            &gpus,
            ByteSize::mib(1),
            0,
            SimTime::ZERO,
            1.0,
            ALL_LINKS,
        );
        assert_eq!(r.unwrap_err(), CollectiveError::ZeroGroups);
        let r = sync_core_allreduce(
            &mut e,
            &gpus,
            ByteSize::mib(1),
            2,
            SimTime::ZERO,
            0.5,
            ALL_LINKS,
        );
        assert!(matches!(r, Err(CollectiveError::WireFactorBelowOne { .. })));
        let r = hierarchical_allreduce(&mut e, &[], ByteSize::mib(1), &[], ALL_LINKS);
        assert_eq!(r.unwrap_err(), CollectiveError::NoNodes);
        let uneven = vec![gpus[..2].to_vec(), gpus[..1].to_vec()];
        let r = hierarchical_allreduce(
            &mut e,
            &uneven,
            ByteSize::mib(1),
            &[SimTime::ZERO; 3],
            ALL_LINKS,
        );
        assert_eq!(r.unwrap_err(), CollectiveError::UnevenNodeRings);
    }

    #[test]
    fn ring_allreduce_waits_for_all_members() {
        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        let mut e = TransferEngine::new(m.into_topology());
        let ready = vec![
            SimTime::ZERO,
            SimTime::from_nanos(500),
            SimTime::from_nanos(10_000),
            SimTime::ZERO,
        ];
        let r = ring_allreduce(
            &mut e,
            &gpus,
            ByteSize::mib(16),
            &ready,
            RingDirection::Forward,
            PCIE_ONLY,
        )
        .unwrap();
        assert_eq!(r.start, SimTime::from_nanos(10_000));
        let waits = sync_waits(&ready);
        assert_eq!(waits[0], SimDuration::from_nanos(10_000));
        assert_eq!(waits[2], SimDuration::ZERO);
    }

    #[test]
    fn ring_time_scales_with_payload() {
        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        let mut e = TransferEngine::new(m.into_topology());
        let ready = vec![SimTime::ZERO; 4];
        let small = ring_allreduce(
            &mut e,
            &gpus,
            ByteSize::mib(4),
            &ready,
            RingDirection::Forward,
            PCIE_ONLY,
        )
        .unwrap();
        e.reset();
        let large = ring_allreduce(
            &mut e,
            &gpus,
            ByteSize::mib(64),
            &ready,
            RingDirection::Forward,
            PCIE_ONLY,
        )
        .unwrap();
        let ratio = large.elapsed().as_secs_f64() / small.elapsed().as_secs_f64();
        assert!(
            ratio > 8.0 && ratio < 24.0,
            "expected ~16x scaling, got {ratio}"
        );
    }

    const CCI_ONLY: LinkMask = LinkMask::only(LinkClass::Cci);

    #[test]
    fn opposite_direction_rings_overlap() {
        // Two rings over the dedicated CCI device fabric (Fig. 11b): same
        // direction contends on every directed link, opposite directions use
        // disjoint directed links and overlap fully.
        let mut m = aws_v100();
        let part = m.partition(PartitionScheme::OneToOne);
        m.augment_cci_ring(&part.mem_devices);
        let devs = part.mem_devices.clone();
        let ready = vec![SimTime::ZERO; devs.len()];
        let payload = ByteSize::mib(32);

        let mut e = TransferEngine::new(m.topology().clone());
        let a = ring_allreduce(
            &mut e,
            &devs,
            payload,
            &ready,
            RingDirection::Forward,
            CCI_ONLY,
        )
        .unwrap();
        let b = ring_allreduce(
            &mut e,
            &devs,
            payload,
            &ready,
            RingDirection::Forward,
            CCI_ONLY,
        )
        .unwrap();
        let same_dir_end = a.end.max(b.end);

        let mut e2 = TransferEngine::new(m.topology().clone());
        let a2 = ring_allreduce(
            &mut e2,
            &devs,
            payload,
            &ready,
            RingDirection::Forward,
            CCI_ONLY,
        )
        .unwrap();
        let b2 = ring_allreduce(
            &mut e2,
            &devs,
            payload,
            &ready,
            RingDirection::Reverse,
            CCI_ONLY,
        )
        .unwrap();
        let opp_dir_end = a2.end.max(b2.end);

        assert!(
            opp_dir_end.as_nanos() < same_dir_end.as_nanos() * 6 / 10,
            "bidirectional rings ({opp_dir_end:?}) must beat unidirectional ({same_dir_end:?})"
        );
    }

    #[test]
    fn sync_core_groups_beat_single_group() {
        let mut m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        m.augment_cci_ring(&p.mem_devices);
        let payload = ByteSize::mib(64);

        let mut e1 = TransferEngine::new(m.topology().clone());
        let one = sync_core_allreduce(
            &mut e1,
            &p.mem_devices,
            payload,
            1,
            SimTime::ZERO,
            1.0,
            CCI_ONLY,
        )
        .unwrap();
        let mut e2 = TransferEngine::new(m.topology().clone());
        let two = sync_core_allreduce(
            &mut e2,
            &p.mem_devices,
            payload,
            2,
            SimTime::ZERO,
            1.0,
            CCI_ONLY,
        )
        .unwrap();
        assert!(
            two.elapsed() < one.elapsed().mul_f64(0.7),
            "two bidirectional groups ({:?}) must beat one ({:?})",
            two.elapsed(),
            one.elapsed()
        );
    }

    #[test]
    fn wire_factor_slows_collective() {
        let m = sdsc_p100();
        let p = m.partition(PartitionScheme::OneToOne);
        let payload = ByteSize::mib(32);
        let mut e1 = TransferEngine::new(m.topology().clone());
        let clean = sync_core_allreduce(
            &mut e1,
            &p.mem_devices,
            payload,
            2,
            SimTime::ZERO,
            1.0,
            PCIE_ONLY,
        )
        .unwrap();
        let mut e2 = TransferEngine::new(m.topology().clone());
        let noisy = sync_core_allreduce(
            &mut e2,
            &p.mem_devices,
            payload,
            2,
            SimTime::ZERO,
            1.3,
            PCIE_ONLY,
        )
        .unwrap();
        assert!(noisy.elapsed() > clean.elapsed());
    }

    #[test]
    fn nvlink_ring_beats_pcie_ring_on_v100() {
        let m = aws_v100();
        let part = m.partition(PartitionScheme::OneToOne);
        let ring = m.nvlink_ring(&part.workers).expect("nvlink ring");
        let ready = vec![SimTime::ZERO; ring.len()];
        let payload = ByteSize::mib(64);
        let mut e = TransferEngine::new(m.topology().clone());
        let nv = ring_allreduce(
            &mut e,
            &ring,
            payload,
            &ready,
            RingDirection::Forward,
            ALL_LINKS,
        )
        .unwrap();
        let mut e2 = TransferEngine::new(m.topology().clone());
        let pcie = ring_allreduce(
            &mut e2,
            &part.workers,
            payload,
            &ready,
            RingDirection::Forward,
            PCIE_ONLY,
        )
        .unwrap();
        assert!(nv.elapsed() < pcie.elapsed());
    }

    #[test]
    fn hierarchical_crosses_nodes() {
        use coarse_fabric::machines::aws_v100_cluster;
        let m = aws_v100_cluster(2);
        let n0: Vec<DeviceId> = m.gpus_on_node(0)[..4].to_vec();
        let n1: Vec<DeviceId> = m.gpus_on_node(1)[..4].to_vec();
        let ready = vec![SimTime::ZERO; 8];
        let payload = ByteSize::mib(64);
        let mut e = TransferEngine::new(m.topology().clone());
        let hier =
            hierarchical_allreduce(&mut e, &[n0.clone(), n1], payload, &ready, ALL_LINKS).unwrap();
        // Single-node ring over n0 alone must be much faster than the
        // network-bound two-node collective.
        let mut e2 = TransferEngine::new(m.topology().clone());
        let single = ring_allreduce(
            &mut e2,
            &n0,
            payload,
            &ready[..4],
            RingDirection::Forward,
            ALL_LINKS,
        )
        .unwrap();
        assert!(hier.elapsed() > single.elapsed() * 2);
    }

    #[test]
    fn ring_metrics_count_steps_and_bytes() {
        use coarse_simcore::metrics::MetricRegistry;

        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        let reg = MetricRegistry::new();
        let mut e = TransferEngine::new(m.into_topology());
        e.set_metrics(reg.clone());
        let ready = vec![SimTime::ZERO; 4];
        ring_allreduce(
            &mut e,
            &gpus,
            ByteSize::mib(16),
            &ready,
            RingDirection::Forward,
            PCIE_ONLY,
        )
        .unwrap();
        let snap = reg.snapshot();
        // 2·(p−1) = 6 steps for 4 members.
        assert_eq!(snap.counter(metric::RING_STEPS), 6);
        // Each step moves one payload/p segment per member: 6 · 4MiB · 4.
        assert_eq!(
            snap.counter(metric::RING_BYTES),
            6 * 4 * ByteSize::mib(4).as_u64()
        );
        // Ring bytes flow through the fabric counters too.
        assert_eq!(
            snap.counter(metric::FABRIC_BYTES),
            snap.counter(metric::RING_BYTES)
        );
    }

    #[test]
    fn utilization_below_one() {
        let m = sdsc_p100();
        let gpus = m.gpus().to_vec();
        let mut e = TransferEngine::new(m.into_topology());
        let ready = vec![SimTime::ZERO; 4];
        let r = ring_allreduce(
            &mut e,
            &gpus,
            ByteSize::mib(64),
            &ready,
            RingDirection::Forward,
            PCIE_ONLY,
        )
        .unwrap();
        let util = ring_bandwidth_utilization(&r, 4, 13.0 * (1u64 << 30) as f64);
        assert!(util > 0.1 && util < 1.0, "utilization {util} out of range");
    }
}
