//! Property tests for the collectives layer, driven by the in-repo
//! deterministic harness.

use coarse_cci::synccore::RingDirection;
use coarse_collectives::functional;
use coarse_collectives::timed::{hierarchical_allreduce, ring_allreduce};
use coarse_collectives::tree::tree_allreduce;
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{aws_v100, aws_v100_cluster, PartitionScheme};
use coarse_fabric::topology::{LinkClass, LinkMask};
use coarse_simcore::check::{run_cases, Gen};
use coarse_simcore::prelude::*;

const CCI_ONLY: LinkMask = LinkMask::only(LinkClass::Cci);

/// Functional reduce-scatter + all-gather equals allreduce for any inputs
/// and member counts.
#[test]
fn scatter_gather_identity() {
    run_cases("scatter_gather_identity", 64, |g: &mut Gen| {
        let n = g.usize_in(1..8);
        let len = g.usize_in(0..300);
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..len).map(|_| g.f32_in(-8.0, 8.0)).collect())
            .collect();
        let scattered = functional::reduce_scatter(&inputs);
        assert_eq!(
            functional::all_gather(&scattered),
            functional::allreduce_sum(&inputs)
        );
    });
}

/// Timed ring allreduce elapsed time is monotone in payload and never
/// starts before the slowest member is ready.
#[test]
fn ring_time_monotone_and_respects_ready() {
    run_cases(
        "ring_time_monotone_and_respects_ready",
        32,
        |g: &mut Gen| {
            let small_kib = g.u64_in(1..1000);
            let factor = g.u64_in(2..16);
            let slow_ready_us = g.u64_in(0..10_000);
            let mut machine = aws_v100();
            let part = machine.partition(PartitionScheme::OneToOne);
            machine.augment_cci_ring(&part.mem_devices);
            let devs = part.mem_devices.clone();
            let mut ready = vec![SimTime::ZERO; devs.len()];
            ready[2] = SimTime::ZERO + SimDuration::from_micros(slow_ready_us);

            let mut e1 = TransferEngine::new(machine.topology().clone());
            let a = ring_allreduce(
                &mut e1,
                &devs,
                ByteSize::kib(small_kib),
                &ready,
                RingDirection::Forward,
                CCI_ONLY,
            )
            .unwrap();
            let mut e2 = TransferEngine::new(machine.topology().clone());
            let b = ring_allreduce(
                &mut e2,
                &devs,
                ByteSize::kib(small_kib * factor),
                &ready,
                RingDirection::Forward,
                CCI_ONLY,
            )
            .unwrap();
            assert!(b.elapsed() >= a.elapsed());
            assert_eq!(a.start, ready[2]);
        },
    );
}

/// Tree and ring allreduce both respect ready times and complete, for
/// arbitrary member subsets of the CCI mesh.
#[test]
fn tree_and_ring_always_complete() {
    run_cases("tree_and_ring_always_complete", 32, |g: &mut Gen| {
        let members = g.usize_in(2..5);
        let payload_kib = g.u64_in(1..4096);
        let mut machine = aws_v100();
        let part = machine.partition(PartitionScheme::OneToOne);
        machine.augment_cci_mesh(&part.mem_devices);
        let devs: Vec<_> = part.mem_devices[..members].to_vec();
        let ready = vec![SimTime::ZERO; members];
        let payload = ByteSize::kib(payload_kib);
        let mut e1 = TransferEngine::new(machine.topology().clone());
        let ring = ring_allreduce(
            &mut e1,
            &devs,
            payload,
            &ready,
            RingDirection::Forward,
            CCI_ONLY,
        )
        .unwrap();
        let mut e2 = TransferEngine::new(machine.topology().clone());
        let tree = tree_allreduce(&mut e2, &devs, payload, &ready, CCI_ONLY).unwrap();
        assert!(ring.end > ring.start);
        assert!(tree.end > tree.start);
    });
}

/// Hierarchical allreduce over a cluster is never faster than the same
/// payload's single-node intra ring (the network can only add time).
#[test]
fn hierarchy_dominated_by_network() {
    run_cases("hierarchy_dominated_by_network", 16, |g: &mut Gen| {
        let payload_mib = g.u64_in(1..64);
        let machine = aws_v100_cluster(2);
        let part = machine.partition(PartitionScheme::OneToOne);
        let n0: Vec<_> = part
            .workers
            .iter()
            .copied()
            .filter(|&w| machine.topology().device(w).node() == 0)
            .collect();
        let n1: Vec<_> = part
            .workers
            .iter()
            .copied()
            .filter(|&w| machine.topology().device(w).node() == 1)
            .collect();
        let payload = ByteSize::mib(payload_mib);
        let ready2 = vec![SimTime::ZERO; 8];
        let mut e = TransferEngine::new(machine.topology().clone());
        let hier =
            hierarchical_allreduce(&mut e, &[n0.clone(), n1], payload, &ready2, LinkMask::ALL)
                .unwrap();
        let ready1 = vec![SimTime::ZERO; 4];
        let mut e2 = TransferEngine::new(machine.topology().clone());
        let single = ring_allreduce(
            &mut e2,
            &n0,
            payload,
            &ready1,
            RingDirection::Forward,
            LinkMask::ALL,
        )
        .unwrap();
        assert!(hier.elapsed() >= single.elapsed());
    });
}
