//! Property tests for the collectives layer.

use proptest::prelude::*;

use coarse_cci::synccore::RingDirection;
use coarse_collectives::functional;
use coarse_collectives::timed::{hierarchical_allreduce, ring_allreduce};
use coarse_collectives::tree::tree_allreduce;
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{aws_v100, aws_v100_cluster, PartitionScheme};
use coarse_fabric::topology::{Link, LinkClass};
use coarse_simcore::prelude::*;

fn cci_only(l: &Link) -> bool {
    l.class() == LinkClass::Cci
}

proptest! {
    /// Functional reduce-scatter + all-gather equals allreduce for any
    /// inputs and member counts.
    #[test]
    fn scatter_gather_identity(
        n in 1usize..8,
        len in 0usize..300,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..len).map(|_| rng.range_f64(-8.0, 8.0) as f32).collect())
            .collect();
        let scattered = functional::reduce_scatter(&inputs);
        prop_assert_eq!(
            functional::all_gather(&scattered),
            functional::allreduce_sum(&inputs)
        );
    }

    /// Timed ring allreduce elapsed time is monotone in payload and never
    /// starts before the slowest member is ready.
    #[test]
    fn ring_time_monotone_and_respects_ready(
        small_kib in 1u64..1000,
        factor in 2u64..16,
        slow_ready_us in 0u64..10_000,
    ) {
        let mut machine = aws_v100();
        let part = machine.partition(PartitionScheme::OneToOne);
        machine.augment_cci_ring(&part.mem_devices);
        let devs = part.mem_devices.clone();
        let mut ready = vec![SimTime::ZERO; devs.len()];
        ready[2] = SimTime::ZERO + SimDuration::from_micros(slow_ready_us);

        let mut e1 = TransferEngine::new(machine.topology().clone());
        let a = ring_allreduce(&mut e1, &devs, ByteSize::kib(small_kib), &ready,
                               RingDirection::Forward, cci_only).unwrap();
        let mut e2 = TransferEngine::new(machine.topology().clone());
        let b = ring_allreduce(&mut e2, &devs, ByteSize::kib(small_kib * factor), &ready,
                               RingDirection::Forward, cci_only).unwrap();
        prop_assert!(b.elapsed() >= a.elapsed());
        prop_assert_eq!(a.start, ready[2]);
    }

    /// Tree and ring allreduce both respect ready times and complete, for
    /// arbitrary member subsets of the CCI mesh.
    #[test]
    fn tree_and_ring_always_complete(
        members in 2usize..5,
        payload_kib in 1u64..4096,
    ) {
        let mut machine = aws_v100();
        let part = machine.partition(PartitionScheme::OneToOne);
        machine.augment_cci_mesh(&part.mem_devices);
        let devs: Vec<_> = part.mem_devices[..members].to_vec();
        let ready = vec![SimTime::ZERO; members];
        let payload = ByteSize::kib(payload_kib);
        let mut e1 = TransferEngine::new(machine.topology().clone());
        let ring = ring_allreduce(&mut e1, &devs, payload, &ready, RingDirection::Forward, cci_only).unwrap();
        let mut e2 = TransferEngine::new(machine.topology().clone());
        let tree = tree_allreduce(&mut e2, &devs, payload, &ready, cci_only).unwrap();
        prop_assert!(ring.end > ring.start);
        prop_assert!(tree.end > tree.start);
    }

    /// Hierarchical allreduce over a cluster is never faster than the same
    /// payload's single-node intra ring (the network can only add time).
    #[test]
    fn hierarchy_dominated_by_network(payload_mib in 1u64..64) {
        let machine = aws_v100_cluster(2);
        let part = machine.partition(PartitionScheme::OneToOne);
        let n0: Vec<_> = part
            .workers
            .iter()
            .copied()
            .filter(|&w| machine.topology().device(w).node() == 0)
            .collect();
        let n1: Vec<_> = part
            .workers
            .iter()
            .copied()
            .filter(|&w| machine.topology().device(w).node() == 1)
            .collect();
        let payload = ByteSize::mib(payload_mib);
        let ready2 = vec![SimTime::ZERO; 8];
        let mut e = TransferEngine::new(machine.topology().clone());
        let hier = hierarchical_allreduce(&mut e, &[n0.clone(), n1], payload, &ready2, |_| true).unwrap();
        let ready1 = vec![SimTime::ZERO; 4];
        let mut e2 = TransferEngine::new(machine.topology().clone());
        let single = ring_allreduce(&mut e2, &n0, payload, &ready1, RingDirection::Forward, |_| true).unwrap();
        prop_assert!(hier.elapsed() >= single.elapsed());
    }
}
