//! # coarse-core
//!
//! The paper's primary contribution: **COARSE**, a decentralized parameter
//! synchronization scheme offloaded to cache-coherent disaggregated memory.
//!
//! - [`routing`] / [`profiler`] — measured routing tables: `LatProxy`,
//!   `BwProxy`, the size threshold `S`, and the partition shard size `S'`
//!   (§III-E);
//! - [`client`] — the per-worker parameter client: push/pull interface,
//!   tensor partitioning and reconstruction (§IV-B);
//! - [`proxy`] — the per-memory-device proxy: per-client queues,
//!   scatter-add accumulation, pull service, co-located COW storage
//!   (§III-D);
//! - [`dualsync`] — the dual-synchronization optimizer choosing how many
//!   bytes the proxies synchronize vs. the GPUs (§III-F);
//! - [`optim`] — the SGD/momentum/Adam update rules the memory devices run
//!   on the master weights (optimizer state stays in device DRAM);
//! - [`resilience`] — retry/backoff policy and fault accounting for
//!   synchronization under an injected fault plan;
//! - [`deadlock`] — FCFS vs. queue-based collective scheduling (Fig. 10);
//! - [`service`] — the timed proxy-service model: throughput of the two
//!   policies as a function of sync-core count (§IV-A);
//! - [`system`] — the assembled functional system, verified to produce
//!   exact gradient means end-to-end;
//! - [`baselines`] — the DENSE centralized CCI parameter server (Fig. 5);
//! - [`strategy`] — the framework-facing drop-in distribution strategy
//!   with automatic epoch checkpointing (§IV-B).

#![warn(missing_docs)]

pub mod baselines;
pub mod client;
pub mod deadlock;
pub mod dualsync;
pub mod optim;
pub mod profiler;
pub mod proxy;
pub mod resilience;
pub mod routing;
pub mod service;
pub mod strategy;
pub mod system;

pub use baselines::DenseSystem;
pub use client::{ParameterClient, PushRequest};
pub use deadlock::{ScheduleOutcome, SchedulingPolicy, SyncScheduler};
pub use dualsync::{DualSyncInputs, DualSyncPlan};
pub use optim::{Adam, Optimizer, Sgd, SgdMomentum};
pub use profiler::{build_routing_table, profile_proxies, ProxyProfile};
pub use proxy::ParameterProxy;
pub use resilience::{
    FailureKind, RecoveryAction, RecoveryPolicy, ResiliencePolicy, SyncFaultReport,
};
pub use routing::RoutingTable;
pub use service::{
    round_robin_jobs, run_service, run_service_profiled, ServiceJob, ServiceOutcome,
};
pub use strategy::CoarseStrategy;
pub use system::{CoarseSystem, SystemError};
