//! The parameter client running on each worker GPU (§III-D, §IV-B).
//!
//! A client exposes the conventional parameter-server `push`/`pull`
//! interface to the training framework. Internally it maintains a tensor
//! queue, partitions large tensors into routing-table-sized shards so push
//! and pull pipeline on the bus's two directions (Fig. 9), routes each
//! piece to the latency- or bandwidth-friendly proxy, and reconstructs
//! pulled tensors from the partition history.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use coarse_cci::tensor::{Tensor, TensorId, TensorShard};
use coarse_fabric::device::DeviceId;
use coarse_simcore::metrics::{name as metric, MetricRegistry};
use coarse_simcore::time::SimTime;
use coarse_simcore::trace::{category, SharedTracer, TrackId};
use coarse_simcore::units::ByteSize;

use crate::routing::RoutingTable;

/// One wire request emitted by a client.
#[derive(Debug, Clone, PartialEq)]
pub struct PushRequest {
    /// Destination proxy.
    pub proxy: DeviceId,
    /// The shard (whole tensors travel as a single shard).
    pub shard: TensorShard,
    /// Total number of shards of this tensor (for reassembly bookkeeping).
    pub shard_count: u32,
    /// Full element count of the tensor (so proxies can size buffers).
    pub tensor_len: usize,
}

impl PushRequest {
    /// Payload size of this request.
    pub fn byte_size(&self) -> ByteSize {
        self.shard.byte_size()
    }
}

/// Reassembly record for one in-flight tensor.
#[derive(Debug, Clone)]
struct PartitionRecord {
    len: usize,
    shard_count: u32,
    received: Vec<TensorShard>,
}

/// The per-worker parameter client.
#[derive(Debug)]
pub struct ParameterClient {
    worker: DeviceId,
    table: RoutingTable,
    queue: VecDeque<PushRequest>,
    partitions: BTreeMap<TensorId, PartitionRecord>,
    /// Trace sink plus this client's interned track, when tracing is on.
    trace: Option<(SharedTracer, TrackId)>,
    /// Metric sink, when metering is on.
    metrics: Option<MetricRegistry>,
    /// Externally supplied clock for trace stamps (the client itself is
    /// untimed; the surrounding simulation owns the clock).
    clock: SimTime,
}

impl ParameterClient {
    /// A client for `worker` with a profiled routing table.
    pub fn new(worker: DeviceId, table: RoutingTable) -> Self {
        ParameterClient {
            worker,
            table,
            queue: VecDeque::new(),
            partitions: BTreeMap::new(),
            trace: None,
            metrics: None,
            clock: SimTime::ZERO,
        }
    }

    /// Attaches a tracer; push/partition/pull activity is then recorded on
    /// a track named `"client <worker>"`.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        if tracer.is_enabled() {
            let track = tracer.track(&format!("client {}", self.worker));
            self.trace = Some((tracer, track));
        }
    }

    /// Sets the timestamp used for subsequent trace events.
    pub fn set_time(&mut self, now: SimTime) {
        self.clock = now;
    }

    /// Attaches a metric registry: every push increments
    /// `core.client.pushes` / `core.client.push_bytes` and samples the
    /// wire-queue depth into the `core.client.queue_depth` histogram.
    pub fn set_metrics(&mut self, metrics: MetricRegistry) {
        self.metrics = Some(metrics);
    }

    /// Samples the wire-queue depth onto the trace.
    fn trace_queue_depth(&self) {
        if let Some((tracer, track)) = &self.trace {
            tracer.counter(
                self.clock,
                category::CLIENT,
                *track,
                "queue_depth",
                self.queue.len() as f64,
            );
        }
    }

    /// The worker GPU this client runs on.
    pub fn worker(&self) -> DeviceId {
        self.worker
    }

    /// The active routing table.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Installs a re-profiled routing table (dynamic profiling, §III-E).
    pub fn set_table(&mut self, table: RoutingTable) {
        self.table = table;
    }

    /// Pushes a tensor: small tensors are enqueued whole toward the
    /// latency proxy; large tensors are partitioned into shards of at least
    /// the routing table's shard size and enqueued toward the bandwidth
    /// proxy. Returns how many wire requests were enqueued.
    pub fn push(&mut self, tensor: &Tensor) -> usize {
        let size = tensor.byte_size();
        let shard_elems = (self.table.shard_size.as_u64() / 4).max(1) as usize;
        // Partition only when at least two full shards result; each shard
        // must be *at least* the threshold size to keep full bandwidth
        // (§IV-B: "equal to or larger than the threshold").
        let requests: Vec<PushRequest> =
            if size < self.table.threshold || tensor.len() < 2 * shard_elems {
                let proxy = self.table.route_for(size);
                vec![PushRequest {
                    proxy,
                    shard: TensorShard {
                        tensor: tensor.id(),
                        index: 0,
                        offset: 0,
                        data: tensor.data().to_vec(),
                    },
                    shard_count: 1,
                    tensor_len: tensor.len(),
                }]
            } else {
                let shards = tensor.partition(shard_elems);
                let count = shards.len() as u32;
                shards
                    .into_iter()
                    .map(|shard| PushRequest {
                        proxy: self.table.bw_proxy,
                        shard,
                        shard_count: count,
                        tensor_len: tensor.len(),
                    })
                    .collect()
            };
        self.partitions.insert(
            tensor.id(),
            PartitionRecord {
                len: tensor.len(),
                shard_count: requests.len() as u32,
                received: Vec::new(),
            },
        );
        let n = requests.len();
        self.queue.extend(requests);
        if let Some(m) = &self.metrics {
            m.inc(metric::CLIENT_PUSHES, 1);
            m.inc(metric::CLIENT_PUSH_BYTES, size.as_u64());
            m.observe(metric::CLIENT_QUEUE_DEPTH, self.queue.len() as f64);
        }
        if let Some((tracer, track)) = &self.trace {
            let kind = if n == 1 { "whole" } else { "partitioned" };
            tracer.instant(
                self.clock,
                category::CLIENT,
                *track,
                &format!("push {} ({size}, {n} {kind} shard(s))", tensor.id()),
            );
        }
        self.trace_queue_depth();
        n
    }

    /// Dequeues the next wire request, if any (clients actively drain their
    /// queue, §IV-B).
    pub fn dequeue(&mut self) -> Option<PushRequest> {
        let req = self.queue.pop_front();
        if req.is_some() {
            self.trace_queue_depth();
        }
        req
    }

    /// Number of queued wire requests.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Delivers one updated shard pulled back from a proxy. Returns the
    /// reassembled tensor once all shards have arrived.
    ///
    /// # Panics
    ///
    /// Panics if the shard belongs to a tensor this client never pushed.
    pub fn deliver(&mut self, shard: TensorShard) -> Option<Tensor> {
        let id = shard.tensor;
        let record = self
            .partitions
            .get_mut(&id)
            // simlint: allow(panic-in-library, reason = "documented # Panics contract: pulls name tensors partitioned by this client")
            .unwrap_or_else(|| panic!("pull of unknown tensor {id}"));
        record.received.push(shard);
        if record.received.len() as u32 == record.shard_count {
            // simlint: allow(panic-in-library, reason = "guarded by the unknown-tensor check directly above")
            let record = self.partitions.remove(&id).expect("record exists");
            if let Some((tracer, track)) = &self.trace {
                tracer.instant(
                    self.clock,
                    category::CLIENT,
                    *track,
                    &format!("pull {id} complete ({} shard(s))", record.shard_count),
                );
            }
            Some(Tensor::reconstruct(id, record.len, &record.received))
        } else {
            None
        }
    }

    /// Tensors still awaiting shards.
    pub fn pending_pulls(&self) -> usize {
        self.partitions.len()
    }

    /// Aborts all in-flight pushes and pulls: clears the wire queue and the
    /// reassembly records. Used when a synchronization round is restarted
    /// after a proxy failover.
    pub fn reset_pending(&mut self) {
        self.queue.clear();
        self.partitions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_simcore::time::SimTime;

    fn ids() -> (DeviceId, DeviceId, DeviceId) {
        let mut t = coarse_fabric::topology::Topology::new();
        let w = t.add_device(coarse_fabric::device::DeviceKind::Gpu, "w", 0);
        let a = t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "a", 0);
        let b = t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "b", 0);
        (w, a, b)
    }

    fn split_table(lat: DeviceId, bw: DeviceId) -> RoutingTable {
        RoutingTable {
            lat_proxy: lat,
            bw_proxy: bw,
            threshold: ByteSize::kib(1),
            shard_size: ByteSize::kib(1), // 256 elements
            built_at: SimTime::ZERO,
        }
    }

    #[test]
    fn small_tensor_goes_whole_to_lat_proxy() {
        let (w, lat, bw) = ids();
        let mut c = ParameterClient::new(w, split_table(lat, bw));
        let t = Tensor::new(TensorId(1), vec![1.0; 10]);
        assert_eq!(c.push(&t), 1);
        let req = c.dequeue().unwrap();
        assert_eq!(req.proxy, lat);
        assert_eq!(req.shard_count, 1);
        assert_eq!(req.shard.data.len(), 10);
    }

    #[test]
    fn large_tensor_partitioned_to_bw_proxy() {
        let (w, lat, bw) = ids();
        let mut c = ParameterClient::new(w, split_table(lat, bw));
        let t = Tensor::new(TensorId(2), (0..1000).map(|i| i as f32).collect());
        let n = c.push(&t); // 1000 elems / 256 per shard → 4 shards
        assert_eq!(n, 4);
        let reqs: Vec<PushRequest> = std::iter::from_fn(|| c.dequeue()).collect();
        assert!(reqs.iter().all(|r| r.proxy == bw));
        assert!(reqs.iter().all(|r| r.shard_count == 4));
        // Shards except the last are exactly the shard size.
        assert!(reqs[..3].iter().all(|r| r.shard.data.len() == 256));
    }

    #[test]
    fn push_pull_round_trip_preserves_data() {
        let (w, lat, bw) = ids();
        let mut c = ParameterClient::new(w, split_table(lat, bw));
        let t = Tensor::new(TensorId(3), (0..777).map(|i| (i as f32).sin()).collect());
        c.push(&t);
        let reqs: Vec<PushRequest> = std::iter::from_fn(|| c.dequeue()).collect();
        assert_eq!(c.pending_pulls(), 1);
        let mut result = None;
        // Deliver in reverse order to exercise out-of-order reassembly.
        for r in reqs.into_iter().rev() {
            result = c.deliver(r.shard);
        }
        assert_eq!(result.unwrap(), t);
        assert_eq!(c.pending_pulls(), 0);
    }

    #[test]
    fn medium_tensor_not_worth_partitioning_stays_whole() {
        let (w, lat, bw) = ids();
        let mut c = ParameterClient::new(w, split_table(lat, bw));
        // 300 elems = 1.2KiB: above threshold but below two full shards.
        let t = Tensor::new(TensorId(4), vec![0.5; 300]);
        assert_eq!(c.push(&t), 1);
        let req = c.dequeue().unwrap();
        assert_eq!(req.proxy, bw, "routes by size even when unpartitioned");
        assert_eq!(req.shard_count, 1);
    }

    #[test]
    #[should_panic(expected = "unknown tensor")]
    fn delivering_unknown_tensor_panics() {
        let (w, lat, bw) = ids();
        let mut c = ParameterClient::new(w, split_table(lat, bw));
        c.deliver(TensorShard {
            tensor: TensorId(9),
            index: 0,
            offset: 0,
            data: vec![1.0],
        });
    }

    #[test]
    fn metrics_count_pushes_and_bytes() {
        let (w, lat, bw) = ids();
        let reg = MetricRegistry::new();
        let mut c = ParameterClient::new(w, split_table(lat, bw));
        c.set_metrics(reg.clone());
        let small = Tensor::new(TensorId(1), vec![1.0; 10]);
        let large = Tensor::new(TensorId(2), vec![1.0; 1000]);
        c.push(&small);
        c.push(&large);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(metric::CLIENT_PUSHES), 2);
        assert_eq!(snap.counter(metric::CLIENT_PUSH_BYTES), (10 + 1000) * 4);
        let depth = snap.histogram(metric::CLIENT_QUEUE_DEPTH).unwrap();
        // 1 request after the small push, 1+4 after the large one.
        assert_eq!(depth.max, 5.0);
    }

    #[test]
    fn table_swap_takes_effect() {
        let (w, lat, bw) = ids();
        let mut c = ParameterClient::new(w, split_table(lat, bw));
        c.set_table(RoutingTable::single(lat, ByteSize::kib(1), SimTime::ZERO));
        let t = Tensor::new(TensorId(5), vec![1.0; 5000]);
        c.push(&t);
        let req = c.dequeue().unwrap();
        assert_eq!(req.proxy, lat);
    }
}
