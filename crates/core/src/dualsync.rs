//! Dual parameter synchronization (§III-F).
//!
//! The first `m` bytes of gradients (in backward emission order — the
//! *deepest* layers, available earliest) are pushed to the proxies and
//! synchronized by the memory devices, overlapping the rest of the backward
//! pass; the remaining `n − m` bytes (the shallow layers, needed first by
//! the next forward pass) are synchronized directly by the worker GPUs.
//!
//! COARSE picks `m` to minimize the paper's estimate
//!
//! ```text
//! T_train = max( T_FP + T_BP + T_sync_gpu(n − m),
//!                T_FP + T_sync_proxy(m) )
//! T_sync(x) = 2(p−1)/p · x / B
//! ```

use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::trace::{category, SharedTracer};
use coarse_simcore::units::{Bandwidth, ByteSize};

/// Measured inputs to the dual-sync optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualSyncInputs {
    /// Number of worker GPUs (`p`).
    pub workers: usize,
    /// Total gradient payload per iteration (`n`).
    pub total_bytes: ByteSize,
    /// Proxy-to-proxy collective bandwidth (`B_proxy`).
    pub proxy_bandwidth: Bandwidth,
    /// GPU-to-GPU collective bandwidth (`B_GPU`).
    pub gpu_bandwidth: Bandwidth,
    /// Forward-pass time (`T_FP`).
    pub forward: SimDuration,
    /// Backward-pass time (`T_BP`).
    pub backward: SimDuration,
}

/// The chosen split and its predicted iteration time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualSyncPlan {
    /// Bytes offloaded to the proxies (`m`), from the *front* of the
    /// backward emission order (deepest layers).
    pub proxy_bytes: ByteSize,
    /// Bytes synchronized by the GPUs (`n − m`).
    pub gpu_bytes: ByteSize,
    /// Predicted `T_train` at this split.
    pub estimate: SimDuration,
}

/// `T_sync(x) = 2(p−1)/p · x / B`, the ring-allreduce time.
pub fn sync_time(bytes: ByteSize, workers: usize, bandwidth: Bandwidth) -> SimDuration {
    assert!(workers >= 1, "need at least one worker");
    if workers == 1 || bytes.is_zero() {
        return SimDuration::ZERO;
    }
    let factor = 2.0 * (workers as f64 - 1.0) / workers as f64;
    SimDuration::from_secs_f64(factor * bytes.as_f64() / bandwidth.as_bytes_per_sec())
}

/// The paper's training-time estimate for a given proxy share `m`.
pub fn estimate_iteration(inputs: &DualSyncInputs, proxy_bytes: ByteSize) -> SimDuration {
    assert!(
        proxy_bytes <= inputs.total_bytes,
        "proxy share exceeds the payload"
    );
    let gpu_bytes = inputs.total_bytes - proxy_bytes;
    let gpu_path = inputs.forward
        + inputs.backward
        + sync_time(gpu_bytes, inputs.workers, inputs.gpu_bandwidth);
    let proxy_path =
        inputs.forward + sync_time(proxy_bytes, inputs.workers, inputs.proxy_bandwidth);
    gpu_path.max(proxy_path)
}

/// Finds the `m` minimizing [`estimate_iteration`].
///
/// The estimate is the max of a decreasing and an increasing affine function
/// of `m`, so the optimum is at their intersection (clamped to `[0, n]`);
/// we solve it in closed form and verify against the neighbors.
pub fn optimize(inputs: &DualSyncInputs) -> DualSyncPlan {
    let n = inputs.total_bytes.as_f64();
    let p = inputs.workers;
    let plan_for = |m_bytes: ByteSize| DualSyncPlan {
        proxy_bytes: m_bytes,
        gpu_bytes: inputs.total_bytes - m_bytes,
        estimate: estimate_iteration(inputs, m_bytes),
    };
    if p <= 1 {
        // No peers to synchronize with.
        return plan_for(ByteSize::ZERO);
    }
    let factor = 2.0 * (p as f64 - 1.0) / p as f64;
    let kg = factor / inputs.gpu_bandwidth.as_bytes_per_sec(); // sec per gpu-byte
    let kp = factor / inputs.proxy_bandwidth.as_bytes_per_sec(); // sec per proxy-byte
                                                                 // Balance: T_BP + (n − m)·kg = m·kp  ⇒  m* = (T_BP + n·kg) / (kg + kp).
    let m_star = (inputs.backward.as_secs_f64() + n * kg) / (kg + kp);
    let m_clamped = m_star.clamp(0.0, n) as u64;
    // Check the closed-form point and its byte-neighbors (integer rounding).
    // Ties break toward the larger proxy share: offloading more keeps the
    // GPUs freer, which is the point of the scheme.
    let candidates = [
        inputs.total_bytes,
        ByteSize::bytes((m_clamped + 1).min(inputs.total_bytes.as_u64())),
        ByteSize::bytes(m_clamped),
        ByteSize::bytes(m_clamped.saturating_sub(1)),
        ByteSize::ZERO,
    ];
    candidates
        .into_iter()
        .map(plan_for)
        .min_by_key(|plan| plan.estimate)
        // simlint: allow(panic-in-library, reason = "the candidate array is statically non-empty, so min_by_key always yields a plan")
        .expect("non-empty candidates")
}

/// [`optimize`], additionally recording each candidate `m` and the chosen
/// `m*` as decision events on a `"dualsync"` track stamped at `at`.
pub fn optimize_traced(
    inputs: &DualSyncInputs,
    tracer: &SharedTracer,
    at: SimTime,
) -> DualSyncPlan {
    let plan = optimize(inputs);
    if tracer.is_enabled() {
        let track = tracer.track("dualsync");
        for pt in sweep(inputs, 9) {
            tracer.counter(
                at,
                category::DUALSYNC,
                track,
                &format!("estimate(m={})", pt.proxy_bytes),
                pt.estimate.as_secs_f64(),
            );
        }
        tracer.instant(
            at,
            category::DUALSYNC,
            track,
            &format!(
                "m* = {} of {} (est {})",
                plan.proxy_bytes, inputs.total_bytes, plan.estimate
            ),
        );
    }
    plan
}

/// Sweeps `m` over `points` evenly spaced shares for the ablation bench.
pub fn sweep(inputs: &DualSyncInputs, points: usize) -> Vec<DualSyncPlan> {
    assert!(points >= 2, "a sweep needs at least two points");
    (0..points)
        .map(|i| {
            let m = ByteSize::bytes(
                (inputs.total_bytes.as_f64() * i as f64 / (points - 1) as f64) as u64,
            );
            DualSyncPlan {
                proxy_bytes: m,
                gpu_bytes: inputs.total_bytes - m,
                estimate: estimate_iteration(inputs, m),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> DualSyncInputs {
        DualSyncInputs {
            workers: 4,
            total_bytes: ByteSize::mib(1280), // BERT-Large-ish
            proxy_bandwidth: Bandwidth::gib_per_sec(9.0),
            gpu_bandwidth: Bandwidth::gib_per_sec(5.0),
            forward: SimDuration::from_millis(80),
            backward: SimDuration::from_millis(160),
        }
    }

    #[test]
    fn sync_time_matches_formula() {
        let t = sync_time(ByteSize::gib(1), 4, Bandwidth::gib_per_sec(1.0));
        // 2·3/4 · 1 GiB / 1 GiB/s = 1.5 s
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn single_worker_needs_no_sync() {
        assert_eq!(
            sync_time(ByteSize::gib(1), 1, Bandwidth::gib_per_sec(1.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn optimum_beats_all_or_nothing() {
        let inp = inputs();
        let plan = optimize(&inp);
        let all_gpu = estimate_iteration(&inp, ByteSize::ZERO);
        let all_proxy = estimate_iteration(&inp, inp.total_bytes);
        assert!(plan.estimate <= all_gpu, "optimum must not lose to all-GPU");
        assert!(
            plan.estimate <= all_proxy,
            "optimum must not lose to all-proxy"
        );
        assert!(
            plan.proxy_bytes > ByteSize::ZERO,
            "a mixed split should win here"
        );
        assert!(plan.gpu_bytes > ByteSize::ZERO);
    }

    #[test]
    fn optimum_is_global_minimum_of_sweep() {
        let inp = inputs();
        let plan = optimize(&inp);
        for pt in sweep(&inp, 101) {
            assert!(
                plan.estimate <= pt.estimate,
                "sweep point m={} beats the optimizer ({} < {})",
                pt.proxy_bytes,
                pt.estimate,
                plan.estimate
            );
        }
    }

    #[test]
    fn fast_proxies_take_everything() {
        let mut inp = inputs();
        inp.proxy_bandwidth = Bandwidth::gib_per_sec(10_000.0);
        let plan = optimize(&inp);
        // With near-infinite proxy bandwidth the proxy path hides entirely
        // behind T_BP, so all bytes go to the proxies.
        assert_eq!(plan.proxy_bytes, inp.total_bytes);
    }

    #[test]
    fn slow_proxies_get_little() {
        let mut inp = inputs();
        inp.proxy_bandwidth = Bandwidth::mib_per_sec(10.0);
        let plan = optimize(&inp);
        // m stays small: the proxy path is nearly useless.
        assert!(plan.proxy_bytes.as_f64() < 0.05 * inp.total_bytes.as_f64());
    }

    #[test]
    fn estimate_covers_both_paths() {
        let inp = inputs();
        // All-GPU: the GPU path dominates.
        let t = estimate_iteration(&inp, ByteSize::ZERO);
        let expected =
            inp.forward + inp.backward + sync_time(inp.total_bytes, 4, inp.gpu_bandwidth);
        assert_eq!(t, expected);
    }

    #[test]
    fn sweep_is_convexish() {
        // The estimate decreases to the optimum then increases.
        let inp = inputs();
        let pts = sweep(&inp, 51);
        let min_idx = pts
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.estimate)
            .map(|(i, _)| i)
            .unwrap();
        for w in pts[..min_idx].windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
        for w in pts[min_idx..].windows(2) {
            assert!(w[0].estimate <= w[1].estimate);
        }
    }

    #[test]
    fn traced_optimize_matches_and_records_decision() {
        use coarse_simcore::trace::{RecordingTracer, SharedTracer, TraceEventKind};
        use std::rc::Rc;

        let inp = inputs();
        let plain = optimize(&inp);
        let rec = RecordingTracer::new();
        let handle: SharedTracer = Rc::new(rec.clone());
        let traced = optimize_traced(&inp, &handle, SimTime::from_nanos(7));
        assert_eq!(plain, traced, "tracing must not change the decision");

        let trace = rec.take();
        let counters = trace
            .events_in(coarse_simcore::trace::category::DUALSYNC)
            .filter(|e| matches!(e.kind, TraceEventKind::Counter { .. }))
            .count();
        assert_eq!(counters, 9, "candidate grid is recorded");
        let decision = trace
            .events_in(coarse_simcore::trace::category::DUALSYNC)
            .find(|e| e.kind == TraceEventKind::Instant)
            .expect("chosen m* is recorded");
        assert!(decision.name.starts_with("m* = "));
        assert_eq!(decision.time, SimTime::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "exceeds the payload")]
    fn oversized_share_rejected() {
        let inp = inputs();
        let _ = estimate_iteration(&inp, inp.total_bytes + ByteSize::bytes(1));
    }
}
