//! Timed proxy service: how fast proxies drain their tensor queues under
//! each scheduling policy (§III-F), on the event-driven kernel.
//!
//! The static [`deadlock`](crate::deadlock) scheduler answers *whether*
//! a workload completes; this model answers *how fast*. Each proxy owns a
//! set of **sync cores** (§IV-A); a tensor's collective occupies one core
//! on every participating proxy for the tensor's service time. Under FCFS a
//! proxy only offers the head of its single arrival queue — one stalled
//! collective idles every core. Under COARSE's per-client queues, each
//! client stream can be serviced concurrently, so cores stay busy and
//! throughput scales with the core count.

use std::collections::BTreeMap;

use coarse_cci::tensor::TensorId;
use coarse_simcore::critpath::class as crit_class;
use coarse_simcore::prelude::*;
use coarse_simcore::prof::region as prof_region;

use crate::deadlock::SchedulingPolicy;

/// One client's contribution to a tensor, parked at a proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Parked {
    client: usize,
    tensor: TensorId,
}

/// A tensor service job: which proxies hold contributions and how long the
/// collective takes.
#[derive(Debug, Clone)]
pub struct ServiceJob {
    /// The tensor to synchronize.
    pub tensor: TensorId,
    /// `(client, proxy)` pairs, in each client's push order.
    pub contributions: Vec<(usize, usize)>,
    /// Duration of the collective once it starts.
    pub service: SimDuration,
}

/// Results of a timed service run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// When the last collective finished (`SimTime::MAX`-free; zero jobs ⇒
    /// zero).
    pub makespan: SimDuration,
    /// Collectives completed.
    pub completed: usize,
    /// Jobs left stuck (deadlock) when the simulation quiesced.
    pub stuck: usize,
}

#[derive(Debug)]
struct ProxyState {
    /// Arrival-ordered queue (FCFS view).
    fifo: Vec<Parked>,
    /// Per-client queues (COARSE view).
    per_client: BTreeMap<usize, Vec<Parked>>,
    /// Free sync cores.
    free_cores: usize,
}

impl ProxyState {
    fn willing(&self, p: Parked, policy: SchedulingPolicy) -> bool {
        if self.free_cores == 0 {
            return false;
        }
        match policy {
            SchedulingPolicy::Fcfs => self.fifo.first() == Some(&p),
            SchedulingPolicy::PerClientQueues => {
                self.per_client.get(&p.client).and_then(|q| q.first()) == Some(&p)
            }
        }
    }

    fn remove(&mut self, p: Parked) {
        self.fifo.retain(|&x| x != p);
        if let Some(q) = self.per_client.get_mut(&p.client) {
            q.retain(|&x| x != p);
        }
    }
}

struct ServiceModel {
    policy: SchedulingPolicy,
    proxies: Vec<ProxyState>,
    jobs: BTreeMap<TensorId, ServiceJob>,
    running: BTreeMap<TensorId, Vec<usize>>,
    completed: usize,
    finished_at: SimTime,
    /// Self-profiler, when profiling is on: launches count under the
    /// `core.proxy` region and per-proxy queue depths feed its histograms.
    profiler: Option<Profiler>,
    /// Critical-path recorder, when attached: each collective registers a
    /// sync node, and delayed launches a proxy-stall node chained on the
    /// completions that freed their cores.
    critpath: Option<CritPath>,
    /// Critical-path node of each running collective.
    crit_nodes: BTreeMap<TensorId, NodeId>,
    /// The latest-finishing collective node so far (the run's sink).
    crit_sink: Option<(SimTime, NodeId)>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Try to launch every currently launchable collective.
    Kick,
    /// A tensor's collective completed.
    Done(TensorId),
}

impl ServiceModel {
    fn launchable(&self, job: &ServiceJob) -> bool {
        if self.running.contains_key(&job.tensor) {
            return false;
        }
        // Every contribution must be at a serviceable position AND every
        // distinct participating proxy must have a free core.
        let mut proxies: Vec<usize> = job.contributions.iter().map(|&(_, p)| p).collect();
        proxies.sort_unstable();
        proxies.dedup();
        job.contributions.iter().all(|&(client, proxy)| {
            self.proxies[proxy].willing(
                Parked {
                    client,
                    tensor: job.tensor,
                },
                self.policy,
            )
        }) && proxies.iter().all(|&p| self.proxies[p].free_cores > 0)
    }
}

impl Model for ServiceModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, queue: &mut EventQueue<Ev>) {
        let mut freed: Vec<NodeId> = Vec::new();
        if let Ev::Done(tensor) = ev {
            // simlint: allow(panic-in-library, reason = "windowed service contract: finish() pairs with a begin() for the same tensor")
            let proxies = self.running.remove(&tensor).expect("job was running");
            for p in proxies {
                self.proxies[p].free_cores += 1;
            }
            self.jobs.remove(&tensor);
            self.completed += 1;
            self.finished_at = now;
            if let Some(n) = self.crit_nodes.remove(&tensor) {
                freed.push(n);
            }
        }
        // Launch everything now launchable, re-checking before each launch
        // (an earlier launch in this round may have consumed the cores a
        // later candidate needed).
        let _prof = self
            .profiler
            .clone()
            .map(|p| p.enter(prof_region::CORE_PROXY));
        let mut launched = 0u64;
        let candidates: Vec<TensorId> = self.jobs.keys().copied().collect();
        for t in candidates {
            let job = &self.jobs[&t];
            if !self.launchable(job) {
                continue;
            }
            let mut proxies: Vec<usize> = job.contributions.iter().map(|&(_, p)| p).collect();
            proxies.sort_unstable();
            proxies.dedup();
            let service = job.service;
            let contributions = job.contributions.clone();
            for &p in &proxies {
                self.proxies[p].free_cores -= 1;
            }
            for (client, proxy) in contributions {
                self.proxies[proxy].remove(Parked { client, tensor: t });
            }
            self.running.insert(t, proxies);
            queue.schedule_after(service, Ev::Done(t));
            launched += 1;
            if let Some(cp) = &self.critpath {
                // A launch after t=0 waited in the proxy queues (all
                // contributions arrive at t=0); the stall chains on the
                // completions that freed the cores it needed.
                let deps = if now > SimTime::ZERO {
                    vec![cp.span(
                        crit_class::PROXY_STALL,
                        format!("tensor {} queued at proxies", t.0),
                        SimTime::ZERO,
                        now,
                        &freed,
                    )]
                } else {
                    Vec::new()
                };
                let end = now + service;
                let n = cp.span(
                    crit_class::SYNC,
                    format!("tensor {} collective", t.0),
                    now,
                    end,
                    &deps,
                );
                self.crit_nodes.insert(t, n);
                if self.crit_sink.is_none_or(|(e, _)| end >= e) {
                    self.crit_sink = Some((end, n));
                }
            }
        }
        if let Some(p) = &self.profiler {
            p.count(prof_region::CORE_PROXY, launched);
            for st in &self.proxies {
                p.observe_depth("core.proxy_fifo", st.fifo.len() as u64);
            }
        }
    }

    fn event_label(&self, ev: &Ev) -> &'static str {
        match ev {
            Ev::Kick => "core.service.kick",
            Ev::Done(_) => "core.service.done",
        }
    }
}

/// Runs the timed service simulation.
///
/// # Panics
///
/// Panics if `proxies` or `cores_per_proxy` is zero, or a job references an
/// out-of-range proxy.
pub fn run_service(
    proxies: usize,
    cores_per_proxy: usize,
    policy: SchedulingPolicy,
    jobs: Vec<ServiceJob>,
) -> ServiceOutcome {
    run_service_profiled(proxies, cores_per_proxy, policy, jobs, None)
}

/// [`run_service`] with an optional self-profiler attached to the kernel and
/// model: event dispatch splits into `core.service.kick` / `core.service.done`,
/// collective launches count under the `core.proxy` region, and per-proxy
/// FIFO depths feed the `core.proxy_fifo` histogram. Observation-only — the
/// outcome is identical with or without the profiler.
///
/// # Panics
///
/// Panics under the same conditions as [`run_service`].
pub fn run_service_profiled(
    proxies: usize,
    cores_per_proxy: usize,
    policy: SchedulingPolicy,
    jobs: Vec<ServiceJob>,
    profiler: Option<Profiler>,
) -> ServiceOutcome {
    run_service_inner(proxies, cores_per_proxy, policy, jobs, profiler, None)
}

/// [`run_service`] with an optional critical-path recorder attached: every
/// collective registers a `sync` node and every delayed launch a
/// `proxy_stall` node chained on the completions that freed its cores, and
/// the run's sink (the last-finishing collective) is marked as iteration 0.
/// Observation-only — the outcome is identical with or without the recorder.
///
/// # Panics
///
/// Panics under the same conditions as [`run_service`].
pub fn run_service_explained(
    proxies: usize,
    cores_per_proxy: usize,
    policy: SchedulingPolicy,
    jobs: Vec<ServiceJob>,
    critpath: Option<CritPath>,
) -> ServiceOutcome {
    run_service_inner(proxies, cores_per_proxy, policy, jobs, None, critpath)
}

fn run_service_inner(
    proxies: usize,
    cores_per_proxy: usize,
    policy: SchedulingPolicy,
    jobs: Vec<ServiceJob>,
    profiler: Option<Profiler>,
    critpath: Option<CritPath>,
) -> ServiceOutcome {
    assert!(proxies > 0, "need at least one proxy");
    assert!(cores_per_proxy > 0, "need at least one sync core");
    let mut states: Vec<ProxyState> = (0..proxies)
        .map(|_| ProxyState {
            fifo: Vec::new(),
            per_client: BTreeMap::new(),
            free_cores: cores_per_proxy,
        })
        .collect();
    // Arrivals interleave across clients (they push concurrently): the
    // k-th contribution of every job lands before any job's (k+1)-th.
    // Each client's own stream stays in job order, as the backward pass
    // guarantees.
    let max_contribs = jobs
        .iter()
        .map(|j| j.contributions.len())
        .max()
        .unwrap_or(0);
    for k in 0..max_contribs {
        for job in &jobs {
            if let Some(&(client, proxy)) = job.contributions.get(k) {
                assert!(proxy < proxies, "job references unknown proxy {proxy}");
                let parked = Parked {
                    client,
                    tensor: job.tensor,
                };
                states[proxy].fifo.push(parked);
                states[proxy]
                    .per_client
                    .entry(client)
                    .or_default()
                    .push(parked);
            }
        }
    }
    let mut job_map = BTreeMap::new();
    for job in jobs {
        job_map.insert(job.tensor, job);
    }
    let total = job_map.len();
    let mut sim = Simulation::new(ServiceModel {
        policy,
        proxies: states,
        jobs: job_map,
        running: BTreeMap::new(),
        completed: 0,
        finished_at: SimTime::ZERO,
        profiler: profiler.clone(),
        critpath: critpath.clone(),
        crit_nodes: BTreeMap::new(),
        crit_sink: None,
    });
    if let Some(p) = profiler {
        sim.set_profiler(p);
    }
    sim.queue_mut().schedule_now(Ev::Kick);
    sim.run_to_completion();
    let m = sim.model();
    if let (Some(cp), Some((_, sink))) = (&critpath, m.crit_sink) {
        cp.mark_iteration(0, sink);
    }
    ServiceOutcome {
        makespan: m.finished_at - SimTime::ZERO,
        completed: m.completed,
        stuck: total - m.completed,
    }
}

/// A realistic workload: `tensors` tensors pushed by `clients` clients in a
/// common backward order, routed round-robin across `proxies`, each
/// collective costing `service`.
pub fn round_robin_jobs(
    tensors: u64,
    clients: usize,
    proxies: usize,
    service: SimDuration,
) -> Vec<ServiceJob> {
    (0..tensors)
        .map(|t| ServiceJob {
            tensor: TensorId(t),
            contributions: (0..clients)
                .map(|c| (c, ((t as usize) + c) % proxies))
                .collect(),
            service,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn empty_workload_trivially_done() {
        let out = run_service(2, 1, SchedulingPolicy::PerClientQueues, vec![]);
        assert_eq!(out.completed, 0);
        assert_eq!(out.stuck, 0);
        assert_eq!(out.makespan, SimDuration::ZERO);
    }

    #[test]
    fn single_tensor_takes_one_service_time() {
        let jobs = round_robin_jobs(1, 2, 2, MS);
        let out = run_service(2, 1, SchedulingPolicy::PerClientQueues, jobs);
        assert_eq!(out.completed, 1);
        assert_eq!(out.makespan, MS);
    }

    #[test]
    fn queue_based_drains_everything() {
        let jobs = round_robin_jobs(40, 4, 4, MS);
        let out = run_service(4, 4, SchedulingPolicy::PerClientQueues, jobs);
        assert_eq!(out.stuck, 0);
        assert_eq!(out.completed, 40);
    }

    #[test]
    fn more_sync_cores_raise_throughput() {
        let jobs = round_robin_jobs(64, 2, 4, MS);
        let one = run_service(4, 1, SchedulingPolicy::PerClientQueues, jobs.clone());
        let four = run_service(4, 4, SchedulingPolicy::PerClientQueues, jobs);
        assert_eq!(one.stuck, 0);
        assert_eq!(four.stuck, 0);
        assert!(
            four.makespan < one.makespan,
            "4 cores ({:?}) must beat 1 ({:?})",
            four.makespan,
            one.makespan
        );
    }

    #[test]
    fn fcfs_stalls_on_crossed_heads() {
        // The Fig. 10 shape, timed: FCFS leaves both tensors stuck.
        let jobs = vec![
            ServiceJob {
                tensor: TensorId(1),
                contributions: vec![(0, 0), (1, 1)],
                service: MS,
            },
            ServiceJob {
                tensor: TensorId(2),
                contributions: vec![(0, 1), (1, 0)],
                service: MS,
            },
        ];
        // Client-interleaved arrival gives proxy 0 the fifo [t1(c0), t2(c1)]
        // and proxy 1 [t2(c0), t1(c1)]: crossed heads.
        let fcfs = run_service(2, 1, SchedulingPolicy::Fcfs, jobs.clone());
        assert!(fcfs.stuck > 0, "FCFS should wedge: {fcfs:?}");
        let queued = run_service(2, 1, SchedulingPolicy::PerClientQueues, jobs);
        assert_eq!(queued.stuck, 0);
        assert_eq!(queued.completed, 2);
    }

    #[test]
    fn queue_based_beats_fcfs_throughput() {
        // Heads agree (no deadlock), but FCFS still serializes on the single
        // arrival queue while per-client queues exploit all cores.
        let jobs = round_robin_jobs(32, 4, 2, MS);
        let fcfs = run_service(2, 4, SchedulingPolicy::Fcfs, jobs.clone());
        let queued = run_service(2, 4, SchedulingPolicy::PerClientQueues, jobs);
        assert_eq!(queued.stuck, 0);
        if fcfs.stuck == 0 {
            assert!(
                queued.makespan <= fcfs.makespan,
                "queue-based {:?} must not lose to FCFS {:?}",
                queued.makespan,
                fcfs.makespan
            );
        }
    }

    #[test]
    fn deterministic() {
        let jobs = round_robin_jobs(20, 3, 3, MS);
        let a = run_service(3, 2, SchedulingPolicy::PerClientQueues, jobs.clone());
        let b = run_service(3, 2, SchedulingPolicy::PerClientQueues, jobs);
        assert_eq!(a, b);
    }

    #[test]
    fn critpath_blames_sync_and_reaches_makespan() {
        // One core per proxy serializes the collectives: the path is a sync
        // chain covering the whole makespan, with zero-residual stalls.
        let jobs = round_robin_jobs(8, 2, 2, MS);
        let cp = CritPath::new();
        let out = run_service_explained(
            2,
            1,
            SchedulingPolicy::PerClientQueues,
            jobs,
            Some(cp.clone()),
        );
        assert_eq!(out.stuck, 0);
        let ex = cp.analyze();
        assert_eq!(ex.iterations.len(), 1);
        assert_eq!(ex.total, out.makespan);
        assert!(ex.fraction(crit_class::SYNC) > 0.5, "{:?}", ex.blame);
        let sum: f64 = crit_class::ALL.iter().map(|c| ex.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn critpath_recording_does_not_perturb_outcome() {
        let jobs = round_robin_jobs(12, 3, 3, MS);
        let bare = run_service(3, 2, SchedulingPolicy::PerClientQueues, jobs.clone());
        let wired = run_service_explained(
            3,
            2,
            SchedulingPolicy::PerClientQueues,
            jobs,
            Some(CritPath::new()),
        );
        assert_eq!(bare, wired);
    }
}
