//! Baseline synchronization schemes: the DENSE centralized CCI parameter
//! server (Fig. 5) and a conventional CPU parameter server.
//!
//! DENSE keeps the global parameters on a *single* memory device; every
//! worker updates them coherently over CCI. All parameter traffic funnels
//! through that device's serial-bus link, and the coherence directory pays
//! invalidation costs that grow with the number of sharers (§III-D) — the
//! two scalability problems COARSE's disaggregation removes.

use std::collections::BTreeMap;

use coarse_cci::address::{AddressSpace, CciAddr};
use coarse_cci::coherence::{CoherenceCost, Directory};
use coarse_cci::storage::ParameterStore;
use coarse_cci::tensor::{Tensor, TensorId};
use coarse_fabric::device::DeviceId;
use coarse_simcore::units::ByteSize;

/// The DENSE baseline: one memory device, one global parameter region,
/// coherent updates from every worker.
#[derive(Debug)]
pub struct DenseSystem {
    device: DeviceId,
    workers: Vec<DeviceId>,
    store: ParameterStore,
    directory: Directory,
    region: CciAddr,
    pending: BTreeMap<TensorId, (Vec<f32>, usize)>,
}

impl DenseSystem {
    /// A DENSE deployment: `workers` share the parameter region exported by
    /// `device`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is empty.
    pub fn new(device: DeviceId, workers: &[DeviceId]) -> Self {
        assert!(!workers.is_empty(), "need at least one worker");
        let mut space = AddressSpace::new();
        let region = space.map(device, ByteSize::gib(16)).base;
        DenseSystem {
            device,
            workers: workers.to_vec(),
            store: ParameterStore::new(),
            directory: Directory::new(),
            region,
            pending: BTreeMap::new(),
        }
    }

    /// The memory device hosting the global parameters.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The global parameter store.
    pub fn store(&self) -> &ParameterStore {
        &self.store
    }

    /// Worker `w` pushes its gradient for one tensor; the update is applied
    /// coherently (exclusive write to the shared region). Returns the
    /// coherence cost of this access.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or tensor lengths disagree.
    pub fn push(&mut self, w: usize, tensor: &Tensor) -> CoherenceCost {
        let writer = self.workers[w];
        let cost = self
            .directory
            .write(self.region, writer, tensor.byte_size());
        let entry = self
            .pending
            .entry(tensor.id())
            .or_insert_with(|| (vec![0.0; tensor.len()], 0));
        assert_eq!(entry.0.len(), tensor.len(), "tensor length mismatch");
        for (a, b) in entry.0.iter_mut().zip(tensor.data()) {
            *a += *b;
        }
        entry.1 += 1;
        // Once every worker contributed, the server averages and publishes.
        if entry.1 == self.workers.len() {
            // simlint: allow(panic-in-library, reason = "BSP contract: finish() is only reached for tensors begun in the same iteration")
            let (mut sum, _) = self.pending.remove(&tensor.id()).expect("entry exists");
            let inv = 1.0 / self.workers.len() as f32;
            for x in &mut sum {
                *x *= inv;
            }
            let t = Tensor::new(tensor.id(), sum);
            if self.store.get(t.id()).is_none() {
                self.store.insert(&t);
            } else {
                self.store.update(t.id(), t.data());
            }
        }
        cost
    }

    /// Worker `w` pulls the published value (coherent shared read). Returns
    /// the tensor and the read's coherence cost.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has not been published yet.
    pub fn pull(&mut self, w: usize, tensor: TensorId) -> (Tensor, CoherenceCost) {
        let t = self
            .store
            .get(tensor)
            // simlint: allow(panic-in-library, reason = "documented # Panics contract: pulls follow a completed publish in the BSP schedule")
            .unwrap_or_else(|| panic!("pull of unpublished tensor {tensor}"));
        let cost = self
            .directory
            .read(self.region, self.workers[w], t.byte_size());
        (t, cost)
    }

    /// Total coherence protocol traffic so far.
    pub fn coherence_traffic(&self) -> CoherenceCost {
        self.directory.total_cost()
    }

    /// Bytes crossing the single device's serial-bus link per full
    /// synchronization round of `payload` (every worker pushes and pulls the
    /// whole model) — the DENSE bandwidth funnel.
    pub fn link_bytes_per_round(&self, payload: ByteSize) -> ByteSize {
        payload * (2 * self.workers.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(workers: usize) -> (DenseSystem, Vec<DeviceId>) {
        let mut t = coarse_fabric::topology::Topology::new();
        let dev = t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "m", 0);
        let ws: Vec<DeviceId> = (0..workers)
            .map(|i| t.add_device(coarse_fabric::device::DeviceKind::Gpu, format!("g{i}"), 0))
            .collect();
        (DenseSystem::new(dev, &ws), ws)
    }

    #[test]
    fn publishes_average_after_all_pushes() {
        let (mut d, _) = setup(4);
        for w in 0..4 {
            let t = Tensor::new(TensorId(1), vec![(w + 1) as f32; 8]);
            d.push(w, &t);
        }
        let (t, _) = d.pull(0, TensorId(1));
        assert_eq!(t.data(), &[2.5; 8]); // mean of 1..4
    }

    #[test]
    fn partial_pushes_do_not_publish() {
        let (mut d, _) = setup(2);
        d.push(0, &Tensor::new(TensorId(1), vec![1.0; 4]));
        assert!(d.store().get(TensorId(1)).is_none());
    }

    #[test]
    fn coherence_cost_grows_with_sharers() {
        // More workers reading the shared region → pricier writes.
        let traffic = |n: usize| {
            let (mut d, _) = setup(n);
            // Everyone reads first (becomes a sharer), then one writes.
            for w in 0..n {
                d.push(w, &Tensor::new(TensorId(1), vec![1.0; 1024]));
                if d.store().get(TensorId(1)).is_some() {
                    d.pull(w, TensorId(1));
                }
            }
            // Second round: every write invalidates the other sharers.
            for w in 0..n {
                d.push(w, &Tensor::new(TensorId(1), vec![2.0; 1024]));
            }
            d.coherence_traffic().protocol_bytes
        };
        assert!(traffic(8) > traffic(2));
    }

    #[test]
    fn link_funnel_scales_with_workers() {
        let (d4, _) = setup(4);
        let (d8, _) = setup(8);
        let payload = ByteSize::mib(100);
        assert_eq!(
            d8.link_bytes_per_round(payload).as_u64(),
            2 * d4.link_bytes_per_round(payload).as_u64()
        );
    }

    #[test]
    #[should_panic(expected = "unpublished tensor")]
    fn pull_before_publish_panics() {
        let (mut d, _) = setup(2);
        d.pull(0, TensorId(9));
    }
}
