//! Tensor routing tables (§III-E).
//!
//! Each client owns a routing table with three entries: a size threshold
//! `S`, a latency-friendly proxy (`LatProxy`) for tensors smaller than `S`,
//! and a bandwidth-friendly proxy (`BwProxy`) for the rest. On machines
//! with PCIe anti-locality the `BwProxy` is a *remote* device — routing
//! around the slow local hairpin is precisely COARSE's trick.

use coarse_fabric::device::DeviceId;
use coarse_simcore::time::SimTime;
use coarse_simcore::units::ByteSize;

/// A client's routing decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingTable {
    /// Destination for small (latency-critical) tensors.
    pub lat_proxy: DeviceId,
    /// Destination for large (bandwidth-critical) tensors.
    pub bw_proxy: DeviceId,
    /// Tensors strictly smaller than this go to `lat_proxy`.
    pub threshold: ByteSize,
    /// Partition shard size `S'`: the smallest transfer achieving full
    /// bandwidth to `bw_proxy`.
    pub shard_size: ByteSize,
    /// When this table was built (for dynamic re-profiling).
    pub built_at: SimTime,
}

impl RoutingTable {
    /// A degenerate table sending everything to one proxy (used when the
    /// latency- and bandwidth-optimal proxies coincide).
    pub fn single(proxy: DeviceId, shard_size: ByteSize, built_at: SimTime) -> Self {
        RoutingTable {
            lat_proxy: proxy,
            bw_proxy: proxy,
            threshold: ByteSize::ZERO,
            shard_size,
            built_at,
        }
    }

    /// The proxy a tensor of `size` should be pushed to.
    pub fn route_for(&self, size: ByteSize) -> DeviceId {
        if size < self.threshold {
            self.lat_proxy
        } else {
            self.bw_proxy
        }
    }

    /// True if the table distinguishes latency from bandwidth traffic.
    pub fn is_split(&self) -> bool {
        self.lat_proxy != self.bw_proxy
    }

    /// Whether the table is older than `interval` at `now` and should be
    /// rebuilt (§III-E "dynamic profiling mechanism").
    pub fn is_stale(&self, now: SimTime, interval: coarse_simcore::time::SimDuration) -> bool {
        now.saturating_duration_since(self.built_at) >= interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_simcore::time::SimDuration;

    fn two_devices() -> (DeviceId, DeviceId) {
        let mut t = coarse_fabric::topology::Topology::new();
        let a = t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "a", 0);
        let b = t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "b", 0);
        (a, b)
    }

    #[test]
    fn routes_by_threshold() {
        let (lat, bw) = two_devices();
        let table = RoutingTable {
            lat_proxy: lat,
            bw_proxy: bw,
            threshold: ByteSize::mib(2),
            shard_size: ByteSize::mib(2),
            built_at: SimTime::ZERO,
        };
        assert_eq!(table.route_for(ByteSize::kib(4)), lat);
        assert_eq!(table.route_for(ByteSize::mib(2)), bw);
        assert_eq!(table.route_for(ByteSize::mib(64)), bw);
        assert!(table.is_split());
    }

    #[test]
    fn single_proxy_table() {
        let (p, _) = two_devices();
        let table = RoutingTable::single(p, ByteSize::mib(2), SimTime::ZERO);
        assert_eq!(table.route_for(ByteSize::ZERO), p);
        assert_eq!(table.route_for(ByteSize::gib(1)), p);
        assert!(!table.is_split());
    }

    #[test]
    fn staleness() {
        let (p, _) = two_devices();
        let table = RoutingTable::single(p, ByteSize::mib(2), SimTime::from_nanos(1000));
        let interval = SimDuration::from_micros(1);
        assert!(!table.is_stale(SimTime::from_nanos(1500), interval));
        assert!(table.is_stale(SimTime::from_nanos(2000), interval));
    }
}
