//! Optimizers applied at the parameter storage.
//!
//! A parameter server does not merely average gradients: it applies the
//! optimizer update to the master weights and publishes the new values
//! (§II-A: the server "aggregates all the received updates for each
//! parameter ... and then sends back to all replicas a newly computed set
//! of values"). These are the update rules the memory devices' processors
//! run; COARSE keeps the optimizer *state* (momenta) in device DRAM, which
//! is exactly the residency win behind Fig. 16e.

use std::collections::BTreeMap;

use coarse_cci::tensor::TensorId;

/// An optimizer update rule with per-tensor state.
///
/// Implementations must be deterministic: the same gradient sequence must
/// produce the same weights on every proxy replica.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update step: `params ← params - f(grad)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `params` and `grad` lengths differ.
    fn step(&mut self, id: TensorId, params: &mut [f32], grad: &[f32]);

    /// Bytes of optimizer state per parameter element (for the memory
    /// model: 0 for SGD, 4 for momentum, 8 for Adam).
    fn state_bytes_per_param(&self) -> u64;
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, _id: TensorId, params: &mut [f32], grad: &[f32]) {
        assert_eq!(
            params.len(),
            grad.len(),
            "parameter/gradient length mismatch"
        );
        for (p, g) in params.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }

    fn state_bytes_per_param(&self) -> u64 {
        0
    }
}

/// SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (e.g. 0.9).
    pub momentum: f32,
    velocity: BTreeMap<TensorId, Vec<f32>>,
}

impl SgdMomentum {
    /// Momentum SGD.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        SgdMomentum {
            lr,
            momentum,
            velocity: BTreeMap::new(),
        }
    }
}

impl Optimizer for SgdMomentum {
    fn step(&mut self, id: TensorId, params: &mut [f32], grad: &[f32]) {
        assert_eq!(
            params.len(),
            grad.len(),
            "parameter/gradient length mismatch"
        );
        let v = self
            .velocity
            .entry(id)
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(v.len(), params.len(), "tensor length changed");
        for ((p, g), vel) in params.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vel = self.momentum * *vel + g;
            *p -= self.lr * *vel;
        }
    }

    fn state_bytes_per_param(&self) -> u64 {
        4
    }
}

/// Adam (Kingma & Ba): the optimizer whose 8 bytes/param of state drives
/// the paper's memory-capacity arithmetic.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    step: u64,
    first: BTreeMap<TensorId, Vec<f32>>,
    second: BTreeMap<TensorId, Vec<f32>>,
}

impl Adam {
    /// Adam with the canonical hyperparameters (β₁ 0.9, β₂ 0.999, ε 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            first: BTreeMap::new(),
            second: BTreeMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, id: TensorId, params: &mut [f32], grad: &[f32]) {
        assert_eq!(
            params.len(),
            grad.len(),
            "parameter/gradient length mismatch"
        );
        // One logical step per tensor update; bias correction uses the
        // per-tensor count implicitly via the global counter advanced once
        // per (tensor, step) pair — adequate since every tensor updates
        // once per round.
        self.step += 1;
        let t = self.step as f32;
        let m = self
            .first
            .entry(id)
            .or_insert_with(|| vec![0.0; params.len()]);
        let v = self
            .second
            .entry(id)
            .or_insert_with(|| vec![0.0; params.len()]);
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (((p, g), mi), vi) in params
            .iter_mut()
            .zip(grad)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn state_bytes_per_param(&self) -> u64 {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_converges(mut opt: impl Optimizer, iters: u32, tol: f32) {
        // Minimize f(w) = ||w - target||^2 / 2; gradient = w - target.
        let target = [3.0f32, -1.5, 0.25];
        let mut w = [0.0f32; 3];
        for _ in 0..iters {
            let grad: Vec<f32> = w.iter().zip(&target).map(|(wi, ti)| wi - ti).collect();
            opt.step(TensorId(0), &mut w, &grad);
        }
        for (wi, ti) in w.iter().zip(&target) {
            assert!((wi - ti).abs() < tol, "{wi} vs {ti}");
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        quadratic_converges(Sgd::new(0.1), 200, 1e-3);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        quadratic_converges(SgdMomentum::new(0.05, 0.9), 300, 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        quadratic_converges(Adam::new(0.05), 500, 1e-2);
    }

    #[test]
    fn sgd_single_step_exact() {
        let mut opt = Sgd::new(0.5);
        let mut w = [1.0f32, 2.0];
        opt.step(TensorId(0), &mut w, &[0.2, -0.4]);
        assert_eq!(w, [0.9, 2.2]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = SgdMomentum::new(1.0, 0.5);
        let mut w = [0.0f32];
        opt.step(TensorId(0), &mut w, &[1.0]); // v=1, w=-1
        opt.step(TensorId(0), &mut w, &[1.0]); // v=1.5, w=-2.5
        assert_eq!(w, [-2.5]);
    }

    #[test]
    fn state_sizes_match_memory_model() {
        assert_eq!(Sgd::new(0.1).state_bytes_per_param(), 0);
        assert_eq!(SgdMomentum::new(0.1, 0.9).state_bytes_per_param(), 4);
        // Adam's 8 bytes/param is the constant the capacity model uses.
        assert_eq!(
            Adam::new(0.1).state_bytes_per_param(),
            coarse_models::memory::ADAM_BYTES_PER_PARAM
        );
    }

    #[test]
    fn per_tensor_state_is_independent() {
        let mut opt = SgdMomentum::new(1.0, 0.9);
        let mut a = [0.0f32];
        let mut b = [0.0f32];
        opt.step(TensorId(0), &mut a, &[1.0]);
        opt.step(TensorId(1), &mut b, &[1.0]);
        // Same first step for both: no cross-tensor contamination.
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_gradient_rejected() {
        let mut opt = Sgd::new(0.1);
        let mut w = [0.0f32; 2];
        opt.step(TensorId(0), &mut w, &[1.0]);
    }
}
