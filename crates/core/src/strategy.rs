//! The framework-facing distribution strategy (§IV-B "TensorFlow
//! Integration").
//!
//! The paper ships COARSE as a drop-in distribution strategy: "the user
//! just needs to import COARSE Python library and replace the original
//! distribution strategy with COARSE strategy, which typically requires 2
//! lines of code change." [`CoarseStrategy`] is that surface: construct it
//! from a machine partition, then drive training with
//! [`run_step`](CoarseStrategy::run_step) — gradients in, averaged
//! parameters out, checkpointing on epoch boundaries.

use coarse_cci::storage::Snapshot;
use coarse_cci::tensor::{Tensor, TensorId};
use coarse_fabric::device::DeviceId;
use coarse_fabric::topology::Topology;

use crate::system::CoarseSystem;

/// Errors surfaced by the strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyError {
    /// `run_step` was called with the wrong number of gradient sets.
    WorkerCountMismatch {
        /// Workers the strategy was built with.
        expected: usize,
        /// Gradient sets supplied.
        got: usize,
    },
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::WorkerCountMismatch { expected, got } => {
                write!(f, "expected {expected} gradient sets, got {got}")
            }
        }
    }
}

impl std::error::Error for StrategyError {}

/// A drop-in data-parallel distribution strategy backed by COARSE.
#[derive(Debug)]
pub struct CoarseStrategy {
    system: CoarseSystem,
    steps: u64,
    steps_per_epoch: u64,
    checkpoints: Vec<Vec<Snapshot>>,
}

impl CoarseStrategy {
    /// Builds the strategy over a machine's fabric, profiling routing
    /// tables for every worker (the strategy's "2 lines": construct, then
    /// call [`run_step`](Self::run_step)).
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `mem_devices` is empty.
    pub fn new(
        topo: &Topology,
        workers: &[DeviceId],
        mem_devices: &[DeviceId],
        steps_per_epoch: u64,
    ) -> Self {
        assert!(steps_per_epoch > 0, "an epoch needs at least one step");
        CoarseStrategy {
            system: CoarseSystem::new(topo, workers, mem_devices),
            steps: 0,
            steps_per_epoch,
            checkpoints: Vec::new(),
        }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.system.worker_count()
    }

    /// Installs an optimizer: steps now apply the update rule to the
    /// registered master weights and return the *new weights* (see
    /// [`CoarseSystem::set_optimizer`](crate::system::CoarseSystem::set_optimizer)).
    pub fn set_optimizer(&mut self, optimizer: Box<dyn crate::optim::Optimizer>) {
        self.system.set_optimizer(optimizer);
    }

    /// Registers initial master weights on the memory devices (required
    /// before optimizer-mode steps).
    pub fn register_parameters(&mut self, params: &[Tensor]) {
        self.system.register_parameters(params);
    }

    /// Steps run so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Checkpoints taken so far (one per completed epoch).
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Runs one training step: synchronizes every worker's gradients and
    /// returns the averaged tensors each worker applies. Takes an automatic
    /// epoch checkpoint every `steps_per_epoch` steps (§IV-A fault
    /// tolerance).
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::WorkerCountMismatch`] if `gradients` has the
    /// wrong length.
    pub fn run_step(
        &mut self,
        gradients: &[Vec<Tensor>],
    ) -> Result<Vec<Vec<Tensor>>, StrategyError> {
        if gradients.len() != self.system.worker_count() {
            return Err(StrategyError::WorkerCountMismatch {
                expected: self.system.worker_count(),
                got: gradients.len(),
            });
        }
        let result = self.system.synchronize(gradients);
        self.steps += 1;
        if self.steps.is_multiple_of(self.steps_per_epoch) {
            self.checkpoints.push(self.system.checkpoint());
        }
        Ok(result)
    }

    /// Recovers from a worker failure by rolling the parameter storage back
    /// to the latest epoch checkpoint. Returns the epoch rolled back to, or
    /// `None` if no checkpoint exists yet.
    pub fn recover(&mut self) -> Option<u64> {
        let snapshot = self.checkpoints.last()?;
        self.system.restore(snapshot);
        Some(snapshot[0].epoch())
    }

    /// The stored value of a tensor on the first memory device, if present
    /// (test/debug aid).
    pub fn stored(&self, id: TensorId) -> Option<Tensor> {
        self.system.stored(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_fabric::machines::{sdsc_p100, PartitionScheme};

    fn strategy(steps_per_epoch: u64) -> CoarseStrategy {
        let m = sdsc_p100();
        let p = m.partition(PartitionScheme::OneToOne);
        CoarseStrategy::new(m.topology(), &p.workers, &p.mem_devices, steps_per_epoch)
    }

    fn grads(workers: usize, value: f32) -> Vec<Vec<Tensor>> {
        (0..workers)
            .map(|w| vec![Tensor::new(TensorId(0), vec![value + w as f32; 100])])
            .collect()
    }

    #[test]
    fn run_step_returns_average() {
        let mut s = strategy(10);
        let result = s.run_step(&grads(2, 1.0)).unwrap();
        // mean of 1.0 and 2.0.
        assert_eq!(result[0][0].data()[0], 1.5);
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn epoch_checkpoints_taken() {
        let mut s = strategy(2);
        for i in 0..5 {
            s.run_step(&grads(2, i as f32)).unwrap();
        }
        assert_eq!(s.checkpoint_count(), 2);
    }

    #[test]
    fn recover_rolls_back_to_epoch() {
        let mut s = strategy(1);
        s.run_step(&grads(2, 1.0)).unwrap(); // epoch 0 checkpoint: value 1.5
        s.run_step(&grads(2, 9.0)).unwrap(); // epoch 1 checkpoint: value 9.5
        let before = s.stored(TensorId(0)).unwrap();
        assert_eq!(before.data()[0], 9.5);
        let epoch = s.recover().unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(s.stored(TensorId(0)).unwrap().data()[0], 9.5);
    }

    #[test]
    fn optimizer_mode_publishes_updated_weights() {
        use crate::optim::Sgd;
        let mut s = strategy(100);
        s.set_optimizer(Box::new(Sgd::new(0.5)));
        s.register_parameters(&[Tensor::new(TensorId(0), vec![1.0; 100])]);
        // Both workers push gradient 0.4 → mean 0.4 → w ← 1.0 − 0.5·0.4.
        let grads: Vec<Vec<Tensor>> = (0..2)
            .map(|_| vec![Tensor::new(TensorId(0), vec![0.4; 100])])
            .collect();
        let out = s.run_step(&grads).unwrap();
        assert_eq!(out[0][0].data()[0], 0.8);
        assert_eq!(s.stored(TensorId(0)).unwrap().data()[0], 0.8);
    }

    #[test]
    fn recover_without_checkpoint_is_none() {
        let mut s = strategy(10);
        assert_eq!(s.recover(), None);
    }

    #[test]
    fn mismatched_worker_count_rejected() {
        let mut s = strategy(10);
        let err = s.run_step(&grads(3, 1.0)).unwrap_err();
        assert_eq!(
            err,
            StrategyError::WorkerCountMismatch {
                expected: 2,
                got: 3
            }
        );
    }
}
