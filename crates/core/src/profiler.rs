//! The communication profiler that builds routing tables (§III-E).
//!
//! Ahead of training, COARSE measures each client's latency and bandwidth
//! to every proxy, picks `LatProxy` (lowest latency) and `BwProxy` (highest
//! bandwidth), finds the crossover size `S` where both take equal time, and
//! finds the partition size `S'` — the smallest transfer achieving full
//! bandwidth to `BwProxy`. Training re-runs the profiler periodically
//! (dynamic profiling).

use coarse_fabric::device::DeviceId;
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::probe;
use coarse_fabric::topology::{LinkClass, LinkMask, Topology};
use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::units::ByteSize;

use crate::routing::RoutingTable;

/// A profiled client→proxy path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProxyProfile {
    /// The measured proxy.
    pub proxy: DeviceId,
    /// Small-transfer delivery latency.
    pub latency: SimDuration,
    /// Large-transfer achieved bandwidth, bytes/sec.
    pub bandwidth: f64,
}

/// The profiler's link mask: COARSE measures the serial-bus path (plus
/// the inter-node network on clusters), disabling NVLink when present
/// (§IV-B), and never rides the dedicated proxy-to-proxy CCI fabric.
pub const PROFILER_LINKS: LinkMask = LinkMask::only(LinkClass::Pcie).with(LinkClass::Network);

/// Measures every proxy from `client` (Fig. 15's data).
pub fn profile_proxies(
    topo: &Topology,
    client: DeviceId,
    proxies: &[DeviceId],
) -> Vec<ProxyProfile> {
    proxies
        .iter()
        .map(|&p| ProxyProfile {
            proxy: p,
            latency: probe::measure_latency(topo, client, p, PROFILER_LINKS),
            bandwidth: probe::measure_unidirectional(
                topo,
                client,
                p,
                ByteSize::mib(64),
                PROFILER_LINKS,
            ),
        })
        .collect()
}

/// End-to-end time of one transfer of `size` from `client` to `proxy` on an
/// otherwise idle fabric.
fn transfer_time(
    topo: &Topology,
    client: DeviceId,
    proxy: DeviceId,
    size: ByteSize,
) -> SimDuration {
    let mut eng = TransferEngine::new(topo.clone());
    eng.transfer_masked(client, proxy, size, SimTime::ZERO, PROFILER_LINKS)
        // simlint: allow(panic-in-library, reason = "profiling runs on the deployed machine topology, which connects client and proxy by construction")
        .expect("client and proxy must be connected")
        .elapsed()
}

/// Fraction of peak bandwidth that counts as "full" when choosing `S'`.
pub const FULL_BANDWIDTH_FRACTION: f64 = 0.95;

/// Builds a client's routing table by measurement.
///
/// # Panics
///
/// Panics if `proxies` is empty or a proxy is unreachable.
pub fn build_routing_table(
    topo: &Topology,
    client: DeviceId,
    proxies: &[DeviceId],
    now: SimTime,
) -> RoutingTable {
    build_routing_table_for(topo, client, proxies, 0, now)
}

/// Like [`build_routing_table`], with the client's worker ordinal used to
/// spread bandwidth ties: when several proxies measure equally fast (within
/// 2%), clients rotate across them instead of all funneling into one — the
/// load-aware assignment implied by "routes a GPU's tensor to a
/// bandwidth-friendly memory device" (§I).
///
/// # Panics
///
/// Panics if `proxies` is empty or a proxy is unreachable.
pub fn build_routing_table_for(
    topo: &Topology,
    client: DeviceId,
    proxies: &[DeviceId],
    ordinal: usize,
    now: SimTime,
) -> RoutingTable {
    assert!(!proxies.is_empty(), "need at least one proxy to profile");
    let profiles = profile_proxies(topo, client, proxies);

    let best_latency = profiles
        .iter()
        .map(|p| p.latency)
        .min()
        // simlint: allow(panic-in-library, reason = "the shard-size grid iterated above is statically non-empty")
        .expect("non-empty profiles");
    let lat_ties: Vec<&ProxyProfile> = profiles
        .iter()
        .filter(|p| p.latency <= best_latency.mul_f64(1.02))
        .collect();
    let lat = lat_ties[ordinal % lat_ties.len()];
    let best_bw = profiles.iter().map(|p| p.bandwidth).fold(0.0f64, f64::max);
    let ties: Vec<&ProxyProfile> = profiles
        .iter()
        .filter(|p| p.bandwidth >= best_bw * 0.98)
        .collect();
    let bw = ties[ordinal % ties.len()];

    // S': smallest probe size reaching FULL_BANDWIDTH_FRACTION of the
    // BwProxy's large-transfer bandwidth.
    let sweep = probe::bandwidth_sweep(
        topo,
        client,
        bw.proxy,
        &probe::standard_sizes(),
        PROFILER_LINKS,
    );
    let shard_size = sweep
        .iter()
        .find(|(_, rate)| *rate >= bw.bandwidth * FULL_BANDWIDTH_FRACTION)
        .map(|&(s, _)| s)
        .unwrap_or_else(|| ByteSize::mib(2));

    if lat.proxy == bw.proxy {
        return RoutingTable::single(lat.proxy, shard_size, now);
    }

    // Crossover S: smallest probe size at which the BwProxy path is at
    // least as fast end-to-end as the LatProxy path.
    let threshold = probe::standard_sizes()
        .into_iter()
        .find(|&s| {
            transfer_time(topo, client, bw.proxy, s) <= transfer_time(topo, client, lat.proxy, s)
        })
        .unwrap_or_else(|| ByteSize::mib(2));

    RoutingTable {
        lat_proxy: lat.proxy,
        bw_proxy: bw.proxy,
        threshold,
        shard_size,
        built_at: now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_fabric::machines::{aws_t4, aws_v100, sdsc_p100, PartitionScheme};

    #[test]
    fn v100_routes_large_tensors_remotely() {
        // Anti-locality: the bandwidth proxy is NOT the same-switch one.
        let m = aws_v100();
        let part = m.partition(PartitionScheme::OneToOne);
        let client = part.workers[0];
        let local_proxy = part.proxy_for(0);
        let table = build_routing_table(m.topology(), client, &part.mem_devices, SimTime::ZERO);
        assert!(table.is_split(), "V100 must split lat/bw proxies");
        assert_eq!(table.lat_proxy, local_proxy, "local proxy wins latency");
        assert_ne!(table.bw_proxy, local_proxy, "a remote proxy wins bandwidth");
        // Small tensors stay local, large go remote.
        assert_eq!(table.route_for(ByteSize::kib(4)), local_proxy);
        assert_eq!(table.route_for(ByteSize::mib(64)), table.bw_proxy);
    }

    #[test]
    fn p100_keeps_everything_local() {
        // Normal locality: the same-switch proxy wins both metrics.
        let m = sdsc_p100();
        let part = m.partition(PartitionScheme::OneToOne);
        let client = part.workers[0];
        let table = build_routing_table(m.topology(), client, &part.mem_devices, SimTime::ZERO);
        assert!(!table.is_split());
        assert_eq!(table.lat_proxy, part.proxy_for(0));
    }

    #[test]
    fn t4_uniform_bandwidth_single_proxy() {
        let m = aws_t4();
        let part = m.partition(PartitionScheme::OneToOne);
        let table = build_routing_table(
            m.topology(),
            part.workers[0],
            &part.mem_devices,
            SimTime::ZERO,
        );
        // All paths stage through the CPU: no bandwidth diversity to exploit.
        assert!(!table.is_split());
    }

    #[test]
    fn shard_size_is_full_bandwidth_point() {
        let m = sdsc_p100();
        let part = m.partition(PartitionScheme::OneToOne);
        let client = part.workers[0];
        let table = build_routing_table(m.topology(), client, &part.mem_devices, SimTime::ZERO);
        // The P100 BwProxy is the same-switch hairpin (half-size 8KiB); the
        // first probe size achieving ≥95% of its measured large-transfer
        // bandwidth is 512KiB.
        assert_eq!(table.shard_size, ByteSize::kib(512));
        // And on V100, whose BwProxy is reached through the CPU path
        // (half-size 64KiB), full bandwidth needs the 2MiB probe point —
        // the paper's Fig. 14 value.
        let v = coarse_fabric::machines::aws_v100();
        let vp = v.partition(PartitionScheme::OneToOne);
        let vt = build_routing_table(v.topology(), vp.workers[0], &vp.mem_devices, SimTime::ZERO);
        assert_eq!(vt.shard_size, ByteSize::mib(2));
    }

    #[test]
    fn profiles_cover_all_proxies() {
        let m = sdsc_p100();
        let part = m.partition(PartitionScheme::OneToOne);
        let profiles = profile_proxies(m.topology(), part.workers[0], &part.mem_devices);
        assert_eq!(profiles.len(), part.mem_devices.len());
        assert!(profiles.iter().all(|p| p.bandwidth > 0.0));
        // Local proxy has strictly lower latency than the remote one.
        assert!(profiles[0].latency < profiles[1].latency);
    }

    #[test]
    fn threshold_separates_regimes_on_v100() {
        let m = aws_v100();
        let part = m.partition(PartitionScheme::OneToOne);
        let client = part.workers[0];
        let table = build_routing_table(m.topology(), client, &part.mem_devices, SimTime::ZERO);
        // At the threshold, the remote path must indeed be no slower.
        let t_bw = transfer_time(m.topology(), client, table.bw_proxy, table.threshold);
        let t_lat = transfer_time(m.topology(), client, table.lat_proxy, table.threshold);
        assert!(t_bw <= t_lat);
        // Just below the smallest probe size, the local path wins.
        let tiny = ByteSize::kib(4);
        assert!(
            transfer_time(m.topology(), client, table.lat_proxy, tiny)
                < transfer_time(m.topology(), client, table.bw_proxy, tiny)
        );
    }
}
