//! The parameter proxy running on each memory device (§III-D).
//!
//! A proxy is the communication bridge between its clients and the
//! parameter storage co-located on the same memory device. It keeps one
//! FIFO queue per client (the deadlock-avoidance scheme of §III-F),
//! scatter-adds arriving gradient shards into per-tensor accumulation
//! buffers, joins the cross-device reduction, and serves the updated shards
//! back on pull.

use std::collections::{BTreeMap, VecDeque};

use coarse_cci::storage::ParameterStore;
use coarse_cci::tensor::{Tensor, TensorId, TensorShard};
use coarse_fabric::device::DeviceId;
use coarse_simcore::metrics::{name as metric, MetricRegistry};
use coarse_simcore::oracle::{OracleEvent, OracleHub};
use coarse_simcore::time::SimTime;
use coarse_simcore::trace::{category, SharedTracer, TrackId};

use crate::client::PushRequest;

/// Metadata of one shard parked for pull service.
#[derive(Debug, Clone)]
struct ShardRecord {
    client: usize,
    index: u32,
    offset: usize,
    len: usize,
}

/// A proxy plus its co-located parameter storage.
#[derive(Debug)]
pub struct ParameterProxy {
    device: DeviceId,
    /// Per-client FIFO queues (deadlock avoidance, §III-F).
    queues: BTreeMap<usize, VecDeque<PushRequest>>,
    /// Per-tensor local accumulation: sum of this proxy's clients' shards.
    accum: BTreeMap<TensorId, Vec<f32>>,
    /// Which shards each tensor's clients parked here (for pull service).
    shards: BTreeMap<TensorId, Vec<ShardRecord>>,
    /// The co-located storage partition (COW, snapshottable).
    store: ParameterStore,
    /// Parameter cache: latest reduced values.
    cache: BTreeMap<TensorId, Vec<f32>>,
    /// Trace sink plus this proxy's interned track, when tracing is on.
    trace: Option<(SharedTracer, TrackId)>,
    /// Metric sink, when metering is on.
    metrics: Option<MetricRegistry>,
    /// Oracle battery, when invariant checking is on.
    oracles: Option<OracleHub>,
    /// Externally supplied clock for trace stamps (the proxy is untimed).
    clock: SimTime,
}

impl ParameterProxy {
    /// A proxy bound to memory device `device`.
    pub fn new(device: DeviceId) -> Self {
        ParameterProxy {
            device,
            queues: BTreeMap::new(),
            accum: BTreeMap::new(),
            shards: BTreeMap::new(),
            store: ParameterStore::new(),
            cache: BTreeMap::new(),
            trace: None,
            metrics: None,
            oracles: None,
            clock: SimTime::ZERO,
        }
    }

    /// Attaches a tracer; queue-depth gauges (total and per client) and
    /// service spans are then recorded on a track named `"proxy <device>"`.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        if tracer.is_enabled() {
            let track = tracer.track(&format!("proxy {}", self.device));
            self.trace = Some((tracer, track));
        }
    }

    /// Sets the timestamp used for subsequent trace events.
    pub fn set_time(&mut self, now: SimTime) {
        self.clock = now;
    }

    /// Attaches a metric registry: every enqueue increments
    /// `core.proxy.pushes` and samples the total queue depth into the
    /// `core.proxy.queue_depth` histogram.
    pub fn set_metrics(&mut self, metrics: MetricRegistry) {
        self.metrics = Some(metrics);
    }

    /// Attaches an oracle battery: every enqueue emits a `ProxyEnqueue`
    /// observation (feeding the retry-FIFO ordering oracle) and every
    /// round-state discard emits a `ProxyReset`.
    pub fn set_oracles(&mut self, oracles: OracleHub) {
        self.oracles = Some(oracles);
    }

    /// Samples the total queue depth, plus `client`'s own depth when given.
    fn trace_queue_depth(&self, client: Option<usize>) {
        if let Some((tracer, track)) = &self.trace {
            tracer.counter(
                self.clock,
                category::PROXY,
                *track,
                "queue_depth",
                self.queued() as f64,
            );
            if let Some(c) = client {
                let depth = self.queues.get(&c).map_or(0, VecDeque::len);
                tracer.counter(
                    self.clock,
                    category::PROXY,
                    *track,
                    &format!("queue_depth client {c}"),
                    depth as f64,
                );
            }
        }
    }

    /// The memory device hosting this proxy.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The co-located parameter storage.
    pub fn store(&self) -> &ParameterStore {
        &self.store
    }

    /// Mutable access to the co-located storage (checkpointing).
    pub fn store_mut(&mut self) -> &mut ParameterStore {
        &mut self.store
    }

    /// Enqueues a push request whose shard travelled under a CRC32 seal,
    /// verifying integrity on receipt. A corrupted shard is rejected before
    /// it can contaminate the global reduction.
    ///
    /// # Errors
    ///
    /// Returns [`coarse_cci::integrity::IntegrityError`] if the seal does
    /// not match.
    ///
    /// # Panics
    ///
    /// Panics if the request is addressed to a different device.
    pub fn enqueue_sealed(
        &mut self,
        client: usize,
        sealed: coarse_cci::integrity::SealedShard,
        shard_count: u32,
        tensor_len: usize,
    ) -> Result<(), coarse_cci::integrity::IntegrityError> {
        let shard = sealed.verify()?;
        self.enqueue(
            client,
            PushRequest {
                proxy: self.device,
                shard,
                shard_count,
                tensor_len,
            },
        );
        Ok(())
    }

    /// Enqueues a push request from `client`.
    ///
    /// # Panics
    ///
    /// Panics if the request is addressed to a different device.
    pub fn enqueue(&mut self, client: usize, request: PushRequest) {
        assert_eq!(
            request.proxy, self.device,
            "request addressed to {} arrived at {}",
            request.proxy, self.device
        );
        if let Some(hub) = &self.oracles {
            hub.emit(OracleEvent::ProxyEnqueue {
                proxy: self.device.index() as u32,
                client: client as u32,
                stream: request.shard.tensor.0,
                shard: request.shard.index,
                at: self.clock,
            });
        }
        self.queues.entry(client).or_default().push_back(request);
        if let Some(m) = &self.metrics {
            m.inc(metric::PROXY_PUSHES, 1);
            m.observe(metric::PROXY_QUEUE_DEPTH, self.queued() as f64);
        }
        self.trace_queue_depth(Some(client));
    }

    /// Total queued requests across clients.
    pub fn queued(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// The FIFO order of `client`'s queue as `(tensor, shard index)` pairs —
    /// the deadlock-avoidance invariant of §III-F says resilience mechanisms
    /// (retries, backoff) must never reorder this.
    pub fn queue_order(&self, client: usize) -> Vec<(TensorId, u32)> {
        self.queues.get(&client).map_or_else(Vec::new, |q| {
            q.iter().map(|r| (r.shard.tensor, r.shard.index)).collect()
        })
    }

    /// Discards all in-flight round state — queued requests, accumulation
    /// buffers, and parked shard records — so an aborted synchronization
    /// round can restart cleanly after a failover. Reduced parameters
    /// (storage and pull cache) are untouched.
    pub fn discard_pending(&mut self) {
        if let Some(hub) = &self.oracles {
            hub.emit(OracleEvent::ProxyReset {
                proxy: self.device.index() as u32,
                at: self.clock,
            });
        }
        self.queues.clear();
        self.accum.clear();
        self.shards.clear();
    }

    /// Drains all client queues, scatter-adding shard data into per-tensor
    /// accumulation buffers. Returns the set of tensors touched.
    pub fn absorb(&mut self) -> Vec<TensorId> {
        let served = self.queued();
        if let Some((tracer, track)) = &self.trace {
            tracer.begin_span(
                self.clock,
                category::PROXY,
                *track,
                &format!("absorb {served} request(s)"),
            );
        }
        let mut touched = Vec::new();
        for (&client, queue) in &mut self.queues {
            while let Some(req) = queue.pop_front() {
                let id = req.shard.tensor;
                let buf = self
                    .accum
                    .entry(id)
                    .or_insert_with(|| vec![0.0; req.tensor_len]);
                assert_eq!(
                    buf.len(),
                    req.tensor_len,
                    "tensor length changed mid-flight"
                );
                for (i, v) in req.shard.data.iter().enumerate() {
                    buf[req.shard.offset + i] += v;
                }
                self.shards.entry(id).or_default().push(ShardRecord {
                    client,
                    index: req.shard.index,
                    offset: req.shard.offset,
                    len: req.shard.data.len(),
                });
                if !touched.contains(&id) {
                    touched.push(id);
                }
            }
        }
        if let Some((tracer, track)) = &self.trace {
            tracer.end_span(self.clock, *track);
        }
        // The queues are now empty: the per-client ordering history the
        // retry-FIFO oracle accumulated no longer constrains future arrivals.
        if let Some(hub) = &self.oracles {
            hub.emit(OracleEvent::ProxyReset {
                proxy: self.device.index() as u32,
                at: self.clock,
            });
        }
        self.trace_queue_depth(None);
        touched
    }

    /// Takes the local accumulation buffer for `tensor` (this proxy's input
    /// to the cross-device reduction), or a zero buffer if no client pushed
    /// here.
    pub fn take_contribution(&mut self, tensor: TensorId, len: usize) -> Vec<f32> {
        self.accum.remove(&tensor).unwrap_or_else(|| vec![0.0; len])
    }

    /// Installs the globally reduced value: updates the COW storage and the
    /// pull cache.
    pub fn store_reduced(&mut self, tensor: TensorId, data: Vec<f32>) {
        if self.store.get(tensor).is_none() {
            self.store.insert(&Tensor::new(tensor, data.clone()));
        } else {
            self.store.update(tensor, &data);
        }
        self.cache.insert(tensor, data);
    }

    /// Serves `client`'s pull of `tensor`: the updated values of exactly the
    /// shards that client parked here.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has not been reduced yet.
    pub fn serve_pull(&mut self, client: usize, tensor: TensorId) -> Vec<TensorShard> {
        let values = self
            .cache
            .get(&tensor)
            // simlint: allow(panic-in-library, reason = "documented # Panics contract: a pull before the window's reduce is a scheduler bug")
            .unwrap_or_else(|| panic!("pull of unreduced tensor {tensor}"));
        let Some(records) = self.shards.get_mut(&tensor) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        records.retain(|r| {
            if r.client == client {
                out.push(TensorShard {
                    tensor,
                    index: r.index,
                    offset: r.offset,
                    data: values[r.offset..r.offset + r.len].to_vec(),
                });
                false
            } else {
                true
            }
        });
        if let Some((tracer, track)) = &self.trace {
            tracer.instant(
                self.clock,
                category::PROXY,
                *track,
                &format!(
                    "serve pull {tensor} for client {client} ({} shard(s))",
                    out.len()
                ),
            );
        }
        out
    }

    /// The latest reduced value of a tensor, if this proxy participated.
    pub fn cached(&self, tensor: TensorId) -> Option<&[f32]> {
        self.cache.get(&tensor).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceId {
        let mut t = coarse_fabric::topology::Topology::new();
        t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "m", 0)
    }

    fn request(
        dev: DeviceId,
        tensor: u64,
        index: u32,
        offset: usize,
        data: Vec<f32>,
        len: usize,
    ) -> PushRequest {
        PushRequest {
            proxy: dev,
            shard: TensorShard {
                tensor: TensorId(tensor),
                index,
                offset,
                data,
            },
            shard_count: 0,
            tensor_len: len,
        }
    }

    #[test]
    fn absorb_scatter_adds_across_clients() {
        let dev = device();
        let mut p = ParameterProxy::new(dev);
        p.enqueue(0, request(dev, 1, 0, 0, vec![1.0, 2.0], 4));
        p.enqueue(1, request(dev, 1, 1, 2, vec![3.0, 4.0], 4));
        p.enqueue(1, request(dev, 1, 0, 0, vec![10.0, 10.0], 4));
        let touched = p.absorb();
        assert_eq!(touched, vec![TensorId(1)]);
        let contrib = p.take_contribution(TensorId(1), 4);
        assert_eq!(contrib, vec![11.0, 12.0, 3.0, 4.0]);
    }

    #[test]
    fn oracle_accepts_in_order_queues_across_rounds() {
        let dev = device();
        let hub = coarse_simcore::oracle::OracleHub::with_builtins(
            coarse_simcore::time::SimDuration::from_millis(10),
        );
        let mut p = ParameterProxy::new(dev);
        p.set_oracles(hub.clone());
        for round in 0..3 {
            for tensor in 0..2u64 {
                for shard in 0..2u32 {
                    p.enqueue(0, request(dev, tensor, shard, 0, vec![1.0], 1));
                }
            }
            let _ = p.absorb();
            let _ = round;
        }
        hub.emit(OracleEvent::RunEnd { at: SimTime::ZERO });
        assert!(
            hub.violations().is_empty(),
            "in-order rounds flagged: {:?}",
            hub.violations()
        );
    }

    #[test]
    fn oracle_flags_interleaved_streams_in_one_queue() {
        let dev = device();
        let hub = coarse_simcore::oracle::OracleHub::with_builtins(
            coarse_simcore::time::SimDuration::from_millis(10),
        );
        let mut p = ParameterProxy::new(dev);
        p.set_oracles(hub.clone());
        // Stream 1, then 2, then back to 1 without any drain: reordered.
        p.enqueue(0, request(dev, 1, 0, 0, vec![1.0], 1));
        p.enqueue(0, request(dev, 2, 0, 0, vec![1.0], 1));
        p.enqueue(0, request(dev, 1, 1, 0, vec![1.0], 1));
        assert!(
            hub.violations()
                .iter()
                .any(|v| v.oracle == "retry-fifo" && v.detail.contains("re-appeared")),
            "interleaving not flagged: {:?}",
            hub.violations()
        );
    }

    #[test]
    fn missing_contribution_is_zero() {
        let mut p = ParameterProxy::new(device());
        assert_eq!(p.take_contribution(TensorId(7), 3), vec![0.0; 3]);
    }

    #[test]
    fn pull_returns_client_specific_shards() {
        let dev = device();
        let mut p = ParameterProxy::new(dev);
        p.enqueue(0, request(dev, 1, 0, 0, vec![1.0, 1.0], 4));
        p.enqueue(1, request(dev, 1, 1, 2, vec![2.0, 2.0], 4));
        p.absorb();
        p.store_reduced(TensorId(1), vec![5.0, 6.0, 7.0, 8.0]);
        let shards0 = p.serve_pull(0, TensorId(1));
        assert_eq!(shards0.len(), 1);
        assert_eq!(shards0[0].offset, 0);
        assert_eq!(shards0[0].data, vec![5.0, 6.0]);
        let shards1 = p.serve_pull(1, TensorId(1));
        assert_eq!(shards1[0].offset, 2);
        assert_eq!(shards1[0].data, vec![7.0, 8.0]);
        // Second pull finds nothing left.
        assert!(p.serve_pull(0, TensorId(1)).is_empty());
    }

    #[test]
    fn store_reduced_versions_parameters() {
        let mut p = ParameterProxy::new(device());
        p.store_reduced(TensorId(3), vec![1.0; 2048]);
        assert_eq!(p.store().version(TensorId(3)), Some(0));
        p.store_reduced(TensorId(3), vec![2.0; 2048]);
        assert_eq!(p.store().version(TensorId(3)), Some(1));
        assert_eq!(p.cached(TensorId(3)).unwrap()[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "unreduced tensor")]
    fn pull_before_reduce_panics() {
        let mut p = ParameterProxy::new(device());
        p.serve_pull(0, TensorId(1));
    }

    #[test]
    fn sealed_enqueue_accepts_clean_rejects_corrupt() {
        use coarse_cci::integrity::SealedShard;
        let dev = device();
        let mut p = ParameterProxy::new(dev);
        let shard = TensorShard {
            tensor: TensorId(5),
            index: 0,
            offset: 0,
            data: vec![1.0, 2.0, 3.0],
        };
        // Clean shard lands in the queue.
        p.enqueue_sealed(0, SealedShard::seal(shard.clone()), 1, 3)
            .unwrap();
        assert_eq!(p.queued(), 1);
        // A bit flipped in flight is rejected and never enqueued.
        let mut corrupted = SealedShard::seal(shard);
        corrupted.shard_mut().data[1] = 99.0;
        let err = p.enqueue_sealed(1, corrupted, 1, 3).unwrap_err();
        assert_eq!(err.tensor, TensorId(5));
        assert_eq!(p.queued(), 1, "corrupt shard must not be queued");
    }

    #[test]
    fn tracing_gauges_queue_depth_and_service() {
        use coarse_simcore::trace::{RecordingTracer, TraceEventKind};

        let dev = device();
        let rec = RecordingTracer::new();
        let mut p = ParameterProxy::new(dev);
        p.set_tracer(rec.handle());
        p.enqueue(0, request(dev, 1, 0, 0, vec![1.0, 1.0], 4));
        p.enqueue(1, request(dev, 1, 1, 2, vec![2.0, 2.0], 4));
        p.set_time(SimTime::from_nanos(50));
        p.absorb();
        p.store_reduced(TensorId(1), vec![5.0, 6.0, 7.0, 8.0]);
        p.serve_pull(0, TensorId(1));

        let trace = rec.take();
        let depths: Vec<f64> = trace
            .events_in(coarse_simcore::trace::category::PROXY)
            .filter_map(|e| match e.kind {
                TraceEventKind::Counter { value } if e.name == "queue_depth" => Some(value),
                _ => None,
            })
            .collect();
        // 1 after first enqueue, 2 after second, 0 after absorb.
        assert_eq!(depths, vec![1.0, 2.0, 0.0]);
        let absorb_span = trace
            .events_in(coarse_simcore::trace::category::PROXY)
            .find(|e| matches!(e.kind, TraceEventKind::Span { .. }))
            .expect("absorb records a service span");
        assert_eq!(absorb_span.name, "absorb 2 request(s)");
        assert_eq!(absorb_span.time, SimTime::from_nanos(50));
    }

    #[test]
    fn metrics_sample_queue_depth() {
        let dev = device();
        let reg = MetricRegistry::new();
        let mut p = ParameterProxy::new(dev);
        p.set_metrics(reg.clone());
        p.enqueue(0, request(dev, 1, 0, 0, vec![1.0, 1.0], 4));
        p.enqueue(1, request(dev, 1, 1, 2, vec![2.0, 2.0], 4));
        p.absorb();
        let snap = reg.snapshot();
        assert_eq!(snap.counter(metric::PROXY_PUSHES), 2);
        let depth = snap.histogram(metric::PROXY_QUEUE_DEPTH).unwrap();
        // Depth sampled at each enqueue: 1 then 2.
        assert_eq!(depth.count, 2);
        assert_eq!(depth.max, 2.0);
    }

    #[test]
    #[should_panic(expected = "addressed to")]
    fn misaddressed_request_rejected() {
        let dev = device();
        let other = {
            let mut t = coarse_fabric::topology::Topology::new();
            t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "x", 0);
            t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "y", 0)
        };
        let mut p = ParameterProxy::new(dev);
        p.enqueue(0, request(other, 1, 0, 0, vec![1.0], 1));
    }
}
