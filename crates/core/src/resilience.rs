//! Resilience policy and fault accounting for COARSE synchronization.
//!
//! COARSE's survival story under an injected [`FaultPlan`]
//! (`coarse_simcore::faults`) has three mechanisms, mirroring what real
//! parameter-server deployments do:
//!
//! 1. **Retry with exponential backoff** — a client→proxy push whose CRC32
//!    seal fails verification (a transient CCI transfer error) is
//!    retransmitted after a backoff that doubles per attempt.
//! 2. **Timeout + proxy failover** — a push toward a dropped memory device
//!    times out; the proxy is removed from the deployment and the routing
//!    tables are repaired over the survivors
//!    (`CoarseSystem::reprofile`, §III-E dynamic profiling).
//! 3. **Graceful degradation** — when the whole proxy tier is lost,
//!    synchronization falls back to GPU-only allreduce (the dual-sync split
//!    collapses to `m = total bytes`).
//!
//! All decisions derive from the deterministic plan, so a faulty run is
//! byte-reproducible under a fixed seed.
//!
//! [`FaultPlan`]: coarse_simcore::faults::FaultPlan

use coarse_simcore::time::SimDuration;

/// Tunable constants governing the resilience mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Backoff before the first retransmission; doubles per attempt.
    pub base_backoff: SimDuration,
    /// Cap on the exponential backoff growth (in doublings).
    pub max_backoff_doublings: u32,
    /// Time to detect an unresponsive proxy (push timeout) before failover.
    pub detect_timeout: SimDuration,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            base_backoff: SimDuration::from_micros(50),
            max_backoff_doublings: 6,
            detect_timeout: SimDuration::from_millis(5),
        }
    }
}

impl ResiliencePolicy {
    /// The backoff charged after the `attempt`-th failed try (0-based):
    /// `base_backoff · 2^min(attempt, max_backoff_doublings)`.
    pub fn backoff_after(&self, attempt: u32) -> SimDuration {
        let doublings = attempt.min(self.max_backoff_doublings);
        SimDuration::from_nanos(
            self.base_backoff
                .as_nanos()
                .saturating_mul(1u64 << doublings),
        )
    }
}

/// What the resilience machinery did during one synchronization round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncFaultReport {
    /// Retransmissions performed (integrity-rejected pushes).
    pub retries: u64,
    /// Shards whose CRC32 seal failed verification at a proxy.
    pub rejected_shards: u64,
    /// Proxies failed over (removed + routing tables repaired).
    pub failovers: u64,
    /// True if the proxy tier was lost entirely and synchronization
    /// degraded to GPU-only allreduce.
    pub degraded_to_gpu: bool,
    /// Simulated time spent detecting faults and backing off.
    pub recovery_time: SimDuration,
}

impl SyncFaultReport {
    /// True if no resilience mechanism fired.
    pub fn is_clean(&self) -> bool {
        self.retries == 0 && self.failovers == 0 && !self.degraded_to_gpu
    }

    /// Merges another round's report into this one (recovery times add,
    /// degradation latches).
    pub fn merge(&mut self, other: &SyncFaultReport) {
        self.retries += other.retries;
        self.rejected_shards += other.rejected_shards;
        self.failovers += other.failovers;
        self.degraded_to_gpu |= other.degraded_to_gpu;
        self.recovery_time += other.recovery_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = ResiliencePolicy {
            base_backoff: SimDuration::from_micros(10),
            max_backoff_doublings: 3,
            detect_timeout: SimDuration::from_millis(1),
        };
        assert_eq!(p.backoff_after(0), SimDuration::from_micros(10));
        assert_eq!(p.backoff_after(1), SimDuration::from_micros(20));
        assert_eq!(p.backoff_after(3), SimDuration::from_micros(80));
        assert_eq!(p.backoff_after(9), SimDuration::from_micros(80));
    }

    #[test]
    fn report_merge_accumulates_and_latches() {
        let mut a = SyncFaultReport {
            retries: 1,
            rejected_shards: 1,
            failovers: 0,
            degraded_to_gpu: false,
            recovery_time: SimDuration::from_micros(5),
        };
        assert!(!a.is_clean());
        let b = SyncFaultReport {
            retries: 2,
            rejected_shards: 2,
            failovers: 1,
            degraded_to_gpu: true,
            recovery_time: SimDuration::from_micros(7),
        };
        a.merge(&b);
        assert_eq!(a.retries, 3);
        assert_eq!(a.failovers, 1);
        assert!(a.degraded_to_gpu);
        assert_eq!(a.recovery_time, SimDuration::from_micros(12));
        assert!(SyncFaultReport::default().is_clean());
    }
}
