//! Resilience policy and fault accounting for COARSE synchronization.
//!
//! COARSE's survival story under an injected [`FaultPlan`]
//! (`coarse_simcore::faults`) has three mechanisms, mirroring what real
//! parameter-server deployments do:
//!
//! 1. **Retry with exponential backoff** — a client→proxy push whose CRC32
//!    seal fails verification (a transient CCI transfer error) is
//!    retransmitted after a backoff that doubles per attempt.
//! 2. **Timeout + proxy failover** — a push toward a dropped memory device
//!    times out; the proxy is removed from the deployment and the routing
//!    tables are repaired over the survivors
//!    (`CoarseSystem::reprofile`, §III-E dynamic profiling).
//! 3. **Graceful degradation** — when the whole proxy tier is lost,
//!    synchronization falls back to GPU-only allreduce (the dual-sync split
//!    collapses to `m = total bytes`).
//!
//! All decisions derive from the deterministic plan, so a faulty run is
//! byte-reproducible under a fixed seed.
//!
//! [`FaultPlan`]: coarse_simcore::faults::FaultPlan

use coarse_simcore::time::SimDuration;

/// Tunable constants governing the resilience mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Backoff before the first retransmission; doubles per attempt.
    pub base_backoff: SimDuration,
    /// Cap on the exponential backoff growth (in doublings).
    pub max_backoff_doublings: u32,
    /// Time to detect an unresponsive proxy (push timeout) before failover.
    pub detect_timeout: SimDuration,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            base_backoff: SimDuration::from_micros(50),
            max_backoff_doublings: 6,
            detect_timeout: SimDuration::from_millis(5),
        }
    }
}

impl ResiliencePolicy {
    /// The backoff charged after the `attempt`-th failed try (0-based):
    /// `base_backoff · 2^min(attempt, max_backoff_doublings)`.
    pub fn backoff_after(&self, attempt: u32) -> SimDuration {
        let doublings = attempt.min(self.max_backoff_doublings);
        SimDuration::from_nanos(
            self.base_backoff
                .as_nanos()
                .saturating_mul(1u64 << doublings),
        )
    }
}

/// What the resilience machinery did during one synchronization round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncFaultReport {
    /// Retransmissions performed (integrity-rejected pushes).
    pub retries: u64,
    /// Shards whose CRC32 seal failed verification at a proxy.
    pub rejected_shards: u64,
    /// Proxies failed over (removed + routing tables repaired).
    pub failovers: u64,
    /// True if the proxy tier was lost entirely and synchronization
    /// degraded to GPU-only allreduce.
    pub degraded_to_gpu: bool,
    /// Simulated time spent detecting faults and backing off.
    pub recovery_time: SimDuration,
}

impl SyncFaultReport {
    /// True if no resilience mechanism fired.
    pub fn is_clean(&self) -> bool {
        self.retries == 0 && self.failovers == 0 && !self.degraded_to_gpu
    }

    /// Merges another round's report into this one (recovery times add,
    /// degradation latches).
    pub fn merge(&mut self, other: &SyncFaultReport) {
        self.retries += other.retries;
        self.rejected_shards += other.rejected_shards;
        self.failovers += other.failovers;
        self.degraded_to_gpu |= other.degraded_to_gpu;
        self.recovery_time += other.recovery_time;
    }
}

/// The class of a failure the recovery engine must react to. The classes
/// differ in what survived: a transient outage leaves the pool-resident
/// parameter shards intact, a proxy dropout loses its in-memory shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A shard's CRC32 seal was rejected at the receiver (transient CCI
    /// transfer corruption). Data still exists at the sender; retransmit.
    CorruptStream,
    /// Every allowed route to the destination is severed (link flap). The
    /// endpoint is presumed alive; wait for the fabric to heal.
    RouteOutage,
    /// A proxy (memory device) stopped answering: its pool shard is gone
    /// and the parameter state must come back from a checkpoint.
    ProxyDropout,
}

/// What the recovery engine does about a [`FailureKind`], chosen by
/// [`RecoveryPolicy::action_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Try the same operation again (after backoff or a detection timeout).
    Retry,
    /// Elastic membership repair: evict the failing member, bump the
    /// membership epoch, rebuild routing over the survivors, and continue
    /// without rolling back — the surviving pool shards are intact.
    Repair,
    /// Hard recovery: repair membership, then restore the parameter state
    /// from the last pool checkpoint and replay the lost iterations.
    Restore,
}

/// [`ResiliencePolicy`] extended with the recovery-engine knobs: the
/// checkpoint cadence and the bounded retry budgets that *escalate* to
/// membership repair instead of spinning forever.
///
/// The escalation ladder per failure class:
///
/// | failure                        | within budget | budget exhausted |
/// |--------------------------------|---------------|------------------|
/// | [`FailureKind::CorruptStream`] | `Retry`       | `Repair`         |
/// | [`FailureKind::RouteOutage`]   | `Retry`       | `Repair`         |
/// | [`FailureKind::ProxyDropout`]  | `Restore`     | `Restore`        |
///
/// A dropout is always a restore because the dead proxy's pool shard is
/// unrecoverable in place; corruption and flaps are transient, so they
/// retry first and escalate to eviction only when the budget runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// The base retry/backoff/detection mechanics, unchanged from the
    /// fault-injection layer.
    pub resilience: ResiliencePolicy,
    /// Iterations between pool checkpoints (sealed-push snapshot of every
    /// parameter shard to its ring mirror). `0` disables checkpointing —
    /// a dropout then rolls back to iteration 0 (the initial sync).
    pub checkpoint_interval: u32,
    /// Integrity-rejection budget per shard before the stream's destination
    /// is declared bad and evicted (escalation instead of spinning).
    pub max_shard_retries: u32,
    /// Route-outage waits (one detection timeout each) before the
    /// unreachable member is evicted.
    pub max_route_waits: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            resilience: ResiliencePolicy::default(),
            checkpoint_interval: 2,
            max_shard_retries: 8,
            max_route_waits: 64,
        }
    }
}

impl RecoveryPolicy {
    /// Decides how to react to the `attempt`-th occurrence (0-based) of a
    /// failure class on one operation. See the table on [`RecoveryPolicy`].
    pub fn action_for(&self, kind: FailureKind, attempt: u32) -> RecoveryAction {
        match kind {
            FailureKind::CorruptStream if attempt < self.max_shard_retries => RecoveryAction::Retry,
            FailureKind::CorruptStream => RecoveryAction::Repair,
            FailureKind::RouteOutage if attempt < self.max_route_waits => RecoveryAction::Retry,
            FailureKind::RouteOutage => RecoveryAction::Repair,
            FailureKind::ProxyDropout => RecoveryAction::Restore,
        }
    }

    /// The checkpoint iteration the engine rolls back to after a restore
    /// decision at committed iteration `completed`: the largest multiple of
    /// the interval at or below `completed` (iteration 0 when checkpointing
    /// is disabled).
    pub fn rollback_target(&self, completed: u32) -> u32 {
        if self.checkpoint_interval == 0 {
            0
        } else {
            completed - completed % self.checkpoint_interval
        }
    }

    /// True when a checkpoint is due after committing iteration `completed`
    /// (1-based count of finished iterations) of `total`. The final
    /// iteration never checkpoints: there is nothing left to protect.
    pub fn checkpoint_due(&self, completed: u32, total: u32) -> bool {
        self.checkpoint_interval != 0
            && completed > 0
            && completed < total
            && completed.is_multiple_of(self.checkpoint_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = ResiliencePolicy {
            base_backoff: SimDuration::from_micros(10),
            max_backoff_doublings: 3,
            detect_timeout: SimDuration::from_millis(1),
        };
        assert_eq!(p.backoff_after(0), SimDuration::from_micros(10));
        assert_eq!(p.backoff_after(1), SimDuration::from_micros(20));
        assert_eq!(p.backoff_after(3), SimDuration::from_micros(80));
        assert_eq!(p.backoff_after(9), SimDuration::from_micros(80));
    }

    #[test]
    fn report_merge_accumulates_and_latches() {
        let mut a = SyncFaultReport {
            retries: 1,
            rejected_shards: 1,
            failovers: 0,
            degraded_to_gpu: false,
            recovery_time: SimDuration::from_micros(5),
        };
        assert!(!a.is_clean());
        let b = SyncFaultReport {
            retries: 2,
            rejected_shards: 2,
            failovers: 1,
            degraded_to_gpu: true,
            recovery_time: SimDuration::from_micros(7),
        };
        a.merge(&b);
        assert_eq!(a.retries, 3);
        assert_eq!(a.failovers, 1);
        assert!(a.degraded_to_gpu);
        assert_eq!(a.recovery_time, SimDuration::from_micros(12));
        assert!(SyncFaultReport::default().is_clean());
    }

    #[test]
    fn transient_failures_retry_then_escalate_to_repair() {
        let p = RecoveryPolicy {
            max_shard_retries: 2,
            max_route_waits: 3,
            ..RecoveryPolicy::default()
        };
        assert_eq!(
            p.action_for(FailureKind::CorruptStream, 0),
            RecoveryAction::Retry
        );
        assert_eq!(
            p.action_for(FailureKind::CorruptStream, 1),
            RecoveryAction::Retry
        );
        assert_eq!(
            p.action_for(FailureKind::CorruptStream, 2),
            RecoveryAction::Repair
        );
        assert_eq!(
            p.action_for(FailureKind::RouteOutage, 2),
            RecoveryAction::Retry
        );
        assert_eq!(
            p.action_for(FailureKind::RouteOutage, 3),
            RecoveryAction::Repair
        );
    }

    #[test]
    fn dropouts_always_restore() {
        let p = RecoveryPolicy::default();
        assert_eq!(
            p.action_for(FailureKind::ProxyDropout, 0),
            RecoveryAction::Restore
        );
        assert_eq!(
            p.action_for(FailureKind::ProxyDropout, 99),
            RecoveryAction::Restore
        );
    }

    #[test]
    fn rollback_target_snaps_to_checkpoint_grid() {
        let p = RecoveryPolicy {
            checkpoint_interval: 3,
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.rollback_target(0), 0);
        assert_eq!(p.rollback_target(2), 0);
        assert_eq!(p.rollback_target(3), 3);
        assert_eq!(p.rollback_target(7), 6);
        let off = RecoveryPolicy {
            checkpoint_interval: 0,
            ..RecoveryPolicy::default()
        };
        assert_eq!(off.rollback_target(7), 0);
    }

    #[test]
    fn checkpoint_cadence_skips_endpoints() {
        let p = RecoveryPolicy {
            checkpoint_interval: 2,
            ..RecoveryPolicy::default()
        };
        assert!(!p.checkpoint_due(0, 8));
        assert!(!p.checkpoint_due(1, 8));
        assert!(p.checkpoint_due(2, 8));
        assert!(!p.checkpoint_due(3, 8));
        assert!(p.checkpoint_due(6, 8));
        assert!(!p.checkpoint_due(8, 8), "final iteration never checkpoints");
        let off = RecoveryPolicy {
            checkpoint_interval: 0,
            ..RecoveryPolicy::default()
        };
        assert!(!off.checkpoint_due(4, 8));
    }
}
