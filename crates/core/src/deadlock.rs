//! Proxy scheduling and deadlock avoidance (§III-F, Fig. 10).
//!
//! Synchronizing a tensor is a *collective*: every client's contribution to
//! tensor `t` must be serviced by the proxy it was pushed to before `t` can
//! be reduced. Under first-come-first-serve a proxy services only the head
//! of its single arrival-ordered queue, so two proxies whose heads disagree
//! wait on each other forever (Fig. 10). COARSE instead keeps one queue per
//! client and services all of their heads concurrently; because every
//! client pushes tensors in the same (backward) order, the globally first
//! outstanding tensor is always at the head of every client queue, so the
//! "waits-for" relation is acyclic.

use std::collections::{BTreeMap, VecDeque};

use coarse_cci::tensor::TensorId;
use coarse_simcore::oracle::{OracleEvent, OracleHub};
use coarse_simcore::time::SimTime;

/// How a proxy picks which contributions it is willing to service next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// One FIFO queue per proxy; only its head is serviceable
    /// (deadlock-prone).
    Fcfs,
    /// One FIFO queue per client; all heads are serviceable concurrently
    /// (COARSE's queue-based scheme).
    PerClientQueues,
}

/// A client's contribution to one tensor, parked at a proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contribution {
    /// The contributing client (by worker index).
    pub client: usize,
    /// The tensor contributed to.
    pub tensor: TensorId,
}

/// One proxy's pending work under a given policy.
#[derive(Debug, Clone)]
struct ProxyQueues {
    /// FCFS: single arrival-ordered queue.
    fifo: VecDeque<Contribution>,
    /// Queue-based: one queue per client.
    per_client: BTreeMap<usize, VecDeque<Contribution>>,
}

impl ProxyQueues {
    fn new() -> Self {
        ProxyQueues {
            fifo: VecDeque::new(),
            per_client: BTreeMap::new(),
        }
    }

    fn push(&mut self, c: Contribution) {
        self.fifo.push_back(c);
        self.per_client.entry(c.client).or_default().push_back(c);
    }

    /// Whether this proxy is currently willing to service `c`.
    fn serviceable(&self, c: Contribution, policy: SchedulingPolicy) -> bool {
        match policy {
            SchedulingPolicy::Fcfs => self.fifo.front() == Some(&c),
            SchedulingPolicy::PerClientQueues => {
                self.per_client.get(&c.client).and_then(|q| q.front()) == Some(&c)
            }
        }
    }

    /// Removes every queued contribution to `t`.
    fn complete(&mut self, t: TensorId) {
        self.fifo.retain(|c| c.tensor != t);
        for q in self.per_client.values_mut() {
            q.retain(|c| c.tensor != t);
        }
    }

    fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }
}

/// Outcome of running the synchronization scheduler to quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// Tensors fully synchronized, in completion order.
    pub completed: Vec<TensorId>,
    /// Tensors stuck in a circular wait when the scheduler stalled.
    pub deadlocked: Vec<TensorId>,
    /// Scheduling rounds executed.
    pub rounds: u64,
}

impl ScheduleOutcome {
    /// True if every pushed tensor completed.
    pub fn is_deadlock_free(&self) -> bool {
        self.deadlocked.is_empty()
    }
}

/// A synchronization scheduler over a set of proxies.
#[derive(Debug)]
pub struct SyncScheduler {
    proxies: Vec<ProxyQueues>,
    /// For each tensor, every (client, proxy) contribution recorded.
    contributions: BTreeMap<TensorId, Vec<(usize, usize)>>,
    policy: SchedulingPolicy,
}

impl SyncScheduler {
    /// A scheduler over `proxies` proxies using `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `proxies` is zero.
    pub fn new(proxies: usize, policy: SchedulingPolicy) -> Self {
        assert!(proxies > 0, "need at least one proxy");
        SyncScheduler {
            proxies: (0..proxies).map(|_| ProxyQueues::new()).collect(),
            contributions: BTreeMap::new(),
            policy,
        }
    }

    /// Client `client` pushes its contribution to `tensor` at `proxy`.
    ///
    /// # Panics
    ///
    /// Panics if `proxy` is out of range.
    pub fn push(&mut self, proxy: usize, client: usize, tensor: TensorId) {
        assert!(proxy < self.proxies.len(), "unknown proxy {proxy}");
        self.proxies[proxy].push(Contribution { client, tensor });
        self.contributions
            .entry(tensor)
            .or_default()
            .push((client, proxy));
    }

    /// Runs collectives until quiescence: in each round, every tensor all of
    /// whose contributions are serviceable completes. Stalling with pending
    /// work means deadlock.
    pub fn run(self) -> ScheduleOutcome {
        self.run_observed(None)
    }

    /// [`SyncScheduler::run`] with an oracle hub watching the schedule.
    ///
    /// The scheduler has no event calendar, so it stamps a synthetic clock:
    /// one nanosecond per scheduling round. Each completing round emits
    /// [`OracleEvent::Progress`]; on a stall, every pending contribution
    /// emits an [`OracleEvent::WaitEdge`] whose holder is the tensor at the
    /// head of the queue blocking it, then [`OracleEvent::RunEnd`] — so the
    /// liveness oracle sees exactly the circular waits of Fig. 10.
    pub fn run_observed(mut self, hub: Option<&OracleHub>) -> ScheduleOutcome {
        let mut completed = Vec::new();
        let mut rounds = 0u64;
        loop {
            rounds += 1;
            let ready: Vec<TensorId> = self
                .contributions
                .iter()
                .filter(|(&t, contribs)| {
                    contribs.iter().all(|&(client, proxy)| {
                        self.proxies[proxy]
                            .serviceable(Contribution { client, tensor: t }, self.policy)
                    })
                })
                .map(|(&t, _)| t)
                .collect();
            if ready.is_empty() {
                break;
            }
            for t in ready {
                for p in &mut self.proxies {
                    p.complete(t);
                }
                self.contributions.remove(&t);
                completed.push(t);
            }
            if let Some(hub) = hub {
                hub.emit(OracleEvent::Progress {
                    at: SimTime::from_nanos(rounds),
                });
            }
        }
        if let Some(hub) = hub {
            for (&t, contribs) in &self.contributions {
                for &(client, proxy) in contribs {
                    let q = &self.proxies[proxy];
                    let c = Contribution { client, tensor: t };
                    if q.serviceable(c, self.policy) {
                        continue;
                    }
                    let head = match self.policy {
                        SchedulingPolicy::Fcfs => q.fifo.front(),
                        SchedulingPolicy::PerClientQueues => {
                            q.per_client.get(&client).and_then(VecDeque::front)
                        }
                    };
                    if let Some(h) = head {
                        hub.emit(OracleEvent::WaitEdge {
                            waiter: t.0,
                            holder: h.tensor.0,
                        });
                    }
                }
            }
            hub.emit(OracleEvent::RunEnd {
                at: SimTime::from_nanos(rounds),
            });
        }
        let deadlocked: Vec<TensorId> = self.contributions.keys().copied().collect();
        debug_assert_eq!(
            deadlocked.is_empty(),
            self.proxies.iter().all(ProxyQueues::is_empty),
            "contribution map and queues must agree"
        );
        ScheduleOutcome {
            completed,
            deadlocked,
            rounds,
        }
    }
}

/// The exact Fig. 10 scenario: both clients push tensor 1 then tensor 2,
/// but route them to opposite proxies, and client 1's pushes land after
/// client 0's — so the two FCFS queue heads disagree.
pub fn figure10_scenario(policy: SchedulingPolicy) -> ScheduleOutcome {
    let mut s = SyncScheduler::new(2, policy);
    let t1 = TensorId(1);
    let t2 = TensorId(2);
    // Client 0: tensor 1 → proxy 0, tensor 2 → proxy 1.
    s.push(0, 0, t1);
    s.push(1, 0, t2);
    // Client 1: tensor 1 → proxy 1, tensor 2 → proxy 0.
    s.push(1, 1, t1);
    s.push(0, 1, t2);
    s.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_simcore::rng::SimRng;

    #[test]
    fn fcfs_deadlocks_on_figure10() {
        let out = figure10_scenario(SchedulingPolicy::Fcfs);
        assert!(!out.is_deadlock_free());
        assert_eq!(out.completed, vec![]);
        assert_eq!(out.deadlocked, vec![TensorId(1), TensorId(2)]);
    }

    #[test]
    fn per_client_queues_complete_figure10() {
        let out = figure10_scenario(SchedulingPolicy::PerClientQueues);
        assert!(out.is_deadlock_free());
        assert_eq!(out.completed.len(), 2);
    }

    #[test]
    fn fcfs_fine_when_arrivals_agree() {
        // Round-robin arrival of the same tensor order: heads agree.
        let mut s = SyncScheduler::new(2, SchedulingPolicy::Fcfs);
        for t in [TensorId(1), TensorId(2), TensorId(3)] {
            s.push(0, 0, t);
            s.push(1, 1, t);
        }
        let out = s.run();
        assert!(out.is_deadlock_free());
        assert_eq!(out.completed.len(), 3);
    }

    /// Clients all push in the same (backward) order; proxies and arrival
    /// interleaving are random — the realistic COARSE workload shape.
    fn random_workload(
        rng: &mut SimRng,
        proxies: usize,
        clients: usize,
        tensors: u64,
        policy: SchedulingPolicy,
    ) -> ScheduleOutcome {
        random_workload_observed(rng, proxies, clients, tensors, policy, None)
    }

    fn random_workload_observed(
        rng: &mut SimRng,
        proxies: usize,
        clients: usize,
        tensors: u64,
        policy: SchedulingPolicy,
        hub: Option<&OracleHub>,
    ) -> ScheduleOutcome {
        let mut order: Vec<u64> = (0..tensors).collect();
        rng.shuffle(&mut order);
        // Random proxy for each (client, tensor).
        let dest: Vec<Vec<usize>> = (0..clients)
            .map(|_| {
                (0..tensors)
                    .map(|_| rng.next_below(proxies as u64) as usize)
                    .collect()
            })
            .collect();
        // Random interleaving of arrivals that respects each client's order.
        let mut next_idx = vec![0usize; clients];
        let mut s = SyncScheduler::new(proxies, policy);
        let mut remaining: u64 = clients as u64 * tensors;
        while remaining > 0 {
            let c = rng.next_below(clients as u64) as usize;
            if next_idx[c] >= tensors as usize {
                continue;
            }
            let t = order[next_idx[c]];
            s.push(dest[c][next_idx[c]], c, TensorId(t));
            next_idx[c] += 1;
            remaining -= 1;
        }
        s.run_observed(hub)
    }

    #[test]
    fn queue_based_never_deadlocks_on_consistent_orders() {
        let mut rng = SimRng::seed_from_u64(11);
        for trial in 0..30 {
            let out = random_workload(&mut rng, 4, 6, 40, SchedulingPolicy::PerClientQueues);
            assert!(
                out.is_deadlock_free(),
                "trial {trial}: queue-based scheduling deadlocked on {:?}",
                out.deadlocked
            );
            assert_eq!(out.completed.len(), 40);
        }
    }

    #[test]
    fn fcfs_usually_deadlocks_under_random_interleaving() {
        let mut rng = SimRng::seed_from_u64(12);
        let mut deadlocks = 0;
        for _ in 0..20 {
            if !random_workload(&mut rng, 3, 4, 10, SchedulingPolicy::Fcfs).is_deadlock_free() {
                deadlocks += 1;
            }
        }
        assert!(
            deadlocks > 10,
            "FCFS should deadlock often, saw {deadlocks}/20"
        );
    }

    /// Builds the Fig. 10 crossing with arbitrary tensor ids, preceded by
    /// `agree` tensors both clients route identically (those complete fine
    /// and exercise the Progress heartbeat before the stall).
    fn figure10_family(
        g: &mut coarse_simcore::check::Gen,
        policy: SchedulingPolicy,
        hub: &OracleHub,
    ) -> (ScheduleOutcome, TensorId, TensorId) {
        let a = TensorId(g.u64_in(10..1_000));
        let b = TensorId(a.0 + g.u64_in(1..1_000));
        let agree = g.usize_in(0..4);
        let mut s = SyncScheduler::new(2, policy);
        for i in 0..agree {
            let t = TensorId(b.0 + 1 + i as u64);
            s.push(0, 0, t);
            s.push(1, 1, t);
        }
        // The crossing: client 0 routes a→p0, b→p1; client 1 the opposite,
        // arriving after client 0 — FCFS queue heads disagree forever.
        s.push(0, 0, a);
        s.push(1, 0, b);
        s.push(1, 1, a);
        s.push(0, 1, b);
        (s.run_observed(Some(hub)), a, b)
    }

    #[test]
    fn prop_fcfs_deadlocks_on_figure10_family_and_oracle_sees_the_cycle() {
        coarse_simcore::check::run_cases("fcfs_fig10_family", 64, |g| {
            let hub = OracleHub::with_builtins(coarse_simcore::time::SimDuration::from_millis(1));
            let (out, a, b) = figure10_family(g, SchedulingPolicy::Fcfs, &hub);
            assert!(!out.is_deadlock_free());
            assert!(out.deadlocked.contains(&a) && out.deadlocked.contains(&b));
            let violations = hub.violations();
            assert!(
                violations
                    .iter()
                    .any(|v| v.oracle == "liveness" && v.detail.contains("wait-for cycle")),
                "expected a wait-for cycle violation, got {violations:?}"
            );
        });
    }

    #[test]
    fn prop_per_client_queues_drain_figure10_family_with_quiet_oracle() {
        coarse_simcore::check::run_cases("queues_fig10_family", 64, |g| {
            let hub = OracleHub::with_builtins(coarse_simcore::time::SimDuration::from_millis(1));
            let (out, _, _) = figure10_family(g, SchedulingPolicy::PerClientQueues, &hub);
            assert!(out.is_deadlock_free());
            assert!(hub.violations().is_empty(), "{:?}", hub.violations());
        });
    }

    #[test]
    fn prop_queue_based_drains_random_workloads_and_oracle_agrees() {
        coarse_simcore::check::run_cases("queues_random_drain", 48, |g| {
            let proxies = g.usize_in(1..5);
            let clients = g.usize_in(1..7);
            let tensors = g.u64_in(1..30);
            let hub = OracleHub::with_builtins(coarse_simcore::time::SimDuration::from_millis(1));
            let out = random_workload_observed(
                g.rng(),
                proxies,
                clients,
                tensors,
                SchedulingPolicy::PerClientQueues,
                Some(&hub),
            );
            assert!(
                out.is_deadlock_free(),
                "queue-based scheduling deadlocked on {:?}",
                out.deadlocked
            );
            assert_eq!(out.completed.len(), tensors as usize);
            assert!(hub.violations().is_empty(), "{:?}", hub.violations());
        });
    }

    #[test]
    fn prop_oracle_verdict_matches_outcome_for_fcfs() {
        // Whatever FCFS does on a random workload, the liveness oracle must
        // agree with the scheduler's own deadlock verdict: a stall with
        // pending work is precisely a wait-for cycle.
        coarse_simcore::check::run_cases("fcfs_oracle_agrees", 48, |g| {
            let proxies = g.usize_in(2..4);
            let clients = g.usize_in(2..5);
            let tensors = g.u64_in(2..12);
            let hub = OracleHub::with_builtins(coarse_simcore::time::SimDuration::from_millis(1));
            let out = random_workload_observed(
                g.rng(),
                proxies,
                clients,
                tensors,
                SchedulingPolicy::Fcfs,
                Some(&hub),
            );
            let cycle_reported = hub
                .violations()
                .iter()
                .any(|v| v.oracle == "liveness" && v.detail.contains("cycle"));
            let self_wait_reported = hub
                .violations()
                .iter()
                .any(|v| v.oracle == "liveness" && v.detail.contains("waits on itself"));
            assert_eq!(
                out.is_deadlock_free(),
                !(cycle_reported || self_wait_reported),
                "scheduler says deadlocked={:?} but oracle reported {:?}",
                out.deadlocked,
                hub.violations()
            );
        });
    }

    #[test]
    fn single_proxy_single_client_never_deadlocks() {
        let mut s = SyncScheduler::new(1, SchedulingPolicy::Fcfs);
        for t in [TensorId(2), TensorId(1), TensorId(3)] {
            s.push(0, 0, t);
        }
        let out = s.run();
        assert!(out.is_deadlock_free());
        // FCFS completes in arrival order.
        assert_eq!(out.completed, vec![TensorId(2), TensorId(1), TensorId(3)]);
    }
}
