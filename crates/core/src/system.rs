//! The assembled COARSE system: clients, proxies, storage, routing, and the
//! cross-device reduction, wired together functionally.
//!
//! [`CoarseSystem::synchronize`] runs one full parameter-synchronization
//! round on real data: every worker pushes its gradient tensors (partitioned
//! and routed per its profiled table), proxies scatter-add local
//! contributions, the sync-core ring reduces across memory devices, storage
//! is updated copy-on-write, and every worker pulls back and reconstructs
//! the averaged tensors. Tests assert the result equals the elementwise
//! mean — the same guarantee AllReduce gives.

use std::collections::BTreeMap;

use coarse_cci::integrity::SealedShard;
use coarse_cci::storage::Snapshot;
use coarse_cci::synccore::{RingDirection, SyncGroup};
use coarse_cci::tensor::{Tensor, TensorId};
use coarse_fabric::device::DeviceId;
use coarse_fabric::topology::Topology;
use coarse_simcore::faults::FaultPlan;
use coarse_simcore::oracle::{BiteKind, OracleEvent, OracleHub};
use coarse_simcore::time::SimTime;

use crate::client::ParameterClient;
use crate::optim::Optimizer;
use crate::profiler::build_routing_table_for;
use crate::proxy::ParameterProxy;
use crate::resilience::{ResiliencePolicy, SyncFaultReport};

/// Elements per sync-core chunk in the cross-device reduction.
const SYNC_CHUNK_ELEMS: usize = 4096;

/// Retransmission bound: after this many integrity rejections of one shard
/// the fabric is assumed to have re-trained the link and the transfer goes
/// through clean (keeps even a 100%-corruption plan terminating).
const MAX_PUSH_ATTEMPTS: u32 = 32;

/// Malformed input to a [`CoarseSystem`] entry point — the typed
/// counterpart of the assertions the panicking APIs enforce, so callers
/// reachable from a CLI can report instead of crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// The deployment has no workers.
    NoWorkers,
    /// The deployment has no memory devices.
    NoMemDevices,
    /// `gradients.len()` differs from the worker count.
    WorkerCountMismatch {
        /// Workers in the deployment.
        expected: usize,
        /// Gradient sets supplied.
        got: usize,
    },
    /// A worker pushed a different tensor set than worker 0.
    TensorSetMismatch {
        /// The offending worker.
        worker: usize,
    },
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::NoWorkers => write!(f, "need at least one worker"),
            SystemError::NoMemDevices => write!(f, "need at least one memory device"),
            SystemError::WorkerCountMismatch { expected, got } => write!(
                f,
                "one gradient set per worker: deployment has {expected} workers, got {got} sets"
            ),
            SystemError::TensorSetMismatch { worker } => write!(
                f,
                "workers must push identical tensor sets; worker {worker} differs from worker 0"
            ),
        }
    }
}

impl std::error::Error for SystemError {}

/// A fully wired COARSE deployment over one machine.
#[derive(Debug)]
pub struct CoarseSystem {
    clients: Vec<ParameterClient>,
    proxies: Vec<ParameterProxy>,
    proxy_index: BTreeMap<DeviceId, usize>,
    /// When set, the memory devices run this update rule on the master
    /// weights instead of publishing raw gradient means (§II-A).
    optimizer: Option<Box<dyn Optimizer>>,
    /// Oracle battery threaded through proxies and sync groups, when armed.
    oracles: Option<OracleHub>,
    /// Clock for oracle stamps: the functional system is untimed, so the
    /// resilient path pins this to its round instant.
    clock: SimTime,
}

impl CoarseSystem {
    /// Builds the system: profiles each worker against every memory device
    /// and installs the resulting routing tables (§III-E).
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `mem_devices` is empty. Use
    /// [`try_new`](Self::try_new) for a fallible variant.
    pub fn new(topo: &Topology, workers: &[DeviceId], mem_devices: &[DeviceId]) -> Self {
        match Self::try_new(topo, workers, mem_devices) {
            Ok(sys) => sys,
            // simlint: allow(panic-in-library, reason = "documented panicking wrapper; try_new is the fallible variant")
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: like [`new`](Self::new) but empty worker or
    /// memory-device lists surface as a [`SystemError`].
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::NoWorkers`] or [`SystemError::NoMemDevices`].
    pub fn try_new(
        topo: &Topology,
        workers: &[DeviceId],
        mem_devices: &[DeviceId],
    ) -> Result<Self, SystemError> {
        if workers.is_empty() {
            return Err(SystemError::NoWorkers);
        }
        if mem_devices.is_empty() {
            return Err(SystemError::NoMemDevices);
        }
        let clients = workers
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                ParameterClient::new(
                    w,
                    build_routing_table_for(topo, w, mem_devices, i, SimTime::ZERO),
                )
            })
            .collect();
        let proxies: Vec<ParameterProxy> = mem_devices
            .iter()
            .map(|&d| ParameterProxy::new(d))
            .collect();
        let proxy_index = mem_devices
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i))
            .collect();
        Ok(CoarseSystem {
            clients,
            proxies,
            proxy_index,
            optimizer: None,
            oracles: None,
            clock: SimTime::ZERO,
        })
    }

    /// Arms an oracle battery: proxies emit enqueue/reset observations,
    /// cross-device reductions emit ring audits, and the resilient
    /// synchronization path emits shard attempts, stream resets, fault
    /// bites, and progress heartbeats. Observation-only.
    pub fn set_oracles(&mut self, oracles: OracleHub) {
        for p in &mut self.proxies {
            p.set_oracles(oracles.clone());
        }
        self.oracles = Some(oracles);
    }

    /// Installs an optimizer: synchronization rounds now apply the update
    /// rule to registered master weights and publish the *new weights*
    /// rather than the gradient mean. Optimizer state lives with the
    /// parameter storage on the memory devices — the residency that frees
    /// GPU memory in Fig. 16e.
    pub fn set_optimizer(&mut self, optimizer: Box<dyn Optimizer>) {
        self.optimizer = Some(optimizer);
    }

    /// Registers initial master weights on every memory device's storage
    /// (required before optimizer-mode synchronization).
    pub fn register_parameters(&mut self, params: &[Tensor]) {
        for p in &mut self.proxies {
            for t in params {
                p.store_reduced(t.id(), t.data().to_vec());
            }
        }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.clients.len()
    }

    /// Number of memory devices.
    pub fn proxy_count(&self) -> usize {
        self.proxies.len()
    }

    /// The routing table of worker `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn routing_table(&self, w: usize) -> &crate::routing::RoutingTable {
        self.clients[w].table()
    }

    /// Re-runs the profiler against `topo` (which may reflect changed
    /// conditions — congestion, degraded links) and installs fresh routing
    /// tables — the dynamic profiling of §III-E. Returns how many workers'
    /// tables changed.
    pub fn reprofile(&mut self, topo: &Topology, now: SimTime) -> usize {
        let mem_devices: Vec<DeviceId> = {
            let mut pairs: Vec<(usize, DeviceId)> =
                self.proxy_index.iter().map(|(&d, &i)| (i, d)).collect();
            pairs.sort_unstable();
            pairs.into_iter().map(|(_, d)| d).collect()
        };
        let mut changed = 0;
        for (i, client) in self.clients.iter_mut().enumerate() {
            let fresh = build_routing_table_for(topo, client.worker(), &mem_devices, i, now);
            let old = *client.table();
            if fresh.lat_proxy != old.lat_proxy
                || fresh.bw_proxy != old.bw_proxy
                || fresh.threshold != old.threshold
                || fresh.shard_size != old.shard_size
            {
                changed += 1;
            }
            client.set_table(fresh);
        }
        changed
    }

    /// Re-profiles only if every table is older than `interval` at `now`.
    /// Returns `Some(changed)` when a re-profile ran.
    pub fn maybe_reprofile(
        &mut self,
        topo: &Topology,
        now: SimTime,
        interval: coarse_simcore::time::SimDuration,
    ) -> Option<usize> {
        if self
            .clients
            .iter()
            .all(|c| c.table().is_stale(now, interval))
        {
            Some(self.reprofile(topo, now))
        } else {
            None
        }
    }

    /// Synchronizes one round of gradients: `gradients[w]` is worker `w`'s
    /// tensor list (all workers push the same tensor ids). Returns, per
    /// worker, the averaged tensors pulled back, in push order.
    ///
    /// # Panics
    ///
    /// Panics if worker counts mismatch or tensor sets differ. Use
    /// [`try_synchronize`](Self::try_synchronize) for a fallible variant.
    pub fn synchronize(&mut self, gradients: &[Vec<Tensor>]) -> Vec<Vec<Tensor>> {
        match self.try_synchronize(gradients) {
            Ok(r) => r,
            // simlint: allow(panic-in-library, reason = "documented panicking wrapper; try_synchronize is the fallible variant")
            Err(e) => panic!("{e}"),
        }
    }

    /// Validates one round's gradient sets against the deployment.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::WorkerCountMismatch`] or
    /// [`SystemError::TensorSetMismatch`].
    fn validate_gradients(
        &self,
        gradients: &[Vec<Tensor>],
    ) -> Result<Vec<(TensorId, usize)>, SystemError> {
        if gradients.len() != self.clients.len() {
            return Err(SystemError::WorkerCountMismatch {
                expected: self.clients.len(),
                got: gradients.len(),
            });
        }
        let tensor_meta: Vec<(TensorId, usize)> =
            gradients[0].iter().map(|t| (t.id(), t.len())).collect();
        for (w, set) in gradients.iter().enumerate() {
            let meta: Vec<(TensorId, usize)> = set.iter().map(|t| (t.id(), t.len())).collect();
            if meta != tensor_meta {
                return Err(SystemError::TensorSetMismatch { worker: w });
            }
        }
        Ok(tensor_meta)
    }

    /// Fallible synchronization: like [`synchronize`](Self::synchronize) but
    /// malformed gradient sets surface as a [`SystemError`].
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::WorkerCountMismatch`] when `gradients.len()`
    /// differs from the worker count and [`SystemError::TensorSetMismatch`]
    /// when a worker's tensor set differs from worker 0's.
    pub fn try_synchronize(
        &mut self,
        gradients: &[Vec<Tensor>],
    ) -> Result<Vec<Vec<Tensor>>, SystemError> {
        let tensor_meta = self.validate_gradients(gradients)?;

        // Phase 1: push. Clients partition/route; requests land in the
        // per-client queues of the destination proxies.
        for (w, set) in gradients.iter().enumerate() {
            for tensor in set {
                self.clients[w].push(tensor);
            }
            while let Some(req) = self.clients[w].dequeue() {
                let pi = self.proxy_index[&req.proxy];
                self.proxies[pi].enqueue(w, req);
            }
        }

        Ok(self.reduce_and_pull(&tensor_meta))
    }

    /// Phases 2–4 of a synchronization round: proxies absorb their queues,
    /// the sync-core ring reduces across memory devices (optimizer step if
    /// installed), and every client pulls its shards back.
    fn reduce_and_pull(&mut self, tensor_meta: &[(TensorId, usize)]) -> Vec<Vec<Tensor>> {
        // Phase 2: proxies absorb their queues (scatter-add per tensor).
        for p in &mut self.proxies {
            p.absorb();
        }

        // Phase 3: cross-device reduction per tensor. With one device the
        // local accumulation already is the global sum. In optimizer mode
        // the devices then run the update rule on the master weights and
        // publish the new values (§II-A).
        let workers = self.clients.len() as f32;
        for (round, &(id, len)) in tensor_meta.iter().enumerate() {
            let mut reduced = if self.proxies.len() == 1 {
                self.proxies[0].take_contribution(id, len)
            } else {
                let inputs: Vec<Vec<f32>> = self
                    .proxies
                    .iter_mut()
                    .map(|p| p.take_contribution(id, len))
                    .collect();
                // Alternate ring direction per tensor (Fig. 11b).
                let mut group = SyncGroup::new(
                    self.proxies.len(),
                    SYNC_CHUNK_ELEMS,
                    RingDirection::for_group(round),
                );
                if let Some(hub) = &self.oracles {
                    group.set_oracles(hub.clone());
                }
                group
                    .try_allreduce_sum(&inputs)
                    // simlint: allow(panic-in-library, reason = "failover repair keeps exactly one contribution per surviving proxy per window")
                    .expect("one contribution per surviving proxy")
                    .0
            };
            // Each completed cross-device reduction is serviceable work
            // finishing — the liveness oracle's heartbeat.
            if let Some(hub) = &self.oracles {
                hub.emit(OracleEvent::Progress { at: self.clock });
            }
            for x in &mut reduced {
                *x /= workers;
            }
            let publish = match &mut self.optimizer {
                Some(opt) => {
                    let mut master = self.proxies[0]
                        .store()
                        .get(id)
                        .unwrap_or_else(|| {
                            // simlint: allow(panic-in-library, reason = "documented # Panics contract: optimizer mode requires register_parameters() before training")
                            panic!("optimizer mode requires registered parameters for {id}")
                        })
                        .into_data();
                    opt.step(id, &mut master, &reduced);
                    master
                }
                None => reduced,
            };
            for p in &mut self.proxies {
                p.store_reduced(id, publish.clone());
            }
        }

        // Phase 4: pull. Each client collects its shards back from the
        // proxies it pushed to and reconstructs full tensors.
        let mut results = Vec::with_capacity(self.clients.len());
        for w in 0..self.clients.len() {
            let mut done: BTreeMap<TensorId, Tensor> = BTreeMap::new();
            for &(id, _) in tensor_meta {
                for pi in 0..self.proxies.len() {
                    for shard in self.proxies[pi].serve_pull(w, id) {
                        if let Some(t) = self.clients[w].deliver(shard) {
                            done.insert(t.id(), t);
                        }
                    }
                }
            }
            results.push(
                tensor_meta
                    .iter()
                    // simlint: allow(panic-in-library, reason = "the loop above inserts one entry per partition before this read")
                    .map(|&(id, _)| done.remove(&id).expect("every tensor reconstructs"))
                    .collect(),
            );
        }
        results
    }

    /// The memory devices currently hosting proxies, in deployment order
    /// (shrinks after [`fail_proxy`](Self::fail_proxy)).
    pub fn proxy_devices(&self) -> Vec<DeviceId> {
        self.proxies.iter().map(|p| p.device()).collect()
    }

    /// Fails `device`'s proxy over: removes it from the deployment and
    /// re-indexes the survivors. Returns false if no such proxy exists.
    /// Callers should follow up with [`reprofile`](Self::reprofile) so the
    /// routing tables stop addressing the dead device.
    pub fn fail_proxy(&mut self, device: DeviceId) -> bool {
        let Some(pos) = self.proxies.iter().position(|p| p.device() == device) else {
            return false;
        };
        self.proxies.remove(pos);
        self.proxy_index = self
            .proxies
            .iter()
            .enumerate()
            .map(|(i, p)| (p.device(), i))
            .collect();
        true
    }

    /// Synchronizes one round under an injected fault plan, exercising the
    /// full resilience story: pushes travel under CRC32 seals and transient
    /// corruption (per the plan) is retried with exponential backoff; a push
    /// toward a dropped device times out and triggers proxy failover with
    /// routing-table repair over the survivors; if the whole proxy tier is
    /// lost, synchronization degrades gracefully to GPU-only allreduce.
    ///
    /// `now` is the simulated instant of the round (fault windows are
    /// evaluated against it); `topo` is the fabric used for routing repair.
    /// Returns the averaged tensors (exact elementwise mean, same guarantee
    /// as [`synchronize`](Self::synchronize)) plus the fault report. With an
    /// empty plan this is exactly `synchronize` plus a clean report.
    ///
    /// # Panics
    ///
    /// Panics if worker counts mismatch or tensor sets differ. Use
    /// [`try_synchronize_resilient`](Self::try_synchronize_resilient) for a
    /// fallible variant.
    pub fn synchronize_resilient(
        &mut self,
        gradients: &[Vec<Tensor>],
        topo: &Topology,
        plan: &FaultPlan,
        now: SimTime,
        policy: &ResiliencePolicy,
    ) -> (Vec<Vec<Tensor>>, SyncFaultReport) {
        match self.try_synchronize_resilient(gradients, topo, plan, now, policy) {
            Ok(r) => r,
            // simlint: allow(panic-in-library, reason = "documented panicking wrapper; try_synchronize_resilient is the fallible variant")
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible resilient synchronization: like
    /// [`synchronize_resilient`](Self::synchronize_resilient) but malformed
    /// gradient sets surface as a [`SystemError`].
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::WorkerCountMismatch`] or
    /// [`SystemError::TensorSetMismatch`].
    pub fn try_synchronize_resilient(
        &mut self,
        gradients: &[Vec<Tensor>],
        topo: &Topology,
        plan: &FaultPlan,
        now: SimTime,
        policy: &ResiliencePolicy,
    ) -> Result<(Vec<Vec<Tensor>>, SyncFaultReport), SystemError> {
        let mut report = SyncFaultReport::default();
        if plan.is_empty() {
            return Ok((self.try_synchronize(gradients)?, report));
        }
        let tensor_meta = self.validate_gradients(gradients)?;
        self.clock = now;
        for p in &mut self.proxies {
            p.set_time(now);
        }
        // A new round: every worker's shard streams start over at shard 0.
        self.emit_stream_resets(&tensor_meta, now);

        // Deterministic per-transfer sequence number: keys the plan's
        // corruption hash so each retransmission draws a fresh outcome.
        let mut transfer_seq: u64 = 0;
        'round: loop {
            // Detect proxies that dropped before this round (timeout each).
            let downs: Vec<DeviceId> = self
                .proxies
                .iter()
                .map(|p| p.device())
                .filter(|d| plan.device_down(d.index() as u32, now))
                .collect();
            if !downs.is_empty() {
                for d in downs {
                    if let Some(hub) = &self.oracles {
                        hub.emit(OracleEvent::FaultBite {
                            kind: BiteKind::Dropout,
                            at: now,
                        });
                    }
                    self.fail_proxy(d);
                    report.failovers += 1;
                    report.recovery_time += policy.detect_timeout;
                }
                if !self.proxies.is_empty() {
                    self.reprofile(topo, now);
                }
            }
            if self.proxies.is_empty() {
                // Proxy tier lost: degrade to GPU-only synchronization.
                report.degraded_to_gpu = true;
                for c in &mut self.clients {
                    c.reset_pending();
                }
                self.emit_stream_resets(&tensor_meta, now);
                if let Some(hub) = &self.oracles {
                    hub.emit(OracleEvent::Progress { at: now });
                }
                return Ok((gpu_only_mean(gradients), report));
            }

            // Push phase, resilient: every shard travels sealed; transient
            // corruption is retried with backoff; a dead destination aborts
            // and restarts the round after failover.
            for (w, set) in gradients.iter().enumerate() {
                for tensor in set {
                    self.clients[w].push(tensor);
                }
                while let Some(req) = self.clients[w].dequeue() {
                    if plan.device_down(req.proxy.index() as u32, now) {
                        // Push timed out: fail the proxy over, repair the
                        // routing tables, and restart the round cleanly.
                        report.failovers += 1;
                        report.recovery_time += policy.detect_timeout;
                        if let Some(hub) = &self.oracles {
                            hub.emit(OracleEvent::FaultBite {
                                kind: BiteKind::Dropout,
                                at: now,
                            });
                        }
                        self.fail_proxy(req.proxy);
                        if !self.proxies.is_empty() {
                            self.reprofile(topo, now);
                        }
                        for p in &mut self.proxies {
                            p.discard_pending();
                        }
                        for c in &mut self.clients {
                            c.reset_pending();
                        }
                        self.emit_stream_resets(&tensor_meta, now);
                        continue 'round;
                    }
                    let pi = self.proxy_index[&req.proxy];
                    let mut attempt = 0u32;
                    loop {
                        transfer_seq += 1;
                        if let Some(hub) = &self.oracles {
                            hub.emit(OracleEvent::ShardAttempt {
                                worker: w as u32,
                                stream: req.shard.tensor.0,
                                shard: req.shard.index,
                                attempt,
                                at: now,
                            });
                        }
                        let mut sealed = SealedShard::seal(req.shard.clone());
                        if attempt < MAX_PUSH_ATTEMPTS
                            && plan.corrupts(req.proxy.index() as u32, now, transfer_seq)
                        {
                            // Model in-flight corruption: flip a mantissa bit
                            // after sealing so the CRC32 check fails.
                            if let Some(x) = sealed.shard_mut().data.first_mut() {
                                *x = f32::from_bits(x.to_bits() ^ 1);
                            }
                            if let Some(hub) = &self.oracles {
                                hub.emit(OracleEvent::FaultBite {
                                    kind: BiteKind::Corrupt,
                                    at: now,
                                });
                            }
                        }
                        match self.proxies[pi].enqueue_sealed(
                            w,
                            sealed,
                            req.shard_count,
                            req.tensor_len,
                        ) {
                            Ok(()) => break,
                            Err(_) => {
                                report.retries += 1;
                                report.rejected_shards += 1;
                                report.recovery_time += policy.backoff_after(attempt);
                                attempt += 1;
                            }
                        }
                    }
                }
            }
            break;
        }
        Ok((self.reduce_and_pull(&tensor_meta), report))
    }

    /// Announces to the oracle battery that every worker's per-tensor shard
    /// stream legitimately restarts (round restart after failover or
    /// degradation) — without this the retry-FIFO oracle would flag the
    /// restarted streams as regressions.
    fn emit_stream_resets(&self, tensor_meta: &[(TensorId, usize)], now: SimTime) {
        if let Some(hub) = &self.oracles {
            for w in 0..self.clients.len() {
                for &(id, _) in tensor_meta {
                    hub.emit(OracleEvent::StreamReset {
                        worker: w as u32,
                        stream: id.0,
                        at: now,
                    });
                }
            }
        }
    }

    /// The stored value of a tensor on the first memory device's storage,
    /// if it has been synchronized.
    pub fn stored(&self, id: TensorId) -> Option<Tensor> {
        self.proxies[0].store().get(id)
    }

    /// Takes a coordinated checkpoint: snapshots every proxy's storage
    /// (§IV-A fault tolerance).
    pub fn checkpoint(&mut self) -> Vec<Snapshot> {
        self.proxies
            .iter_mut()
            .map(|p| p.store_mut().snapshot())
            .collect()
    }

    /// Restores every proxy's storage from a coordinated checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot count differs from the proxy count.
    pub fn restore(&mut self, snapshots: &[Snapshot]) {
        assert_eq!(snapshots.len(), self.proxies.len(), "snapshot per proxy");
        for (p, s) in self.proxies.iter_mut().zip(snapshots) {
            p.store_mut().restore(s);
        }
    }
}

/// The elementwise mean of every worker's gradients, computed GPU-side —
/// the graceful-degradation fallback when the proxy tier is lost. Every
/// worker receives the same (exact) mean, matching the proxy path's
/// guarantee.
fn gpu_only_mean(gradients: &[Vec<Tensor>]) -> Vec<Vec<Tensor>> {
    let workers = gradients.len() as f32;
    let means: Vec<Tensor> = gradients[0]
        .iter()
        .enumerate()
        .map(|(i, t0)| {
            let mut acc = vec![0.0f32; t0.len()];
            for set in gradients {
                for (a, b) in acc.iter_mut().zip(set[i].data()) {
                    *a += *b;
                }
            }
            for x in &mut acc {
                *x /= workers;
            }
            Tensor::new(t0.id(), acc)
        })
        .collect();
    gradients.iter().map(|_| means.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_fabric::machines::{aws_t4, aws_v100, sdsc_p100, PartitionScheme};

    /// Integer-valued gradients so ring-order summation is exact.
    fn gradient_sets(workers: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
        (0..workers)
            .map(|w| {
                sizes
                    .iter()
                    .enumerate()
                    .map(|(i, &len)| {
                        Tensor::new(
                            TensorId(i as u64),
                            (0..len).map(|j| ((w * 3 + i + j) % 16) as f32).collect(),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn expected_mean(gradients: &[Vec<Tensor>]) -> Vec<Tensor> {
        let workers = gradients.len() as f32;
        gradients[0]
            .iter()
            .enumerate()
            .map(|(i, t0)| {
                let mut acc = vec![0.0f32; t0.len()];
                for set in gradients {
                    for (a, b) in acc.iter_mut().zip(set[i].data()) {
                        *a += *b;
                    }
                }
                for x in &mut acc {
                    *x /= workers;
                }
                Tensor::new(t0.id(), acc)
            })
            .collect()
    }

    fn check_machine(machine: coarse_fabric::machines::Machine, scheme: PartitionScheme) {
        let part = machine.partition(scheme);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        // Mixed sizes: tiny (lat-routed), medium, large (partitioned).
        let grads = gradient_sets(part.workers.len(), &[64, 5_000, 1_000_000]);
        let results = sys.synchronize(&grads);
        let expect = expected_mean(&grads);
        for per_worker in &results {
            assert_eq!(per_worker.len(), expect.len());
            for (got, want) in per_worker.iter().zip(&expect) {
                assert_eq!(got.id(), want.id());
                for (a, b) in got.data().iter().zip(want.data()) {
                    assert!((a - b).abs() < 1e-4, "mismatch: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn synchronize_equals_mean_on_v100() {
        check_machine(aws_v100(), PartitionScheme::OneToOne);
    }

    #[test]
    fn synchronize_equals_mean_on_p100() {
        check_machine(sdsc_p100(), PartitionScheme::OneToOne);
    }

    #[test]
    fn synchronize_equals_mean_on_t4() {
        check_machine(aws_t4(), PartitionScheme::OneToOne);
    }

    #[test]
    fn synchronize_equals_mean_with_shared_devices() {
        check_machine(aws_v100(), PartitionScheme::TwoToOne);
    }

    #[test]
    fn repeated_rounds_accumulate_versions() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let g1 = gradient_sets(part.workers.len(), &[1000]);
        sys.synchronize(&g1);
        let mut g2 = gradient_sets(part.workers.len(), &[1000]);
        for set in &mut g2 {
            set[0].scale(2.0);
        }
        let r2 = sys.synchronize(&g2);
        let expect = expected_mean(&g2);
        assert_eq!(r2[0][0].data(), expect[0].data());
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let g1 = gradient_sets(part.workers.len(), &[2048]);
        let r1 = sys.synchronize(&g1);
        let ckpt = sys.checkpoint();
        // Another round perturbs storage.
        let mut g2 = gradient_sets(part.workers.len(), &[2048]);
        for set in &mut g2 {
            set[0].scale(5.0);
        }
        sys.synchronize(&g2);
        // Restore: storage holds the first round's values again.
        sys.restore(&ckpt);
        let stored = sys.proxies[0].store().get(TensorId(0)).unwrap();
        assert_eq!(stored.data(), r1[0][0].data());
    }

    #[test]
    fn dynamic_reprofiling_follows_fabric_changes() {
        use coarse_fabric::machines::aws_v100_custom;
        // Start on the anti-local fabric: large tensors route remotely.
        let machine = aws_v100_custom(5.0, 9.0);
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        assert!(sys.routing_table(0).is_split());
        // The uplinks degrade below the hairpin (congestion): the local
        // proxy now wins bandwidth too.
        let congested = aws_v100_custom(5.0, 2.0);
        let changed = sys.reprofile(congested.topology(), SimTime::from_nanos(1));
        assert!(changed >= 1, "tables must change under congestion");
        assert!(!sys.routing_table(0).is_split());
        assert_eq!(sys.routing_table(0).lat_proxy, part.proxy_for(0));
        // Synchronization still produces exact means on the new tables.
        let grads = gradient_sets(part.workers.len(), &[1000, 800_000]);
        let results = sys.synchronize(&grads);
        let expect = expected_mean(&grads);
        for (got, want) in results[0].iter().zip(&expect) {
            for (a, b) in got.data().iter().zip(want.data()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn maybe_reprofile_respects_interval() {
        use coarse_simcore::time::SimDuration;
        let machine = aws_v100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let interval = SimDuration::from_millis(100);
        // Too early: tables were built at t=0.
        assert_eq!(
            sys.maybe_reprofile(machine.topology(), SimTime::from_nanos(10), interval),
            None
        );
        // Past the interval: runs (and finds nothing changed on the same
        // fabric).
        assert_eq!(
            sys.maybe_reprofile(
                machine.topology(),
                SimTime::ZERO + SimDuration::from_millis(150),
                interval
            ),
            Some(0)
        );
    }

    #[test]
    fn resilient_sync_with_empty_plan_matches_plain() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let grads = gradient_sets(part.workers.len(), &[64, 5_000]);
        let mut plain = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let want = plain.synchronize(&grads);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let (got, report) = sys.synchronize_resilient(
            &grads,
            machine.topology(),
            &coarse_simcore::faults::FaultPlan::empty(),
            SimTime::ZERO,
            &ResiliencePolicy::default(),
        );
        assert_eq!(got, want, "empty plan must be bit-identical");
        assert!(report.is_clean());
        assert_eq!(
            report.recovery_time,
            coarse_simcore::time::SimDuration::ZERO
        );
    }

    #[test]
    fn proxy_dropout_fails_over_and_still_produces_exact_mean() {
        let machine = aws_v100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let victim = part.mem_devices[1];
        let plan = coarse_simcore::faults::FaultPlan::new(3)
            .drop_device(victim.index() as u32, SimTime::from_nanos(10));
        let grads = gradient_sets(part.workers.len(), &[64, 5_000, 1_000_000]);
        let (results, report) = sys.synchronize_resilient(
            &grads,
            machine.topology(),
            &plan,
            SimTime::from_nanos(100),
            &ResiliencePolicy::default(),
        );
        assert_eq!(report.failovers, 1);
        assert!(!report.degraded_to_gpu);
        assert!(report.recovery_time > coarse_simcore::time::SimDuration::ZERO);
        assert_eq!(sys.proxy_count(), part.mem_devices.len() - 1);
        assert!(!sys.proxy_devices().contains(&victim));
        let expect = expected_mean(&grads);
        for per_worker in &results {
            for (got, want) in per_worker.iter().zip(&expect) {
                for (a, b) in got.data().iter().zip(want.data()) {
                    assert!((a - b).abs() < 1e-4, "mismatch after failover: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn losing_every_proxy_degrades_to_gpu_only() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let mut plan = coarse_simcore::faults::FaultPlan::new(4);
        for d in &part.mem_devices {
            plan = plan.drop_device(d.index() as u32, SimTime::ZERO);
        }
        let grads = gradient_sets(part.workers.len(), &[2048]);
        let (results, report) = sys.synchronize_resilient(
            &grads,
            machine.topology(),
            &plan,
            SimTime::from_nanos(5),
            &ResiliencePolicy::default(),
        );
        assert!(report.degraded_to_gpu);
        assert_eq!(report.failovers as usize, part.mem_devices.len());
        assert_eq!(sys.proxy_count(), 0);
        let expect = expected_mean(&grads);
        for per_worker in &results {
            assert_eq!(per_worker[0].data(), expect[0].data());
        }
    }

    #[test]
    fn transient_corruption_retries_until_clean_and_preserves_mean() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let mut plan = coarse_simcore::faults::FaultPlan::new(11);
        for d in &part.mem_devices {
            plan = plan.corrupt_transfers(d.index() as u32, SimTime::ZERO, SimTime::MAX, 400_000);
        }
        let grads = gradient_sets(part.workers.len(), &[64, 900_000]);
        let (results, report) = sys.synchronize_resilient(
            &grads,
            machine.topology(),
            &plan,
            SimTime::from_nanos(50),
            &ResiliencePolicy::default(),
        );
        assert!(report.retries > 0, "40% corruption must force retries");
        assert_eq!(report.retries, report.rejected_shards);
        assert!(report.recovery_time > coarse_simcore::time::SimDuration::ZERO);
        assert_eq!(report.failovers, 0);
        let expect = expected_mean(&grads);
        for per_worker in &results {
            for (got, want) in per_worker.iter().zip(&expect) {
                for (a, b) in got.data().iter().zip(want.data()) {
                    assert!((a - b).abs() < 1e-4);
                }
            }
        }
        // Same seed, fresh system: byte-identical fault report.
        let mut sys2 = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let (_, report2) = sys2.synchronize_resilient(
            &grads,
            machine.topology(),
            &plan,
            SimTime::from_nanos(50),
            &ResiliencePolicy::default(),
        );
        assert_eq!(report, report2, "faulty runs must be deterministic");
    }

    #[test]
    fn try_new_rejects_empty_tiers() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        assert_eq!(
            CoarseSystem::try_new(machine.topology(), &[], &part.mem_devices).err(),
            Some(SystemError::NoWorkers)
        );
        assert_eq!(
            CoarseSystem::try_new(machine.topology(), &part.workers, &[]).err(),
            Some(SystemError::NoMemDevices)
        );
    }

    #[test]
    fn try_synchronize_surfaces_typed_errors() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let short = gradient_sets(part.workers.len() - 1, &[100]);
        assert_eq!(
            sys.try_synchronize(&short).err(),
            Some(SystemError::WorkerCountMismatch {
                expected: part.workers.len(),
                got: part.workers.len() - 1,
            })
        );
        let mut bad = gradient_sets(part.workers.len(), &[100]);
        bad[1][0] = Tensor::new(TensorId(42), vec![0.0; 100]);
        assert_eq!(
            sys.try_synchronize(&bad).err(),
            Some(SystemError::TensorSetMismatch { worker: 1 })
        );
    }

    #[test]
    fn oracles_stay_quiet_across_resilient_rounds() {
        use coarse_simcore::oracle::OracleHub;
        use coarse_simcore::time::SimDuration;
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let hub = OracleHub::with_builtins(SimDuration::from_millis(50));
        sys.set_oracles(hub.clone());
        let mut plan = coarse_simcore::faults::FaultPlan::new(11);
        for d in &part.mem_devices {
            plan = plan.corrupt_transfers(d.index() as u32, SimTime::ZERO, SimTime::MAX, 400_000);
        }
        let grads = gradient_sets(part.workers.len(), &[64, 900_000]);
        // Two consecutive rounds: retries fire, streams restart per round.
        for round in 0..2u64 {
            let now = SimTime::from_nanos(50 + round * 10);
            let (_, report) = sys.synchronize_resilient(
                &grads,
                machine.topology(),
                &plan,
                now,
                &ResiliencePolicy::default(),
            );
            assert!(report.retries > 0);
        }
        hub.emit(OracleEvent::RunEnd {
            at: SimTime::from_nanos(60),
        });
        assert!(
            hub.violations().is_empty(),
            "healthy resilient rounds flagged: {:?}",
            hub.violations()
        );
        assert!(hub.events_seen() > 0);
    }

    #[test]
    #[should_panic(expected = "identical tensor sets")]
    fn mismatched_tensor_sets_rejected() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let mut grads = gradient_sets(part.workers.len(), &[100]);
        grads[1][0] = Tensor::new(TensorId(42), vec![0.0; 100]);
        sys.synchronize(&grads);
    }
}
