//! The assembled COARSE system: clients, proxies, storage, routing, and the
//! cross-device reduction, wired together functionally.
//!
//! [`CoarseSystem::synchronize`] runs one full parameter-synchronization
//! round on real data: every worker pushes its gradient tensors (partitioned
//! and routed per its profiled table), proxies scatter-add local
//! contributions, the sync-core ring reduces across memory devices, storage
//! is updated copy-on-write, and every worker pulls back and reconstructs
//! the averaged tensors. Tests assert the result equals the elementwise
//! mean — the same guarantee AllReduce gives.

use std::collections::HashMap;

use coarse_cci::integrity::SealedShard;
use coarse_cci::storage::Snapshot;
use coarse_cci::synccore::{RingDirection, SyncGroup};
use coarse_cci::tensor::{Tensor, TensorId};
use coarse_fabric::device::DeviceId;
use coarse_fabric::topology::Topology;
use coarse_simcore::faults::FaultPlan;
use coarse_simcore::time::SimTime;

use crate::client::ParameterClient;
use crate::optim::Optimizer;
use crate::profiler::build_routing_table_for;
use crate::proxy::ParameterProxy;
use crate::resilience::{ResiliencePolicy, SyncFaultReport};

/// Elements per sync-core chunk in the cross-device reduction.
const SYNC_CHUNK_ELEMS: usize = 4096;

/// Retransmission bound: after this many integrity rejections of one shard
/// the fabric is assumed to have re-trained the link and the transfer goes
/// through clean (keeps even a 100%-corruption plan terminating).
const MAX_PUSH_ATTEMPTS: u32 = 32;

/// A fully wired COARSE deployment over one machine.
#[derive(Debug)]
pub struct CoarseSystem {
    clients: Vec<ParameterClient>,
    proxies: Vec<ParameterProxy>,
    proxy_index: HashMap<DeviceId, usize>,
    /// When set, the memory devices run this update rule on the master
    /// weights instead of publishing raw gradient means (§II-A).
    optimizer: Option<Box<dyn Optimizer>>,
}

impl CoarseSystem {
    /// Builds the system: profiles each worker against every memory device
    /// and installs the resulting routing tables (§III-E).
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `mem_devices` is empty.
    pub fn new(topo: &Topology, workers: &[DeviceId], mem_devices: &[DeviceId]) -> Self {
        assert!(!workers.is_empty(), "need at least one worker");
        assert!(!mem_devices.is_empty(), "need at least one memory device");
        let clients = workers
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                ParameterClient::new(
                    w,
                    build_routing_table_for(topo, w, mem_devices, i, SimTime::ZERO),
                )
            })
            .collect();
        let proxies: Vec<ParameterProxy> = mem_devices
            .iter()
            .map(|&d| ParameterProxy::new(d))
            .collect();
        let proxy_index = mem_devices
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i))
            .collect();
        CoarseSystem {
            clients,
            proxies,
            proxy_index,
            optimizer: None,
        }
    }

    /// Installs an optimizer: synchronization rounds now apply the update
    /// rule to registered master weights and publish the *new weights*
    /// rather than the gradient mean. Optimizer state lives with the
    /// parameter storage on the memory devices — the residency that frees
    /// GPU memory in Fig. 16e.
    pub fn set_optimizer(&mut self, optimizer: Box<dyn Optimizer>) {
        self.optimizer = Some(optimizer);
    }

    /// Registers initial master weights on every memory device's storage
    /// (required before optimizer-mode synchronization).
    pub fn register_parameters(&mut self, params: &[Tensor]) {
        for p in &mut self.proxies {
            for t in params {
                p.store_reduced(t.id(), t.data().to_vec());
            }
        }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.clients.len()
    }

    /// Number of memory devices.
    pub fn proxy_count(&self) -> usize {
        self.proxies.len()
    }

    /// The routing table of worker `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn routing_table(&self, w: usize) -> &crate::routing::RoutingTable {
        self.clients[w].table()
    }

    /// Re-runs the profiler against `topo` (which may reflect changed
    /// conditions — congestion, degraded links) and installs fresh routing
    /// tables — the dynamic profiling of §III-E. Returns how many workers'
    /// tables changed.
    pub fn reprofile(&mut self, topo: &Topology, now: SimTime) -> usize {
        let mem_devices: Vec<DeviceId> = {
            let mut pairs: Vec<(usize, DeviceId)> =
                self.proxy_index.iter().map(|(&d, &i)| (i, d)).collect();
            pairs.sort_unstable();
            pairs.into_iter().map(|(_, d)| d).collect()
        };
        let mut changed = 0;
        for (i, client) in self.clients.iter_mut().enumerate() {
            let fresh = build_routing_table_for(topo, client.worker(), &mem_devices, i, now);
            let old = *client.table();
            if fresh.lat_proxy != old.lat_proxy
                || fresh.bw_proxy != old.bw_proxy
                || fresh.threshold != old.threshold
                || fresh.shard_size != old.shard_size
            {
                changed += 1;
            }
            client.set_table(fresh);
        }
        changed
    }

    /// Re-profiles only if every table is older than `interval` at `now`.
    /// Returns `Some(changed)` when a re-profile ran.
    pub fn maybe_reprofile(
        &mut self,
        topo: &Topology,
        now: SimTime,
        interval: coarse_simcore::time::SimDuration,
    ) -> Option<usize> {
        if self
            .clients
            .iter()
            .all(|c| c.table().is_stale(now, interval))
        {
            Some(self.reprofile(topo, now))
        } else {
            None
        }
    }

    /// Synchronizes one round of gradients: `gradients[w]` is worker `w`'s
    /// tensor list (all workers push the same tensor ids). Returns, per
    /// worker, the averaged tensors pulled back, in push order.
    ///
    /// # Panics
    ///
    /// Panics if worker counts mismatch or tensor sets differ.
    pub fn synchronize(&mut self, gradients: &[Vec<Tensor>]) -> Vec<Vec<Tensor>> {
        assert_eq!(
            gradients.len(),
            self.clients.len(),
            "one gradient set per worker"
        );
        let tensor_meta: Vec<(TensorId, usize)> =
            gradients[0].iter().map(|t| (t.id(), t.len())).collect();
        for set in gradients {
            let meta: Vec<(TensorId, usize)> = set.iter().map(|t| (t.id(), t.len())).collect();
            assert_eq!(meta, tensor_meta, "workers must push identical tensor sets");
        }

        // Phase 1: push. Clients partition/route; requests land in the
        // per-client queues of the destination proxies.
        for (w, set) in gradients.iter().enumerate() {
            for tensor in set {
                self.clients[w].push(tensor);
            }
            while let Some(req) = self.clients[w].dequeue() {
                let pi = self.proxy_index[&req.proxy];
                self.proxies[pi].enqueue(w, req);
            }
        }

        self.reduce_and_pull(&tensor_meta)
    }

    /// Phases 2–4 of a synchronization round: proxies absorb their queues,
    /// the sync-core ring reduces across memory devices (optimizer step if
    /// installed), and every client pulls its shards back.
    fn reduce_and_pull(&mut self, tensor_meta: &[(TensorId, usize)]) -> Vec<Vec<Tensor>> {
        // Phase 2: proxies absorb their queues (scatter-add per tensor).
        for p in &mut self.proxies {
            p.absorb();
        }

        // Phase 3: cross-device reduction per tensor. With one device the
        // local accumulation already is the global sum. In optimizer mode
        // the devices then run the update rule on the master weights and
        // publish the new values (§II-A).
        let workers = self.clients.len() as f32;
        for (round, &(id, len)) in tensor_meta.iter().enumerate() {
            let mut reduced = if self.proxies.len() == 1 {
                self.proxies[0].take_contribution(id, len)
            } else {
                let inputs: Vec<Vec<f32>> = self
                    .proxies
                    .iter_mut()
                    .map(|p| p.take_contribution(id, len))
                    .collect();
                // Alternate ring direction per tensor (Fig. 11b).
                let mut group = SyncGroup::new(
                    self.proxies.len(),
                    SYNC_CHUNK_ELEMS,
                    RingDirection::for_group(round),
                );
                group
                    .try_allreduce_sum(&inputs)
                    .expect("one contribution per surviving proxy")
                    .0
            };
            for x in &mut reduced {
                *x /= workers;
            }
            let publish = match &mut self.optimizer {
                Some(opt) => {
                    let mut master = self.proxies[0]
                        .store()
                        .get(id)
                        .unwrap_or_else(|| {
                            panic!("optimizer mode requires registered parameters for {id}")
                        })
                        .into_data();
                    opt.step(id, &mut master, &reduced);
                    master
                }
                None => reduced,
            };
            for p in &mut self.proxies {
                p.store_reduced(id, publish.clone());
            }
        }

        // Phase 4: pull. Each client collects its shards back from the
        // proxies it pushed to and reconstructs full tensors.
        let mut results = Vec::with_capacity(self.clients.len());
        for w in 0..self.clients.len() {
            let mut done: HashMap<TensorId, Tensor> = HashMap::new();
            for &(id, _) in tensor_meta {
                for pi in 0..self.proxies.len() {
                    for shard in self.proxies[pi].serve_pull(w, id) {
                        if let Some(t) = self.clients[w].deliver(shard) {
                            done.insert(t.id(), t);
                        }
                    }
                }
            }
            results.push(
                tensor_meta
                    .iter()
                    .map(|&(id, _)| done.remove(&id).expect("every tensor reconstructs"))
                    .collect(),
            );
        }
        results
    }

    /// The memory devices currently hosting proxies, in deployment order
    /// (shrinks after [`fail_proxy`](Self::fail_proxy)).
    pub fn proxy_devices(&self) -> Vec<DeviceId> {
        self.proxies.iter().map(|p| p.device()).collect()
    }

    /// Fails `device`'s proxy over: removes it from the deployment and
    /// re-indexes the survivors. Returns false if no such proxy exists.
    /// Callers should follow up with [`reprofile`](Self::reprofile) so the
    /// routing tables stop addressing the dead device.
    pub fn fail_proxy(&mut self, device: DeviceId) -> bool {
        let Some(pos) = self.proxies.iter().position(|p| p.device() == device) else {
            return false;
        };
        self.proxies.remove(pos);
        self.proxy_index = self
            .proxies
            .iter()
            .enumerate()
            .map(|(i, p)| (p.device(), i))
            .collect();
        true
    }

    /// Synchronizes one round under an injected fault plan, exercising the
    /// full resilience story: pushes travel under CRC32 seals and transient
    /// corruption (per the plan) is retried with exponential backoff; a push
    /// toward a dropped device times out and triggers proxy failover with
    /// routing-table repair over the survivors; if the whole proxy tier is
    /// lost, synchronization degrades gracefully to GPU-only allreduce.
    ///
    /// `now` is the simulated instant of the round (fault windows are
    /// evaluated against it); `topo` is the fabric used for routing repair.
    /// Returns the averaged tensors (exact elementwise mean, same guarantee
    /// as [`synchronize`](Self::synchronize)) plus the fault report. With an
    /// empty plan this is exactly `synchronize` plus a clean report.
    ///
    /// # Panics
    ///
    /// Panics if worker counts mismatch or tensor sets differ.
    pub fn synchronize_resilient(
        &mut self,
        gradients: &[Vec<Tensor>],
        topo: &Topology,
        plan: &FaultPlan,
        now: SimTime,
        policy: &ResiliencePolicy,
    ) -> (Vec<Vec<Tensor>>, SyncFaultReport) {
        let mut report = SyncFaultReport::default();
        if plan.is_empty() {
            return (self.synchronize(gradients), report);
        }
        assert_eq!(
            gradients.len(),
            self.clients.len(),
            "one gradient set per worker"
        );
        let tensor_meta: Vec<(TensorId, usize)> =
            gradients[0].iter().map(|t| (t.id(), t.len())).collect();
        for set in gradients {
            let meta: Vec<(TensorId, usize)> = set.iter().map(|t| (t.id(), t.len())).collect();
            assert_eq!(meta, tensor_meta, "workers must push identical tensor sets");
        }

        // Deterministic per-transfer sequence number: keys the plan's
        // corruption hash so each retransmission draws a fresh outcome.
        let mut transfer_seq: u64 = 0;
        'round: loop {
            // Detect proxies that dropped before this round (timeout each).
            let downs: Vec<DeviceId> = self
                .proxies
                .iter()
                .map(|p| p.device())
                .filter(|d| plan.device_down(d.index() as u32, now))
                .collect();
            if !downs.is_empty() {
                for d in downs {
                    self.fail_proxy(d);
                    report.failovers += 1;
                    report.recovery_time += policy.detect_timeout;
                }
                if !self.proxies.is_empty() {
                    self.reprofile(topo, now);
                }
            }
            if self.proxies.is_empty() {
                // Proxy tier lost: degrade to GPU-only synchronization.
                report.degraded_to_gpu = true;
                for c in &mut self.clients {
                    c.reset_pending();
                }
                return (gpu_only_mean(gradients), report);
            }

            // Push phase, resilient: every shard travels sealed; transient
            // corruption is retried with backoff; a dead destination aborts
            // and restarts the round after failover.
            for (w, set) in gradients.iter().enumerate() {
                for tensor in set {
                    self.clients[w].push(tensor);
                }
                while let Some(req) = self.clients[w].dequeue() {
                    if plan.device_down(req.proxy.index() as u32, now) {
                        // Push timed out: fail the proxy over, repair the
                        // routing tables, and restart the round cleanly.
                        report.failovers += 1;
                        report.recovery_time += policy.detect_timeout;
                        self.fail_proxy(req.proxy);
                        if !self.proxies.is_empty() {
                            self.reprofile(topo, now);
                        }
                        for p in &mut self.proxies {
                            p.discard_pending();
                        }
                        for c in &mut self.clients {
                            c.reset_pending();
                        }
                        continue 'round;
                    }
                    let pi = self.proxy_index[&req.proxy];
                    let mut attempt = 0u32;
                    loop {
                        transfer_seq += 1;
                        let mut sealed = SealedShard::seal(req.shard.clone());
                        if attempt < MAX_PUSH_ATTEMPTS
                            && plan.corrupts(req.proxy.index() as u32, now, transfer_seq)
                        {
                            // Model in-flight corruption: flip a mantissa bit
                            // after sealing so the CRC32 check fails.
                            if let Some(x) = sealed.shard_mut().data.first_mut() {
                                *x = f32::from_bits(x.to_bits() ^ 1);
                            }
                        }
                        match self.proxies[pi].enqueue_sealed(
                            w,
                            sealed,
                            req.shard_count,
                            req.tensor_len,
                        ) {
                            Ok(()) => break,
                            Err(_) => {
                                report.retries += 1;
                                report.rejected_shards += 1;
                                report.recovery_time += policy.backoff_after(attempt);
                                attempt += 1;
                            }
                        }
                    }
                }
            }
            break;
        }
        (self.reduce_and_pull(&tensor_meta), report)
    }

    /// The stored value of a tensor on the first memory device's storage,
    /// if it has been synchronized.
    pub fn stored(&self, id: TensorId) -> Option<Tensor> {
        self.proxies[0].store().get(id)
    }

    /// Takes a coordinated checkpoint: snapshots every proxy's storage
    /// (§IV-A fault tolerance).
    pub fn checkpoint(&mut self) -> Vec<Snapshot> {
        self.proxies
            .iter_mut()
            .map(|p| p.store_mut().snapshot())
            .collect()
    }

    /// Restores every proxy's storage from a coordinated checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot count differs from the proxy count.
    pub fn restore(&mut self, snapshots: &[Snapshot]) {
        assert_eq!(snapshots.len(), self.proxies.len(), "snapshot per proxy");
        for (p, s) in self.proxies.iter_mut().zip(snapshots) {
            p.store_mut().restore(s);
        }
    }
}

/// The elementwise mean of every worker's gradients, computed GPU-side —
/// the graceful-degradation fallback when the proxy tier is lost. Every
/// worker receives the same (exact) mean, matching the proxy path's
/// guarantee.
fn gpu_only_mean(gradients: &[Vec<Tensor>]) -> Vec<Vec<Tensor>> {
    let workers = gradients.len() as f32;
    let means: Vec<Tensor> = gradients[0]
        .iter()
        .enumerate()
        .map(|(i, t0)| {
            let mut acc = vec![0.0f32; t0.len()];
            for set in gradients {
                for (a, b) in acc.iter_mut().zip(set[i].data()) {
                    *a += *b;
                }
            }
            for x in &mut acc {
                *x /= workers;
            }
            Tensor::new(t0.id(), acc)
        })
        .collect();
    gradients.iter().map(|_| means.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_fabric::machines::{aws_t4, aws_v100, sdsc_p100, PartitionScheme};

    /// Integer-valued gradients so ring-order summation is exact.
    fn gradient_sets(workers: usize, sizes: &[usize]) -> Vec<Vec<Tensor>> {
        (0..workers)
            .map(|w| {
                sizes
                    .iter()
                    .enumerate()
                    .map(|(i, &len)| {
                        Tensor::new(
                            TensorId(i as u64),
                            (0..len).map(|j| ((w * 3 + i + j) % 16) as f32).collect(),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn expected_mean(gradients: &[Vec<Tensor>]) -> Vec<Tensor> {
        let workers = gradients.len() as f32;
        gradients[0]
            .iter()
            .enumerate()
            .map(|(i, t0)| {
                let mut acc = vec![0.0f32; t0.len()];
                for set in gradients {
                    for (a, b) in acc.iter_mut().zip(set[i].data()) {
                        *a += *b;
                    }
                }
                for x in &mut acc {
                    *x /= workers;
                }
                Tensor::new(t0.id(), acc)
            })
            .collect()
    }

    fn check_machine(machine: coarse_fabric::machines::Machine, scheme: PartitionScheme) {
        let part = machine.partition(scheme);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        // Mixed sizes: tiny (lat-routed), medium, large (partitioned).
        let grads = gradient_sets(part.workers.len(), &[64, 5_000, 1_000_000]);
        let results = sys.synchronize(&grads);
        let expect = expected_mean(&grads);
        for per_worker in &results {
            assert_eq!(per_worker.len(), expect.len());
            for (got, want) in per_worker.iter().zip(&expect) {
                assert_eq!(got.id(), want.id());
                for (a, b) in got.data().iter().zip(want.data()) {
                    assert!((a - b).abs() < 1e-4, "mismatch: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn synchronize_equals_mean_on_v100() {
        check_machine(aws_v100(), PartitionScheme::OneToOne);
    }

    #[test]
    fn synchronize_equals_mean_on_p100() {
        check_machine(sdsc_p100(), PartitionScheme::OneToOne);
    }

    #[test]
    fn synchronize_equals_mean_on_t4() {
        check_machine(aws_t4(), PartitionScheme::OneToOne);
    }

    #[test]
    fn synchronize_equals_mean_with_shared_devices() {
        check_machine(aws_v100(), PartitionScheme::TwoToOne);
    }

    #[test]
    fn repeated_rounds_accumulate_versions() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let g1 = gradient_sets(part.workers.len(), &[1000]);
        sys.synchronize(&g1);
        let mut g2 = gradient_sets(part.workers.len(), &[1000]);
        for set in &mut g2 {
            set[0].scale(2.0);
        }
        let r2 = sys.synchronize(&g2);
        let expect = expected_mean(&g2);
        assert_eq!(r2[0][0].data(), expect[0].data());
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let g1 = gradient_sets(part.workers.len(), &[2048]);
        let r1 = sys.synchronize(&g1);
        let ckpt = sys.checkpoint();
        // Another round perturbs storage.
        let mut g2 = gradient_sets(part.workers.len(), &[2048]);
        for set in &mut g2 {
            set[0].scale(5.0);
        }
        sys.synchronize(&g2);
        // Restore: storage holds the first round's values again.
        sys.restore(&ckpt);
        let stored = sys.proxies[0].store().get(TensorId(0)).unwrap();
        assert_eq!(stored.data(), r1[0][0].data());
    }

    #[test]
    fn dynamic_reprofiling_follows_fabric_changes() {
        use coarse_fabric::machines::aws_v100_custom;
        // Start on the anti-local fabric: large tensors route remotely.
        let machine = aws_v100_custom(5.0, 9.0);
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        assert!(sys.routing_table(0).is_split());
        // The uplinks degrade below the hairpin (congestion): the local
        // proxy now wins bandwidth too.
        let congested = aws_v100_custom(5.0, 2.0);
        let changed = sys.reprofile(congested.topology(), SimTime::from_nanos(1));
        assert!(changed >= 1, "tables must change under congestion");
        assert!(!sys.routing_table(0).is_split());
        assert_eq!(sys.routing_table(0).lat_proxy, part.proxy_for(0));
        // Synchronization still produces exact means on the new tables.
        let grads = gradient_sets(part.workers.len(), &[1000, 800_000]);
        let results = sys.synchronize(&grads);
        let expect = expected_mean(&grads);
        for (got, want) in results[0].iter().zip(&expect) {
            for (a, b) in got.data().iter().zip(want.data()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn maybe_reprofile_respects_interval() {
        use coarse_simcore::time::SimDuration;
        let machine = aws_v100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let interval = SimDuration::from_millis(100);
        // Too early: tables were built at t=0.
        assert_eq!(
            sys.maybe_reprofile(machine.topology(), SimTime::from_nanos(10), interval),
            None
        );
        // Past the interval: runs (and finds nothing changed on the same
        // fabric).
        assert_eq!(
            sys.maybe_reprofile(
                machine.topology(),
                SimTime::ZERO + SimDuration::from_millis(150),
                interval
            ),
            Some(0)
        );
    }

    #[test]
    fn resilient_sync_with_empty_plan_matches_plain() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let grads = gradient_sets(part.workers.len(), &[64, 5_000]);
        let mut plain = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let want = plain.synchronize(&grads);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let (got, report) = sys.synchronize_resilient(
            &grads,
            machine.topology(),
            &coarse_simcore::faults::FaultPlan::empty(),
            SimTime::ZERO,
            &ResiliencePolicy::default(),
        );
        assert_eq!(got, want, "empty plan must be bit-identical");
        assert!(report.is_clean());
        assert_eq!(
            report.recovery_time,
            coarse_simcore::time::SimDuration::ZERO
        );
    }

    #[test]
    fn proxy_dropout_fails_over_and_still_produces_exact_mean() {
        let machine = aws_v100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let victim = part.mem_devices[1];
        let plan = coarse_simcore::faults::FaultPlan::new(3)
            .drop_device(victim.index() as u32, SimTime::from_nanos(10));
        let grads = gradient_sets(part.workers.len(), &[64, 5_000, 1_000_000]);
        let (results, report) = sys.synchronize_resilient(
            &grads,
            machine.topology(),
            &plan,
            SimTime::from_nanos(100),
            &ResiliencePolicy::default(),
        );
        assert_eq!(report.failovers, 1);
        assert!(!report.degraded_to_gpu);
        assert!(report.recovery_time > coarse_simcore::time::SimDuration::ZERO);
        assert_eq!(sys.proxy_count(), part.mem_devices.len() - 1);
        assert!(!sys.proxy_devices().contains(&victim));
        let expect = expected_mean(&grads);
        for per_worker in &results {
            for (got, want) in per_worker.iter().zip(&expect) {
                for (a, b) in got.data().iter().zip(want.data()) {
                    assert!((a - b).abs() < 1e-4, "mismatch after failover: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn losing_every_proxy_degrades_to_gpu_only() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let mut plan = coarse_simcore::faults::FaultPlan::new(4);
        for d in &part.mem_devices {
            plan = plan.drop_device(d.index() as u32, SimTime::ZERO);
        }
        let grads = gradient_sets(part.workers.len(), &[2048]);
        let (results, report) = sys.synchronize_resilient(
            &grads,
            machine.topology(),
            &plan,
            SimTime::from_nanos(5),
            &ResiliencePolicy::default(),
        );
        assert!(report.degraded_to_gpu);
        assert_eq!(report.failovers as usize, part.mem_devices.len());
        assert_eq!(sys.proxy_count(), 0);
        let expect = expected_mean(&grads);
        for per_worker in &results {
            assert_eq!(per_worker[0].data(), expect[0].data());
        }
    }

    #[test]
    fn transient_corruption_retries_until_clean_and_preserves_mean() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let mut plan = coarse_simcore::faults::FaultPlan::new(11);
        for d in &part.mem_devices {
            plan = plan.corrupt_transfers(d.index() as u32, SimTime::ZERO, SimTime::MAX, 400_000);
        }
        let grads = gradient_sets(part.workers.len(), &[64, 900_000]);
        let (results, report) = sys.synchronize_resilient(
            &grads,
            machine.topology(),
            &plan,
            SimTime::from_nanos(50),
            &ResiliencePolicy::default(),
        );
        assert!(report.retries > 0, "40% corruption must force retries");
        assert_eq!(report.retries, report.rejected_shards);
        assert!(report.recovery_time > coarse_simcore::time::SimDuration::ZERO);
        assert_eq!(report.failovers, 0);
        let expect = expected_mean(&grads);
        for per_worker in &results {
            for (got, want) in per_worker.iter().zip(&expect) {
                for (a, b) in got.data().iter().zip(want.data()) {
                    assert!((a - b).abs() < 1e-4);
                }
            }
        }
        // Same seed, fresh system: byte-identical fault report.
        let mut sys2 = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let (_, report2) = sys2.synchronize_resilient(
            &grads,
            machine.topology(),
            &plan,
            SimTime::from_nanos(50),
            &ResiliencePolicy::default(),
        );
        assert_eq!(report, report2, "faulty runs must be deterministic");
    }

    #[test]
    #[should_panic(expected = "identical tensor sets")]
    fn mismatched_tensor_sets_rejected() {
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let mut grads = gradient_sets(part.workers.len(), &[100]);
        grads[1][0] = Tensor::new(TensorId(42), vec![0.0; 100]);
        sys.synchronize(&grads);
    }
}
