//! Property tests for the COARSE core: client partitioning/reassembly
//! against arbitrary routing tables, and system-level synchronization,
//! driven by the in-repo deterministic harness.

use coarse_cci::tensor::{Tensor, TensorId};
use coarse_core::client::ParameterClient;
use coarse_core::routing::RoutingTable;
use coarse_core::system::CoarseSystem;
use coarse_fabric::device::DeviceId;
use coarse_fabric::machines::{sdsc_p100, PartitionScheme};
use coarse_simcore::check::{run_cases, Gen};
use coarse_simcore::time::SimTime;
use coarse_simcore::units::ByteSize;

fn scratch() -> (DeviceId, DeviceId, DeviceId) {
    let mut t = coarse_fabric::topology::Topology::new();
    let w = t.add_device(coarse_fabric::device::DeviceKind::Gpu, "w", 0);
    let a = t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "a", 0);
    let b = t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "b", 0);
    (w, a, b)
}

/// For any routing table and tensor, the client's push requests tile the
/// tensor exactly, all target a single proxy consistent with the table,
/// and reassembly reproduces the tensor bit-for-bit.
#[test]
fn client_requests_tile_and_route() {
    run_cases("client_requests_tile_and_route", 64, |g: &mut Gen| {
        let len = g.usize_in(1..50_000);
        let threshold_kib = g.u64_in(0..64);
        let shard_kib = g.u64_in(1..64);
        let (w, lat, bw) = scratch();
        let table = RoutingTable {
            lat_proxy: lat,
            bw_proxy: bw,
            threshold: ByteSize::kib(threshold_kib),
            shard_size: ByteSize::kib(shard_kib),
            built_at: SimTime::ZERO,
        };
        let mut client = ParameterClient::new(w, table);
        let tensor = Tensor::new(TensorId(1), (0..len).map(|_| g.rng().next_f32()).collect());
        client.push(&tensor);
        let reqs: Vec<_> = std::iter::from_fn(|| client.dequeue()).collect();
        // All requests go to exactly one proxy.
        assert!(reqs.iter().all(|r| r.proxy == reqs[0].proxy));
        // That proxy is consistent with the table: below threshold and
        // unpartitioned → route_for decides; partitioned → BwProxy.
        if reqs.len() > 1 {
            assert_eq!(reqs[0].proxy, bw);
            // Every shard except the last is at least the shard size.
            let shard_elems = (table.shard_size.as_u64() / 4).max(1) as usize;
            for r in &reqs[..reqs.len() - 1] {
                assert!(r.shard.data.len() >= shard_elems);
            }
        }
        // Tiling: offsets cover [0, len) without overlap.
        let mut covered = vec![false; len];
        for r in &reqs {
            for (i, slot) in covered
                .iter_mut()
                .enumerate()
                .skip(r.shard.offset)
                .take(r.shard.data.len())
            {
                assert!(!*slot, "overlap at {i}");
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // Reassembly is the identity.
        let mut rebuilt = None;
        for r in reqs {
            rebuilt = client.deliver(r.shard);
        }
        assert_eq!(rebuilt.unwrap(), tensor);
    });
}

/// End-to-end synchronization equals the elementwise mean within
/// floating-point tolerance, for arbitrary tensor sizes and values.
#[test]
fn system_synchronize_is_mean() {
    run_cases("system_synchronize_is_mean", 24, |g: &mut Gen| {
        let sizes = g.vec_of(1..4, |g| g.usize_in(1..30_000));
        let machine = sdsc_p100();
        let part = machine.partition(PartitionScheme::OneToOne);
        let mut sys = CoarseSystem::new(machine.topology(), &part.workers, &part.mem_devices);
        let workers = part.workers.len();
        let grads: Vec<Vec<Tensor>> = (0..workers)
            .map(|_| {
                sizes
                    .iter()
                    .enumerate()
                    .map(|(i, &len)| {
                        Tensor::new(
                            TensorId(i as u64),
                            (0..len).map(|_| g.f32_in(-10.0, 10.0)).collect(),
                        )
                    })
                    .collect()
            })
            .collect();
        let results = sys.synchronize(&grads);
        for (i, &len) in sizes.iter().enumerate() {
            for j in 0..len {
                let mean: f32 =
                    grads.iter().map(|gr| gr[i].data()[j]).sum::<f32>() / workers as f32;
                for r in &results {
                    let got = r[i].data()[j];
                    assert!(
                        (got - mean).abs() <= 1e-4 * mean.abs().max(1.0),
                        "tensor {i}[{j}]: {got} vs {mean}"
                    );
                }
            }
        }
    });
}
