//! Versioned, copy-on-write parameter storage with fine-grained snapshots
//! (§IV-A "Fault Tolerance").
//!
//! Parameters are stored as chunked buffers behind `Arc`s. Taking a snapshot
//! clones only the `Arc`s (O(chunks) pointer copies); a later update copies
//! just the chunks it actually changes, so checkpointing costs are
//! proportional to the *delta* between epochs rather than the model size.

use std::collections::BTreeMap;
use std::sync::Arc;

use coarse_simcore::units::ByteSize;

use crate::tensor::{Tensor, TensorId};

/// Elements per COW chunk.
pub const CHUNK_ELEMS: usize = 1024;

/// Cost accounting for one update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CowStats {
    /// Chunks physically copied (content changed while shared).
    pub chunks_copied: u64,
    /// Chunks mutated in place (not shared with any snapshot).
    pub chunks_in_place: u64,
    /// Chunks left untouched (content identical).
    pub chunks_unchanged: u64,
}

impl CowStats {
    /// Bytes physically copied by this update.
    pub fn copied_bytes(&self) -> ByteSize {
        ByteSize::bytes(self.chunks_copied * (CHUNK_ELEMS as u64) * 4)
    }
}

/// One tensor's chunked, versioned value.
#[derive(Debug, Clone)]
struct VersionedTensor {
    len: usize,
    chunks: Vec<Arc<Vec<f32>>>,
    version: u64,
}

impl VersionedTensor {
    fn from_tensor(t: &Tensor) -> Self {
        let chunks = t
            .data()
            .chunks(CHUNK_ELEMS)
            .map(|c| Arc::new(c.to_vec()))
            .collect();
        VersionedTensor {
            len: t.len(),
            chunks,
            version: 0,
        }
    }

    fn materialize(&self, id: TensorId) -> Tensor {
        let mut data = Vec::with_capacity(self.len);
        for c in &self.chunks {
            data.extend_from_slice(c);
        }
        Tensor::new(id, data)
    }
}

/// A point-in-time view of the whole store; cheap to take, cheap to hold.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    tensors: BTreeMap<TensorId, VersionedTensor>,
}

impl Snapshot {
    /// The epoch number recorded at snapshot time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of tensors captured.
    pub fn tensor_count(&self) -> usize {
        self.tensors.len()
    }

    /// Total logical bytes captured.
    pub fn logical_bytes(&self) -> ByteSize {
        self.tensors
            .values()
            .map(|v| ByteSize::bytes(v.len as u64 * 4))
            .sum()
    }

    /// Materializes every captured tensor, sorted by id (for deterministic
    /// serialization).
    pub fn tensors_sorted(&self) -> Vec<crate::tensor::Tensor> {
        let mut ids: Vec<TensorId> = self.tensors.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| self.tensors[&id].materialize(id))
            .collect()
    }
}

/// The parameter key-value store run by each memory device's storage
/// service.
#[derive(Debug, Clone, Default)]
pub struct ParameterStore {
    tensors: BTreeMap<TensorId, VersionedTensor>,
    epoch: u64,
}

impl ParameterStore {
    /// An empty store at epoch 0.
    pub fn new() -> Self {
        ParameterStore::default()
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True if no tensors are stored.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Current epoch counter.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total logical bytes stored.
    pub fn logical_bytes(&self) -> ByteSize {
        self.tensors
            .values()
            .map(|v| ByteSize::bytes(v.len as u64 * 4))
            .sum()
    }

    /// Inserts or replaces a tensor wholesale (initial placement).
    pub fn insert(&mut self, tensor: &Tensor) {
        self.tensors
            .insert(tensor.id(), VersionedTensor::from_tensor(tensor));
    }

    /// Materializes a tensor's current value.
    pub fn get(&self, id: TensorId) -> Option<Tensor> {
        self.tensors.get(&id).map(|v| v.materialize(id))
    }

    /// The stored version counter of a tensor.
    pub fn version(&self, id: TensorId) -> Option<u64> {
        self.tensors.get(&id).map(|v| v.version)
    }

    /// Updates a tensor's value with copy-on-write semantics: unchanged
    /// chunks are skipped, unshared chunks are mutated in place, and shared
    /// chunks (held by a snapshot) are copied.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is unknown or `data` has the wrong length.
    pub fn update(&mut self, id: TensorId, data: &[f32]) -> CowStats {
        let vt = self
            .tensors
            .get_mut(&id)
            // simlint: allow(panic-in-library, reason = "documented # Panics contract: updating an unregistered tensor is a caller bug")
            .unwrap_or_else(|| panic!("update of unknown tensor {id}"));
        assert_eq!(vt.len, data.len(), "update length mismatch for {id}");
        let mut stats = CowStats::default();
        let mut changed = false;
        for (chunk, new_data) in vt.chunks.iter_mut().zip(data.chunks(CHUNK_ELEMS)) {
            if chunk.as_slice() == new_data {
                stats.chunks_unchanged += 1;
                continue;
            }
            changed = true;
            match Arc::get_mut(chunk) {
                Some(owned) => {
                    owned.copy_from_slice(new_data);
                    stats.chunks_in_place += 1;
                }
                None => {
                    *chunk = Arc::new(new_data.to_vec());
                    stats.chunks_copied += 1;
                }
            }
        }
        if changed {
            vt.version += 1;
        }
        stats
    }

    /// Takes a snapshot of every parameter and advances the epoch — the
    /// per-epoch checkpoint of §IV-A.
    pub fn snapshot(&mut self) -> Snapshot {
        let snap = Snapshot {
            epoch: self.epoch,
            tensors: self.tensors.clone(),
        };
        self.epoch += 1;
        snap
    }

    /// Restores the store to a snapshot's state (crash recovery).
    pub fn restore(&mut self, snapshot: &Snapshot) {
        self.tensors = snapshot.tensors.clone();
        self.epoch = snapshot.epoch + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(id: u64, len: usize, fill: f32) -> Tensor {
        Tensor::new(TensorId(id), vec![fill; len])
    }

    #[test]
    fn insert_get_round_trip() {
        let mut store = ParameterStore::new();
        let t = tensor(1, 3000, 1.5);
        store.insert(&t);
        assert_eq!(store.get(TensorId(1)).unwrap(), t);
        assert_eq!(store.len(), 1);
        assert_eq!(store.logical_bytes(), ByteSize::bytes(12_000));
    }

    #[test]
    fn unchanged_update_copies_nothing() {
        let mut store = ParameterStore::new();
        let t = tensor(1, 3000, 1.5);
        store.insert(&t);
        let stats = store.update(TensorId(1), t.data());
        assert_eq!(stats.chunks_copied, 0);
        assert_eq!(stats.chunks_in_place, 0);
        assert_eq!(stats.chunks_unchanged, 3);
        assert_eq!(store.version(TensorId(1)), Some(0), "no version bump");
    }

    #[test]
    fn unshared_update_mutates_in_place() {
        let mut store = ParameterStore::new();
        store.insert(&tensor(1, 3000, 1.5));
        let stats = store.update(TensorId(1), &vec![2.0; 3000]);
        assert_eq!(stats.chunks_in_place, 3);
        assert_eq!(stats.chunks_copied, 0);
        assert_eq!(store.version(TensorId(1)), Some(1));
    }

    #[test]
    fn shared_update_copies_only_changed_chunks() {
        let mut store = ParameterStore::new();
        store.insert(&tensor(1, 3000, 1.5));
        let snap = store.snapshot();
        // Change only the middle chunk.
        let mut data = vec![1.5f32; 3000];
        data[1500] = 9.0;
        let stats = store.update(TensorId(1), &data);
        assert_eq!(stats.chunks_copied, 1, "only the dirty chunk is copied");
        assert_eq!(stats.chunks_unchanged, 2);
        // The snapshot still sees the old value.
        let mut restored = ParameterStore::new();
        restored.restore(&snap);
        assert_eq!(restored.get(TensorId(1)).unwrap().data()[1500], 1.5);
        assert_eq!(store.get(TensorId(1)).unwrap().data()[1500], 9.0);
    }

    #[test]
    fn snapshot_isolation_across_epochs() {
        let mut store = ParameterStore::new();
        store.insert(&tensor(1, 10, 0.0));
        let s0 = store.snapshot();
        store.update(TensorId(1), &[1.0; 10]);
        let s1 = store.snapshot();
        store.update(TensorId(1), &[2.0; 10]);
        assert_eq!(s0.epoch(), 0);
        assert_eq!(s1.epoch(), 1);
        let mut r = ParameterStore::new();
        r.restore(&s0);
        assert_eq!(r.get(TensorId(1)).unwrap().data()[0], 0.0);
        r.restore(&s1);
        assert_eq!(r.get(TensorId(1)).unwrap().data()[0], 1.0);
        assert_eq!(store.get(TensorId(1)).unwrap().data()[0], 2.0);
    }

    #[test]
    fn restore_advances_epoch_past_snapshot() {
        let mut store = ParameterStore::new();
        store.insert(&tensor(1, 10, 0.0));
        let s0 = store.snapshot();
        store.snapshot();
        store.restore(&s0);
        assert_eq!(store.epoch(), 1);
    }

    #[test]
    fn copied_bytes_accounting() {
        let stats = CowStats {
            chunks_copied: 2,
            chunks_in_place: 0,
            chunks_unchanged: 0,
        };
        assert_eq!(stats.copied_bytes(), ByteSize::bytes(2 * 1024 * 4));
    }

    #[test]
    #[should_panic(expected = "unknown tensor")]
    fn update_unknown_tensor_panics() {
        let mut store = ParameterStore::new();
        store.update(TensorId(99), &[1.0]);
    }

    #[test]
    fn snapshot_metadata() {
        let mut store = ParameterStore::new();
        store.insert(&tensor(1, 100, 0.0));
        store.insert(&tensor(2, 200, 0.0));
        let s = store.snapshot();
        assert_eq!(s.tensor_count(), 2);
        assert_eq!(s.logical_bytes(), ByteSize::bytes(1200));
    }
}
