//! Checkpoint persistence: serializing [`Snapshot`]s to a compact binary
//! image, as the framework would write to disk at each epoch (§IV-A: "the
//! memory device takes a snapshot of the current version of all parameters
//! and saves it as a checkpoint").
//!
//! Format (little-endian):
//!
//! ```text
//! magic "CRSE" | version u32 | epoch u64 | tensor_count u64
//! then per tensor (sorted by id): id u64 | len u64 | len × f32
//! ```

use std::collections::BTreeSet;

use crate::storage::{ParameterStore, Snapshot};
use crate::tensor::{Tensor, TensorId};

const MAGIC: &[u8; 4] = b"CRSE";
const VERSION: u32 = 1;

/// Errors when decoding a checkpoint image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The image does not start with the checkpoint magic.
    BadMagic,
    /// The format version is unsupported.
    UnsupportedVersion(u32),
    /// The image ended before the declared contents.
    Truncated,
    /// The image declared a duplicate tensor id.
    DuplicateTensor(TensorId),
    /// The image carries bytes past the declared contents (a corrupted
    /// tensor count would otherwise silently drop tensors).
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a COARSE checkpoint image"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            DecodeError::Truncated => write!(f, "checkpoint image is truncated"),
            DecodeError::DuplicateTensor(id) => write!(f, "duplicate tensor {id} in image"),
            DecodeError::TrailingBytes => write!(f, "checkpoint image has trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a snapshot to its on-disk image.
pub fn encode_snapshot(snapshot: &Snapshot) -> Vec<u8> {
    let tensors = snapshot.tensors_sorted();
    let payload: usize = tensors.iter().map(|t| 16 + t.len() * 4).sum();
    let mut out = Vec::with_capacity(4 + 4 + 8 + 8 + payload);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&snapshot.epoch().to_le_bytes());
    out.extend_from_slice(&(tensors.len() as u64).to_le_bytes());
    for t in tensors {
        out.extend_from_slice(&t.id().0.to_le_bytes());
        out.extend_from_slice(&(t.len() as u64).to_le_bytes());
        for v in t.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        // Checked: a bit-flipped length field can push `pos + n` past
        // usize::MAX, and wrapped arithmetic would mis-frame the image.
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            // simlint: allow(panic-in-library, reason = "take(width) guarantees the slice length, so the array conversion cannot fail")
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            // simlint: allow(panic-in-library, reason = "take(width) guarantees the slice length, so the array conversion cannot fail")
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Decodes a checkpoint image into a fresh [`ParameterStore`] positioned at
/// the epoch after the snapshot (exactly like
/// [`ParameterStore::restore`]).
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<(ParameterStore, u64), DecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let epoch = r.u64()?;
    let count = r.u64()?;
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut store = ParameterStore::new();
    for _ in 0..count {
        let id = r.u64()?;
        if !seen.insert(id) {
            return Err(DecodeError::DuplicateTensor(TensorId(id)));
        }
        let len = usize::try_from(r.u64()?).map_err(|_| DecodeError::Truncated)?;
        let byte_len = len.checked_mul(4).ok_or(DecodeError::Truncated)?;
        let raw = r.take(byte_len)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            // simlint: allow(panic-in-library, reason = "chunks_exact yields slices of exactly the requested width")
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        store.insert(&Tensor::new(TensorId(id), data));
    }
    if r.pos != bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok((store, epoch))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_data() -> ParameterStore {
        let mut store = ParameterStore::new();
        store.insert(&Tensor::new(TensorId(3), vec![1.5, -2.25, 3.0]));
        store.insert(&Tensor::new(
            TensorId(1),
            (0..3000).map(|i| i as f32).collect(),
        ));
        store
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut store = store_with_data();
        store.snapshot(); // epoch 0
        let snap = store.snapshot(); // epoch 1
        let image = encode_snapshot(&snap);
        let (decoded, epoch) = decode_checkpoint(&image).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded.get(TensorId(3)), store.get(TensorId(3)));
        assert_eq!(decoded.get(TensorId(1)), store.get(TensorId(1)));
    }

    #[test]
    fn image_is_deterministic() {
        let mut a = store_with_data();
        let mut b = store_with_data();
        assert_eq!(
            encode_snapshot(&a.snapshot()),
            encode_snapshot(&b.snapshot())
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut store = store_with_data();
        let mut image = encode_snapshot(&store.snapshot());
        image[0] = b'X';
        assert_eq!(
            decode_checkpoint(&image).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn truncation_rejected() {
        let mut store = store_with_data();
        let image = encode_snapshot(&store.snapshot());
        for cut in [3usize, 10, image.len() - 1] {
            assert_eq!(
                decode_checkpoint(&image[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut store = store_with_data();
        let mut image = encode_snapshot(&store.snapshot());
        image[4] = 99;
        assert_eq!(
            decode_checkpoint(&image).unwrap_err(),
            DecodeError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut store = store_with_data();
        let mut image = encode_snapshot(&store.snapshot());
        image.push(0);
        assert_eq!(
            decode_checkpoint(&image).unwrap_err(),
            DecodeError::TrailingBytes
        );
    }

    #[test]
    fn shrunken_tensor_count_rejected() {
        let mut store = store_with_data();
        let mut image = encode_snapshot(&store.snapshot());
        // The count field sits after magic+version+epoch; halving it leaves
        // the second tensor's bytes dangling, which must not decode as a
        // one-tensor image.
        image[16] = 1;
        assert_eq!(
            decode_checkpoint(&image).unwrap_err(),
            DecodeError::TrailingBytes
        );
    }

    #[test]
    fn huge_length_field_rejected_without_panic() {
        let mut store = store_with_data();
        let mut image = encode_snapshot(&store.snapshot());
        // First tensor's len field (after magic 4 + version 4 + epoch 8 +
        // count 8 + id 8 = 32): claim u64::MAX elements. The len*4 multiply
        // and pos+n add must stay checked rather than wrap.
        image[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            decode_checkpoint(&image).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let mut store = ParameterStore::new();
        let image = encode_snapshot(&store.snapshot());
        let (decoded, epoch) = decode_checkpoint(&image).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(epoch, 0);
    }
}
