//! The CCI disaggregated memory device and the FPGA prototype performance
//! model.
//!
//! [`PrototypeModel`] encodes the measured bandwidth curves of the paper's
//! two-FPGA CCI prototype (Figs. 3, 13, 14): a flat, slow load/store path
//! for fine-grained host access; an indirect path bounded by it; and a DMA
//! peer-to-peer path that saturates at ≈2 MiB and reaches 9–17× (read) /
//! 1.25–4× (write) the load/store rate. [`MemoryDevice`] couples that model
//! with on-device DRAM capacity tracking and sync-core inventory.

use coarse_fabric::device::DeviceId;
use coarse_simcore::time::SimDuration;
use coarse_simcore::units::{Bandwidth, ByteSize};

use coarse_fabric::bandwidth::BandwidthModel;

/// How the CCI memory is reached (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Host CPU load/store instructions over the mmapped BAR.
    CciLoadStore,
    /// GPU access staged through host CPU memory.
    GpuIndirect,
    /// GPU peer-to-peer DMA straight to the device.
    GpuDirect,
}

impl AccessMode {
    /// All modes in the paper's plotting order.
    pub const ALL: [AccessMode; 3] = [
        AccessMode::CciLoadStore,
        AccessMode::GpuIndirect,
        AccessMode::GpuDirect,
    ];

    /// Label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AccessMode::CciLoadStore => "CCI",
            AccessMode::GpuIndirect => "GPU Indirect",
            AccessMode::GpuDirect => "GPU Direct",
        }
    }
}

/// Direction of an access relative to the memory device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessDir {
    /// Reading from device DRAM.
    Read,
    /// Writing to device DRAM.
    Write,
}

/// Calibrated bandwidth curves of the FPGA CCI prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct PrototypeModel {
    cci_read: BandwidthModel,
    cci_write: BandwidthModel,
    indirect_read: BandwidthModel,
    indirect_write: BandwidthModel,
    direct_read: BandwidthModel,
    direct_write: BandwidthModel,
}

impl PrototypeModel {
    /// The calibration matching the paper's measurements:
    ///
    /// * GPU-Direct read reaches 9×–17× the load/store rate across
    ///   16 KiB – 64 MiB (Fig. 13a), write 1.25×–4× (Fig. 13b);
    /// * DMA saturates at ≈2 MiB (Fig. 14);
    /// * large-transfer summary speedups are 17× read / 4× write (Fig. 3).
    pub fn hpca_prototype() -> Self {
        let direct_read = BandwidthModel::Saturating {
            peak: Bandwidth::gib_per_sec(2.0),
            half_size: ByteSize::kib(16),
        };
        let direct_write = BandwidthModel::Saturating {
            peak: Bandwidth::gib_per_sec(2.0),
            half_size: ByteSize::kib(32),
        };
        PrototypeModel {
            cci_read: BandwidthModel::Flat {
                rate: Bandwidth::gib_per_sec(2.0 / 17.0),
            },
            cci_write: BandwidthModel::Flat {
                rate: Bandwidth::gib_per_sec(0.5),
            },
            // The indirect path is bounded by (and slightly below) the
            // load/store rate: the CPU bounce costs a little extra.
            indirect_read: BandwidthModel::Flat {
                rate: Bandwidth::gib_per_sec(2.0 / 17.0 * 0.97),
            },
            indirect_write: BandwidthModel::Flat {
                rate: Bandwidth::gib_per_sec(0.5 * 0.95),
            },
            direct_read,
            direct_write,
        }
    }

    /// The bandwidth model for `(mode, dir)`.
    pub fn model(&self, mode: AccessMode, dir: AccessDir) -> &BandwidthModel {
        match (mode, dir) {
            (AccessMode::CciLoadStore, AccessDir::Read) => &self.cci_read,
            (AccessMode::CciLoadStore, AccessDir::Write) => &self.cci_write,
            (AccessMode::GpuIndirect, AccessDir::Read) => &self.indirect_read,
            (AccessMode::GpuIndirect, AccessDir::Write) => &self.indirect_write,
            (AccessMode::GpuDirect, AccessDir::Read) => &self.direct_read,
            (AccessMode::GpuDirect, AccessDir::Write) => &self.direct_write,
        }
    }

    /// Effective bandwidth at `size` for `(mode, dir)`.
    pub fn bandwidth(&self, mode: AccessMode, dir: AccessDir, size: ByteSize) -> Bandwidth {
        self.model(mode, dir).effective(size)
    }

    /// Time to move `size` bytes via `(mode, dir)`.
    pub fn access_time(&self, mode: AccessMode, dir: AccessDir, size: ByteSize) -> SimDuration {
        self.model(mode, dir).serialization_time(size)
    }

    /// Speedup of GPU-Direct over load/store for `dir` at `size` — the
    /// quantity plotted in Fig. 13.
    pub fn direct_speedup(&self, dir: AccessDir, size: ByteSize) -> f64 {
        self.bandwidth(AccessMode::GpuDirect, dir, size)
            .as_bytes_per_sec()
            / self
                .bandwidth(AccessMode::CciLoadStore, dir, size)
                .as_bytes_per_sec()
    }
}

impl Default for PrototypeModel {
    fn default() -> Self {
        PrototypeModel::hpca_prototype()
    }
}

/// Errors from memory-device operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// The allocation would exceed on-device DRAM capacity.
    OutOfMemory {
        /// Requested allocation size.
        requested: ByteSize,
        /// Remaining free DRAM.
        available: ByteSize,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested}, available {available}"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A CCI disaggregated memory device: on-device DRAM plus a set of sync
/// cores (§IV-A).
#[derive(Debug, Clone)]
pub struct MemoryDevice {
    fabric_id: DeviceId,
    capacity: ByteSize,
    allocated: ByteSize,
    sync_cores: usize,
    prototype: PrototypeModel,
}

impl MemoryDevice {
    /// A device with `capacity` DRAM and `sync_cores` near-memory cores.
    ///
    /// # Panics
    ///
    /// Panics if `sync_cores` is zero.
    pub fn new(fabric_id: DeviceId, capacity: ByteSize, sync_cores: usize) -> Self {
        assert!(
            sync_cores > 0,
            "a memory device needs at least one sync core"
        );
        MemoryDevice {
            fabric_id,
            capacity,
            allocated: ByteSize::ZERO,
            sync_cores,
            prototype: PrototypeModel::hpca_prototype(),
        }
    }

    /// The fabric vertex this device occupies.
    pub fn fabric_id(&self) -> DeviceId {
        self.fabric_id
    }

    /// Total DRAM capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Currently allocated DRAM.
    pub fn allocated(&self) -> ByteSize {
        self.allocated
    }

    /// Free DRAM.
    pub fn available(&self) -> ByteSize {
        self.capacity - self.allocated
    }

    /// Number of sync cores.
    pub fn sync_cores(&self) -> usize {
        self.sync_cores
    }

    /// The prototype bandwidth curves of this device.
    pub fn prototype(&self) -> &PrototypeModel {
        &self.prototype
    }

    /// Reserves `size` bytes of DRAM.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] if the device is full.
    pub fn allocate(&mut self, size: ByteSize) -> Result<(), DeviceError> {
        if size > self.available() {
            return Err(DeviceError::OutOfMemory {
                requested: size,
                available: self.available(),
            });
        }
        self.allocated += size;
        Ok(())
    }

    /// Releases `size` bytes of DRAM.
    ///
    /// # Panics
    ///
    /// Panics if more is freed than was allocated.
    pub fn free(&mut self, size: ByteSize) {
        assert!(size <= self.allocated, "freeing more than allocated");
        self.allocated = self.allocated - size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric_dev() -> DeviceId {
        let mut t = coarse_fabric::topology::Topology::new();
        t.add_device(coarse_fabric::device::DeviceKind::MemoryDevice, "m0", 0)
    }

    #[test]
    fn direct_read_speedup_matches_fig13a() {
        let p = PrototypeModel::hpca_prototype();
        let small = p.direct_speedup(AccessDir::Read, ByteSize::kib(16));
        let large = p.direct_speedup(AccessDir::Read, ByteSize::mib(64));
        assert!((8.0..10.0).contains(&small), "small-read speedup {small}");
        assert!((16.0..17.5).contains(&large), "large-read speedup {large}");
    }

    #[test]
    fn direct_write_speedup_matches_fig13b() {
        let p = PrototypeModel::hpca_prototype();
        let small = p.direct_speedup(AccessDir::Write, ByteSize::kib(16));
        let large = p.direct_speedup(AccessDir::Write, ByteSize::mib(64));
        assert!((1.1..1.6).contains(&small), "small-write speedup {small}");
        assert!((3.8..4.1).contains(&large), "large-write speedup {large}");
    }

    #[test]
    fn indirect_bounded_by_loadstore() {
        let p = PrototypeModel::hpca_prototype();
        for size in [ByteSize::kib(16), ByteSize::mib(1), ByteSize::mib(64)] {
            assert!(
                p.bandwidth(AccessMode::GpuIndirect, AccessDir::Read, size)
                    <= p.bandwidth(AccessMode::CciLoadStore, AccessDir::Read, size)
            );
        }
    }

    #[test]
    fn dma_saturates_at_2mib() {
        let p = PrototypeModel::hpca_prototype();
        let at2 = p
            .bandwidth(AccessMode::GpuDirect, AccessDir::Read, ByteSize::mib(2))
            .as_gib_per_sec();
        assert!(at2 > 0.99 * 2.0, "≥99% of peak at 2MiB, got {at2}");
    }

    #[test]
    fn loadstore_flat_across_sizes() {
        let p = PrototypeModel::hpca_prototype();
        let a = p.bandwidth(AccessMode::CciLoadStore, AccessDir::Read, ByteSize::kib(4));
        let b = p.bandwidth(AccessMode::CciLoadStore, AccessDir::Read, ByteSize::mib(64));
        assert_eq!(a, b);
    }

    #[test]
    fn capacity_tracking() {
        let mut d = MemoryDevice::new(fabric_dev(), ByteSize::gib(16), 8);
        assert_eq!(d.available(), ByteSize::gib(16));
        d.allocate(ByteSize::gib(10)).unwrap();
        assert_eq!(d.available(), ByteSize::gib(6));
        let err = d.allocate(ByteSize::gib(7)).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfMemory { .. }));
        d.free(ByteSize::gib(10));
        assert_eq!(d.allocated(), ByteSize::ZERO);
    }

    #[test]
    #[should_panic(expected = "freeing more than allocated")]
    fn over_free_panics() {
        let mut d = MemoryDevice::new(fabric_dev(), ByteSize::gib(1), 1);
        d.free(ByteSize::bytes(1));
    }

    #[test]
    fn access_time_uses_curves() {
        let p = PrototypeModel::hpca_prototype();
        let direct = p.access_time(AccessMode::GpuDirect, AccessDir::Read, ByteSize::mib(64));
        let ls = p.access_time(AccessMode::CciLoadStore, AccessDir::Read, ByteSize::mib(64));
        assert!(ls > direct * 15);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(AccessMode::GpuDirect.label(), "GPU Direct");
        assert_eq!(AccessMode::ALL.len(), 3);
    }
}
