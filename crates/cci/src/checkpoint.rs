//! Pool-checkpoint traffic planning and the disk-cost baseline.
//!
//! §IV-A: "the memory device takes a snapshot of the current version of all
//! parameters and saves it as a checkpoint." In a cache-coherent pool the
//! snapshot never leaves the fabric: each proxy sealed-pushes its shard of
//! the parameter image to a *mirror* proxy (its ring successor), and a
//! restore coherently reads the image back. Both directions are therefore
//! ordinary simulated transfers, so the checkpoint interval becomes a
//! tunable cost/recovery tradeoff instead of a free byte blob.
//!
//! [`DiskModel`] is the analytic baseline the paper's "near-free vs disk"
//! claim is measured against: a conventional checkpoint funnels the full
//! image through a host filesystem at sequential-disk bandwidth plus a
//! fixed per-checkpoint setup cost.

use coarse_simcore::time::SimDuration;
use coarse_simcore::units::{Bandwidth, ByteSize};

/// One leg of a pool checkpoint: the proxy at member index `src` pushes
/// `bytes` of its parameter shard to the proxy at member index `mirror`.
/// Indices are positions in the surviving-membership list, not device ids —
/// the caller owns the membership → device mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLeg {
    /// Member index of the shard's owner.
    pub src: usize,
    /// Member index of the mirror receiving the copy.
    pub mirror: usize,
    /// Shard size.
    pub bytes: ByteSize,
}

/// The transfer legs of one pool checkpoint (or, reversed, one restore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPlan {
    /// One leg per surviving proxy, in member order.
    pub legs: Vec<ShardLeg>,
    /// Total image size (sum of all legs).
    pub total: ByteSize,
}

/// Splits a `total`-byte parameter image across `members` pool proxies and
/// mirrors each shard to its ring successor. The split is even with the
/// remainder spread over the lowest member indices, so the plan is a pure
/// function of `(members, total)`.
///
/// # Panics
///
/// Panics if `members < 2` — with a single survivor there is no distinct
/// mirror, and the caller should have degraded to GPU-only already.
pub fn plan_pool_checkpoint(members: usize, total: ByteSize) -> CheckpointPlan {
    assert!(members >= 2, "a pool checkpoint needs a distinct mirror");
    let base = total.as_u64() / members as u64;
    let rem = total.as_u64() % members as u64;
    let legs: Vec<ShardLeg> = (0..members)
        .map(|i| ShardLeg {
            src: i,
            mirror: (i + 1) % members,
            bytes: ByteSize::bytes(base + u64::from((i as u64) < rem)),
        })
        .collect();
    CheckpointPlan { legs, total }
}

/// Analytic cost model of a conventional disk checkpoint: the full image is
/// funneled through the host at sequential-storage bandwidth, plus a fixed
/// per-operation setup cost (file creation, metadata, fsync). The defaults
/// model a datacenter NVMe volume of the paper's era.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Sustained sequential write bandwidth.
    pub write_bandwidth: Bandwidth,
    /// Sustained sequential read bandwidth (restore path).
    pub read_bandwidth: Bandwidth,
    /// Fixed per-checkpoint (or per-restore) setup latency.
    pub setup_latency: SimDuration,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            write_bandwidth: Bandwidth::gib_per_sec(1.5),
            read_bandwidth: Bandwidth::gib_per_sec(2.5),
            setup_latency: SimDuration::from_millis(10),
        }
    }
}

impl DiskModel {
    /// Time to write a `total`-byte checkpoint image to disk.
    pub fn checkpoint_time(&self, total: ByteSize) -> SimDuration {
        self.setup_latency + self.write_bandwidth.transfer_time(total)
    }

    /// Time to read a `total`-byte checkpoint image back from disk.
    pub fn restore_time(&self, total: ByteSize) -> SimDuration {
        self.setup_latency + self.read_bandwidth.transfer_time(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_total_and_mirrors_ring_successor() {
        let plan = plan_pool_checkpoint(3, ByteSize::bytes(10));
        assert_eq!(plan.total, ByteSize::bytes(10));
        let sum: ByteSize = plan.legs.iter().map(|l| l.bytes).sum();
        assert_eq!(sum, ByteSize::bytes(10));
        // Remainder lands on the lowest indices: 4, 3, 3.
        assert_eq!(plan.legs[0].bytes, ByteSize::bytes(4));
        assert_eq!(plan.legs[1].bytes, ByteSize::bytes(3));
        assert_eq!(plan.legs[2].bytes, ByteSize::bytes(3));
        for (i, leg) in plan.legs.iter().enumerate() {
            assert_eq!(leg.src, i);
            assert_eq!(leg.mirror, (i + 1) % 3);
            assert_ne!(leg.src, leg.mirror, "a shard never mirrors to itself");
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let a = plan_pool_checkpoint(4, ByteSize::mib(100));
        let b = plan_pool_checkpoint(4, ByteSize::mib(100));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "distinct mirror")]
    fn single_member_rejected() {
        plan_pool_checkpoint(1, ByteSize::mib(1));
    }

    #[test]
    fn disk_model_charges_setup_plus_serialization() {
        let disk = DiskModel {
            write_bandwidth: Bandwidth::gib_per_sec(1.0),
            read_bandwidth: Bandwidth::gib_per_sec(2.0),
            setup_latency: SimDuration::from_millis(10),
        };
        let gib = ByteSize::bytes(1 << 30);
        let write = disk.checkpoint_time(gib);
        assert!(write > SimDuration::from_millis(1000), "{write}");
        assert!(write < SimDuration::from_millis(1100), "{write}");
        let read = disk.restore_time(gib);
        assert!(read < write, "restore reads faster than it writes");
    }
}
