//! Shard integrity: CRC32-sealed tensor shards and fault injection.
//!
//! CCI transports protect payloads with link-level CRC; a parameter system
//! still wants end-to-end coverage across DMA engines, staging buffers, and
//! device DRAM. [`SealedShard`] carries a CRC32 over a shard's identity and
//! payload; proxies verify on receipt and reject corrupted pushes instead
//! of folding bad data into the global reduction.

use crate::tensor::{TensorId, TensorShard};

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 over a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The checksum of a shard's identity (tensor, index, offset) and payload.
pub fn shard_checksum(shard: &TensorShard) -> u32 {
    let mut bytes = Vec::with_capacity(20 + shard.data.len() * 4);
    bytes.extend_from_slice(&shard.tensor.0.to_le_bytes());
    bytes.extend_from_slice(&shard.index.to_le_bytes());
    bytes.extend_from_slice(&(shard.offset as u64).to_le_bytes());
    for v in &shard.data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    crc32(&bytes)
}

/// A corruption detected on receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityError {
    /// The tensor whose shard failed verification.
    pub tensor: TensorId,
    /// The shard ordinal.
    pub index: u32,
    /// The checksum the sender sealed.
    pub expected: u32,
    /// The checksum computed on receipt.
    pub got: u32,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {}[{}] corrupt: sealed {:#010x}, received {:#010x}",
            self.tensor, self.index, self.expected, self.got
        )
    }
}

impl std::error::Error for IntegrityError {}

/// A shard plus the checksum sealed at the sender.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedShard {
    shard: TensorShard,
    checksum: u32,
}

impl SealedShard {
    /// Seals a shard for transport.
    pub fn seal(shard: TensorShard) -> Self {
        let checksum = shard_checksum(&shard);
        SealedShard { shard, checksum }
    }

    /// The sealed checksum.
    pub fn checksum(&self) -> u32 {
        self.checksum
    }

    /// Read-only view of the payload (e.g. for fault injection in tests).
    pub fn shard(&self) -> &TensorShard {
        &self.shard
    }

    /// Mutable access to the payload — the fault-injection surface. Any
    /// modification after sealing will fail [`verify`](Self::verify).
    pub fn shard_mut(&mut self) -> &mut TensorShard {
        &mut self.shard
    }

    /// Verifies the seal and unwraps the shard.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError`] if the shard no longer matches its seal.
    pub fn verify(self) -> Result<TensorShard, IntegrityError> {
        let got = shard_checksum(&self.shard);
        if got != self.checksum {
            return Err(IntegrityError {
                tensor: self.shard.tensor,
                index: self.shard.index,
                expected: self.checksum,
                got,
            });
        }
        Ok(self.shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> TensorShard {
        TensorShard {
            tensor: TensorId(7),
            index: 2,
            offset: 1024,
            data: (0..500).map(|i| (i as f32).sin()).collect(),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_verify_round_trip() {
        let s = shard();
        let sealed = SealedShard::seal(s.clone());
        assert_eq!(sealed.verify().unwrap(), s);
    }

    #[test]
    fn payload_bitflip_detected() {
        let mut sealed = SealedShard::seal(shard());
        let bits = sealed.shard_mut().data[123].to_bits() ^ 1;
        sealed.shard_mut().data[123] = f32::from_bits(bits);
        let err = sealed.verify().unwrap_err();
        assert_eq!(err.tensor, TensorId(7));
        assert_eq!(err.index, 2);
        assert_ne!(err.expected, err.got);
    }

    #[test]
    fn identity_tamper_detected() {
        // Replaying a shard at a different offset must fail even though the
        // payload is untouched.
        let mut sealed = SealedShard::seal(shard());
        sealed.shard_mut().offset += 4;
        assert!(sealed.verify().is_err());
    }

    #[test]
    fn every_single_bitflip_in_a_small_shard_is_caught() {
        let small = TensorShard {
            tensor: TensorId(1),
            index: 0,
            offset: 0,
            data: vec![1.0, -2.0, 3.5],
        };
        for elem in 0..small.data.len() {
            for bit in 0..32 {
                let mut sealed = SealedShard::seal(small.clone());
                let bits = sealed.shard_mut().data[elem].to_bits() ^ (1 << bit);
                sealed.shard_mut().data[elem] = f32::from_bits(bits);
                assert!(
                    sealed.verify().is_err(),
                    "flip of element {elem} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn distinct_shards_distinct_checksums() {
        let a = SealedShard::seal(shard());
        let mut other = shard();
        other.index = 3;
        let b = SealedShard::seal(other);
        assert_ne!(a.checksum(), b.checksum());
    }
}
