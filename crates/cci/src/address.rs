//! The CCI-unified address space.
//!
//! Memory devices map their on-device DRAM into a single shared address
//! space visible to the host CPU and to every other device (§II-C). This
//! module provides the allocator and reverse mapping: given a CCI address,
//! which device owns the backing memory?

use coarse_fabric::device::DeviceId;
use coarse_simcore::units::ByteSize;

/// A byte address in the unified CCI space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CciAddr(pub u64);

impl std::fmt::Display for CciAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

/// A contiguous mapped region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// First address of the region.
    pub base: CciAddr,
    /// Region length in bytes.
    pub size: ByteSize,
    /// The memory device exporting this region.
    pub owner: DeviceId,
}

impl Region {
    /// One past the last address.
    pub fn end(&self) -> u64 {
        self.base.0 + self.size.as_u64()
    }

    /// True if `addr` falls inside this region.
    pub fn contains(&self, addr: CciAddr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.end()
    }
}

/// Errors from address-space operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressError {
    /// The address is not mapped by any region.
    Unmapped(CciAddr),
    /// An access crosses a region boundary.
    CrossesRegion {
        /// Start of the faulting access.
        addr: CciAddr,
        /// Length of the faulting access.
        len: ByteSize,
    },
}

impl std::fmt::Display for AddressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddressError::Unmapped(a) => write!(f, "address {a} is not mapped"),
            AddressError::CrossesRegion { addr, len } => {
                write!(f, "access at {addr} (+{len}) crosses a region boundary")
            }
        }
    }
}

impl std::error::Error for AddressError {}

/// The allocator and map of the unified space. Regions are carved out
/// sequentially; addresses are never reused within one simulation.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    regions: Vec<Region>,
    next: u64,
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        AddressSpace {
            regions: Vec::new(),
            // Leave page zero unmapped, like real systems do.
            next: 0x1000,
        }
    }

    /// Maps `size` bytes of `owner`'s DRAM into the space, returning the
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn map(&mut self, owner: DeviceId, size: ByteSize) -> Region {
        assert!(!size.is_zero(), "cannot map an empty region");
        let region = Region {
            base: CciAddr(self.next),
            size,
            owner,
        };
        self.next += size.as_u64();
        // 4 KiB-align the next base.
        self.next = self.next.div_ceil(0x1000) * 0x1000;
        self.regions.push(region.clone());
        region
    }

    /// Resolves an address to its owning device and the offset within the
    /// region.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError::Unmapped`] for an unmapped address.
    pub fn resolve(&self, addr: CciAddr) -> Result<(DeviceId, u64), AddressError> {
        self.regions
            .iter()
            .find(|r| r.contains(addr))
            .map(|r| (r.owner, addr.0 - r.base.0))
            .ok_or(AddressError::Unmapped(addr))
    }

    /// Validates that an access of `len` bytes starting at `addr` stays
    /// inside one region, returning the owner.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError::Unmapped`] or [`AddressError::CrossesRegion`].
    pub fn resolve_range(&self, addr: CciAddr, len: ByteSize) -> Result<DeviceId, AddressError> {
        let region = self
            .regions
            .iter()
            .find(|r| r.contains(addr))
            .ok_or(AddressError::Unmapped(addr))?;
        if addr.0 + len.as_u64() > region.end() {
            return Err(AddressError::CrossesRegion { addr, len });
        }
        Ok(region.owner)
    }

    /// All mapped regions, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> ByteSize {
        self.regions.iter().map(|r| r.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: u32) -> DeviceId {
        // Test-only: fabricate ids through a scratch topology.
        let mut t = coarse_fabric::topology::Topology::new();
        let mut id = None;
        for k in 0..=i {
            id = Some(t.add_device(
                coarse_fabric::device::DeviceKind::MemoryDevice,
                format!("m{k}"),
                0,
            ));
        }
        id.unwrap()
    }

    #[test]
    fn map_and_resolve() {
        let mut space = AddressSpace::new();
        let d0 = dev(0);
        let d1 = dev(1);
        let r0 = space.map(d0, ByteSize::kib(8));
        let r1 = space.map(d1, ByteSize::kib(8));
        assert_ne!(r0.base, r1.base);
        let (owner, off) = space.resolve(CciAddr(r0.base.0 + 100)).unwrap();
        assert_eq!((owner, off), (d0, 100));
        let (owner, _) = space.resolve(r1.base).unwrap();
        assert_eq!(owner, d1);
    }

    #[test]
    fn regions_are_page_aligned_and_disjoint() {
        let mut space = AddressSpace::new();
        let d = dev(0);
        let a = space.map(d, ByteSize::bytes(100));
        let b = space.map(d, ByteSize::bytes(100));
        assert_eq!(a.base.0 % 0x1000, 0);
        assert_eq!(b.base.0 % 0x1000, 0);
        assert!(a.end() <= b.base.0);
    }

    #[test]
    fn unmapped_address_errors() {
        let space = AddressSpace::new();
        assert_eq!(
            space.resolve(CciAddr(0x42)),
            Err(AddressError::Unmapped(CciAddr(0x42)))
        );
    }

    #[test]
    fn range_crossing_region_errors() {
        let mut space = AddressSpace::new();
        let d = dev(0);
        let r = space.map(d, ByteSize::bytes(256));
        let err = space
            .resolve_range(CciAddr(r.base.0 + 200), ByteSize::bytes(100))
            .unwrap_err();
        assert!(matches!(err, AddressError::CrossesRegion { .. }));
        assert!(space
            .resolve_range(CciAddr(r.base.0), ByteSize::bytes(256))
            .is_ok());
    }

    #[test]
    fn mapped_bytes_totals() {
        let mut space = AddressSpace::new();
        let d = dev(0);
        space.map(d, ByteSize::kib(4));
        space.map(d, ByteSize::kib(12));
        assert_eq!(space.mapped_bytes(), ByteSize::kib(16));
    }
}
