//! # coarse-cci
//!
//! The cache-coherent-interconnect substrate of the COARSE reproduction:
//!
//! - [`tensor`] — flat `f32` tensors, sharding, reconstruction;
//! - [`address`] — the CCI-unified address space memory devices map into;
//! - [`coherence`] — a region-granularity directory whose protocol cost
//!   grows with sharer count (the §III-D scalability argument);
//! - [`device`] — memory devices and the FPGA prototype's measured
//!   bandwidth curves (Figs. 3/13/14);
//! - [`synccore`] — near-memory ring collectives on real data with
//!   RecvBuf/LocalBuf/SendBuf semantics (§IV-A);
//! - [`groupsched`] — chunk scheduling across multiple sync groups with
//!   alternating ring directions (Fig. 11b);
//! - [`storage`] — versioned copy-on-write parameter storage with
//!   fine-grained snapshots for checkpointing;
//! - [`persist`] — the on-disk checkpoint image format;
//! - [`checkpoint`] — pool-checkpoint shard/mirror traffic planning and
//!   the disk-cost baseline the recovery engine compares against;
//! - [`integrity`] — CRC32-sealed shards with end-to-end corruption
//!   detection (fault injection).

#![warn(missing_docs)]

pub mod address;
pub mod checkpoint;
pub mod coherence;
pub mod device;
pub mod groupsched;
pub mod integrity;
pub mod persist;
pub mod storage;
pub mod synccore;
pub mod tensor;

pub use address::{AddressSpace, CciAddr, Region};
pub use checkpoint::{plan_pool_checkpoint, CheckpointPlan, DiskModel, ShardLeg};
pub use coherence::{CoherenceCost, Directory};
pub use device::{AccessDir, AccessMode, MemoryDevice, PrototypeModel};
pub use groupsched::{GroupScheduleStats, GroupScheduler};
pub use integrity::{IntegrityError, SealedShard};
pub use storage::{ParameterStore, Snapshot};
pub use synccore::{RingDirection, SyncGroup, SyncStats};
pub use tensor::{Tensor, TensorId, TensorShard};
