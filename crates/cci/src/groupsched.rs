//! Multi-group chunk scheduling for sync cores (§IV-A "multiple groups
//! synchronize different parameters in parallel").
//!
//! A memory device's sync cores are organized into several groups; a large
//! payload is carved into chunks and dealt round-robin across the groups,
//! adjacent groups running opposite ring directions (Fig. 11b). The
//! functional result must equal a single-group reduction — tested here —
//! while the timed layer gets per-group byte counts to price concurrency.

use coarse_simcore::units::ByteSize;

use crate::synccore::{RingDirection, SyncGroup, SyncStats};

/// Per-group accounting from a multi-group reduction.
#[derive(Debug, Clone, Default)]
pub struct GroupScheduleStats {
    /// One entry per group: that group's traffic counters.
    pub per_group: Vec<SyncStats>,
}

impl GroupScheduleStats {
    /// Total bytes sent across all groups and cores.
    pub fn total_bytes(&self) -> ByteSize {
        self.per_group.iter().map(|s| s.total_bytes_sent).sum()
    }

    /// The largest per-group byte count — the critical-path group when all
    /// groups run concurrently.
    pub fn critical_group_bytes(&self) -> ByteSize {
        self.per_group
            .iter()
            .map(|s| s.total_bytes_sent)
            .max()
            .unwrap_or(ByteSize::ZERO)
    }
}

/// A scheduler dealing chunks across `groups` sync groups with alternating
/// ring directions.
#[derive(Debug)]
pub struct GroupScheduler {
    groups: Vec<SyncGroup>,
    chunk_elems: usize,
}

impl GroupScheduler {
    /// A scheduler over `devices` memory devices, `groups` groups, and
    /// `chunk_elems`-element chunks.
    ///
    /// # Panics
    ///
    /// Panics if `devices < 2`, `groups == 0`, or `chunk_elems == 0`.
    pub fn new(devices: usize, groups: usize, chunk_elems: usize) -> Self {
        assert!(groups > 0, "need at least one group");
        GroupScheduler {
            groups: (0..groups)
                .map(|g| SyncGroup::new(devices, chunk_elems, RingDirection::for_group(g)))
                .collect(),
            chunk_elems,
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Sum-allreduce across per-device inputs, chunks dealt round-robin to
    /// the groups. Numerically identical to a single-group reduction.
    ///
    /// # Panics
    ///
    /// Panics if input counts or lengths are inconsistent.
    pub fn allreduce_sum(&mut self, inputs: &[Vec<f32>]) -> (Vec<f32>, GroupScheduleStats) {
        let devices = self.groups[0].len();
        assert_eq!(inputs.len(), devices, "one input per device");
        let len = inputs[0].len();
        assert!(
            inputs.iter().all(|v| v.len() == len),
            "all inputs must have equal length"
        );
        let mut result = vec![0.0f32; len];
        let mut stats = GroupScheduleStats {
            per_group: vec![SyncStats::default(); self.groups.len()],
        };
        let mut offset = 0usize;
        let mut next_group = 0usize;
        while offset < len {
            let end = (offset + self.chunk_elems).min(len);
            let chunk_inputs: Vec<Vec<f32>> =
                inputs.iter().map(|v| v[offset..end].to_vec()).collect();
            let group = &mut self.groups[next_group];
            let (reduced, s) = group.allreduce_sum(&chunk_inputs);
            result[offset..end].copy_from_slice(&reduced);
            let acc = &mut stats.per_group[next_group];
            acc.steps += s.steps;
            acc.chunks += s.chunks;
            acc.total_bytes_sent += s.total_bytes_sent;
            next_group = (next_group + 1) % self.groups.len();
            offset = end;
        }
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synccore::SyncGroup;

    fn inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 13 + j * 3) % 64) as f32 * 0.25)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn multi_group_matches_single_group() {
        let data = inputs(4, 1000);
        let mut single = SyncGroup::new(4, 128, RingDirection::Forward);
        let (expect, _) = single.allreduce_sum(&data);
        for groups in [1usize, 2, 3, 4] {
            let mut sched = GroupScheduler::new(4, groups, 128);
            let (got, _) = sched.allreduce_sum(&data);
            assert_eq!(got, expect, "groups = {groups}");
        }
    }

    #[test]
    fn chunks_deal_round_robin() {
        let data = inputs(4, 1024);
        let mut sched = GroupScheduler::new(4, 2, 128); // 8 chunks → 4 each
        let (_, stats) = sched.allreduce_sum(&data);
        assert_eq!(stats.per_group.len(), 2);
        assert_eq!(stats.per_group[0].chunks, 4);
        assert_eq!(stats.per_group[1].chunks, 4);
        // Equal chunks → equal traffic → the critical group carries half.
        assert_eq!(stats.critical_group_bytes() * 2, stats.total_bytes());
    }

    #[test]
    fn total_traffic_independent_of_group_count() {
        let data = inputs(4, 2000);
        let totals: Vec<u64> = [1usize, 2, 4]
            .iter()
            .map(|&g| {
                let mut sched = GroupScheduler::new(4, g, 100);
                sched.allreduce_sum(&data).1.total_bytes().as_u64()
            })
            .collect();
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[1], totals[2]);
    }

    #[test]
    fn directions_alternate() {
        let sched = GroupScheduler::new(4, 3, 64);
        assert_eq!(sched.group_count(), 3);
        // (Direction alternation is set by RingDirection::for_group; the
        // functional result is direction-invariant, verified above.)
    }

    #[test]
    fn uneven_tail_chunk_handled() {
        let data = inputs(3, 1001); // 1001 = 7×128 + 105
        let mut single = SyncGroup::new(3, 128, RingDirection::Forward);
        let (expect, _) = single.allreduce_sum(&data);
        let mut sched = GroupScheduler::new(3, 2, 128);
        let (got, stats) = sched.allreduce_sum(&data);
        assert_eq!(got, expect);
        let chunks: u64 = stats.per_group.iter().map(|s| s.chunks).sum();
        assert_eq!(chunks, 8);
    }
}
