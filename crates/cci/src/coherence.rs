//! Directory-based coherence model.
//!
//! CCI protocols give CPU-transparent hardware coherence (§II-C), but the
//! protocol traffic is not free: the paper notes that "coherence traffic
//! also increases with more computation devices sharing the same memory
//! region, reducing the bandwidth available to accommodate parameter data
//! transfer" (§III-D). This module models a region-granularity MESI-style
//! directory and reports the protocol cost of each access, so the DENSE
//! baseline (many sharers on one global parameter region) pays
//! proportionally more than COARSE (localized client–proxy–storage pairs).

use std::collections::{BTreeMap, BTreeSet};

use coarse_fabric::device::DeviceId;
use coarse_simcore::critpath::{class as crit_class, CritPath, NodeId};
use coarse_simcore::metrics::{name as metric, MetricRegistry};
use coarse_simcore::prof::{region as prof_region, Profiler};
use coarse_simcore::time::SimTime;
use coarse_simcore::trace::{category, SharedTracer, TrackId};
use coarse_simcore::units::ByteSize;

use crate::address::CciAddr;

/// Size of one coherence protocol message on the wire.
pub const MESSAGE_BYTES: u64 = 64;

/// Fraction of the payload re-transferred per invalidated sharer
/// (dirty-line writebacks and re-fetches under contention).
pub const INVALIDATION_PAYLOAD_FRACTION: f64 = 0.05;

/// Protocol cost of one coherent access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoherenceCost {
    /// Number of protocol messages exchanged.
    pub messages: u64,
    /// Total protocol bytes (messages plus contention writebacks).
    pub protocol_bytes: ByteSize,
}

impl CoherenceCost {
    /// Accumulates another cost.
    pub fn add(&mut self, other: CoherenceCost) {
        self.messages += other.messages;
        self.protocol_bytes += other.protocol_bytes;
    }
}

/// The sharing state of one region.
#[derive(Debug, Clone, Default)]
struct RegionState {
    /// Devices holding the region in shared state.
    sharers: BTreeSet<DeviceId>,
    /// Device holding the region exclusively, if any.
    exclusive: Option<DeviceId>,
}

/// A region-granularity coherence directory.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    regions: BTreeMap<CciAddr, RegionState>,
    total: CoherenceCost,
    /// Trace sink plus the directory's interned track, when tracing is on.
    trace: Option<(SharedTracer, TrackId)>,
    /// Metric sink, when metering is on.
    metrics: Option<MetricRegistry>,
    /// Self-profiler, when profiling is on: counts protocol messages under
    /// the `cci.coherence` region.
    profiler: Option<Profiler>,
    /// Critical-path recorder, when attached: each access registers a
    /// coherence node at the current clock, chained on the previous access.
    critpath: Option<CritPath>,
    /// The previous access's critical-path node (directory ops serialize).
    crit_prev: Option<NodeId>,
    /// Externally supplied clock for trace stamps: the directory is an
    /// untimed cost model, so callers set the time of the access they are
    /// accounting for.
    clock: SimTime,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Attaches a tracer under the given track label; every access then
    /// samples the cumulative `messages` / `protocol_bytes` counters, and
    /// writes that invalidate sharers emit an instant event.
    pub fn set_tracer(&mut self, tracer: SharedTracer, label: &str) {
        if tracer.is_enabled() {
            let track = tracer.track(label);
            self.trace = Some((tracer, track));
        }
    }

    /// Sets the timestamp used for subsequent trace events.
    pub fn set_time(&mut self, now: SimTime) {
        self.clock = now;
    }

    /// Attaches a metric registry: every access publishes
    /// `cci.coherence.messages` and `cci.coherence.protocol_bytes`.
    pub fn set_metrics(&mut self, metrics: MetricRegistry) {
        self.metrics = Some(metrics);
    }

    /// Attaches a self-profiler: every coherent access counts its protocol
    /// messages under the `cci.coherence` region. Observation-only — costs
    /// and directory state are unaffected.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// Attaches a critical-path recorder: every coherent access registers a
    /// zero-duration `coherence` node at the current clock, chained on the
    /// previous access (the directory serializes protocol transactions).
    /// Observation-only — costs and directory state are unaffected.
    pub fn set_critpath(&mut self, critpath: CritPath) {
        self.critpath = Some(critpath);
    }

    /// The most recent access's critical-path node, for callers joining
    /// coherence activity into a larger graph.
    pub fn last_crit_node(&self) -> Option<NodeId> {
        self.crit_prev
    }

    /// Registers one access on the critical-path graph.
    fn crit_access(&mut self, kind: &str, messages: u64) {
        if let Some(cp) = &self.critpath {
            let deps: Vec<NodeId> = self.crit_prev.into_iter().collect();
            self.crit_prev = Some(cp.instant(
                crit_class::COHERENCE,
                format!("coherent {kind} ({messages} msgs)"),
                self.clock,
                &deps,
            ));
        }
    }

    /// Publishes one access's cost into the metric registry, if attached.
    fn meter_cost(&self, cost: CoherenceCost) {
        if let Some(m) = &self.metrics {
            m.inc(metric::COHERENCE_MESSAGES, cost.messages);
            m.inc(metric::COHERENCE_BYTES, cost.protocol_bytes.as_u64());
        }
        if let Some(p) = &self.profiler {
            p.count(prof_region::CCI_COHERENCE, cost.messages);
        }
    }

    /// Samples the cumulative protocol counters onto the trace.
    fn trace_totals(&self) {
        if let Some((tracer, track)) = &self.trace {
            tracer.counter(
                self.clock,
                category::COHERENCE,
                *track,
                "messages",
                self.total.messages as f64,
            );
            tracer.counter(
                self.clock,
                category::COHERENCE,
                *track,
                "protocol_bytes",
                self.total.protocol_bytes.as_f64(),
            );
        }
    }

    /// A coherent read of `region` (keyed by base address) by `reader`.
    /// Downgrades an exclusive holder if necessary.
    pub fn read(&mut self, region: CciAddr, reader: DeviceId, payload: ByteSize) -> CoherenceCost {
        let state = self.regions.entry(region).or_default();
        let mut cost = CoherenceCost {
            // Request + data response.
            messages: 2,
            protocol_bytes: ByteSize::bytes(2 * MESSAGE_BYTES),
        };
        if let Some(holder) = state.exclusive {
            if holder != reader {
                // Downgrade: writeback of the dirty data plus two messages.
                cost.messages += 2;
                cost.protocol_bytes += ByteSize::bytes(2 * MESSAGE_BYTES);
                cost.protocol_bytes +=
                    ByteSize::bytes((payload.as_f64() * INVALIDATION_PAYLOAD_FRACTION) as u64);
                state.sharers.insert(holder);
                state.exclusive = None;
            }
        }
        state.sharers.insert(reader);
        self.total.add(cost);
        self.meter_cost(cost);
        self.crit_access("read", cost.messages);
        self.trace_totals();
        cost
    }

    /// A coherent write of `payload` bytes to `region` by `writer`.
    /// Invalidates every other sharer; the cost grows with the sharer count.
    pub fn write(&mut self, region: CciAddr, writer: DeviceId, payload: ByteSize) -> CoherenceCost {
        let state = self.regions.entry(region).or_default();
        let mut invalidated = 0u64;
        for d in state.sharers.iter().copied().collect::<Vec<_>>() {
            if d != writer {
                state.sharers.remove(&d);
                invalidated += 1;
            }
        }
        if let Some(holder) = state.exclusive {
            if holder != writer {
                invalidated += 1;
            }
        }
        state.exclusive = Some(writer);
        state.sharers.clear();
        state.sharers.insert(writer);
        let messages = 2 + 2 * invalidated; // req/ack plus inv/inv-ack pairs
        let contention =
            (payload.as_f64() * INVALIDATION_PAYLOAD_FRACTION * invalidated as f64) as u64;
        let cost = CoherenceCost {
            messages,
            protocol_bytes: ByteSize::bytes(messages * MESSAGE_BYTES + contention),
        };
        self.total.add(cost);
        self.meter_cost(cost);
        self.crit_access("write", cost.messages);
        if invalidated > 0 {
            if let Some((tracer, track)) = &self.trace {
                tracer.instant(
                    self.clock,
                    category::COHERENCE,
                    *track,
                    &format!("write {region:?} invalidated {invalidated} sharer(s)"),
                );
            }
        }
        self.trace_totals();
        cost
    }

    /// Number of devices currently sharing `region` (including an exclusive
    /// holder).
    pub fn sharer_count(&self, region: CciAddr) -> usize {
        self.regions
            .get(&region)
            .map(|s| s.sharers.len().max(usize::from(s.exclusive.is_some())))
            .unwrap_or(0)
    }

    /// Accumulated protocol cost across all accesses.
    pub fn total_cost(&self) -> CoherenceCost {
        self.total
    }
}

/// The bandwidth-inflation factor for payload traffic to a region with
/// `sharers` concurrent sharers: protocol overhead consumes link capacity,
/// so effective goodput shrinks as sharers grow (§III-D).
pub fn sharing_overhead_factor(sharers: usize) -> f64 {
    1.0 + INVALIDATION_PAYLOAD_FRACTION * sharers.saturating_sub(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices(n: usize) -> Vec<DeviceId> {
        let mut t = coarse_fabric::topology::Topology::new();
        (0..n)
            .map(|i| {
                t.add_device(
                    coarse_fabric::device::DeviceKind::MemoryDevice,
                    format!("m{i}"),
                    0,
                )
            })
            .collect()
    }

    const REGION: CciAddr = CciAddr(0x1000);

    #[test]
    fn read_adds_sharer() {
        let ds = devices(3);
        let mut dir = Directory::new();
        dir.read(REGION, ds[0], ByteSize::kib(4));
        dir.read(REGION, ds[1], ByteSize::kib(4));
        assert_eq!(dir.sharer_count(REGION), 2);
    }

    #[test]
    fn write_invalidates_sharers_proportionally() {
        let ds = devices(5);
        let mut dir = Directory::new();
        let payload = ByteSize::mib(1);
        for &d in &ds[1..] {
            dir.read(REGION, d, payload);
        }
        let cost = dir.write(REGION, ds[0], payload);
        // Four sharers invalidated: 2 + 2*4 = 10 messages.
        assert_eq!(cost.messages, 10);
        assert_eq!(dir.sharer_count(REGION), 1);
        // A second write by the same owner is cheap.
        let cost2 = dir.write(REGION, ds[0], payload);
        assert_eq!(cost2.messages, 2);
        assert!(cost2.protocol_bytes < cost.protocol_bytes);
    }

    #[test]
    fn contention_bytes_scale_with_sharers() {
        let ds = devices(8);
        let payload = ByteSize::mib(4);
        let cost_of = |n: usize| {
            let mut dir = Directory::new();
            for &d in &ds[1..=n] {
                dir.read(REGION, d, payload);
            }
            dir.write(REGION, ds[0], payload).protocol_bytes
        };
        let few = cost_of(1);
        let many = cost_of(7);
        assert!(
            many.as_u64() > 6 * few.as_u64(),
            "7 sharers ({many}) must cost much more than 1 ({few})"
        );
    }

    #[test]
    fn read_after_exclusive_downgrades() {
        let ds = devices(2);
        let mut dir = Directory::new();
        let payload = ByteSize::kib(64);
        dir.write(REGION, ds[0], payload);
        let cost = dir.read(REGION, ds[1], payload);
        assert!(cost.messages > 2, "downgrade costs extra messages");
        assert_eq!(dir.sharer_count(REGION), 2);
    }

    #[test]
    fn overhead_factor_monotone() {
        assert_eq!(sharing_overhead_factor(0), 1.0);
        assert_eq!(sharing_overhead_factor(1), 1.0);
        assert!(sharing_overhead_factor(4) > sharing_overhead_factor(2));
    }

    #[test]
    fn tracing_samples_protocol_counters() {
        use coarse_simcore::time::SimTime;
        use coarse_simcore::trace::{RecordingTracer, TraceEventKind};

        let ds = devices(3);
        let rec = RecordingTracer::new();
        let mut dir = Directory::new();
        dir.set_tracer(rec.handle(), "coherence dir");
        dir.read(REGION, ds[1], ByteSize::kib(4));
        dir.read(REGION, ds[2], ByteSize::kib(4));
        dir.set_time(SimTime::from_nanos(100));
        dir.write(REGION, ds[0], ByteSize::kib(4));
        let total = dir.total_cost();

        let trace = rec.take();
        // Two counters per access, three accesses.
        let counters: Vec<_> = trace
            .events_in(coarse_simcore::trace::category::COHERENCE)
            .filter_map(|e| match e.kind {
                TraceEventKind::Counter { value } => Some((e.name.clone(), e.time, value)),
                _ => None,
            })
            .collect();
        assert_eq!(counters.len(), 6);
        let (name, time, value) = counters[counters.len() - 2].clone();
        assert_eq!(name, "messages");
        assert_eq!(time, SimTime::from_nanos(100));
        assert_eq!(value, total.messages as f64);
        // The invalidating write emits an instant.
        assert_eq!(
            trace
                .events_in(coarse_simcore::trace::category::COHERENCE)
                .filter(|e| e.kind == TraceEventKind::Instant)
                .count(),
            1
        );
    }

    #[test]
    fn metrics_track_total_cost() {
        let ds = devices(3);
        let reg = MetricRegistry::new();
        let mut dir = Directory::new();
        dir.set_metrics(reg.clone());
        dir.read(REGION, ds[1], ByteSize::kib(4));
        dir.read(REGION, ds[2], ByteSize::kib(4));
        dir.write(REGION, ds[0], ByteSize::kib(4));
        let total = dir.total_cost();
        let snap = reg.snapshot();
        assert_eq!(snap.counter(metric::COHERENCE_MESSAGES), total.messages);
        assert_eq!(
            snap.counter(metric::COHERENCE_BYTES),
            total.protocol_bytes.as_u64()
        );
    }

    #[test]
    fn total_cost_accumulates() {
        let ds = devices(2);
        let mut dir = Directory::new();
        dir.read(REGION, ds[0], ByteSize::kib(4));
        dir.write(REGION, ds[1], ByteSize::kib(4));
        let total = dir.total_cost();
        assert!(total.messages >= 4);
        assert!(total.protocol_bytes.as_u64() >= total.messages * MESSAGE_BYTES);
    }

    #[test]
    fn critpath_records_one_coherence_node_per_access() {
        use coarse_simcore::critpath::{class as crit_class, CritPath};

        let ds = devices(3);
        let cp = CritPath::new();
        let mut dir = Directory::new();
        dir.set_critpath(cp.clone());
        dir.set_time(SimTime::from_nanos(10));
        dir.read(REGION, ds[1], ByteSize::kib(4));
        dir.set_time(SimTime::from_nanos(20));
        dir.write(REGION, ds[0], ByteSize::kib(4));
        assert_eq!(cp.node_count(), 2);
        let sink = dir.last_crit_node().unwrap();
        cp.mark_iteration(0, sink);
        let ex = cp.analyze();
        assert_eq!(ex.class_events[crit_class::COHERENCE], 2);
        // Accesses chain: the critical path spans both and blames coherence
        // for the full window.
        assert!((ex.fraction(crit_class::COHERENCE) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn critpath_recording_does_not_perturb_costs() {
        use coarse_simcore::critpath::CritPath;

        let ds = devices(3);
        let mut bare = Directory::new();
        let mut wired = Directory::new();
        wired.set_critpath(CritPath::new());
        for dir in [&mut bare, &mut wired] {
            dir.read(REGION, ds[1], ByteSize::kib(4));
            dir.read(REGION, ds[2], ByteSize::kib(4));
            dir.write(REGION, ds[0], ByteSize::kib(4));
        }
        assert_eq!(bare.total_cost(), wired.total_cost());
    }
}
