//! Near-memory sync cores and their ring collective (§IV-A).
//!
//! Each memory device carries a set of sync cores; a *group* is formed from
//! one core per device and synchronizes a parameter chunk with a ring
//! collective over the CCI. Each core keeps three buffers — `RecvBuf`,
//! `LocalBuf`, `SendBuf` — mapped into CCI space so neighbors can write
//! directly. Adjacent groups run their rings in opposite directions so every
//! device-pair link carries traffic both ways at once (Fig. 11b).
//!
//! The reduction here is *functional*: real `f32` data is summed, and tests
//! assert exact equivalence with a direct elementwise sum. The timed layer
//! (in `coarse-collectives`) prices the same step/byte counts reported in
//! [`SyncStats`].

use coarse_simcore::critpath::{class as crit_class, CritPath, NodeId};
use coarse_simcore::metrics::{name as metric, MetricRegistry};
use coarse_simcore::oracle::{OracleEvent, OracleHub};
use coarse_simcore::prof::{region as prof_region, Profiler};
use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::trace::{category, SharedTracer, TrackId};
use coarse_simcore::units::ByteSize;

/// Ring traversal direction of a sync group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingDirection {
    /// Core `i` sends to core `(i + 1) mod n`.
    Forward,
    /// Core `i` sends to core `(i - 1) mod n`.
    Reverse,
}

impl RingDirection {
    /// The opposite direction.
    pub fn opposite(self) -> RingDirection {
        match self {
            RingDirection::Forward => RingDirection::Reverse,
            RingDirection::Reverse => RingDirection::Forward,
        }
    }

    /// Direction assigned to group `g`: adjacent groups alternate so
    /// pairwise links are used bidirectionally (Fig. 11b).
    pub fn for_group(g: usize) -> RingDirection {
        if g.is_multiple_of(2) {
            RingDirection::Forward
        } else {
            RingDirection::Reverse
        }
    }
}

/// Errors surfaced by the fallible sync-group entry points.
///
/// Under fault injection a proxy can drop out between partitioning and
/// reduction; the resilient caller uses [`SyncGroup::try_allreduce_sum`] to
/// observe the mismatch as an error (and re-form the group over survivors)
/// instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncError {
    /// The number of contributions does not match the group size — a member
    /// was lost (or duplicated) between partitioning and reduction.
    MembershipMismatch {
        /// Group size (one contribution expected per core).
        expected: usize,
        /// Contributions actually presented.
        got: usize,
    },
    /// Input buffers have unequal lengths (a torn or corrupted contribution).
    LengthMismatch {
        /// Length of the first contribution.
        expected: usize,
        /// Length of the mismatching contribution.
        got: usize,
    },
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::MembershipMismatch { expected, got } => {
                write!(
                    f,
                    "one input per core required (expected {expected}, got {got})"
                )
            }
            SyncError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "all inputs must have equal length (expected {expected}, got {got})"
                )
            }
        }
    }
}

impl std::error::Error for SyncError {}

/// One sync core's buffer set (the paper's RecvBuf / LocalBuf / SendBuf).
#[derive(Debug, Clone, Default)]
pub struct SyncCore {
    /// Data received from the previous core in the ring.
    pub recv_buf: Vec<f32>,
    /// This device's slice of the chunk being synchronized.
    pub local_buf: Vec<f32>,
    /// Data to send to the next core in the ring.
    pub send_buf: Vec<f32>,
}

/// Traffic and step accounting for one collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncStats {
    /// Ring steps executed (2·(n−1) per chunk).
    pub steps: u64,
    /// Chunks processed.
    pub chunks: u64,
    /// Total bytes sent across all cores. By the ring-allreduce identity
    /// each core sends `2·(n−1)/n` of the synchronized payload (§III-F), so
    /// the total is `2·(n−1)` times the payload.
    pub total_bytes_sent: ByteSize,
}

impl SyncStats {
    /// Bytes each individual core sent (`total_bytes_sent / n`).
    pub fn bytes_per_core(&self, n: usize) -> ByteSize {
        self.total_bytes_sent / n as u64
    }
}

/// A group of sync cores, one per memory device, executing ring allreduce
/// chunk by chunk.
#[derive(Debug, Clone)]
pub struct SyncGroup {
    n: usize,
    chunk_elems: usize,
    direction: RingDirection,
    cores: Vec<SyncCore>,
    /// Physical core index per logical ring position: a reverse ring is a
    /// forward ring over reversed core order. Precomputed once so the step
    /// loop allocates nothing.
    order: Vec<usize>,
    /// Trace sink plus this group's interned track, when tracing is on.
    trace: Option<(SharedTracer, TrackId)>,
    /// Metric sink, when metering is on.
    metrics: Option<MetricRegistry>,
    /// Oracle battery, when invariant checking is on.
    oracles: Option<OracleHub>,
    /// Self-profiler, when profiling is on: counts ring steps under the
    /// `cci.sync_ring` region.
    profiler: Option<Profiler>,
    /// Critical-path recorder, when attached: each ring step registers a
    /// sync node at the logical clock, chained on the previous step (every
    /// step waits on all peers finishing the prior step).
    critpath: Option<CritPath>,
    /// The previous ring step's critical-path node.
    crit_prev: Option<NodeId>,
    /// Logical clock for trace stamps: the functional ring has no real
    /// timing, so each ring step advances one nanosecond of "step time".
    clock: SimTime,
}

impl SyncGroup {
    /// A group over `n` devices processing `chunk_elems` elements per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `chunk_elems == 0`.
    pub fn new(n: usize, chunk_elems: usize, direction: RingDirection) -> Self {
        assert!(n >= 2, "a ring needs at least two cores");
        assert!(chunk_elems > 0, "chunk size must be positive");
        let order: Vec<usize> = match direction {
            RingDirection::Forward => (0..n).collect(),
            RingDirection::Reverse => (0..n).rev().collect(),
        };
        SyncGroup {
            n,
            chunk_elems,
            direction,
            cores: vec![SyncCore::default(); n],
            order,
            trace: None,
            metrics: None,
            oracles: None,
            profiler: None,
            critpath: None,
            crit_prev: None,
            clock: SimTime::ZERO,
        }
    }

    /// Attaches a tracer under the given track label; the group then emits
    /// one span per ring step plus a cumulative `bytes_sent` counter on its
    /// own track, stamped by a logical step clock (1 ns per step).
    pub fn set_tracer(&mut self, tracer: SharedTracer, label: &str) {
        if tracer.is_enabled() {
            let dir = match self.direction {
                RingDirection::Forward => "fwd",
                RingDirection::Reverse => "rev",
            };
            let track = tracer.track(&format!("{label} ({dir})"));
            self.trace = Some((tracer, track));
        }
    }

    /// Advances the logical trace clock, aligning subsequent step spans
    /// with an external schedule.
    pub fn set_time(&mut self, now: SimTime) {
        self.clock = now;
    }

    /// Attaches a metric registry: each ring step increments
    /// `cci.sync.core_steps` and `cci.sync.core_bytes`.
    pub fn set_metrics(&mut self, metrics: MetricRegistry) {
        self.metrics = Some(metrics);
    }

    /// Attaches an oracle battery: each collective emits a `RingStart`
    /// announcing the `2·(n−1)·payload` traffic identity and one `RingStep`
    /// per ring step, letting the byte-conservation oracle audit it.
    pub fn set_oracles(&mut self, oracles: OracleHub) {
        self.oracles = Some(oracles);
    }

    /// Attaches a self-profiler: each collective runs inside the
    /// `cci.sync_ring` region and every ring step bumps its event count.
    /// Observation-only — reduction results and stats are unaffected.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// Attaches a critical-path recorder: every ring step registers a
    /// zero-duration `sync` node at the logical clock, chained on the
    /// previous step (each step is a barrier — it waits on all peers).
    /// Observation-only — reduction results and stats are unaffected.
    pub fn set_critpath(&mut self, critpath: CritPath) {
        self.critpath = Some(critpath);
    }

    /// The most recent ring step's critical-path node, for callers joining
    /// sync-core activity into a larger graph.
    pub fn last_crit_node(&self) -> Option<NodeId> {
        self.crit_prev
    }

    /// Number of cores (= devices) in the group.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the group is empty (never; groups have ≥ 2 cores).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Ring direction.
    pub fn direction(&self) -> RingDirection {
        self.direction
    }

    /// The neighbor core `i` sends to.
    pub fn neighbor_of(&self, i: usize) -> usize {
        match self.direction {
            RingDirection::Forward => (i + 1) % self.n,
            RingDirection::Reverse => (i + self.n - 1) % self.n,
        }
    }

    /// The buffer set of core `i` after the last collective.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn core(&self, i: usize) -> &SyncCore {
        &self.cores[i]
    }

    /// Sum-allreduce across per-device inputs: every device contributed one
    /// equal-length buffer; the returned buffer is their elementwise sum (as
    /// left in every core's `LocalBuf`).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the group size or the input
    /// lengths are unequal.
    pub fn allreduce_sum(&mut self, inputs: &[Vec<f32>]) -> (Vec<f32>, SyncStats) {
        match self.try_allreduce_sum(inputs) {
            Ok(r) => r,
            // simlint: allow(panic-in-library, reason = "documented panicking wrapper; try_allreduce_sum is the fallible variant")
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible sum-allreduce: like [`allreduce_sum`](Self::allreduce_sum)
    /// but surfaces malformed membership as a [`SyncError`] instead of
    /// panicking, so resilient callers can re-form the group after a fault.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::MembershipMismatch`] when `inputs.len()` differs
    /// from the group size and [`SyncError::LengthMismatch`] when the input
    /// lengths are unequal.
    pub fn try_allreduce_sum(
        &mut self,
        inputs: &[Vec<f32>],
    ) -> Result<(Vec<f32>, SyncStats), SyncError> {
        if inputs.len() != self.n {
            return Err(SyncError::MembershipMismatch {
                expected: self.n,
                got: inputs.len(),
            });
        }
        let len = inputs[0].len();
        if let Some(bad) = inputs.iter().find(|v| v.len() != len) {
            return Err(SyncError::LengthMismatch {
                expected: len,
                got: bad.len(),
            });
        }
        if let Some(hub) = &self.oracles {
            hub.emit(OracleEvent::RingStart {
                cores: self.n as u32,
                payload_bytes: len as u64 * 4,
            });
        }
        let _prof = self
            .profiler
            .clone()
            .map(|p| p.enter(prof_region::CCI_SYNC_RING));
        let mut stats = SyncStats::default();
        let mut result = vec![0.0f32; len];
        let mut offset = 0usize;
        while offset < len {
            let end = (offset + self.chunk_elems).min(len);
            // Each core loads its slice of the chunk into LocalBuf.
            for (core, input) in self.cores.iter_mut().zip(inputs) {
                core.local_buf.clear();
                core.local_buf.extend_from_slice(&input[offset..end]);
            }
            self.ring_chunk(&mut stats);
            result[offset..end].copy_from_slice(&self.cores[0].local_buf);
            stats.chunks += 1;
            offset = end;
        }
        Ok((result, stats))
    }

    /// Mean-allreduce: sum then divide by the group size (parameter
    /// averaging).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`allreduce_sum`](Self::allreduce_sum).
    pub fn allreduce_mean(&mut self, inputs: &[Vec<f32>]) -> (Vec<f32>, SyncStats) {
        let (mut sum, stats) = self.allreduce_sum(inputs);
        let inv = 1.0 / self.n as f32;
        for x in &mut sum {
            *x *= inv;
        }
        (sum, stats)
    }

    /// Segment boundaries: chunk of `len` elements split into `n` segments
    /// whose sizes differ by at most one.
    fn segment(&self, len: usize, k: usize) -> std::ops::Range<usize> {
        let base = len / self.n;
        let rem = len % self.n;
        let start = k * base + k.min(rem);
        let seg_len = base + usize::from(k < rem);
        start..start + seg_len
    }

    /// Emits a trace span for one finished ring step and advances the
    /// logical clock.
    fn trace_step(&mut self, phase: &str, step: usize, stats: &SyncStats) {
        let Some((tracer, track)) = self.trace.clone() else {
            return;
        };
        let dir = match self.direction {
            RingDirection::Forward => "fwd",
            RingDirection::Reverse => "rev",
        };
        let end = self.clock + SimDuration::from_nanos(1);
        tracer.span(
            self.clock,
            end,
            category::SYNC,
            track,
            &format!("{phase} step {} ({dir})", step + 1),
        );
        tracer.counter(
            end,
            category::SYNC,
            track,
            "bytes_sent",
            stats.total_bytes_sent.as_f64(),
        );
        self.clock = end;
    }

    /// Splits the core arena into the receiving core (mutable) and the
    /// sending core (shared). `dst != src` always holds on a ring of ≥ 2.
    fn recv_send_pair(&mut self, dst: usize, src: usize) -> (&mut SyncCore, &SyncCore) {
        debug_assert_ne!(dst, src, "a core never sends to itself");
        if dst < src {
            let (lo, hi) = self.cores.split_at_mut(src);
            (&mut lo[dst], &hi[0])
        } else {
            let (lo, hi) = self.cores.split_at_mut(dst);
            (&mut hi[0], &lo[src])
        }
    }

    /// Ring allreduce over the cores' `LocalBuf`s (one chunk).
    ///
    /// Zero-alloc steady state: every step stages segments in the cores'
    /// reusable `SendBuf`s (phase one writes them all, phase two only reads
    /// them), so no step-local buffers are materialized. Buffer capacities
    /// grow to the largest segment on the first chunk and are reused
    /// thereafter.
    fn ring_chunk(&mut self, stats: &mut SyncStats) {
        let n = self.n;
        let len = self.cores[0].local_buf.len();
        // Reduce-scatter: after n-1 steps, logical core i holds the full sum
        // of segment (i+1) mod n.
        for step in 0..n - 1 {
            let before = stats.total_bytes_sent;
            for li in 0..n {
                let k = (li + n - step) % n;
                let range = self.segment(len, k);
                let core = &mut self.cores[self.order[li]];
                core.send_buf.clear();
                core.send_buf.extend_from_slice(&core.local_buf[range]);
                stats.total_bytes_sent += ByteSize::bytes(core.send_buf.len() as u64 * 4);
            }
            for li in 0..n {
                let k = (li + n - step) % n;
                let range = self.segment(len, k);
                let (src, dst) = (self.order[li], self.order[(li + 1) % n]);
                let (dst_core, src_core) = self.recv_send_pair(dst, src);
                dst_core.recv_buf.clear();
                dst_core.recv_buf.extend_from_slice(&src_core.send_buf);
                for (a, b) in dst_core.local_buf[range].iter_mut().zip(&src_core.send_buf) {
                    *a += *b;
                }
            }
            stats.steps += 1;
            self.meter_step(stats.total_bytes_sent - before);
            self.trace_step("reduce-scatter", step, stats);
        }
        // All-gather: circulate the finished segments.
        for step in 0..n - 1 {
            let before = stats.total_bytes_sent;
            for li in 0..n {
                let k = (li + 1 + n - step) % n;
                let range = self.segment(len, k);
                let core = &mut self.cores[self.order[li]];
                core.send_buf.clear();
                core.send_buf.extend_from_slice(&core.local_buf[range]);
                stats.total_bytes_sent += ByteSize::bytes(core.send_buf.len() as u64 * 4);
            }
            for li in 0..n {
                let k = (li + 1 + n - step) % n;
                let range = self.segment(len, k);
                let (src, dst) = (self.order[li], self.order[(li + 1) % n]);
                let (dst_core, src_core) = self.recv_send_pair(dst, src);
                dst_core.recv_buf.clear();
                dst_core.recv_buf.extend_from_slice(&src_core.send_buf);
                dst_core.local_buf[range].copy_from_slice(&src_core.send_buf);
            }
            stats.steps += 1;
            self.meter_step(stats.total_bytes_sent - before);
            self.trace_step("all-gather", step, stats);
        }
    }

    /// Publishes one ring step into the metric registry, if attached.
    fn meter_step(&mut self, bytes_sent: ByteSize) {
        if let Some(m) = &self.metrics {
            m.inc(metric::SYNC_CORE_STEPS, 1);
            m.inc(metric::SYNC_CORE_BYTES, bytes_sent.as_u64());
        }
        if let Some(p) = &self.profiler {
            p.count(prof_region::CCI_SYNC_RING, 1);
        }
        if let Some(hub) = &self.oracles {
            hub.emit(OracleEvent::RingStep {
                bytes: bytes_sent.as_u64(),
                at: self.clock,
            });
        }
        if let Some(cp) = &self.critpath {
            let deps: Vec<NodeId> = self.crit_prev.into_iter().collect();
            self.crit_prev = Some(cp.instant(
                crit_class::SYNC,
                format!("sync-core step ({} B)", bytes_sent.as_u64()),
                self.clock,
                &deps,
            ));
        }
    }
}

/// Builds `groups` sync groups over `n` devices with alternating ring
/// directions, as in Fig. 11b.
pub fn build_groups(n: usize, groups: usize, chunk_elems: usize) -> Vec<SyncGroup> {
    (0..groups)
        .map(|g| SyncGroup::new(n, chunk_elems, RingDirection::for_group(g)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_sum(inputs: &[Vec<f32>]) -> Vec<f32> {
        let mut out = vec![0.0f32; inputs[0].len()];
        for v in inputs {
            for (a, b) in out.iter_mut().zip(v) {
                *a += *b;
            }
        }
        out
    }

    fn make_inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 31 + j * 7) % 97) as f32 * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn allreduce_equals_direct_sum() {
        for n in [2usize, 3, 4, 5, 8] {
            for len in [1usize, 7, 64, 1000] {
                let inputs = make_inputs(n, len);
                let mut g = SyncGroup::new(n, 128, RingDirection::Forward);
                let (result, _) = g.allreduce_sum(&inputs);
                assert_eq!(result, direct_sum(&inputs), "n={n}, len={len}");
            }
        }
    }

    #[test]
    fn reverse_direction_same_result() {
        let inputs = make_inputs(4, 333);
        let mut fwd = SyncGroup::new(4, 64, RingDirection::Forward);
        let mut rev = SyncGroup::new(4, 64, RingDirection::Reverse);
        assert_eq!(fwd.allreduce_sum(&inputs).0, rev.allreduce_sum(&inputs).0);
    }

    #[test]
    fn mean_divides_by_group_size() {
        let inputs = vec![vec![2.0, 4.0], vec![6.0, 8.0]];
        let mut g = SyncGroup::new(2, 16, RingDirection::Forward);
        let (mean, _) = g.allreduce_mean(&inputs);
        assert_eq!(mean, vec![4.0, 6.0]);
    }

    #[test]
    fn steps_are_2n_minus_2_per_chunk() {
        let n = 4;
        let inputs = make_inputs(n, 100);
        let mut g = SyncGroup::new(n, 50, RingDirection::Forward);
        let (_, stats) = g.allreduce_sum(&inputs);
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.steps, 2 * (2 * (n as u64 - 1)));
    }

    #[test]
    fn traffic_matches_ring_identity() {
        // Total sent across cores = n · 2(n−1)/n · payload = 2(n−1)·payload.
        let n = 4;
        let len = 1024usize;
        let inputs = make_inputs(n, len);
        let mut g = SyncGroup::new(n, len, RingDirection::Forward);
        let (_, stats) = g.allreduce_sum(&inputs);
        let payload = (len * 4) as u64;
        let expected_total = 2 * (n as u64 - 1) * payload;
        assert_eq!(stats.total_bytes_sent.as_u64(), expected_total);
        assert_eq!(
            stats.bytes_per_core(n).as_u64(),
            2 * (n as u64 - 1) * payload / n as u64
        );
    }

    #[test]
    fn oracle_audits_ring_identity() {
        let n = 4;
        let len = 1000usize; // not divisible by n: uneven segments
        let inputs = make_inputs(n, len);
        let hub = OracleHub::with_builtins(SimDuration::from_millis(10));
        let mut g = SyncGroup::new(n, 300, RingDirection::Reverse);
        g.set_oracles(hub.clone());
        let (got, _) = g.allreduce_sum(&inputs);
        assert_eq!(got, direct_sum(&inputs));
        hub.emit(OracleEvent::RunEnd { at: SimTime::ZERO });
        assert!(
            hub.violations().is_empty(),
            "correct ring flagged: {:?}",
            hub.violations()
        );
        // A fabricated short-count ring is caught.
        let hub = OracleHub::with_builtins(SimDuration::from_millis(10));
        hub.emit(OracleEvent::RingStart {
            cores: n as u32,
            payload_bytes: (len * 4) as u64,
        });
        hub.emit(OracleEvent::RingStep {
            bytes: 16,
            at: SimTime::ZERO,
        });
        hub.emit(OracleEvent::RunEnd { at: SimTime::ZERO });
        assert!(
            hub.violations()
                .iter()
                .any(|v| v.oracle == "byte-conservation"),
            "short ring not flagged"
        );
    }

    #[test]
    fn neighbor_respects_direction() {
        let fwd = SyncGroup::new(4, 16, RingDirection::Forward);
        let rev = SyncGroup::new(4, 16, RingDirection::Reverse);
        assert_eq!(fwd.neighbor_of(0), 1);
        assert_eq!(fwd.neighbor_of(3), 0);
        assert_eq!(rev.neighbor_of(0), 3);
        assert_eq!(rev.neighbor_of(3), 2);
    }

    #[test]
    fn alternating_group_directions() {
        let groups = build_groups(4, 3, 64);
        assert_eq!(groups[0].direction(), RingDirection::Forward);
        assert_eq!(groups[1].direction(), RingDirection::Reverse);
        assert_eq!(groups[2].direction(), RingDirection::Forward);
    }

    #[test]
    fn buffers_populated_after_run() {
        let inputs = make_inputs(3, 30);
        let mut g = SyncGroup::new(3, 30, RingDirection::Forward);
        g.allreduce_sum(&inputs);
        for i in 0..3 {
            let c = g.core(i);
            assert!(!c.local_buf.is_empty());
            assert!(!c.send_buf.is_empty());
            assert!(!c.recv_buf.is_empty());
        }
    }

    #[test]
    fn tracing_records_ring_steps_without_changing_result() {
        use coarse_simcore::trace::RecordingTracer;

        let inputs = make_inputs(4, 100);
        let mut plain = SyncGroup::new(4, 50, RingDirection::Reverse);
        let (expected, _) = plain.allreduce_sum(&inputs);

        let rec = RecordingTracer::new();
        let mut traced = SyncGroup::new(4, 50, RingDirection::Reverse);
        traced.set_tracer(rec.handle(), "group 0");
        let (got, stats) = traced.allreduce_sum(&inputs);
        assert_eq!(got, expected, "tracing must not perturb the reduction");

        let trace = rec.take();
        let spans = trace
            .events_in(coarse_simcore::trace::category::SYNC)
            .filter(|e| matches!(e.kind, coarse_simcore::trace::TraceEventKind::Span { .. }))
            .count();
        assert_eq!(spans as u64, stats.steps, "one span per ring step");
        assert!(trace.find_track("group 0 (rev)").is_some());
        // The cumulative bytes counter ends at the ring-identity total.
        let last_counter = trace
            .events
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                coarse_simcore::trace::TraceEventKind::Counter { value } => Some(value),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_counter, stats.total_bytes_sent.as_f64());
    }

    #[test]
    fn metrics_count_steps_and_bytes() {
        let inputs = make_inputs(4, 1024);
        let mut plain = SyncGroup::new(4, 1024, RingDirection::Forward);
        let (expected, stats) = plain.allreduce_sum(&inputs);

        let reg = MetricRegistry::new();
        let mut g = SyncGroup::new(4, 1024, RingDirection::Forward);
        g.set_metrics(reg.clone());
        let (got, _) = g.allreduce_sum(&inputs);
        assert_eq!(got, expected, "metrics must not perturb the reduction");

        let snap = reg.snapshot();
        assert_eq!(snap.counter(metric::SYNC_CORE_STEPS), stats.steps);
        assert_eq!(
            snap.counter(metric::SYNC_CORE_BYTES),
            stats.total_bytes_sent.as_u64()
        );
    }

    #[test]
    fn critpath_records_one_sync_node_per_ring_step() {
        use coarse_simcore::critpath::{class as crit_class, CritPath};

        let n = 4;
        let cp = CritPath::new();
        let mut g = SyncGroup::new(n, 64, RingDirection::Forward);
        g.set_critpath(cp.clone());
        let inputs: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32; 64]).collect();
        let (_, stats) = g.allreduce_sum(&inputs);
        assert_eq!(cp.node_count() as u64, stats.steps);
        let sink = g.last_crit_node().unwrap();
        cp.mark_iteration(0, sink);
        let ex = cp.analyze();
        assert_eq!(ex.class_events[crit_class::SYNC], stats.steps);
    }

    #[test]
    fn critpath_recording_does_not_perturb_reduction() {
        use coarse_simcore::critpath::CritPath;

        let n = 3;
        let inputs: Vec<Vec<f32>> = (0..n).map(|i| vec![1.0 + i as f32; 50]).collect();
        let mut bare = SyncGroup::new(n, 16, RingDirection::Forward);
        let mut wired = SyncGroup::new(n, 16, RingDirection::Forward);
        wired.set_critpath(CritPath::new());
        let (r0, s0) = bare.allreduce_sum(&inputs);
        let (r1, s1) = wired.allreduce_sum(&inputs);
        assert_eq!(r0, r1);
        assert_eq!(s0, s1);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_inputs_rejected() {
        let mut g = SyncGroup::new(2, 16, RingDirection::Forward);
        let _ = g.allreduce_sum(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "at least two cores")]
    fn tiny_ring_rejected() {
        let _ = SyncGroup::new(1, 16, RingDirection::Forward);
    }
}
