//! Tensors as flat `f32` buffers.
//!
//! The synchronization layer is oblivious to tensor shapes: a parameter
//! tensor is a named, ordered buffer of `f32` values. Real reductions run on
//! this data so numerical invariants (allreduce ≡ elementwise sum, partition
//! ∘ reconstruct ≡ identity) are testable, not assumed.

use std::fmt;

use coarse_simcore::units::ByteSize;

/// Identifies a parameter tensor within one training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TensorId(pub u64);

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A named flat `f32` buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    id: TensorId,
    data: Vec<f32>,
}

impl Tensor {
    /// Wraps a buffer.
    pub fn new(id: TensorId, data: Vec<f32>) -> Self {
        Tensor { id, data }
    }

    /// A zero-filled tensor of `len` elements.
    pub fn zeros(id: TensorId, len: usize) -> Self {
        Tensor {
            id,
            data: vec![0.0; len],
        }
    }

    /// This tensor's id.
    pub fn id(&self) -> TensorId {
        self.id
    }

    /// The elements.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the elements.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the payload in bytes (4 bytes per element).
    pub fn byte_size(&self) -> ByteSize {
        ByteSize::bytes(self.data.len() as u64 * 4)
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add_assign(&mut self, other: &[f32]) {
        assert_eq!(self.data.len(), other.len(), "tensor length mismatch");
        for (a, b) in self.data.iter_mut().zip(other) {
            *a += *b;
        }
    }

    /// In-place scaling (e.g. averaging after a sum-reduce).
    pub fn scale(&mut self, factor: f32) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Splits the buffer into shards of at most `shard_elems` elements,
    /// preserving order. The final shard may be shorter.
    ///
    /// # Panics
    ///
    /// Panics if `shard_elems` is zero.
    pub fn partition(&self, shard_elems: usize) -> Vec<TensorShard> {
        assert!(shard_elems > 0, "shard size must be positive");
        self.data
            .chunks(shard_elems)
            .enumerate()
            .map(|(i, chunk)| TensorShard {
                tensor: self.id,
                index: i as u32,
                offset: i * shard_elems,
                data: chunk.to_vec(),
            })
            .collect()
    }

    /// Reassembles a tensor from its shards (any order).
    ///
    /// # Panics
    ///
    /// Panics if the shards do not tile `[0, len)` exactly or belong to a
    /// different tensor.
    pub fn reconstruct(id: TensorId, len: usize, shards: &[TensorShard]) -> Tensor {
        let mut data = vec![f32::NAN; len];
        let mut covered = 0usize;
        for s in shards {
            assert_eq!(s.tensor, id, "shard belongs to a different tensor");
            assert!(
                s.offset + s.data.len() <= len,
                "shard overruns the tensor: offset {} + {} > {}",
                s.offset,
                s.data.len(),
                len
            );
            data[s.offset..s.offset + s.data.len()].copy_from_slice(&s.data);
            covered += s.data.len();
        }
        assert_eq!(covered, len, "shards do not cover the tensor exactly");
        Tensor { id, data }
    }
}

/// A contiguous slice of a partitioned tensor in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorShard {
    /// The tensor this shard belongs to.
    pub tensor: TensorId,
    /// Shard ordinal within the tensor.
    pub index: u32,
    /// Element offset of this shard in the original buffer.
    pub offset: usize,
    /// The shard's elements.
    pub data: Vec<f32>,
}

impl TensorShard {
    /// Payload size in bytes.
    pub fn byte_size(&self) -> ByteSize {
        ByteSize::bytes(self.data.len() as u64 * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[f32]) -> Tensor {
        Tensor::new(TensorId(1), vals.to_vec())
    }

    #[test]
    fn byte_size_is_4x_len() {
        assert_eq!(t(&[1.0, 2.0, 3.0]).byte_size(), ByteSize::bytes(12));
    }

    #[test]
    fn add_and_scale() {
        let mut a = t(&[1.0, 2.0]);
        a.add_assign(&[3.0, 4.0]);
        assert_eq!(a.data(), &[4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_length_mismatch_panics() {
        t(&[1.0]).add_assign(&[1.0, 2.0]);
    }

    #[test]
    fn partition_reconstruct_round_trip() {
        let orig = t(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let shards = orig.partition(3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[2].data.len(), 1, "last shard is the remainder");
        let rebuilt = Tensor::reconstruct(TensorId(1), 7, &shards);
        assert_eq!(rebuilt, orig);
    }

    #[test]
    fn reconstruct_accepts_any_order() {
        let orig = t(&[0.0, 1.0, 2.0, 3.0]);
        let mut shards = orig.partition(2);
        shards.reverse();
        assert_eq!(Tensor::reconstruct(TensorId(1), 4, &shards), orig);
    }

    #[test]
    #[should_panic(expected = "do not cover")]
    fn reconstruct_rejects_missing_shard() {
        let orig = t(&[0.0, 1.0, 2.0, 3.0]);
        let shards = orig.partition(2);
        let _ = Tensor::reconstruct(TensorId(1), 4, &shards[..1]);
    }

    #[test]
    fn zeros_constructor() {
        let z = Tensor::zeros(TensorId(9), 5);
        assert_eq!(z.len(), 5);
        assert!(z.data().iter().all(|&x| x == 0.0));
        assert!(!z.is_empty());
    }
}
