//! Property tests for the CCI substrate: storage, persistence, sync cores,
//! coherence, and the address space, driven by the in-repo deterministic
//! harness.

use coarse_cci::address::{AddressSpace, CciAddr};
use coarse_cci::persist::{decode_checkpoint, encode_snapshot, DecodeError};
use coarse_cci::storage::ParameterStore;
use coarse_cci::synccore::{RingDirection, SyncGroup};
use coarse_cci::tensor::{Tensor, TensorId};
use coarse_simcore::check::{run_cases, Gen};
use coarse_simcore::units::ByteSize;

fn scratch_devices(n: usize) -> Vec<coarse_fabric::device::DeviceId> {
    let mut t = coarse_fabric::topology::Topology::new();
    (0..n)
        .map(|i| {
            t.add_device(
                coarse_fabric::device::DeviceKind::MemoryDevice,
                format!("m{i}"),
                0,
            )
        })
        .collect()
}

/// Checkpoint images round-trip any store contents exactly (training
/// parameters are finite, so we generate finite values).
#[test]
fn checkpoint_round_trip() {
    run_cases("checkpoint_round_trip", 48, |g: &mut Gen| {
        let tensors = g.vec_of(1..10, |g| {
            let id = g.u64_in(0..50);
            let data = g.vec_of(1..200, |g| g.f32_in(-1e30, 1e30));
            (id, data)
        });
        let mut store = ParameterStore::new();
        let mut expected: std::collections::HashMap<u64, Vec<f32>> = Default::default();
        for (id, data) in tensors {
            // Later duplicates overwrite earlier ones, like insert does.
            expected.insert(id, data.clone());
            store.insert(&Tensor::new(TensorId(id), data));
        }
        let image = encode_snapshot(&store.snapshot());
        let (decoded, _) = decode_checkpoint(&image).unwrap();
        assert_eq!(decoded.len(), expected.len());
        for (id, data) in expected {
            assert_eq!(decoded.get(TensorId(id)).unwrap().into_data(), data);
        }
    });
}

/// Seeded adversarial images: truncations and bit flips of valid checkpoint
/// images must decode to a typed [`DecodeError`] or a correctly framed
/// store — never panic, never mis-frame. A flip that only lands in f32
/// payload bytes may legitimately still decode; the property then checks
/// the framing arithmetic accounts for every input byte.
#[test]
fn decode_survives_truncation_and_bit_flips() {
    run_cases(
        "decode_survives_truncation_and_bit_flips",
        96,
        |g: &mut Gen| {
            let tensors = g.vec_of(0..6, |g| {
                let id = g.u64_in(0..20);
                let data = g.vec_of(0..64, |g| g.f32_in(-1e6, 1e6));
                (id, data)
            });
            let mut store = ParameterStore::new();
            for (id, data) in tensors {
                store.insert(&Tensor::new(TensorId(id), data));
            }
            let mut image = encode_snapshot(&store.snapshot());
            if g.bool() {
                let cut = g.usize_in(0..image.len() + 1);
                image.truncate(cut);
            } else {
                for _ in 0..g.usize_in(1..8) {
                    let bit = g.usize_in(0..image.len() * 8);
                    image[bit / 8] ^= 1 << (bit % 8);
                }
            }
            match decode_checkpoint(&image) {
                Ok((mut decoded, _epoch)) => {
                    // A surviving decode must be framed exactly: the header and
                    // every decoded tensor record account for every input byte.
                    let records: usize = decoded
                        .snapshot()
                        .tensors_sorted()
                        .iter()
                        .map(|t| 16 + t.len() * 4)
                        .sum();
                    assert_eq!(24 + records, image.len(), "mis-framed decode");
                }
                Err(e) => {
                    assert!(matches!(
                        e,
                        DecodeError::BadMagic
                            | DecodeError::UnsupportedVersion(_)
                            | DecodeError::Truncated
                            | DecodeError::DuplicateTensor(_)
                            | DecodeError::TrailingBytes
                    ));
                    assert!(!e.to_string().is_empty());
                }
            }
        },
    );
}

/// COW bookkeeping is conserved: copied + in-place + unchanged chunks
/// always equals the tensor's chunk count.
#[test]
fn cow_chunk_conservation() {
    run_cases("cow_chunk_conservation", 64, |g: &mut Gen| {
        let len = g.usize_in(1..10_000);
        let snapshot_first = g.bool();
        let flips = g.vec_of(0..30, |g| g.usize_in(0..10_000));
        let mut store = ParameterStore::new();
        store.insert(&Tensor::new(TensorId(0), vec![0.0; len]));
        let snap = snapshot_first.then(|| store.snapshot());
        let mut data = vec![0.0f32; len];
        for f in flips {
            data[f % len] = 1.0;
        }
        let stats = store.update(TensorId(0), &data);
        let chunks = len.div_ceil(coarse_cci::storage::CHUNK_ELEMS) as u64;
        assert_eq!(
            stats.chunks_copied + stats.chunks_in_place + stats.chunks_unchanged,
            chunks
        );
        if snap.is_some() {
            assert_eq!(stats.chunks_in_place, 0, "shared chunks must copy");
        } else {
            assert_eq!(stats.chunks_copied, 0, "unshared chunks mutate in place");
        }
    });
}

/// allreduce_mean is idempotent for identical inputs: the mean of p copies
/// of x is x.
#[test]
fn mean_of_identical_inputs_is_identity() {
    run_cases("mean_of_identical_inputs_is_identity", 48, |g: &mut Gen| {
        let n = g.usize_in(2..6);
        let data = g.vec_of(1..300, |g| g.f32_in(-1e3, 1e3));
        let inputs: Vec<Vec<f32>> = (0..n).map(|_| data.clone()).collect();
        let mut grp = SyncGroup::new(n, 64, RingDirection::Forward);
        let (mean, _) = grp.allreduce_mean(&inputs);
        for (a, b) in mean.iter().zip(&data) {
            assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    });
}

/// Address space: every mapped region resolves to its owner at every
/// offset boundary, and distinct regions never alias.
#[test]
fn address_space_no_aliasing() {
    run_cases("address_space_no_aliasing", 64, |g: &mut Gen| {
        let sizes = g.vec_of(1..20, |g| g.u64_in(1..100_000));
        let devices = scratch_devices(sizes.len());
        let mut space = AddressSpace::new();
        let regions: Vec<_> = sizes
            .iter()
            .zip(&devices)
            .map(|(&s, &d)| space.map(d, ByteSize::bytes(s)))
            .collect();
        for (r, &d) in regions.iter().zip(&devices) {
            let (owner, off) = space.resolve(r.base).unwrap();
            assert_eq!(owner, d);
            assert_eq!(off, 0);
            let last = CciAddr(r.end() - 1);
            let (owner, off) = space.resolve(last).unwrap();
            assert_eq!(owner, d);
            assert_eq!(off, r.size.as_u64() - 1);
        }
    });
}

/// Coherence: a write round's message count is exactly 2 + 2·(other
/// current sharers), for any access history.
#[test]
fn coherence_message_arithmetic() {
    run_cases("coherence_message_arithmetic", 32, |g: &mut Gen| {
        use coarse_cci::coherence::Directory;
        let readers = g.usize_in(1..8);
        let devices = scratch_devices(readers + 1);
        let mut dir = Directory::new();
        let region = CciAddr(0x1000);
        for &d in &devices[1..=readers] {
            dir.read(region, d, ByteSize::kib(64));
        }
        let cost = dir.write(region, devices[0], ByteSize::kib(64));
        assert_eq!(cost.messages, 2 + 2 * readers as u64);
    });
}

/// Snapshot chains: restoring checkpoints in reverse order replays history
/// backwards exactly.
#[test]
fn snapshot_chain_replay() {
    let mut store = ParameterStore::new();
    store.insert(&Tensor::new(TensorId(0), vec![0.0; 2048]));
    let mut snaps = Vec::new();
    for epoch in 0..5 {
        store.update(TensorId(0), &vec![epoch as f32; 2048]);
        snaps.push(store.snapshot());
    }
    for (epoch, snap) in snaps.iter().enumerate().rev() {
        store.restore(snap);
        assert_eq!(store.get(TensorId(0)).unwrap().data()[0], epoch as f32);
    }
}
