//! Chaos search: randomized fault schedules, runtime oracles, and shrinking.
//!
//! The chaos runner closes the loop the other fault layers leave open:
//! [`coarse_simcore::faults::FaultPlanGen`] samples randomized fault
//! schedules, each schedule drives one COARSE training run with the full
//! [`coarse_simcore::oracle`] battery armed, and any oracle violation is
//! delta-debugged down to a minimal still-failing plan
//! ([`coarse_simcore::faults::shrink_plan`]) and serialized as a replayable
//! repro document. The whole pipeline is seeded: the same
//! [`SoakConfig`] always explores the same schedules, finds the same
//! failures, and shrinks them to the same minimal repros, byte for byte.
//!
//! Three entry points:
//!
//! - [`run_case`] — one scenario, oracles armed, verdicts back.
//! - [`soak`] — N seeded cases across the Fig. 16 presets; failures come
//!   back shrunk, each carrying a [`ChaosRepro`].
//! - [`replay`] — re-run a serialized repro and return its fresh verdicts.
//!
//! Repros are plain JSON under the [`REPRO_SCHEMA`] schema tag, written by
//! the same zero-dependency [`coarse_simcore::json`] layer as every other
//! artifact in this workspace, and re-parsed by
//! [`Scenario::from_repro`](crate::scenario::Scenario::from_repro).
//! Replays always use [`ResiliencePolicy::default`] — the repro format
//! deliberately does not carry a policy, so a repro is a *fault schedule*,
//! not a full configuration snapshot.

use std::collections::BTreeMap;

use coarse_core::resilience::ResiliencePolicy;
use coarse_simcore::faults::{
    shrink_plan, DeviceDropout, FaultPlan, FaultPlanGen, FaultSpec, FaultUniverse, LinkDegrade,
    LinkFlap, ProxyStall, TransientFaults,
};
use coarse_simcore::json::JsonValue;
use coarse_simcore::oracle::{MembershipMonotonicity, OracleHub, Reconvergence, Violation};
use coarse_simcore::time::{SimDuration, SimTime};

use crate::coarse::{
    result_fingerprint, simulate_coarse_faulty_observed, FaultyTrainResult, Sabotage,
};
use crate::config::TrainError;
use crate::scenario::Scenario;

/// Schema tag of serialized chaos repros.
pub const REPRO_SCHEMA: &str = "coarse.chaos-repro/v1";

/// The oracle liveness watchdog used for chaos runs. Progress heartbeats
/// arrive once per training iteration (milliseconds of simulated time even
/// under heavy degradation), so a one-minute gap is unambiguously a hang.
const WATCHDOG: SimDuration = SimDuration::from_secs(60);

/// FNV-1a over a byte string; used to derive stable repro file names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer; derives per-case seeds from `(base_seed, index)`.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The fault surface of one scenario: its memory-device tier (the devices
/// resilience can survive losing) and every fabric link, with windows
/// sampled inside the first 200 simulated milliseconds — early enough to
/// intersect a short run's traffic, late enough that some windows miss it
/// (which is exactly what the clean-run-equivalence oracle wants to see).
pub fn universe_for(scenario: &Scenario) -> FaultUniverse {
    let machine = scenario.machine_ref();
    let part = machine.partition(scenario.partition_scheme());
    let devices: Vec<u32> = part.mem_devices.iter().map(|d| d.index() as u32).collect();
    let mut links: Vec<(u32, u32)> = machine
        .topology()
        .links()
        .map(|l| {
            let (a, b) = (l.src().index() as u32, l.dst().index() as u32);
            (a.min(b), a.max(b))
        })
        .collect();
    links.sort_unstable();
    links.dedup();
    FaultUniverse {
        devices,
        links,
        horizon: SimDuration::from_millis(200),
    }
}

/// Verdicts of one oracle-observed chaos case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The faulty run's timing and resilience accounting.
    pub faulty: FaultyTrainResult,
    /// Fingerprint of the fault-free reference run.
    pub reference: u64,
    /// Fingerprint of the faulty run.
    pub fingerprint: u64,
    /// Oracle violations, in registration order. Empty means the run
    /// upheld every invariant.
    pub violations: Vec<Violation>,
}

impl CaseReport {
    /// The violations rendered as stable `[oracle] detail` strings.
    pub fn rendered_violations(&self) -> Vec<String> {
        self.violations.iter().map(|v| v.to_string()).collect()
    }
}

/// Runs one COARSE scenario with the built-in oracle battery armed and
/// returns the verdicts. The fault-free variant of the same scenario is run
/// first to obtain the clean-run-equivalence reference fingerprint.
///
/// # Errors
///
/// Returns a [`TrainError`] if the scenario fails validation or its batch
/// does not fit in memory.
///
/// # Panics
///
/// Panics if the scenario's scheme is not COARSE (chaos targets the proxy
/// tier; the other schemes have no resilience protocol to violate).
pub fn run_case(scenario: &Scenario, sabotage: Sabotage) -> Result<CaseReport, TrainError> {
    let clean = scenario.clone().faults(FaultPlan::empty());
    let reference = result_fingerprint(&clean.run()?);
    run_case_with_reference(scenario, sabotage, reference)
}

/// [`run_case`] with a precomputed reference fingerprint, so soak loops can
/// amortize the fault-free run across every case sharing a preset.
fn run_case_with_reference(
    scenario: &Scenario,
    sabotage: Sabotage,
    reference: u64,
) -> Result<CaseReport, TrainError> {
    assert_eq!(
        scenario.scheme_ref(),
        crate::config::Scheme::Coarse,
        "chaos cases exercise the COARSE proxy tier"
    );
    scenario.validate()?;
    scenario.check_memory()?;
    let machine = scenario.machine_ref();
    let part = machine.partition(scenario.partition_scheme());
    let hub = OracleHub::with_builtins(WATCHDOG);
    hub.register(Box::new(MembershipMonotonicity::new()));
    hub.register(Box::new(Reconvergence::new(
        crate::recovery::plan_clear_instant(scenario.fault_plan()),
        WATCHDOG,
    )));
    let faulty = simulate_coarse_faulty_observed(
        machine,
        &part,
        scenario.model_ref(),
        scenario.batch(),
        scenario.iters(),
        scenario.fault_plan(),
        scenario.policy_ref(),
        &hub,
        sabotage,
        Some(reference),
    );
    let fingerprint = result_fingerprint(&faulty.result);
    Ok(CaseReport {
        faulty,
        reference,
        fingerprint,
        violations: hub.violations(),
    })
}

/// One shrunk, replayable oracle failure found by [`soak`].
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// Soak case index the failure was found at.
    pub case: u32,
    /// Violations of the *shrunk* plan (what the repro replays to).
    pub violations: Vec<String>,
    /// Fault events in the originally sampled plan.
    pub original_events: usize,
    /// Fault events after delta-debugging.
    pub shrunk_events: usize,
    /// Candidate plans the shrinker evaluated (each one a full run).
    pub shrink_tested: u32,
    /// The serializable minimal repro.
    pub repro: ChaosRepro,
}

/// Configuration of one seeded chaos soak.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Presets to rotate through, one case at a time.
    pub presets: Vec<String>,
    /// Total cases to run.
    pub cases: u32,
    /// Iterations per case (chaos keeps runs short; ≥ 2).
    pub iterations: u32,
    /// Base seed; case `i` runs the plan sampled from
    /// `mix64(base_seed ^ i)`.
    pub base_seed: u64,
    /// Cap on fault events per sampled plan.
    pub max_events: usize,
    /// Protocol sabotage to arm (test-only; [`Sabotage::None`] for real
    /// hunts).
    pub sabotage: Sabotage,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            presets: Scenario::presets().iter().map(|s| s.to_string()).collect(),
            cases: 500,
            iterations: 2,
            base_seed: 0xC0A5_5EED,
            max_events: 4,
            sabotage: Sabotage::None,
        }
    }
}

/// Outcome of one [`soak`] sweep.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Cases actually run.
    pub cases: u32,
    /// Cases with no oracle violation.
    pub clean: u32,
    /// Per-preset case counts, sorted by preset name.
    pub per_preset: BTreeMap<String, u32>,
    /// Total shard retries observed across all cases.
    pub retries: u64,
    /// Total proxy failovers observed across all cases.
    pub failovers: u64,
    /// Every oracle failure, shrunk and serialized.
    pub failures: Vec<ChaosFailure>,
}

impl SoakOutcome {
    /// Renders a deterministic text summary: same soak, same bytes.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos soak: {} cases, {} clean, {} failing\n",
            self.cases,
            self.clean,
            self.failures.len()
        ));
        for (preset, n) in &self.per_preset {
            out.push_str(&format!("  {preset}: {n} cases\n"));
        }
        out.push_str(&format!(
            "  resilience exercised: {} retries, {} failovers\n",
            self.retries, self.failovers
        ));
        for f in &self.failures {
            out.push_str(&format!(
                "  FAIL case {} [{}] {} -> {} events ({} shrink runs) -> {}\n",
                f.case,
                f.repro.preset,
                f.original_events,
                f.shrunk_events,
                f.shrink_tested,
                f.repro.file_name()
            ));
            for v in &f.violations {
                out.push_str(&format!("    {v}\n"));
            }
        }
        out
    }
}

/// Runs `cfg.cases` seeded chaos cases, shrinking every oracle failure to a
/// minimal replayable repro. Deterministic end to end: the same config
/// yields the same [`SoakOutcome`], including byte-identical
/// [`SoakOutcome::render_summary`] output.
///
/// # Errors
///
/// Returns a [`TrainError`] if a preset name is unknown or a scenario fails
/// validation (the fault plan itself cannot make a scenario invalid).
pub fn soak(cfg: &SoakConfig) -> Result<SoakOutcome, TrainError> {
    assert!(!cfg.presets.is_empty(), "soak needs at least one preset");
    let mut outcome = SoakOutcome {
        cases: 0,
        clean: 0,
        per_preset: BTreeMap::new(),
        retries: 0,
        failovers: 0,
        failures: Vec::new(),
    };
    // The fault-free reference depends only on (preset, iterations), so it
    // is computed once per preset, not once per case.
    let mut references: BTreeMap<String, u64> = BTreeMap::new();
    let mut generators: BTreeMap<String, FaultPlanGen> = BTreeMap::new();
    for case in 0..cfg.cases {
        let preset = &cfg.presets[case as usize % cfg.presets.len()];
        let base = Scenario::try_preset(preset)?.iterations(cfg.iterations);
        let reference = match references.get(preset) {
            Some(&r) => r,
            None => {
                let r = result_fingerprint(&base.run()?);
                references.insert(preset.clone(), r);
                r
            }
        };
        let gen = generators
            .entry(preset.clone())
            .or_insert_with(|| FaultPlanGen::new(universe_for(&base)).max_events(cfg.max_events));
        let seed = mix64(cfg.base_seed ^ case as u64);
        let plan = gen.sample(seed);
        let scenario = base.clone().faults(plan.clone());
        let report = run_case_with_reference(&scenario, cfg.sabotage, reference)?;
        outcome.cases += 1;
        *outcome.per_preset.entry(preset.clone()).or_insert(0) += 1;
        outcome.retries += report.faulty.retries;
        outcome.failovers += report.faulty.failovers;
        if report.violations.is_empty() {
            outcome.clean += 1;
            continue;
        }
        outcome
            .failures
            .push(shrink_failure(&base, &plan, cfg.sabotage, reference, case));
    }
    Ok(outcome)
}

/// Delta-debugs a failing plan to a minimal still-failing one and packages
/// it as a [`ChaosFailure`]. Every shrink candidate is evaluated by a full
/// oracle-observed run.
fn shrink_failure(
    base: &Scenario,
    plan: &FaultPlan,
    sabotage: Sabotage,
    reference: u64,
    case: u32,
) -> ChaosFailure {
    let fails = |candidate: &FaultPlan| -> bool {
        let scenario = base.clone().faults(candidate.clone());
        match run_case_with_reference(&scenario, sabotage, reference) {
            Ok(report) => !report.violations.is_empty(),
            Err(_) => false,
        }
    };
    let shrunk = shrink_plan(plan, fails);
    let final_scenario = base.clone().faults(shrunk.plan.clone());
    let violations = run_case_with_reference(&final_scenario, sabotage, reference)
        .map(|r| r.rendered_violations())
        .unwrap_or_default();
    ChaosFailure {
        case,
        violations: violations.clone(),
        original_events: shrunk.original_events,
        shrunk_events: shrunk.shrunk_events,
        shrink_tested: shrunk.tested,
        repro: ChaosRepro {
            preset: base.name().to_string(),
            iterations: base.iters(),
            batch_per_gpu: base.batch(),
            plan: shrunk.plan,
            sabotage,
            violations,
        },
    }
}

/// Parses a serialized repro and re-runs it with oracles armed.
///
/// # Errors
///
/// Returns [`TrainError::BadRepro`] on a malformed document, or any
/// validation error of the reconstructed scenario.
pub fn replay(input: &str) -> Result<CaseReport, TrainError> {
    let repro = ChaosRepro::parse(input)?;
    let sabotage = repro.sabotage;
    run_case(&repro.scenario()?, sabotage)
}

/// A serialized minimal failure: preset, run shape, the shrunk fault plan,
/// the sabotage armed when it was found, and the violations it replays to.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRepro {
    /// Fig. 16 preset the failure was found on.
    pub preset: String,
    /// Iterations of the failing run.
    pub iterations: u32,
    /// Per-GPU batch of the failing run.
    pub batch_per_gpu: u32,
    /// The minimal still-failing plan.
    pub plan: FaultPlan,
    /// Sabotage armed when the failure was found.
    pub sabotage: Sabotage,
    /// Violations the plan replays to (informational; replays recompute).
    pub violations: Vec<String>,
}

impl ChaosRepro {
    /// The repro as a [`JsonValue`] under [`REPRO_SCHEMA`].
    pub fn to_json(&self) -> JsonValue {
        let specs: Vec<JsonValue> = self.plan.specs().iter().map(spec_to_json).collect();
        let violations: Vec<JsonValue> = self.violations.iter().map(JsonValue::str).collect();
        JsonValue::object()
            .with("schema", JsonValue::str(REPRO_SCHEMA))
            .with("preset", JsonValue::str(&self.preset))
            .with("iterations", JsonValue::int(self.iterations as u64))
            .with("batch_per_gpu", JsonValue::int(self.batch_per_gpu as u64))
            // Seeds are full u64s; JSON numbers are f64-backed, so hex
            // strings keep them exact.
            .with(
                "seed",
                JsonValue::str(format!("{:#018x}", self.plan.seed())),
            )
            .with("sabotage", JsonValue::str(sabotage_label(self.sabotage)))
            .with("faults", JsonValue::Array(specs))
            .with("violations", JsonValue::Array(violations))
    }

    /// Renders the repro as pretty JSON (the on-disk artifact format).
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// The stable artifact file name: `chaos-repro-<hash>.json`, hashed
    /// over the rendered bytes.
    pub fn file_name(&self) -> String {
        format!("chaos-repro-{:016x}.json", fnv1a(self.render().as_bytes()))
    }

    /// Parses a repro document.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::BadRepro`] describing the first problem found.
    pub fn parse(input: &str) -> Result<ChaosRepro, TrainError> {
        let bad = |reason: String| TrainError::BadRepro { reason };
        let doc = JsonValue::parse(input).map_err(|e| bad(e.to_string()))?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing schema".to_string()))?;
        if schema != REPRO_SCHEMA {
            return Err(bad(format!("schema {schema:?}, expected {REPRO_SCHEMA:?}")));
        }
        let preset = doc
            .get("preset")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing preset".to_string()))?
            .to_string();
        let u32_field = |key: &str| -> Result<u32, TrainError> {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| bad(format!("missing or non-u32 {key:?}")))
        };
        let iterations = u32_field("iterations")?;
        let batch_per_gpu = u32_field("batch_per_gpu")?;
        let seed_text = doc
            .get("seed")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing seed".to_string()))?;
        let seed = seed_text
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad(format!("seed {seed_text:?} is not 0x-prefixed hex")))?;
        let sabotage = match doc.get("sabotage").and_then(JsonValue::as_str) {
            Some("none") => Sabotage::None,
            Some("invert-retry-order") => Sabotage::InvertRetryOrder,
            Some(other) => return Err(bad(format!("unknown sabotage {other:?}"))),
            None => return Err(bad("missing sabotage".to_string())),
        };
        let fault_items = doc
            .get("faults")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing faults array".to_string()))?;
        let mut specs = Vec::with_capacity(fault_items.len());
        for (i, item) in fault_items.iter().enumerate() {
            specs.push(
                spec_from_json(item).map_err(|reason| bad(format!("faults[{i}]: {reason}")))?,
            );
        }
        let violations = doc
            .get("violations")
            .and_then(JsonValue::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(JsonValue::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        Ok(ChaosRepro {
            preset,
            iterations,
            batch_per_gpu,
            plan: FaultPlan::from_specs(seed, &specs),
            sabotage,
            violations,
        })
    }

    /// Reconstructs the runnable scenario: preset, run shape, and the
    /// shrunk plan, under [`ResiliencePolicy::default`].
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::UnknownPreset`] if the preset no longer
    /// exists.
    pub fn scenario(&self) -> Result<Scenario, TrainError> {
        Ok(Scenario::try_preset(&self.preset)?
            .iterations(self.iterations)
            .batch_per_gpu(self.batch_per_gpu)
            .faults(self.plan.clone())
            .resilience(ResiliencePolicy::default()))
    }
}

fn sabotage_label(s: Sabotage) -> &'static str {
    match s {
        Sabotage::None => "none",
        Sabotage::InvertRetryOrder => "invert-retry-order",
    }
}

pub(crate) fn spec_to_json(spec: &FaultSpec) -> JsonValue {
    match *spec {
        FaultSpec::Degrade(d) => JsonValue::object()
            .with("kind", JsonValue::str("degrade"))
            .with("a", JsonValue::int(d.a as u64))
            .with("b", JsonValue::int(d.b as u64))
            .with("from_ns", JsonValue::int(d.from.as_nanos()))
            .with("until_ns", JsonValue::int(d.until.as_nanos()))
            .with("factor", JsonValue::num(d.factor)),
        FaultSpec::Flap(f) => JsonValue::object()
            .with("kind", JsonValue::str("flap"))
            .with("a", JsonValue::int(f.a as u64))
            .with("b", JsonValue::int(f.b as u64))
            .with("from_ns", JsonValue::int(f.from.as_nanos()))
            .with("until_ns", JsonValue::int(f.until.as_nanos())),
        FaultSpec::Dropout(d) => JsonValue::object()
            .with("kind", JsonValue::str("dropout"))
            .with("device", JsonValue::int(d.device as u64))
            .with("at_ns", JsonValue::int(d.at.as_nanos())),
        FaultSpec::Stall(s) => JsonValue::object()
            .with("kind", JsonValue::str("stall"))
            .with("device", JsonValue::int(s.device as u64))
            .with("from_ns", JsonValue::int(s.from.as_nanos()))
            .with("until_ns", JsonValue::int(s.until.as_nanos()))
            .with("extra_ns", JsonValue::int(s.extra.as_nanos())),
        FaultSpec::Transient(t) => JsonValue::object()
            .with("kind", JsonValue::str("transient"))
            .with("device", JsonValue::int(t.device as u64))
            .with("from_ns", JsonValue::int(t.from.as_nanos()))
            .with("until_ns", JsonValue::int(t.until.as_nanos()))
            .with("rate_ppm", JsonValue::int(t.rate_ppm as u64)),
    }
}

/// Parses one fault spec, validating everything `FaultPlan::from_specs`
/// would otherwise `assert!` on, so malformed documents surface as errors
/// rather than panics.
fn spec_from_json(v: &JsonValue) -> Result<FaultSpec, String> {
    let node = |key: &str| -> Result<u32, String> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| format!("missing or non-u32 {key:?}"))
    };
    let time = |key: &str| -> Result<SimTime, String> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .map(SimTime::from_nanos)
            .ok_or_else(|| format!("missing or non-integer {key:?}"))
    };
    let window = || -> Result<(SimTime, SimTime), String> {
        let (from, until) = (time("from_ns")?, time("until_ns")?);
        if from >= until {
            return Err(format!(
                "empty window [{}, {})",
                from.as_nanos(),
                until.as_nanos()
            ));
        }
        Ok((from, until))
    };
    match v.get("kind").and_then(JsonValue::as_str) {
        Some("degrade") => {
            let (from, until) = window()?;
            let factor = v
                .get("factor")
                .and_then(JsonValue::as_f64)
                .ok_or("missing factor")?;
            if factor < 1.0 {
                return Err(format!("degrade factor {factor} < 1.0"));
            }
            Ok(FaultSpec::Degrade(LinkDegrade {
                a: node("a")?,
                b: node("b")?,
                from,
                until,
                factor,
            }))
        }
        Some("flap") => {
            let (from, until) = window()?;
            Ok(FaultSpec::Flap(LinkFlap {
                a: node("a")?,
                b: node("b")?,
                from,
                until,
            }))
        }
        Some("dropout") => Ok(FaultSpec::Dropout(DeviceDropout {
            device: node("device")?,
            at: time("at_ns")?,
        })),
        Some("stall") => {
            let (from, until) = window()?;
            let extra = v
                .get("extra_ns")
                .and_then(JsonValue::as_u64)
                .map(SimDuration::from_nanos)
                .ok_or("missing extra_ns")?;
            Ok(FaultSpec::Stall(ProxyStall {
                device: node("device")?,
                from,
                until,
                extra,
            }))
        }
        Some("transient") => {
            let (from, until) = window()?;
            let rate = v
                .get("rate_ppm")
                .and_then(JsonValue::as_u64)
                .ok_or("missing rate_ppm")?;
            if rate > 1_000_000 {
                return Err(format!("rate_ppm {rate} > 1000000"));
            }
            Ok(FaultSpec::Transient(TransientFaults {
                device: node("device")?,
                from,
                until,
                rate_ppm: rate as u32,
            }))
        }
        Some(other) => Err(format!("unknown fault kind {other:?}")),
        None => Err("missing fault kind".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sample_repro() -> ChaosRepro {
        let plan = FaultPlan::new(0xDEAD_BEEF_DEAD_BEEF)
            .degrade_link(0, 4, t(1), t(20), 3.25)
            .flap_link(1, 5, t(2), t(10))
            .drop_device(6, t(5))
            .stall_device(7, t(3), t(9), SimDuration::from_micros(50))
            .corrupt_transfers(5, t(0), t(30), 200_000);
        ChaosRepro {
            preset: "fig16d".to_string(),
            iterations: 2,
            batch_per_gpu: 2,
            plan,
            sabotage: Sabotage::InvertRetryOrder,
            violations: vec!["[retry-fifo] example".to_string()],
        }
    }

    #[test]
    fn repro_round_trips_byte_for_byte() {
        let repro = sample_repro();
        let rendered = repro.render();
        let parsed = ChaosRepro::parse(&rendered).expect("own output parses");
        assert_eq!(parsed, repro);
        assert_eq!(parsed.render(), rendered, "render→parse→render is stable");
        assert_eq!(parsed.file_name(), repro.file_name());
        assert!(repro.file_name().starts_with("chaos-repro-"));
        assert!(repro.file_name().ends_with(".json"));
    }

    #[test]
    fn repro_preserves_full_u64_seeds() {
        let mut repro = sample_repro();
        // Larger than 2^53: would silently lose precision as a JSON number.
        repro.plan = FaultPlan::new(u64::MAX - 12345).drop_device(4, t(1));
        let parsed = ChaosRepro::parse(&repro.render()).unwrap();
        assert_eq!(parsed.plan.seed(), u64::MAX - 12345);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        let cases: Vec<(String, &str)> = vec![
            ("not json".to_string(), "unparseable"),
            ("{}".to_string(), "no schema"),
            (
                sample_repro().render().replace(REPRO_SCHEMA, "other/v9"),
                "wrong schema",
            ),
            (
                sample_repro().render().replace("invert-retry-order", "xyz"),
                "unknown sabotage",
            ),
            (
                sample_repro().render().replace("\"degrade\"", "\"melt\""),
                "unknown fault kind",
            ),
            (
                sample_repro()
                    .render()
                    .replace("\"factor\": 3.25", "\"factor\": 0.5"),
                "factor below 1.0",
            ),
        ];
        for (doc, why) in cases {
            let err = ChaosRepro::parse(&doc);
            assert!(
                matches!(err, Err(TrainError::BadRepro { .. })),
                "{why}: expected BadRepro, got {err:?}"
            );
        }
    }

    #[test]
    fn parse_rejects_empty_windows_instead_of_panicking() {
        // from == until would trip FaultPlan's assert; the parser must turn
        // it into a typed error first. The degrade window is [1ms, 20ms).
        let rendered = sample_repro().render();
        assert!(rendered.contains("\"until_ns\": 20000000"), "{rendered}");
        let doc = rendered.replace("\"until_ns\": 20000000", "\"until_ns\": 1000000");
        let err = ChaosRepro::parse(&doc).unwrap_err();
        assert!(matches!(err, TrainError::BadRepro { .. }), "got {err:?}");
    }

    #[test]
    fn scenario_reconstruction_carries_the_plan() {
        let repro = sample_repro();
        let s = repro.scenario().expect("fig16d exists");
        assert_eq!(s.fault_plan(), &repro.plan);
        assert_eq!(s.name(), "fig16d");
    }

    #[test]
    fn universe_covers_the_proxy_tier() {
        let s = Scenario::preset("fig16d");
        let u = universe_for(&s);
        let part = s.machine_ref().partition(s.partition_scheme());
        assert_eq!(u.devices.len(), part.mem_devices.len());
        assert!(!u.links.is_empty());
        assert!(u.links.iter().all(|&(a, b)| a < b), "links normalized");
        assert!(u.horizon > SimDuration::ZERO);
        // The generator accepts it directly.
        let plan = FaultPlanGen::new(u).sample(7);
        assert!(!plan.is_empty());
    }

    #[test]
    fn case_seeds_are_spread() {
        let base = 1u64;
        let a = mix64(base);
        let b = mix64(base ^ 1);
        assert_ne!(a, b);
        assert_ne!(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF, "low bits differ too");
    }
}
