//! Critical-path explanation harness: "where does the simulated time go?"
//!
//! [`explain_scenario`] runs one scenario twice under a [`CritPath`]
//! recorder — once through the COARSE deployment, once through the DENSE
//! baseline — and extracts each run's per-iteration critical path, blame
//! split across the closed resource-class taxonomy
//! ([`coarse_simcore::critpath::class`]), per-resource busy-idle loads, and
//! per-link utilization. The result renders as a single
//! `coarse.explain-report/v1` document plus a Chrome-trace overlay marking
//! the critical-path slices; both are byte-deterministic because the
//! recorded runs are.
//!
//! The headline the report reproduces is Fig. 16's: DENSE is
//! **sync-dominated** (every gradient serializes through the parameter
//! device inside the iteration), while COARSE is **compute-dominated**
//! (push/collective/pull overlap the backward pass, so the GPU is the
//! gating resource).

use coarse_simcore::critpath::{class, CritPath, Explanation};
use coarse_simcore::json::JsonValue;
use coarse_simcore::time::SimTime;

use crate::coarse::record_coarse_explain;
use crate::config::{TrainError, TrainResult};
use crate::dense::simulate_dense_explained;
use crate::scenario::Scenario;

/// Schema identifier of the explain-report document.
pub const EXPLAIN_REPORT_SCHEMA: &str = coarse_simcore::critpath::EXPLAIN_SCHEMA;

/// Bins in each resource's busy-idle timeline.
const LOAD_BINS: usize = 16;
/// Critical-path slices kept per iteration row in the report.
const MAX_SEGMENTS: usize = 48;

/// One scheme's explained run: timing result, extracted critical path, and
/// the recorder the path came from (kept for resource timelines and the
/// trace overlay).
#[derive(Debug, Clone)]
pub struct ExplainedScheme {
    /// Timing result — identical to the uninstrumented run.
    pub result: TrainResult,
    /// Extracted critical path and blame.
    pub explanation: Explanation,
    /// The recorder, for [`CritPath::resource_loads`] and overlays.
    pub critpath: CritPath,
}

impl ExplainedScheme {
    /// End of the last explained iteration (the resource-load horizon).
    fn horizon(&self) -> SimTime {
        self.explanation
            .iterations
            .last()
            .map(|it| it.end)
            .unwrap_or(SimTime::ZERO)
            .max(SimTime::from_nanos(1))
    }

    fn json(&self, links: Option<&[(String, f64)]>) -> JsonValue {
        let ex = &self.explanation;
        let horizon = self.horizon();
        let horizon_ns = (horizon - SimTime::ZERO).as_nanos();
        let mut resources = JsonValue::object();
        for (name, load) in self.critpath.resource_loads(LOAD_BINS, horizon) {
            let busy_ns = load.busy.as_nanos();
            resources = resources.with(
                &name,
                JsonValue::object()
                    .with("busy_ns", JsonValue::int(busy_ns))
                    .with("spans", JsonValue::int(load.spans))
                    .with(
                        "utilization",
                        JsonValue::num(busy_ns as f64 / horizon_ns as f64),
                    )
                    .with(
                        "busy_bins_ns",
                        JsonValue::Array(load.bins.iter().map(|&b| JsonValue::int(b)).collect()),
                    ),
            );
        }
        let mut speedups = JsonValue::object();
        for c in class::ALL {
            speedups = speedups.with(c, JsonValue::num(ex.speedup_bound(c)));
        }
        let mut out = JsonValue::object()
            .with(
                "iteration_time_ns",
                JsonValue::int(self.result.iteration_time.as_nanos()),
            )
            .with(
                "compute_time_ns",
                JsonValue::int(self.result.compute_time.as_nanos()),
            )
            .with(
                "blocked_comm_ns",
                JsonValue::int(self.result.blocked_comm.as_nanos()),
            )
            .with("critical_path_ns", JsonValue::int(ex.total.as_nanos()))
            .with("dominant", JsonValue::str(ex.dominant().unwrap_or("none")))
            .with("blame", ex.blame_json())
            .with("speedup_bounds", speedups)
            .with("iterations", ex.iterations_json(MAX_SEGMENTS))
            .with("resources", resources);
        if let Some(links) = links {
            let rows: Vec<JsonValue> = links
                .iter()
                .map(|(name, util)| {
                    JsonValue::object()
                        .with("link", JsonValue::str(name.as_str()))
                        .with("utilization", JsonValue::num(*util))
                })
                .collect();
            out = out.with("links", JsonValue::Array(rows));
        }
        out
    }
}

/// A completed explanation of one scenario: COARSE and DENSE runs of the
/// same machine/model/batch, each with its critical path extracted.
#[derive(Debug, Clone)]
pub struct ExplainRun {
    /// Scenario label the explanation was captured under.
    pub scenario: String,
    /// Simulated iterations per scheme.
    pub iterations: u32,
    /// The COARSE deployment's explained run.
    pub coarse: ExplainedScheme,
    /// The DENSE baseline's explained run.
    pub dense: ExplainedScheme,
    /// Post-run fabric-link utilization rows from the COARSE run
    /// (`"src -> dst (class)"` → busy fraction), busiest first.
    pub coarse_links: Vec<(String, f64)>,
}

impl ExplainRun {
    /// The full `coarse.explain-report/v1` document.
    pub fn report_json(&self) -> JsonValue {
        JsonValue::object()
            .with("schema", JsonValue::str(EXPLAIN_REPORT_SCHEMA))
            .with("scenario", JsonValue::str(self.scenario.as_str()))
            .with("iterations", JsonValue::int(u64::from(self.iterations)))
            .with(
                "schemes",
                JsonValue::object()
                    .with("coarse", self.coarse.json(Some(&self.coarse_links)))
                    .with("dense", self.dense.json(None)),
            )
    }

    /// Chrome-trace overlay of the COARSE run's critical-path slices (one
    /// thread per blame class). Load alongside the full run trace to see
    /// which occupancy gated each iteration.
    pub fn overlay_trace_json(&self) -> JsonValue {
        self.coarse.explanation.overlay_trace_json()
    }
}

/// Explains the named scenario preset (see [`Scenario::presets`]).
///
/// # Errors
///
/// Returns [`TrainError::UnknownPreset`] for an unknown name, or any
/// validation error [`explain_scenario`] reports.
pub fn explain_preset(name: &str) -> Result<ExplainRun, TrainError> {
    explain_scenario(&Scenario::try_preset(name)?)
}

/// Runs the explanation harness for `scenario`: a COARSE run and a DENSE
/// run of the same machine/model/batch, each recording into a fresh
/// [`CritPath`], with critical paths extracted from both.
///
/// # Errors
///
/// Returns a [`TrainError`] if the scenario fails validation, the batch
/// does not fit the COARSE residency, or the partition has no proxy tier
/// (the harness always explains the COARSE path, whatever the scenario's
/// configured scheme).
pub fn explain_scenario(scenario: &Scenario) -> Result<ExplainRun, TrainError> {
    scenario.validate()?;
    scenario.check_memory()?;
    let machine = scenario.machine_ref();
    let part = machine.partition(scenario.partition_scheme());
    if part.mem_devices.len() < 2 {
        return Err(TrainError::NoProxyTier {
            mem_devices: part.mem_devices.len(),
        });
    }

    let coarse_cp = CritPath::new();
    let (coarse_result, coarse_links) = record_coarse_explain(
        machine,
        &part,
        scenario.model_ref(),
        scenario.batch(),
        scenario.iters(),
        coarse_cp.clone(),
    );
    let coarse = ExplainedScheme {
        result: coarse_result,
        explanation: coarse_cp.analyze(),
        critpath: coarse_cp,
    };

    let dense_cp = CritPath::new();
    let dense_result = simulate_dense_explained(
        machine,
        &part,
        scenario.model_ref(),
        scenario.batch(),
        scenario.iters(),
        &dense_cp,
    );
    let dense = ExplainedScheme {
        result: dense_result,
        explanation: dense_cp.analyze(),
        critpath: dense_cp,
    };

    Ok(ExplainRun {
        scenario: scenario.name().to_string(),
        iterations: scenario.iters(),
        coarse,
        dense,
        coarse_links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    #[test]
    fn fig16_blame_matches_the_paper() {
        // Fig. 16's headline on the fig16d panel: the DENSE baseline
        // serializes every gradient through the parameter device inside the
        // iteration (sync-dominated), while COARSE overlaps push/collective/
        // pull with the backward pass (compute-dominated).
        let run = explain_preset("fig16d").expect("fig16d explains");
        assert_eq!(run.dense.explanation.dominant(), Some(class::SYNC));
        assert_eq!(run.coarse.explanation.dominant(), Some(class::COMPUTE));
        assert!(
            run.coarse.explanation.fraction(class::COMPUTE) > 0.5,
            "COARSE compute fraction: {}",
            run.coarse.explanation.fraction(class::COMPUTE)
        );
        assert!(
            run.dense.explanation.fraction(class::SYNC) > 0.5,
            "DENSE sync fraction: {}",
            run.dense.explanation.fraction(class::SYNC)
        );
        for ex in [&run.coarse.explanation, &run.dense.explanation] {
            let sum: f64 = class::ALL.iter().map(|c| ex.fraction(c)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
        }
    }

    #[test]
    fn staged_fabric_still_routes_blame_to_compute() {
        // Fig. 16a (8×T4, ResNet-50): the run is compute-bound, but with
        // p2p disabled every push/pull stages through the host CPU as two
        // legs. The walk must escape the staging legs' per-link FIFO chains
        // through the transfers' entry nodes and land on compute — if cause
        // edges only reach the delivery leg, the whole backward pass gets
        // misblamed on the fabric.
        let run = explain_preset("fig16a").expect("fig16a explains");
        assert_eq!(run.coarse.explanation.dominant(), Some(class::COMPUTE));
        let compute_share = run.coarse.result.compute_time.as_nanos() as f64
            / run.coarse.result.iteration_time.as_nanos() as f64;
        assert!(
            run.coarse.explanation.fraction(class::COMPUTE) > compute_share - 0.05,
            "COARSE compute blame {} must track the compute share {compute_share} of the result",
            run.coarse.explanation.fraction(class::COMPUTE)
        );
        assert_eq!(run.dense.explanation.dominant(), Some(class::SYNC));
    }

    #[test]
    fn report_is_byte_deterministic() {
        let a = explain_preset("fig16d").expect("fig16d explains");
        let b = explain_preset("fig16d").expect("fig16d explains");
        assert_eq!(a.report_json().render(), b.report_json().render());
        assert_eq!(
            a.overlay_trace_json().render(),
            b.overlay_trace_json().render()
        );
    }

    #[test]
    fn report_carries_schema_links_and_resources() {
        let run = explain_preset("fig16b").expect("fig16b explains");
        let doc = run.report_json();
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(EXPLAIN_REPORT_SCHEMA)
        );
        let coarse = doc
            .get("schemes")
            .and_then(|s| s.get("coarse"))
            .expect("coarse section");
        assert!(!run.coarse_links.is_empty(), "no link utilization rows");
        assert!(coarse.get("links").and_then(|l| l.as_array()).is_some());
        let rendered = doc.render();
        assert!(rendered.contains("\"compute\""));
        assert!(rendered.contains("\"resources\""));
        let trace = run.overlay_trace_json().render();
        assert!(trace.contains("critical path: compute"));
    }

    #[test]
    fn explaining_does_not_perturb_either_scheme() {
        let scenario = Scenario::preset("fig16d");
        let bare_coarse = scenario.run().expect("fig16d fits");
        let bare_dense = scenario
            .clone()
            .scheme(Scheme::Dense)
            .run()
            .expect("dense runs");
        let run = explain_scenario(&scenario).expect("fig16d explains");
        assert_eq!(bare_coarse, run.coarse.result, "COARSE run perturbed");
        assert_eq!(bare_dense, run.dense.result, "DENSE run perturbed");
    }

    #[test]
    fn unknown_preset_is_an_error() {
        assert!(matches!(
            explain_preset("fig99"),
            Err(TrainError::UnknownPreset { .. })
        ));
    }
}
