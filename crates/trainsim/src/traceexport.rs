//! Exporters for recorded simulation traces.
//!
//! Two consumers of a [`Trace`]:
//!
//! - [`chrome_trace_json`] renders the Chrome trace-event JSON format
//!   (loadable in Perfetto / `chrome://tracing`), one timeline row per
//!   track — links, devices, sync rings, proxies, training phases.
//! - [`summary_table`] renders a plain-text report: the busiest links by
//!   occupancy, proxy queue-depth percentiles, ring-step counts, and the
//!   per-iteration phase totals.
//!
//! Both are fully deterministic: given the same trace they produce
//! byte-identical output (ordering comes from the trace's emission order
//! plus stable sorts and `BTreeMap`s, never from hash iteration).

use std::collections::BTreeMap;

use coarse_simcore::stats::QuantileEstimator;
use coarse_simcore::trace::{category, Trace, TraceEventKind};

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an integer nanosecond count as exact microseconds ("1234.567").
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

/// Renders an `f64` as a JSON number (non-finite values, which no
/// instrumented layer emits, degrade to 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

/// Serializes `trace` as Chrome trace-event JSON.
///
/// The output is one JSON object with a `traceEvents` array:
///
/// - every track becomes a named thread (`M`/`thread_name` metadata) of a
///   single `coarse-sim` process, so each track renders as its own row;
/// - spans become complete events (`ph: "X"`) with exact microsecond
///   `ts`/`dur` derived from the integer-nanosecond simulated clock;
/// - instants become thread-scoped instant events (`ph: "i"`);
/// - counters become counter events (`ph: "C"`), prefixed with their track
///   name so per-device gauges chart separately.
///
/// Events are stably sorted by timestamp, so equal-time events keep their
/// emission order and the output is byte-identical across identical runs.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(trace.events.len() + trace.tracks.len() + 1);
    lines.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"coarse-sim\"}}"
            .to_string(),
    );
    for (i, name) in trace.tracks.iter().enumerate() {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            json_escape(name)
        ));
        lines.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"sort_index\":{}}}}}",
            i + 1,
            i + 1
        ));
    }
    let mut ordered: Vec<&coarse_simcore::trace::TraceEvent> = trace.events.iter().collect();
    ordered.sort_by_key(|e| e.time); // stable: preserves emission order at equal times
    for e in &ordered {
        let tid = e.track.0 + 1;
        match e.kind {
            TraceEventKind::Span { duration } => lines.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}}}",
                json_escape(&e.name),
                e.category,
                micros(e.time.as_nanos()),
                micros(duration.as_nanos()),
                tid
            )),
            TraceEventKind::Instant => lines.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                 \"pid\":1,\"tid\":{}}}",
                json_escape(&e.name),
                e.category,
                micros(e.time.as_nanos()),
                tid
            )),
            TraceEventKind::Counter { value } => lines.push(format!(
                "{{\"name\":\"{}: {}\",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"value\":{}}}}}",
                json_escape(trace.track_name(e.track)),
                json_escape(&e.name),
                e.category,
                micros(e.time.as_nanos()),
                tid,
                json_f64(value)
            )),
        }
    }
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Renders a plain-text summary of `trace`:
///
/// - the `top_n` busiest fabric links by occupancy (busy time over the
///   trace horizon);
/// - queue-depth percentiles (p50/p95/max) per gauged track, from every
///   counter whose name starts with `queue_depth`;
/// - sync-core ring-step span counts per ring track;
/// - training totals: iterations, per-phase span time, and total blocked
///   time from the `blocked_us` gauge.
pub fn summary_table(trace: &Trace, top_n: usize) -> String {
    let horizon = trace.horizon();
    let horizon_s = horizon.as_secs_f64();
    let mut out = String::new();
    out.push_str(&format!(
        "trace summary: {} event(s) on {} track(s), horizon {}\n",
        trace.len(),
        trace.tracks.len(),
        horizon
    ));

    // Busiest links: occupancy of FABRIC spans per track.
    let mut busy: BTreeMap<&str, u64> = BTreeMap::new();
    for e in trace.events_in(category::FABRIC) {
        if let TraceEventKind::Span { duration } = e.kind {
            *busy.entry(trace.track_name(e.track)).or_default() += duration.as_nanos();
        }
    }
    let mut rows: Vec<(&str, u64)> = busy.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    out.push_str(&format!("\nbusiest links (top {top_n})\n"));
    if rows.is_empty() {
        out.push_str("  (no fabric spans recorded)\n");
    }
    for (name, ns) in rows.iter().take(top_n) {
        let util = if horizon_s > 0.0 {
            *ns as f64 / 1e9 / horizon_s
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:5.1}%  {:9.3} ms  {}\n",
            util * 100.0,
            *ns as f64 / 1e6,
            name
        ));
    }

    // Queue-depth percentiles per gauged track.
    let mut depths: BTreeMap<&str, QuantileEstimator> = BTreeMap::new();
    for e in &trace.events {
        if let TraceEventKind::Counter { value } = e.kind {
            if e.name.starts_with("queue_depth") {
                depths
                    .entry(trace.track_name(e.track))
                    .or_default()
                    .record(value);
            }
        }
    }
    out.push_str("\nqueue depth (samples, p50, p95, max)\n");
    if depths.is_empty() {
        out.push_str("  (no queue gauges recorded)\n");
    }
    for (name, q) in depths.iter_mut() {
        let n = q.count();
        let p50 = q.quantile(0.5).unwrap_or(0.0);
        let p95 = q.quantile(0.95).unwrap_or(0.0);
        let max = q.quantile(1.0).unwrap_or(0.0);
        out.push_str(&format!(
            "  {n:6}  {p50:6.1}  {p95:6.1}  {max:6.1}  {name}\n"
        ));
    }

    // Ring steps per sync track.
    let mut steps: BTreeMap<&str, u64> = BTreeMap::new();
    for e in trace.events_in(category::SYNC) {
        if matches!(e.kind, TraceEventKind::Span { .. }) {
            *steps.entry(trace.track_name(e.track)).or_default() += 1;
        }
    }
    out.push_str("\nsync-core ring steps\n");
    if steps.is_empty() {
        out.push_str("  (no ring steps recorded)\n");
    }
    for (name, n) in &steps {
        out.push_str(&format!("  {n:6} step(s)  {name}\n"));
    }

    // Training totals.
    let mut phase_ns: BTreeMap<&str, u64> = BTreeMap::new();
    let mut iterations = 0u64;
    let mut blocked_us = 0.0f64;
    for e in trace.events_in(category::TRAIN) {
        match e.kind {
            TraceEventKind::Span { duration } => {
                let track = trace.track_name(e.track);
                if track == "train: iteration" {
                    iterations += 1;
                } else {
                    *phase_ns.entry(track).or_default() += duration.as_nanos();
                }
            }
            TraceEventKind::Counter { value } if e.name == "blocked_us" => blocked_us += value,
            _ => {}
        }
    }
    out.push_str("\ntraining\n");
    out.push_str(&format!("  {iterations:6} iteration span(s)\n"));
    for (name, ns) in &phase_ns {
        out.push_str(&format!("  {:9.3} ms total  {}\n", *ns as f64 / 1e6, name));
    }
    out.push_str(&format!(
        "  {:9.3} ms total blocked (outside FP+BP)\n",
        blocked_us / 1e3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_simcore::time::SimTime;
    use coarse_simcore::trace::{RecordingTracer, Tracer};

    /// A minimal JSON syntax checker: returns true iff `s` parses as one
    /// JSON value. Enough to guarantee the exporter emits loadable output
    /// without pulling in a JSON dependency.
    fn is_valid_json(s: &str) -> bool {
        fn skip_ws(b: &[u8], mut i: usize) -> usize {
            while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
                i += 1;
            }
            i
        }
        fn value(b: &[u8], i: usize) -> Option<usize> {
            let i = skip_ws(b, i);
            match b.get(i)? {
                b'{' => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b'}') {
                        return Some(i + 1);
                    }
                    loop {
                        i = string(b, skip_ws(b, i))?;
                        i = skip_ws(b, i);
                        if b.get(i) != Some(&b':') {
                            return None;
                        }
                        i = value(b, i + 1)?;
                        i = skip_ws(b, i);
                        match b.get(i)? {
                            b',' => i += 1,
                            b'}' => return Some(i + 1),
                            _ => return None,
                        }
                    }
                }
                b'[' => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b']') {
                        return Some(i + 1);
                    }
                    loop {
                        i = value(b, i)?;
                        i = skip_ws(b, i);
                        match b.get(i)? {
                            b',' => i += 1,
                            b']' => return Some(i + 1),
                            _ => return None,
                        }
                    }
                }
                b'"' => string(b, i),
                b't' => b[i..].starts_with(b"true").then_some(i + 4),
                b'f' => b[i..].starts_with(b"false").then_some(i + 5),
                b'n' => b[i..].starts_with(b"null").then_some(i + 4),
                _ => number(b, i),
            }
        }
        fn string(b: &[u8], i: usize) -> Option<usize> {
            if b.get(i) != Some(&b'"') {
                return None;
            }
            let mut i = i + 1;
            while let Some(&c) = b.get(i) {
                match c {
                    b'"' => return Some(i + 1),
                    b'\\' => i += 2,
                    _ => i += 1,
                }
            }
            None
        }
        fn number(b: &[u8], mut i: usize) -> Option<usize> {
            let start = i;
            if b.get(i) == Some(&b'-') {
                i += 1;
            }
            let mut any = false;
            while i < b.len() && matches!(b[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                any = true;
                i += 1;
            }
            (any && i > start).then_some(i)
        }
        let b = s.as_bytes();
        match value(b, 0) {
            Some(end) => skip_ws(b, end) == b.len(),
            None => false,
        }
    }

    fn sample_trace() -> Trace {
        use coarse_simcore::trace::category;
        let rec = RecordingTracer::new();
        let link = rec.track("link 0 -> 1 (Pcie)");
        let ring = rec.track("sync ring 2..3 x2");
        let proxy = rec.track("proxy m0 queue");
        let iter = rec.track("train: iteration");
        rec.span(
            SimTime::from_nanos(0),
            SimTime::from_nanos(1500),
            category::FABRIC,
            link,
            "64KiB \"quoted\"",
        );
        rec.span(
            SimTime::from_nanos(1500),
            SimTime::from_nanos(1501),
            category::SYNC,
            ring,
            "reduce-scatter step 1/1 (fwd)",
        );
        for (t, d) in [(100u64, 1.0), (200, 2.0), (300, 0.0)] {
            rec.counter(
                SimTime::from_nanos(t),
                category::PROXY,
                proxy,
                "queue_depth",
                d,
            );
        }
        rec.span(
            SimTime::from_nanos(0),
            SimTime::from_nanos(2000),
            category::TRAIN,
            iter,
            "iteration 0",
        );
        rec.counter(
            SimTime::from_nanos(2000),
            category::TRAIN,
            iter,
            "blocked_us",
            0.5,
        );
        rec.take()
    }

    #[test]
    fn chrome_export_is_valid_json_with_all_event_kinds() {
        let json = chrome_trace_json(&sample_trace());
        assert!(is_valid_json(&json), "exporter must emit valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""), "spans exported");
        assert!(json.contains("\"ph\":\"C\""), "counters exported");
        assert!(json.contains("\"thread_name\""), "tracks named");
        assert!(json.contains("64KiB \\\"quoted\\\""), "names escaped");
        // Exact-microsecond timestamps: 1500 ns = 1.500 µs.
        assert!(json.contains("\"ts\":1.500"));
        // Counters are prefixed with their track.
        assert!(json.contains("proxy m0 queue: queue_depth"));
    }

    #[test]
    fn chrome_export_is_deterministic() {
        let a = chrome_trace_json(&sample_trace());
        let b = chrome_trace_json(&sample_trace());
        assert_eq!(a, b);
    }

    #[test]
    fn json_validator_rejects_garbage() {
        assert!(is_valid_json("{\"a\":[1,2.5e3,\"x\"],\"b\":null}"));
        assert!(!is_valid_json("{\"a\":}"));
        assert!(!is_valid_json("{\"a\":1} trailing"));
        assert!(!is_valid_json("[1,2"));
    }

    #[test]
    fn summary_reports_each_section() {
        let text = summary_table(&sample_trace(), 5);
        assert!(text.contains("busiest links"));
        assert!(text.contains("link 0 -> 1 (Pcie)"));
        // 1.5 µs busy over a 2 µs horizon = 75%.
        assert!(text.contains("75.0%"), "utilization computed:\n{text}");
        assert!(text.contains("queue depth"));
        // 3 samples, p50 = 1.0, max = 2.0.
        assert!(text.contains("     3     1.0"), "percentiles:\n{text}");
        assert!(text.contains("ring steps"));
        assert!(text.contains("sync ring 2..3 x2"));
        assert!(text.contains("1 iteration span(s)"));
        assert!(text.contains("blocked"));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = Trace::default();
        assert!(is_valid_json(&chrome_trace_json(&t)));
        let s = summary_table(&t, 3);
        assert!(s.contains("no fabric spans"));
        assert!(s.contains("no queue gauges"));
    }
}
