//! Self-profiling harness: one [`Profiler`] observing a representative
//! slice of the whole simulator.
//!
//! The COARSE training path is analytic (transfer engine plus resource
//! timelines — no event calendar), so a profile of a training run alone
//! would leave the kernel's dispatch and queue statistics empty. This
//! harness therefore runs, under a single shared profiler:
//!
//! 1. the profiled COARSE run itself (`train.*`, `fabric.link`, and
//!    `cci.sync_ring` regions, plus the synthesized proxy-queue depths),
//! 2. the event-kernel workloads — the straggler model and the timed proxy
//!    service — exercising per-event-type dispatch counters and the
//!    calendar's depth/dwell histograms (`kernel.dispatch`, `core.proxy`),
//! 3. the functional sync-core ring and the coherence directory
//!    (`cci.sync_ring` steps, `cci.coherence` protocol messages).
//!
//! The resulting [`Profiler::report_json`] document
//! (`coarse.profile-report/v1`) splits a **deterministic** section —
//! byte-identical across runs and platforms — from a **wall-clock** section
//! (host-dependent; present only with the `prof-wallclock` feature).

use coarse_cci::address::CciAddr;
use coarse_cci::coherence::Directory;
use coarse_cci::synccore::{RingDirection, SyncGroup};
use coarse_core::deadlock::SchedulingPolicy;
use coarse_core::service::{round_robin_jobs, run_service_profiled};
use coarse_simcore::json::JsonValue;
use coarse_simcore::prof::Profiler;
use coarse_simcore::time::SimDuration;
use coarse_simcore::units::ByteSize;

use crate::coarse::record_coarse_profile;
use crate::config::{TrainError, TrainResult};
use crate::scenario::Scenario;
use crate::straggler::{run_straggler_profiled, StragglerConfig, SyncModel};

/// A completed profiling run: the timing result of the profiled COARSE run
/// plus the profiler holding every recorded statistic.
#[derive(Debug, Clone)]
pub struct ProfileRun {
    /// Scenario label the profile was captured under.
    pub scenario: String,
    /// Timing result of the profiled COARSE run (identical to the
    /// unprofiled [`Scenario::run`] result).
    pub result: TrainResult,
    /// The shared profiler, for direct inspection.
    pub profiler: Profiler,
}

impl ProfileRun {
    /// The full `coarse.profile-report/v1` document.
    pub fn report_json(&self) -> JsonValue {
        self.profiler.report_json(&self.scenario)
    }

    /// The deterministic section alone (byte-identical across runs).
    pub fn deterministic_json(&self) -> JsonValue {
        self.profiler.deterministic_json()
    }

    /// Collapsed-stack lines (`sim;region;child weight`) for flamegraph
    /// tooling.
    pub fn folded(&self) -> String {
        self.profiler.folded()
    }
}

/// Profiles the named scenario preset (see [`Scenario::presets`]).
///
/// # Errors
///
/// Returns [`TrainError::UnknownPreset`] for an unknown name, or any
/// validation error [`profile_scenario`] reports.
pub fn profile_preset(name: &str) -> Result<ProfileRun, TrainError> {
    profile_scenario(&Scenario::try_preset(name)?)
}

/// Runs the profiling harness for `scenario`: a profiled COARSE run plus
/// the kernel, service, sync-core, and coherence workloads, all recording
/// into one shared [`Profiler`].
///
/// # Errors
///
/// Returns a [`TrainError`] if the scenario fails validation, the batch
/// does not fit, or the partition has no proxy tier (the harness always
/// profiles the COARSE path, whatever the scenario's scheme).
pub fn profile_scenario(scenario: &Scenario) -> Result<ProfileRun, TrainError> {
    scenario.validate()?;
    scenario.check_memory()?;
    let machine = scenario.machine_ref();
    let part = machine.partition(scenario.partition_scheme());
    if part.mem_devices.len() < 2 {
        return Err(TrainError::NoProxyTier {
            mem_devices: part.mem_devices.len(),
        });
    }
    let profiler = Profiler::new();

    // 1. The COARSE run (pilots stay unprofiled; the profile covers exactly
    //    one final run).
    let result = record_coarse_profile(
        machine,
        &part,
        scenario.model_ref(),
        scenario.batch(),
        scenario.iters(),
        profiler.clone(),
    );

    // 2. Event-kernel workloads: straggler sensitivity and the timed proxy
    //    service, sized from the scenario's partition.
    let workers = part.workers.len().max(2);
    run_straggler_profiled(
        StragglerConfig {
            workers,
            iterations: 20,
            compute: SimDuration::from_millis(245),
            jitter_sigma: 0.2,
            sync: SyncModel::Overlapped {
                tail: SimDuration::from_millis(20),
                slack: SimDuration::from_millis(80),
            },
            seed: 7,
        },
        Some(profiler.clone()),
    );
    let proxies = part.mem_devices.len();
    run_service_profiled(
        proxies,
        2,
        SchedulingPolicy::PerClientQueues,
        round_robin_jobs(32, workers, proxies, SimDuration::from_millis(1)),
        Some(profiler.clone()),
    );

    // 3. Functional sync-core ring and coherence directory over the same
    //    proxy tier.
    let mut group = SyncGroup::new(proxies, 128, RingDirection::Forward);
    group.set_profiler(profiler.clone());
    let inputs: Vec<Vec<f32>> = (0..proxies)
        .map(|i| (0..1024).map(|j| ((i * 31 + j * 7) % 97) as f32).collect())
        .collect();
    let _ = group.allreduce_sum(&inputs);

    let mut dir = Directory::new();
    dir.set_profiler(profiler.clone());
    let region = CciAddr(0x1000);
    let payload = ByteSize::kib(64);
    for &d in &part.mem_devices {
        dir.read(region, d, payload);
    }
    dir.write(region, part.mem_devices[0], payload);

    // Freeze the ambient measurements (wall elapsed, global allocation
    // counters): a later profiled run in the same process must not leak
    // into this run's report.
    profiler.seal();

    Ok(ProfileRun {
        scenario: scenario.name().to_string(),
        result,
        profiler,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_every_layer() {
        let run = profile_preset("fig16d").expect("preset profiles");
        let det = run.deterministic_json().render();
        for region in [
            "fabric.link",
            "cci.sync_ring",
            "cci.coherence",
            "core.proxy",
            "train.compute",
            "train.push",
            "train.collective",
            "train.pull",
        ] {
            assert!(
                run.profiler.region_events(region) > 0,
                "region {region} has no events: {det}"
            );
        }
        assert!(run.profiler.events_dispatched() > 0, "kernel saw no events");
        assert!(run.profiler.queue_stats().popped > 0);
    }

    #[test]
    fn deterministic_section_is_byte_identical() {
        let a = profile_preset("fig16b").expect("preset profiles");
        let b = profile_preset("fig16b").expect("preset profiles");
        assert_eq!(
            a.deterministic_json().render(),
            b.deterministic_json().render()
        );
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn profiling_does_not_perturb_the_run() {
        let scenario = Scenario::preset("fig16d");
        let bare = scenario.run().expect("fig16d fits");
        let profiled = profile_scenario(&scenario).expect("fig16d profiles");
        assert_eq!(bare, profiled.result, "profiler must be observation-only");
    }

    #[test]
    fn profiling_does_not_perturb_the_run_report() {
        // Mirrors the PR 1 trace zero-perturbation test at the RunReport
        // level: a profiled run in between must not change a single byte of
        // the fidelity report.
        let scenario = Scenario::preset("fig16a");
        let before = scenario.report().render();
        let profiled = profile_scenario(&scenario).expect("fig16a profiles");
        let after = scenario.report().render();
        assert_eq!(before, after, "profiled run perturbed RunReport output");
        assert!(profiled.profiler.events_dispatched() > 0);
    }

    #[test]
    fn unknown_preset_is_an_error() {
        assert!(matches!(
            profile_preset("fig99"),
            Err(TrainError::UnknownPreset { .. })
        ));
    }
}
