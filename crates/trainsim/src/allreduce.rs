//! The AllReduce baseline: NCCL-style blocking ring collective among the
//! worker GPUs, using NVLink where available (§V-D).

use coarse_collectives::timed::{hierarchical_allreduce, ring_allreduce};
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{Machine, Partition};
use coarse_fabric::topology::LinkMask;
use coarse_models::profile::ModelProfile;
use coarse_models::training::IterationPlan;
use coarse_simcore::time::SimTime;

use coarse_cci::synccore::RingDirection;

use crate::config::TrainResult;
use crate::gpu_for;

/// Simulates synchronous data-parallel training with ring AllReduce.
/// Gradients are exchanged in one blocking collective at the end of each
/// backward pass (the MPI synchronous point of §II-B).
pub fn simulate_allreduce(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
) -> TrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let gpu = gpu_for(machine.sku());
    let plan = IterationPlan::new(model, &gpu, batch_per_gpu);
    let payload = model.total_bytes();
    let workers = &partition.workers;

    // Prefer an NVLink ring; fall back to the PCIe-ordered worker list.
    let single_node_ring: Vec<_> = machine
        .nvlink_ring(workers)
        .unwrap_or_else(|| workers.clone());

    // Group workers per node for the hierarchical multi-node collective.
    let node_rings: Vec<Vec<_>> = (0..machine.nodes())
        .map(|n| {
            let on_node: Vec<_> = workers
                .iter()
                .copied()
                .filter(|&w| machine.topology().device(w).node() == n)
                .collect();
            machine.nvlink_ring(&on_node).unwrap_or(on_node)
        })
        .filter(|r| !r.is_empty())
        .collect();

    let mut engine = TransferEngine::new(machine.topology().clone());
    let mut start = SimTime::ZERO;
    let mut first_period_end = SimTime::ZERO;
    for k in 0..iterations {
        let backward_end = start + plan.compute_time();
        let end = if machine.nodes() > 1 {
            let total: usize = node_rings.iter().map(Vec::len).sum();
            let ready = vec![backward_end; total];
            hierarchical_allreduce(&mut engine, &node_rings, payload, &ready, LinkMask::ALL)
                // simlint: allow(panic-in-library, reason = "the dense-baseline topology is built fully connected by MachineBuilder")
                .expect("workers must be connected")
                .end
        } else if single_node_ring.len() >= 2 {
            let ready = vec![backward_end; single_node_ring.len()];
            ring_allreduce(
                &mut engine,
                &single_node_ring,
                payload,
                &ready,
                RingDirection::Forward,
                LinkMask::ALL,
            )
            // simlint: allow(panic-in-library, reason = "the dense-baseline topology is built fully connected by MachineBuilder")
            .expect("workers must be connected")
            .end
        } else {
            backward_end // single worker: nothing to synchronize
        };
        if k == 0 {
            first_period_end = end;
        }
        start = end;
    }
    // Steady state over the tail (identical iterations → period is exact).
    let period = (start - first_period_end) / (iterations as u64 - 1).max(1);
    let global_batch = batch_per_gpu * workers.len() as u32;
    TrainResult::new(period, plan.compute_time(), global_batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_fabric::machines::{aws_t4, aws_v100, aws_v100_cluster, sdsc_p100, PartitionScheme};
    use coarse_models::zoo::{bert_large, resnet50};

    #[test]
    fn nvlink_makes_v100_fast() {
        let v100 = aws_v100();
        let pv = v100.partition(PartitionScheme::OneToOne);
        let p100 = sdsc_p100();
        let pp = p100.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let v = simulate_allreduce(&v100, &pv, &model, 2, 4);
        let p = simulate_allreduce(&p100, &pp, &model, 2, 4);
        // V100 compute is also faster, but blocked comm specifically should
        // be far lower thanks to NVLink (22 vs 13 GiB/s and 4 links).
        assert!(v.blocked_comm < p.blocked_comm);
    }

    #[test]
    fn t4_staging_hurts() {
        let t4 = aws_t4();
        let pt = t4.partition(PartitionScheme::OneToOne);
        let model = resnet50();
        let r = simulate_allreduce(&t4, &pt, &model, 64, 4);
        // Every hop staged through the CPU: comm is visible but training
        // still progresses.
        assert!(r.blocked_comm.as_millis_f64() > 1.0);
        assert!(r.gpu_utilization() > 0.3 && r.gpu_utilization() < 1.0);
    }

    #[test]
    fn multi_node_slower_than_single() {
        let single = aws_v100();
        let ps = single.partition(PartitionScheme::OneToOne);
        let double = aws_v100_cluster(2);
        let pd = double.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let s = simulate_allreduce(&single, &ps, &model, 2, 4);
        let d = simulate_allreduce(&double, &pd, &model, 2, 4);
        assert!(
            d.blocked_comm > s.blocked_comm * 2,
            "25 Gbit networking must dominate: {:?} vs {:?}",
            d.blocked_comm,
            s.blocked_comm
        );
    }

    #[test]
    fn comm_fraction_grows_with_model_size() {
        let m = sdsc_p100();
        let p = m.partition(PartitionScheme::OneToOne);
        let small = simulate_allreduce(&m, &p, &resnet50(), 64, 4);
        let large = simulate_allreduce(&m, &p, &bert_large(), 2, 4);
        assert!(large.comm_fraction() > small.comm_fraction());
    }
}
