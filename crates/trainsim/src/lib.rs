//! # coarse-trainsim
//!
//! The end-to-end distributed-training simulator: binds the model zoo, the
//! fabric, and the synchronization schemes into per-iteration timelines and
//! reports the paper's metrics — iteration time, blocked communication, GPU
//! utilization, and throughput (Figs. 2, 16, 17).

#![warn(missing_docs)]

pub mod allreduce;
pub mod chaos;
pub mod coarse;
pub mod config;
pub mod dense;
pub mod explain;
pub mod profile;
pub mod report;
pub mod scaling;
pub mod scenario;
pub mod straggler;
pub mod timeline;
pub mod traceexport;

pub use allreduce::simulate_allreduce;
pub use chaos::{
    replay as chaos_replay, run_case as chaos_run_case, soak as chaos_soak, universe_for,
    CaseReport, ChaosFailure, ChaosRepro, SoakConfig, SoakOutcome, REPRO_SCHEMA,
};
pub use coarse::{
    coarse_hotspots, record_coarse_faulty_trace, record_coarse_metrics, record_coarse_profile,
    record_coarse_trace, result_fingerprint, simulate_coarse, simulate_coarse_faulty,
    simulate_coarse_faulty_observed, simulate_coarse_with_input, trace_coarse, FaultyTrainResult,
    Sabotage,
};
#[allow(deprecated)]
pub use config::TrainConfig;
pub use config::{Scheme, TrainError, TrainResult};
pub use dense::{simulate_dense, simulate_dense_explained, simulate_dense_faulty};
pub use explain::{explain_preset, explain_scenario, ExplainRun, ExplainedScheme};
pub use profile::{profile_preset, profile_scenario, ProfileRun};
pub use report::{FaultRunSummary, RunReport, SchemeOutcome, SchemeRun};
pub use scaling::{node_scaling, ScalingPoint};
pub use scenario::Scenario;
pub use straggler::{
    compare_straggler, run_straggler, run_straggler_profiled, StragglerConfig, StragglerResult,
    SyncModel,
};
pub use timeline::{IterationTrace, PhaseKind, PhaseSpan};
pub use traceexport::{chrome_trace_json, summary_table};

use coarse_fabric::machines::GpuSku;
use coarse_models::gpu::GpuCompute;

/// The compute model for a machine's GPU SKU.
pub fn gpu_for(sku: GpuSku) -> GpuCompute {
    match sku {
        GpuSku::T4 => GpuCompute::t4(),
        GpuSku::P100 => GpuCompute::p100(),
        GpuSku::V100 => GpuCompute::v100(),
    }
}

/// Runs one experiment, checking GPU memory feasibility first: AllReduce
/// and DENSE keep parameters and optimizer state on the GPU; COARSE
/// offloads them to the memory devices (§V-D, Fig. 16e).
///
/// # Errors
///
/// Returns [`TrainError::OutOfMemory`] if the batch does not fit.
#[deprecated(
    since = "0.1.0",
    note = "build a `scenario::Scenario` and call `.run()` instead"
)]
#[allow(deprecated)]
pub fn simulate(config: &TrainConfig) -> Result<TrainResult, TrainError> {
    Scenario::new("adhoc", config.machine.clone(), config.model.clone())
        .partition(config.partition)
        .batch_per_gpu(config.batch_per_gpu)
        .iterations(config.iterations)
        .scheme(config.scheme)
        .run()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use coarse_fabric::machines::{aws_v100, PartitionScheme};
    use coarse_models::zoo::bert_large;

    #[test]
    fn oom_detected_for_allreduce_batch4() {
        let cfg = TrainConfig {
            machine: aws_v100(),
            partition: PartitionScheme::OneToOne,
            model: bert_large(),
            batch_per_gpu: 4,
            scheme: Scheme::AllReduce,
            iterations: 2,
        };
        let err = simulate(&cfg).unwrap_err();
        assert!(matches!(err, TrainError::OutOfMemory { max_batch: 3, .. }));
    }

    #[test]
    fn coarse_fits_batch4() {
        let cfg = TrainConfig {
            machine: aws_v100(),
            partition: PartitionScheme::OneToOne,
            model: bert_large(),
            batch_per_gpu: 4,
            scheme: Scheme::Coarse,
            iterations: 2,
        };
        assert!(simulate(&cfg).is_ok());
    }
}
