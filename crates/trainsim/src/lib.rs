//! # coarse-trainsim
//!
//! The end-to-end distributed-training simulator: binds the model zoo, the
//! fabric, and the synchronization schemes into per-iteration timelines and
//! reports the paper's metrics — iteration time, blocked communication, GPU
//! utilization, and throughput (Figs. 2, 16, 17).

#![warn(missing_docs)]

pub mod allreduce;
pub mod chaos;
pub mod coarse;
pub mod config;
pub mod dense;
pub mod explain;
pub mod profile;
pub mod recovery;
pub mod report;
pub mod scaling;
pub mod scenario;
pub mod straggler;
pub mod timeline;
pub mod traceexport;

pub use allreduce::simulate_allreduce;
pub use chaos::{
    replay as chaos_replay, run_case as chaos_run_case, soak as chaos_soak, universe_for,
    CaseReport, ChaosFailure, ChaosRepro, SoakConfig, SoakOutcome, REPRO_SCHEMA,
};
pub use coarse::{
    coarse_hotspots, record_coarse_faulty_trace, record_coarse_metrics, record_coarse_profile,
    record_coarse_trace, result_fingerprint, simulate_coarse, simulate_coarse_faulty,
    simulate_coarse_faulty_observed, simulate_coarse_recovering,
    simulate_coarse_recovering_observed, simulate_coarse_with_input, trace_coarse,
    FaultyTrainResult, RecoveringTrainResult, Sabotage,
};
pub use config::{Scheme, TrainError, TrainResult};
pub use dense::{simulate_dense, simulate_dense_explained, simulate_dense_faulty};
pub use explain::{explain_preset, explain_scenario, ExplainRun, ExplainedScheme};
pub use profile::{profile_preset, profile_scenario, ProfileRun};
pub use recovery::{
    interval_sweep, plan_clear_instant, recovery_report, reference_schedule, RecoveryReport,
    RecoverySweep, RECOVERY_SCHEMA,
};
pub use report::{FaultRunSummary, RunReport, SchemeOutcome, SchemeRun};
pub use scaling::{node_scaling, ScalingPoint};
pub use scenario::Scenario;
pub use straggler::{
    compare_straggler, run_straggler, run_straggler_profiled, StragglerConfig, StragglerResult,
    SyncModel,
};
pub use timeline::{IterationTrace, PhaseKind, PhaseSpan};
pub use traceexport::{chrome_trace_json, summary_table};

use coarse_fabric::machines::GpuSku;
use coarse_models::gpu::GpuCompute;

/// The compute model for a machine's GPU SKU.
pub fn gpu_for(sku: GpuSku) -> GpuCompute {
    match sku {
        GpuSku::T4 => GpuCompute::t4(),
        GpuSku::P100 => GpuCompute::p100(),
        GpuSku::V100 => GpuCompute::v100(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_fabric::machines::{aws_v100, PartitionScheme};
    use coarse_models::zoo::bert_large;

    #[test]
    fn oom_detected_for_allreduce_batch4() {
        let err = Scenario::new("adhoc", aws_v100(), bert_large())
            .partition(PartitionScheme::OneToOne)
            .batch_per_gpu(4)
            .iterations(2)
            .scheme(Scheme::AllReduce)
            .run()
            .unwrap_err();
        assert!(matches!(err, TrainError::OutOfMemory { max_batch: 3, .. }));
    }

    #[test]
    fn coarse_fits_batch4() {
        let run = Scenario::new("adhoc", aws_v100(), bert_large())
            .partition(PartitionScheme::OneToOne)
            .batch_per_gpu(4)
            .iterations(2)
            .scheme(Scheme::Coarse)
            .run();
        assert!(run.is_ok());
    }
}
