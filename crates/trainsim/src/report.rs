//! Machine-readable run reports.
//!
//! A [`RunReport`] captures one training scenario — machine, partition,
//! model, batch — across all three synchronization schemes, together with
//! the COARSE run's [`MetricsSnapshot`] and the derived figures the paper
//! plots (speedups over DENSE, blocked-communication fractions, GPU
//! utilization). It renders to a versioned, hand-rolled JSON document
//! ([`SCHEMA`]) that is **byte-deterministic**: the same scenario always
//! produces the same bytes, so reports can be diffed in CI.

use coarse_fabric::machines::{Machine, PartitionScheme};
use coarse_models::profile::ModelProfile;
use coarse_simcore::json::JsonValue;
use coarse_simcore::metrics::MetricsSnapshot;
use coarse_simcore::time::SimDuration;

use crate::coarse::simulate_coarse_faulty;
use crate::config::{Scheme, TrainError, TrainResult};
use crate::record_coarse_metrics;
use crate::scenario::Scenario;

/// Schema identifier stamped into every report. Bump the `/vN` suffix on
/// any field addition, removal, or rename so consumers can dispatch.
pub const SCHEMA: &str = "coarse.run-report/v1";

/// Outcome of one scheme within a report: either a steady-state result or
/// an out-of-memory rejection (the scheme's residency does not fit).
#[derive(Debug, Clone, PartialEq)]
pub enum SchemeOutcome {
    /// The run completed; steady-state results.
    Completed(TrainResult),
    /// The batch does not fit under this scheme's residency.
    OutOfMemory {
        /// Largest per-GPU batch that would fit (0 = none).
        max_batch: u32,
    },
}

/// One scheme's entry in a report.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeRun {
    /// The scheme simulated.
    pub scheme: Scheme,
    /// Completed result or OOM.
    pub outcome: SchemeOutcome,
}

impl SchemeRun {
    /// The completed result, if the scheme fit in memory.
    pub fn result(&self) -> Option<&TrainResult> {
        match &self.outcome {
            SchemeOutcome::Completed(r) => Some(r),
            SchemeOutcome::OutOfMemory { .. } => None,
        }
    }
}

/// Resilience accounting from a fault-injected COARSE run: how the run
/// survived its [`coarse_simcore::faults::FaultPlan`]. Only present on
/// reports collected from a scenario with a non-empty plan, so fault-free
/// reports render byte-identically to schema v1 documents.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRunSummary {
    /// Seed of the injected plan.
    pub seed: u64,
    /// Number of scheduled fault entries in the plan.
    pub injected: usize,
    /// Transfer retries forced by transient corruption.
    pub retries: u64,
    /// Proxy failovers (routing-table repairs) performed.
    pub failovers: u64,
    /// Whether the proxy tier was lost entirely and the run fell back to
    /// GPU-only synchronization.
    pub degraded_to_gpu: bool,
    /// Total simulated time charged to detection, backoff, and repair.
    pub recovery_time: SimDuration,
    /// Steady-state result of the fault-injected COARSE run.
    pub coarse: TrainResult,
}

/// A full per-scenario report: config, per-scheme results, COARSE metrics,
/// and derived figures.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scenario label (e.g. `"fig16d"`).
    pub scenario: String,
    /// Machine name.
    pub machine: String,
    /// Worker / memory-device split.
    pub partition: PartitionScheme,
    /// Model name.
    pub model: String,
    /// Per-GPU batch size.
    pub batch_per_gpu: u32,
    /// Simulated iterations per scheme.
    pub iterations: u32,
    /// One entry per scheme, in `DENSE, AllReduce, COARSE` order.
    pub schemes: Vec<SchemeRun>,
    /// Metric snapshot from the (metered) COARSE run, when it fit.
    pub coarse_metrics: Option<MetricsSnapshot>,
    /// Resilience accounting when the scenario injected faults.
    pub faults: Option<FaultRunSummary>,
}

impl RunReport {
    /// Runs the scenario under all three schemes and collects the report.
    /// OOM schemes are recorded, not skipped, so the report always has
    /// three entries. The COARSE run, when feasible, is re-run metered;
    /// metering is observation-only so both runs agree exactly.
    pub fn collect(
        scenario: &str,
        machine: &Machine,
        partition: PartitionScheme,
        model: &ModelProfile,
        batch_per_gpu: u32,
        iterations: u32,
    ) -> RunReport {
        RunReport::collect_scenario(
            &Scenario::new(scenario, machine.clone(), model.clone())
                .partition(partition)
                .batch_per_gpu(batch_per_gpu)
                .iterations(iterations),
        )
    }

    /// Collects the report for a built [`Scenario`]. The three scheme
    /// entries are always the *clean* (fault-free) runs — they stay
    /// byte-identical whether or not a plan is attached; a non-empty plan
    /// additionally runs COARSE fault-aware and records the resilience
    /// accounting under [`RunReport::faults`].
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`Scenario::validate`]. Use
    /// [`RunReport::try_collect_scenario`] for a recoverable variant.
    pub fn collect_scenario(scenario: &Scenario) -> RunReport {
        RunReport::try_collect_scenario(scenario)
            // simlint: allow(panic-in-library, reason = "documented panicking wrapper; try_collect_scenario is the fallible variant")
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// [`RunReport::collect_scenario`] without the panic: an invalid
    /// scenario comes back as the [`TrainError`] describing what is wrong.
    ///
    /// # Errors
    ///
    /// Returns the scenario's first violated precondition.
    pub fn try_collect_scenario(scenario: &Scenario) -> Result<RunReport, TrainError> {
        let machine = scenario.machine_ref();
        let model = scenario.model_ref();
        let partition = scenario.partition_scheme();
        let (batch_per_gpu, iterations) = (scenario.batch(), scenario.iters());
        let clean = Scenario::new(scenario.name(), machine.clone(), model.clone())
            .partition(partition)
            .batch_per_gpu(batch_per_gpu)
            .iterations(iterations);
        // The clean scenario defaults to COARSE — the strictest scheme — so
        // one validation covers all three runs below; any later run error
        // can only be a per-scheme memory rejection.
        clean.validate()?;
        let run = |scheme: Scheme| {
            let outcome = match clean.clone().scheme(scheme).run() {
                Ok(r) => SchemeOutcome::Completed(r),
                Err(TrainError::OutOfMemory { max_batch, .. }) => {
                    SchemeOutcome::OutOfMemory { max_batch }
                }
                // simlint: allow(panic-in-library, reason = "the scenario was validated above; only per-scheme memory errors are reachable and handled")
                Err(e) => unreachable!("scenario was validated: {e}"),
            };
            SchemeRun { scheme, outcome }
        };
        let schemes: Vec<SchemeRun> = [Scheme::Dense, Scheme::AllReduce, Scheme::Coarse]
            .into_iter()
            .map(run)
            .collect();
        let part = machine.partition(partition);
        let coarse_metrics = schemes[2].result().map(|_| {
            let (_, snapshot) =
                record_coarse_metrics(machine, &part, model, batch_per_gpu, iterations);
            snapshot
        });
        let plan = scenario.fault_plan();
        let faults = if plan.is_empty() {
            None
        } else {
            schemes[2].result().map(|_| {
                let f = simulate_coarse_faulty(
                    machine,
                    &part,
                    model,
                    batch_per_gpu,
                    iterations,
                    plan,
                    scenario.policy_ref(),
                );
                FaultRunSummary {
                    seed: plan.seed(),
                    injected: plan.len(),
                    retries: f.retries,
                    failovers: f.failovers,
                    degraded_to_gpu: f.degraded_to_gpu,
                    recovery_time: f.recovery_time,
                    coarse: f.result,
                }
            })
        };
        Ok(RunReport {
            scenario: scenario.name().to_string(),
            machine: machine.name().to_string(),
            partition,
            model: model.name().to_string(),
            batch_per_gpu,
            iterations,
            schemes,
            coarse_metrics,
            faults,
        })
    }

    /// The entry for `scheme`.
    pub fn scheme(&self, scheme: Scheme) -> &SchemeRun {
        self.schemes
            .iter()
            .find(|s| s.scheme == scheme)
            // simlint: allow(panic-in-library, reason = "the scheme sweep in try_collect_scenario records all three schemes")
            .expect("all three schemes present")
    }

    /// Renders the report as a [`JsonValue`] under [`SCHEMA`]. Key order is
    /// fixed, so the rendered bytes are deterministic.
    pub fn to_json(&self) -> JsonValue {
        let partition = match self.partition {
            PartitionScheme::OneToOne => "1:1",
            PartitionScheme::TwoToOne => "2:1",
        };
        let config = JsonValue::object()
            .with("machine", JsonValue::str(&self.machine))
            .with("partition", JsonValue::str(partition))
            .with("model", JsonValue::str(&self.model))
            .with("batch_per_gpu", JsonValue::int(self.batch_per_gpu as u64))
            .with("iterations", JsonValue::int(self.iterations as u64));
        let mut schemes = JsonValue::object();
        for s in &self.schemes {
            schemes = schemes.with(s.scheme.label(), scheme_json(&s.outcome));
        }
        let mut report = JsonValue::object()
            .with("schema", JsonValue::str(SCHEMA))
            .with("scenario", JsonValue::str(&self.scenario))
            .with("config", config)
            .with("schemes", schemes)
            .with("derived", self.derived_json());
        if let Some(m) = &self.coarse_metrics {
            report = report.with("coarse_metrics", m.to_json());
        }
        if let Some(f) = &self.faults {
            report = report.with(
                "faults",
                JsonValue::object()
                    .with("seed", JsonValue::int(f.seed))
                    .with("injected", JsonValue::int(f.injected as u64))
                    .with("retries", JsonValue::int(f.retries))
                    .with("failovers", JsonValue::int(f.failovers))
                    .with("degraded_to_gpu", JsonValue::Bool(f.degraded_to_gpu))
                    .with(
                        "recovery_time_ns",
                        JsonValue::int(f.recovery_time.as_nanos()),
                    )
                    .with("coarse", scheme_json(&SchemeOutcome::Completed(f.coarse))),
            );
        }
        report
    }

    /// Pretty-rendered JSON document (stable bytes; ends with a newline).
    pub fn render(&self) -> String {
        let mut s = self.to_json().render_pretty();
        s.push('\n');
        s
    }

    /// Derived figures: per-scheme speedup over DENSE and blocked time
    /// normalized to DENSE (Figs. 16 and 17), where computable.
    fn derived_json(&self) -> JsonValue {
        let dense = self.scheme(Scheme::Dense).result();
        let mut derived = JsonValue::object();
        for scheme in [Scheme::AllReduce, Scheme::Coarse] {
            let (speedup, blocked) = match (dense, self.scheme(scheme).result()) {
                (Some(d), Some(r)) => (
                    JsonValue::num(r.speedup_over(d)),
                    JsonValue::num(r.blocked_comm.as_secs_f64() / d.blocked_comm.as_secs_f64()),
                ),
                _ => (JsonValue::Null, JsonValue::Null),
            };
            derived = derived.with(
                scheme.label(),
                JsonValue::object()
                    .with("speedup_over_dense", speedup)
                    .with("blocked_normalized_to_dense", blocked),
            );
        }
        derived
    }
}

fn scheme_json(outcome: &SchemeOutcome) -> JsonValue {
    match outcome {
        SchemeOutcome::Completed(r) => JsonValue::object()
            .with("fits", JsonValue::Bool(true))
            .with(
                "iteration_time_ns",
                JsonValue::int(r.iteration_time.as_nanos()),
            )
            .with("compute_time_ns", JsonValue::int(r.compute_time.as_nanos()))
            .with("blocked_comm_ns", JsonValue::int(r.blocked_comm.as_nanos()))
            .with("throughput_samples_per_sec", JsonValue::num(r.throughput))
            .with("gpu_utilization", JsonValue::num(r.gpu_utilization()))
            .with("comm_fraction", JsonValue::num(r.comm_fraction())),
        SchemeOutcome::OutOfMemory { max_batch } => JsonValue::object()
            .with("fits", JsonValue::Bool(false))
            .with("max_batch", JsonValue::int(*max_batch as u64)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coarse_fabric::machines::aws_v100;
    use coarse_models::zoo::bert_large;

    fn sample() -> RunReport {
        RunReport::collect(
            "fig16d",
            &aws_v100(),
            PartitionScheme::OneToOne,
            &bert_large(),
            2,
            3,
        )
    }

    #[test]
    fn report_covers_all_schemes_with_metrics() {
        let r = sample();
        assert_eq!(r.schemes.len(), 3);
        assert!(r.schemes.iter().all(|s| s.result().is_some()));
        let metrics = r.coarse_metrics.as_ref().expect("COARSE fits");
        assert!(!metrics.is_empty());
        let json = r.render();
        assert!(json.contains("\"schema\": \"coarse.run-report/v1\""));
        assert!(json.contains("\"COARSE\""));
        assert!(json.contains("speedup_over_dense"));
    }

    #[test]
    fn oom_scheme_recorded_not_skipped() {
        let r = RunReport::collect(
            // simlint: allow(preset-exists, reason = "panel label for a custom Scenario, not a preset lookup")
            "fig16e-b4",
            &aws_v100(),
            PartitionScheme::OneToOne,
            &bert_large(),
            4,
            3,
        );
        let ar = r.scheme(Scheme::AllReduce);
        assert!(matches!(
            ar.outcome,
            SchemeOutcome::OutOfMemory { max_batch: 3 }
        ));
        assert!(r.scheme(Scheme::Coarse).result().is_some());
        let json = r.render();
        assert!(json.contains("\"fits\": false"));
        assert!(json.contains("\"speedup_over_dense\": null"));
    }

    #[test]
    fn fault_scenario_report_carries_faults_key() {
        use coarse_simcore::faults::FaultPlan;
        use coarse_simcore::time::SimTime;
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let victim = p.mem_devices[0].index() as u32;
        let plan =
            FaultPlan::new(5).drop_device(victim, SimTime::ZERO + SimDuration::from_millis(1));
        let r = Scenario::preset("fig16d").faults(plan).report();
        let f = r.faults.as_ref().expect("fault summary present");
        assert_eq!(f.failovers, 1);
        assert!(f.recovery_time > SimDuration::ZERO);
        assert!(r.render().contains("\"faults\""));
        // A clean report must not carry the key, and the fault run must
        // leave the clean scheme rows untouched.
        let clean = Scenario::preset("fig16d").report();
        assert!(clean.faults.is_none());
        assert!(!clean.render().contains("\"faults\""));
        assert_eq!(clean.schemes, r.schemes);
    }

    #[test]
    fn report_json_is_byte_deterministic() {
        let a = sample().render();
        let b = sample().render();
        assert_eq!(a, b, "same scenario must render identical bytes");
        assert!(a.ends_with('\n'));
    }
}
