//! The COARSE training simulator: streaming pushes overlapped with the
//! backward pass, per-tensor proxy collectives over the dedicated CCI
//! device fabric, dual synchronization of the shallow layers on the worker
//! GPUs, and pulls racing the pushes on the opposite bus direction.
//!
//! The dual-sync split `m` is chosen the way the paper's profiler does:
//! the closed-form optimum of §III-F seeds a small candidate grid, and
//! short pilot runs (a few timed iterations each) pick the split that
//! actually minimizes the iteration period on this fabric — capturing the
//! push/pull contention the analytic model abstracts away.

use std::collections::BTreeMap;

use coarse_cci::checkpoint::plan_pool_checkpoint;
use coarse_cci::synccore::RingDirection;
use coarse_collectives::timed::{hierarchical_allreduce, ring_allreduce, CollectiveError};
use coarse_core::dualsync::{self, DualSyncInputs};
use coarse_core::profiler::build_routing_table_for;
use coarse_core::resilience::{FailureKind, RecoveryAction, RecoveryPolicy, ResiliencePolicy};
use coarse_core::routing::RoutingTable;
use coarse_fabric::device::DeviceId;
use coarse_fabric::engine::{TransferEngine, TransferError};
use coarse_fabric::machines::{Machine, Partition};
use coarse_fabric::probe;
use coarse_fabric::topology::{LinkClass, LinkMask, Topology};
use coarse_models::profile::ModelProfile;
use coarse_models::training::IterationPlan;
use coarse_simcore::critpath::{class as crit_class, CritPath, NodeId};
use coarse_simcore::faults::FaultPlan;
use coarse_simcore::metrics::{name as metric, MetricRegistry, MetricsSnapshot};
use coarse_simcore::oracle::{BiteKind, OracleEvent, OracleHub};
use coarse_simcore::prof::{region as prof_region, Profiler};
use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::trace::{category, RecordingTracer, SharedTracer, Trace, TrackId};
use coarse_simcore::units::{Bandwidth, ByteSize};

use crate::config::TrainResult;
use crate::gpu_for;

/// Pilot-phase debug logging, set once at process startup by the CLI
/// front-end (the `COARSE_DEBUG` environment variable) instead of read
/// ambiently here, so library behaviour is a pure function of its inputs.
// simlint: allow(parallel-ready, reason = "write-once SeqCst flag, set at startup before any simulation runs")
static PILOT_DEBUG: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Enable or disable pilot-run debug prints. Binaries call this once at
/// startup after consulting `COARSE_DEBUG`; the library never reads the
/// environment itself.
pub fn set_pilot_debug(on: bool) {
    PILOT_DEBUG.store(on, std::sync::atomic::Ordering::SeqCst);
}

fn pilot_debug() -> bool {
    PILOT_DEBUG.load(std::sync::atomic::Ordering::SeqCst)
}

/// Proxy-path gradients are fused into buckets of at least this many bytes
/// before the cross-device collective (the standard gradient-fusion
/// optimization; keeps ring segments large enough to run links at full
/// effective bandwidth).
const BUCKET_TARGET: ByteSize = ByteSize::mib(32);

const PCIE_ONLY: LinkMask = LinkMask::only(LinkClass::Pcie);
const CCI_ONLY: LinkMask = LinkMask::only(LinkClass::Cci);
const CCI_OR_NETWORK: LinkMask = LinkMask::only(LinkClass::Cci)
    .with(LinkClass::Network)
    .with(LinkClass::Pcie);

/// Everything fixed about a deployment, shared by pilot and final runs.
struct Deployment<'a> {
    machine: &'a Machine,
    /// Link mask for proxy-to-proxy collectives: the dedicated CCI fabric
    /// normally; the staged PCIe path on machines whose emulation cannot do
    /// peer-to-peer (the paper's AWS T4, §V-D).
    proxy_mask: LinkMask,
    deployed: Machine,
    plan: IterationPlan,
    model: &'a ModelProfile,
    workers: Vec<DeviceId>,
    mem_devices: Vec<DeviceId>,
    node_mem_rings: Vec<Vec<DeviceId>>,
    tables: Vec<RoutingTable>,
    gpu_ring: Vec<DeviceId>,
    /// Per-node worker rings for the hierarchical GPU-path collective on
    /// clusters (NCCL's intra-node-then-network decomposition).
    node_gpu_rings: Vec<Vec<DeviceId>>,
    needed: BTreeMap<usize, SimDuration>,
    /// Host-to-worker input bytes prefetched each iteration (0 = input
    /// pipeline not modeled).
    input_bytes: ByteSize,
    /// Trace sink for full-detail runs; pilots run untraced.
    tracer: Option<SharedTracer>,
    /// Metric sink for full-detail runs; pilots run unmetered.
    metrics: Option<MetricRegistry>,
    /// Oracle battery for observed fault runs; pilots run unobserved.
    oracles: Option<OracleHub>,
    /// Self-profiler for full-detail runs; pilots run unprofiled.
    profiler: Option<Profiler>,
    /// Critical-path recorder for explain runs; pilots run unrecorded.
    critpath: Option<CritPath>,
    /// Deliberate protocol breakage for oracle self-tests.
    sabotage: Sabotage,
}

/// A deliberately introduced protocol bug, used to prove the oracle battery
/// actually catches violations (the chaos runner's self-test). Production
/// entry points always run with [`Sabotage::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    /// No sabotage: the run obeys every protocol invariant.
    #[default]
    None,
    /// Report each stream's shard attempts in inverted order, violating the
    /// §III-F retry-FIFO contract the [`coarse_simcore::oracle::RetryFifo`]
    /// oracle enforces.
    InvertRetryOrder,
}

/// Interned training-phase tracks of one traced run.
struct TrainTracks {
    iter: TrackId,
    compute: TrackId,
    push: TrackId,
    collective: TrackId,
    pull: TrackId,
    /// Per-proxy queue-occupancy tracks, interned on first arrival.
    proxies: BTreeMap<DeviceId, TrackId>,
}

impl Deployment<'_> {
    /// Runs `iterations` and returns the steady-state period for a given
    /// proxy-path byte budget `m`.
    fn run(&self, proxy_budget: ByteSize, iterations: u32) -> SimDuration {
        self.run_collecting(proxy_budget, iterations).0
    }

    /// Like [`run`](Self::run), but also returns the engine so callers can
    /// inspect link utilization (congestion hotspots).
    fn run_collecting(
        &self,
        proxy_budget: ByteSize,
        iterations: u32,
    ) -> (SimDuration, TransferEngine) {
        let (period, engine, _) = self.run_inner(proxy_budget, iterations, false);
        (period, engine)
    }

    /// Full-detail run: also records the phase spans of the **last**
    /// iteration for timeline rendering.
    fn run_inner(
        &self,
        proxy_budget: ByteSize,
        iterations: u32,
        trace_last: bool,
    ) -> (SimDuration, TransferEngine, Vec<crate::timeline::PhaseSpan>) {
        let plan = &self.plan;
        let model = self.model;
        // Assign the first `m` emitted bytes to the proxy path.
        let mut proxy_path = vec![false; model.tensors().len()];
        let mut cum = ByteSize::ZERO;
        for ev in plan.gradients() {
            if cum < proxy_budget {
                proxy_path[ev.tensor] = true;
                cum += model.tensors()[ev.tensor].byte_size();
            }
        }
        let gpu_bytes: ByteSize = model
            .tensors()
            .iter()
            .enumerate()
            .filter(|&(i, _)| !proxy_path[i])
            .map(|(_, t)| t.byte_size())
            .sum();

        let mut engine = TransferEngine::new(self.deployed.topology().clone());
        if let Some(m) = &self.metrics {
            engine.set_metrics(m.clone());
        }
        let prof = self.profiler.clone();
        if let Some(p) = &prof {
            engine.set_profiler(p.clone());
        }
        let crit = self.critpath.clone();
        if let Some(cp) = &crit {
            engine.set_critpath(cp.clone());
        }
        let mut prev_sink: Option<NodeId> = None;
        let tracer = self.tracer.as_ref().filter(|t| t.is_enabled()).cloned();
        let mut tracks = tracer.as_ref().map(|t| {
            engine.set_tracer(t.clone());
            TrainTracks {
                iter: t.track("train: iteration"),
                compute: t.track("train: compute"),
                push: t.track("train: push"),
                collective: t.track("train: collective"),
                pull: t.track("train: pull"),
                proxies: BTreeMap::new(),
            }
        });
        // Shards parked at each proxy since its last collective (the
        // analytic run never instantiates ParameterProxy objects, so the
        // queue-depth gauge is synthesized from shard arrivals here).
        let mut parked: BTreeMap<DeviceId, u64> = BTreeMap::new();
        let multi_node = self.machine.nodes() > 1;
        let mut start = SimTime::ZERO;
        let mut first_period_end = SimTime::ZERO;
        let mut spans: Vec<crate::timeline::PhaseSpan> = Vec::new();
        for k in 0..iterations {
            use crate::timeline::{PhaseKind, PhaseSpan};
            let tracing = trace_last && k + 1 == iterations;
            let forward_end = start + plan.forward_time();
            let backward_end = forward_end + plan.backward_time();
            let mut next_start = backward_end;
            // The iteration's forward+backward pass on the critical-path
            // graph; pushes and the GPU dual-sync hang off it.
            let compute = crit.as_ref().map(|cp| {
                let deps: Vec<NodeId> = prev_sink.into_iter().collect();
                cp.span_on(
                    crit_class::COMPUTE,
                    format!("fwd+bwd iter {k}"),
                    "compute",
                    start,
                    backward_end,
                    &deps,
                )
            });
            let mut sink_deps: Vec<NodeId> = compute.into_iter().collect();
            if let Some(p) = &prof {
                // Forward and backward passes are analytic (no transfers);
                // count them so compute shows up alongside the wire phases.
                p.count(prof_region::TRAIN_COMPUTE, 2);
            }
            if tracing {
                spans.push(PhaseSpan::new(
                    PhaseKind::Forward,
                    start,
                    forward_end,
                    "forward pass",
                ));
                spans.push(PhaseSpan::new(
                    PhaseKind::Backward,
                    forward_end,
                    backward_end,
                    "backward pass",
                ));
            }
            if let (Some(t), Some(tt)) = (&tracer, &tracks) {
                t.span(
                    start,
                    forward_end,
                    category::TRAIN,
                    tt.compute,
                    &format!("forward (iter {k})"),
                );
                t.span(
                    forward_end,
                    backward_end,
                    category::TRAIN,
                    tt.compute,
                    &format!("backward (iter {k})"),
                );
            }
            // Input pipeline: prefetch the next iteration's batch from host
            // memory to each worker, contending with parameter traffic on
            // the PCIe tree. It must land before the next forward starts.
            if !self.input_bytes.is_zero() {
                let _prof_g = prof.as_ref().map(|p| {
                    p.count(prof_region::TRAIN_PREFETCH, self.workers.len() as u64);
                    p.enter(prof_region::TRAIN_PREFETCH)
                });
                for &worker in &self.workers {
                    let cpu = self
                        .deployed
                        .topology()
                        .host_cpu(self.deployed.topology().device(worker).node());
                    let rec = engine
                        .transfer_masked(cpu, worker, self.input_bytes, start, PCIE_ONLY)
                        // simlint: allow(panic-in-library, reason = "deployment validation guarantees host-worker-proxy connectivity")
                        .expect("host reaches its workers");
                    next_start = next_start.max(rec.end);
                    if let Some(cp) = &crit {
                        if let (Some(n), Some(ps)) = (engine.last_crit_entry_node(), prev_sink) {
                            cp.add_dep(n, ps);
                        }
                        sink_deps.extend(engine.last_crit_node());
                    }
                }
            }

            // Fuse proxy-path gradients into emission-ordered buckets.
            let mut buckets: Vec<Vec<&coarse_models::training::GradientEvent>> = Vec::new();
            let mut bucket_bytes = ByteSize::ZERO;
            for ev in plan.gradients() {
                if !proxy_path[ev.tensor] {
                    continue;
                }
                let size = model.tensors()[ev.tensor].byte_size();
                if buckets.is_empty() || bucket_bytes >= BUCKET_TARGET {
                    buckets.push(Vec::new());
                    bucket_bytes = ByteSize::ZERO;
                }
                // simlint: allow(panic-in-library, reason = "the branch above pushed a bucket before this read")
                buckets.last_mut().expect("just pushed").push(ev);
                bucket_bytes += size;
            }

            for (round, bucket) in buckets.iter().enumerate() {
                // Push: each worker streams each tensor's shards to its
                // routed proxy as the backward pass emits it. Track
                // per-proxy arrival so the collective pipelines.
                let mut proxy_ready: BTreeMap<DeviceId, SimTime> = BTreeMap::new();
                // Latest-finishing push node per proxy: the collective's
                // barrier adopts these as its arrival dependencies.
                let mut arrivals: BTreeMap<DeviceId, NodeId> = BTreeMap::new();
                let mut latest_emit = forward_end;
                let mut total = ByteSize::ZERO;
                let push_prof = prof.as_ref().map(|p| p.enter(prof_region::TRAIN_PUSH));
                for ev in bucket {
                    let size = model.tensors()[ev.tensor].byte_size();
                    total += size;
                    let emitted = forward_end + ev.ready;
                    latest_emit = latest_emit.max(emitted);
                    for (w, &worker) in self.workers.iter().enumerate() {
                        let table = &self.tables[w];
                        let dest = table.route_for(size);
                        let mut t = emitted;
                        let mut first_shard = true;
                        for s in shard_sizes(size, table.shard_size) {
                            if let Some(p) = &prof {
                                p.count(prof_region::TRAIN_PUSH, 1);
                            }
                            let rec = engine
                                .transfer_masked(worker, dest, s, t, PCIE_ONLY)
                                // simlint: allow(panic-in-library, reason = "deployment validation guarantees host-worker-proxy connectivity")
                                .expect("worker reaches its proxy");
                            t = rec.end;
                            if let Some(cp) = &crit {
                                // The first shard leaves when the backward
                                // pass emits the gradient; the edge lands on
                                // the transfer's *entry* node so a staged
                                // first leg still routes back to compute.
                                if first_shard {
                                    if let (Some(n), Some(c)) =
                                        (engine.last_crit_entry_node(), compute)
                                    {
                                        cp.add_dep(n, c);
                                    }
                                }
                                if let Some(n) = engine.last_crit_node() {
                                    let slot = arrivals.entry(dest).or_insert(n);
                                    if cp.node_end(n) >= cp.node_end(*slot) {
                                        *slot = n;
                                    }
                                }
                            }
                            first_shard = false;
                        }
                        let e = proxy_ready.entry(dest).or_insert(t);
                        *e = (*e).max(t);
                        if tracks.is_some() || prof.is_some() {
                            let depth = parked.entry(dest).or_insert(0);
                            *depth += 1;
                            if let Some(p) = &prof {
                                p.observe_depth("train.proxy_parked", *depth);
                            }
                            if let (Some(tr), Some(tt)) = (&tracer, &mut tracks) {
                                let track = *tt.proxies.entry(dest).or_insert_with(|| {
                                    tr.track(&format!(
                                        "proxy {} queue",
                                        self.deployed.topology().device(dest).name()
                                    ))
                                });
                                tr.counter(t, category::PROXY, track, "queue_depth", *depth as f64);
                            }
                        }
                    }
                }
                drop(push_prof);
                // Proxies with no local contribution are ready immediately.
                let ready_of = |d: DeviceId| proxy_ready.get(&d).copied().unwrap_or(latest_emit);

                // Proxy collective over the CCI device fabric; alternate
                // ring direction per bucket (Fig. 11b).
                let coll_prof = prof.as_ref().map(|p| {
                    p.count(prof_region::TRAIN_COLLECTIVE, 1);
                    p.enter(prof_region::TRAIN_COLLECTIVE)
                });
                if crit.is_some() {
                    let deps: Vec<NodeId> = arrivals.values().copied().collect();
                    engine.stage_crit_deps(&deps);
                }
                let sync_end = if multi_node {
                    let ready: Vec<SimTime> = self
                        .node_mem_rings
                        .iter()
                        .flatten()
                        .map(|&d| ready_of(d))
                        .collect();
                    hierarchical_allreduce(
                        &mut engine,
                        &self.node_mem_rings,
                        total,
                        &ready,
                        CCI_OR_NETWORK,
                    )
                    // simlint: allow(panic-in-library, reason = "the memory ring is built from the deployed connected topology")
                    .expect("memory devices are connected")
                    .end
                } else {
                    let ready: Vec<SimTime> =
                        self.mem_devices.iter().map(|&d| ready_of(d)).collect();
                    ring_allreduce(
                        &mut engine,
                        &self.mem_devices,
                        total,
                        &ready,
                        RingDirection::for_group(round),
                        self.proxy_mask,
                    )
                    // simlint: allow(panic-in-library, reason = "the memory ring is built from the deployed connected topology")
                    .expect("memory devices are connected")
                    .end
                };
                drop(coll_prof);
                let coll_node = if crit.is_some() {
                    engine.last_crit_node()
                } else {
                    None
                };
                // Pull: updated values flow back on the opposite direction.
                let pull_prof = prof.as_ref().map(|p| p.enter(prof_region::TRAIN_PULL));
                let mut pull_end = sync_end;
                for ev in bucket {
                    let size = model.tensors()[ev.tensor].byte_size();
                    for (w, &worker) in self.workers.iter().enumerate() {
                        let table = &self.tables[w];
                        let src = table.route_for(size);
                        let mut t = sync_end;
                        let mut first_shard = true;
                        for s in shard_sizes(size, table.shard_size) {
                            if let Some(p) = &prof {
                                p.count(prof_region::TRAIN_PULL, 1);
                            }
                            let rec = engine
                                .transfer_masked(src, worker, s, t, PCIE_ONLY)
                                // simlint: allow(panic-in-library, reason = "deployment validation guarantees host-worker-proxy connectivity")
                                .expect("proxy reaches its worker");
                            t = rec.end;
                            // The first shard leaves when the collective
                            // publishes the reduced bucket; the edge lands
                            // on the transfer's *entry* node so a staged
                            // first leg still routes back to the collective.
                            if first_shard {
                                if let (Some(cp), Some(n), Some(c)) =
                                    (&crit, engine.last_crit_entry_node(), coll_node)
                                {
                                    cp.add_dep(n, c);
                                }
                            }
                            first_shard = false;
                        }
                        pull_end = pull_end.max(t);
                        // The tensor must be back before the next forward
                        // pass reaches its layer.
                        next_start = next_start.max(t - self.needed[&ev.tensor]);
                        if let Some(cp) = &crit {
                            if let Some(n) = engine.last_crit_node() {
                                // The instant this tensor stops gating the
                                // next iteration's forward pass.
                                let gate = cp.instant(
                                    crit_class::SYNC,
                                    format!("pull ready t{} w{w}", ev.tensor),
                                    t - self.needed[&ev.tensor],
                                    &[n],
                                );
                                sink_deps.push(gate);
                            }
                        }
                    }
                }
                drop(pull_prof);
                if tracing || tracks.is_some() {
                    let first_emit = forward_end + bucket[0].ready;
                    let ready_min = self
                        .mem_devices
                        .iter()
                        .map(|&d| ready_of(d))
                        .min()
                        .unwrap_or(latest_emit);
                    let push_end =
                        latest_emit.max(*proxy_ready.values().max().unwrap_or(&latest_emit));
                    let coll_start = ready_min.max(first_emit);
                    if tracing {
                        spans.push(PhaseSpan::new(
                            PhaseKind::Push,
                            first_emit,
                            push_end,
                            format!("bucket {round} push ({total})"),
                        ));
                        spans.push(PhaseSpan::new(
                            PhaseKind::Collective,
                            coll_start,
                            sync_end,
                            format!("bucket {round} collective"),
                        ));
                        spans.push(PhaseSpan::new(
                            PhaseKind::Pull,
                            sync_end,
                            pull_end,
                            format!("bucket {round} pull"),
                        ));
                    }
                    if let (Some(t), Some(tt)) = (&tracer, &mut tracks) {
                        t.span(
                            first_emit,
                            push_end,
                            category::TRAIN,
                            tt.push,
                            &format!("bucket {round} push ({total})"),
                        );
                        t.span(
                            coll_start,
                            sync_end,
                            category::TRAIN,
                            tt.collective,
                            &format!("bucket {round} collective"),
                        );
                        t.span(
                            sync_end,
                            pull_end,
                            category::TRAIN,
                            tt.pull,
                            &format!("bucket {round} pull"),
                        );
                        // The collective consumed every parked shard.
                        for (&d, depth) in parked.iter_mut().filter(|(_, d)| **d > 0) {
                            *depth = 0;
                            let track = tt.proxies[&d];
                            t.counter(sync_end, category::PROXY, track, "queue_depth", 0.0);
                        }
                    }
                }
                if prof.is_some() && tracks.is_none() {
                    // Profiler-only runs still reset the synthesized queue:
                    // the collective consumed every parked shard.
                    for depth in parked.values_mut() {
                        *depth = 0;
                    }
                }
            }

            // Dual sync: shallow layers reduced by the GPUs, blocking, at
            // the end of the backward pass. On clusters the workers use the
            // hierarchical decomposition (intra-node NVLink, then network).
            let gpu_prof = prof.as_ref().map(|p| {
                if !gpu_bytes.is_zero() {
                    p.count(prof_region::TRAIN_GPU_SYNC, 1);
                }
                p.enter(prof_region::TRAIN_GPU_SYNC)
            });
            // The dual-sync collective starts when the backward pass ends.
            let gpu_ring_runs = !gpu_bytes.is_zero() && (multi_node || self.gpu_ring.len() >= 2);
            if gpu_ring_runs {
                if let Some(c) = compute {
                    engine.stage_crit_deps(&[c]);
                }
            }
            let gpu_sync_end = if gpu_bytes.is_zero() {
                backward_end
            } else if multi_node {
                let total: usize = self.node_gpu_rings.iter().map(Vec::len).sum();
                hierarchical_allreduce(
                    &mut engine,
                    &self.node_gpu_rings,
                    gpu_bytes,
                    &vec![backward_end; total],
                    LinkMask::ALL,
                )
                // simlint: allow(panic-in-library, reason = "the worker ring is built from the deployed connected topology")
                .expect("workers are connected")
                .end
            } else if self.gpu_ring.len() >= 2 {
                ring_allreduce(
                    &mut engine,
                    &self.gpu_ring,
                    gpu_bytes,
                    &vec![backward_end; self.gpu_ring.len()],
                    RingDirection::Forward,
                    LinkMask::ALL,
                )
                // simlint: allow(panic-in-library, reason = "the worker ring is built from the deployed connected topology")
                .expect("workers are connected")
                .end
            } else {
                backward_end
            };
            drop(gpu_prof);
            if crit.is_some() && gpu_ring_runs {
                if let Some(n) = engine.last_crit_node() {
                    sink_deps.push(n);
                }
            }
            if tracing && gpu_sync_end > backward_end {
                spans.push(PhaseSpan::new(
                    PhaseKind::GpuSync,
                    backward_end,
                    gpu_sync_end,
                    format!("GPU ring allreduce ({gpu_bytes})"),
                ));
            }
            if let (Some(t), Some(tt)) = (&tracer, &tracks) {
                if gpu_sync_end > backward_end {
                    t.span(
                        backward_end,
                        gpu_sync_end,
                        category::TRAIN,
                        tt.compute,
                        &format!("gpu sync (iter {k}, {gpu_bytes})"),
                    );
                }
            }
            next_start = next_start.max(gpu_sync_end);
            if let (Some(t), Some(tt)) = (&tracer, &tracks) {
                t.span(
                    start,
                    next_start,
                    category::TRAIN,
                    tt.iter,
                    &format!("iteration {k}"),
                );
                let blocked =
                    (next_start - start).saturating_sub(plan.forward_time() + plan.backward_time());
                t.counter(
                    next_start,
                    category::TRAIN,
                    tt.iter,
                    "blocked_us",
                    blocked.as_micros_f64(),
                );
            }
            if let Some(m) = &self.metrics {
                let blocked =
                    (next_start - start).saturating_sub(plan.forward_time() + plan.backward_time());
                m.inc(metric::TRAIN_ITERATIONS, 1);
                m.inc(metric::TRAIN_BLOCKED_NS, blocked.as_nanos());
                m.observe(metric::TRAIN_FP_NS, plan.forward_time().as_nanos() as f64);
                m.observe(metric::TRAIN_BP_NS, plan.backward_time().as_nanos() as f64);
                m.observe(
                    metric::TRAIN_SYNC_NS,
                    next_start
                        .saturating_duration_since(backward_end)
                        .as_nanos() as f64,
                );
            }

            if let Some(cp) = &crit {
                let sink = cp.instant(
                    crit_class::SYNC,
                    format!("iteration {k} boundary"),
                    next_start,
                    &sink_deps,
                );
                cp.mark_iteration(k as u64, sink);
                prev_sink = Some(sink);
            }
            if k == 0 {
                first_period_end = next_start;
            }
            start = next_start;
        }
        (
            (start - first_period_end) / (iterations as u64 - 1).max(1),
            engine,
            spans,
        )
    }

    /// Fault-injected run: like [`run_inner`](Self::run_inner) but every
    /// transfer travels under `plan` (degraded links, flapped routes,
    /// dropped devices, stalled proxies, transient corruption) and the
    /// resilience machinery of `policy` reacts — retry with exponential
    /// backoff on corrupted pushes, proxy failover with routing-table
    /// repair on dropout, graceful degradation to GPU-only sync when the
    /// proxy tier is lost. Callers must fast-path empty plans through
    /// [`run`](Self::run); this method assumes `!plan.is_empty()`.
    fn run_faulty(
        &self,
        proxy_budget: ByteSize,
        iterations: u32,
        plan: &FaultPlan,
        policy: &ResiliencePolicy,
    ) -> (SimDuration, FaultRunStats) {
        assert!(!plan.is_empty(), "empty plans take the fast path");
        let iter_plan = &self.plan;
        let model = self.model;
        let mut proxy_path = vec![false; model.tensors().len()];
        let mut cum = ByteSize::ZERO;
        for ev in iter_plan.gradients() {
            if cum < proxy_budget {
                proxy_path[ev.tensor] = true;
                cum += model.tensors()[ev.tensor].byte_size();
            }
        }
        let gpu_bytes: ByteSize = model
            .tensors()
            .iter()
            .enumerate()
            .filter(|&(i, _)| !proxy_path[i])
            .map(|(_, t)| t.byte_size())
            .sum();

        // Fault runs deploy the CCI fabric as a *mesh* rather than a ring:
        // the ring's wrap-around pair after a failover is not ring-adjacent,
        // and memory devices cannot forward for each other (they are
        // emulated by GPUs, §IV-B), so ring survivors would be unroutable.
        // The real CCI switch reconnects any surviving pair; the mesh models
        // that. Direct neighbor links carry the same bandwidth model as the
        // ring's, so the healthy portion of a fault run times identically.
        let mut fault_fabric = self.machine.clone();
        if self.machine.topology().p2p_enabled() {
            for ring in &self.node_mem_rings {
                if ring.len() >= 2 {
                    fault_fabric.augment_cci_mesh(ring);
                }
            }
        }
        let mut engine = TransferEngine::new(fault_fabric.topology().clone());
        engine.set_fault_plan(plan.clone());
        if let Some(m) = &self.metrics {
            engine.set_metrics(m.clone());
        }
        if let Some(hub) = &self.oracles {
            engine.set_oracles(hub.clone());
        }
        let emit = |ev: OracleEvent| {
            if let Some(hub) = &self.oracles {
                hub.emit(ev);
            }
        };
        let tracer = self.tracer.as_ref().filter(|t| t.is_enabled()).cloned();
        if let Some(t) = &tracer {
            engine.set_tracer(t.clone());
            // One instant per injected fault, on a dedicated track.
            let track = t.track("faults: injected");
            for ev in plan.events() {
                t.instant(ev.at, category::FAULT, track, &ev.label);
            }
        }

        // One instant per resilience action, on its own track.
        let note_failover = |at: SimTime, dead: DeviceId, how: &str| {
            if let Some(t) = &tracer {
                let track = t.track("faults: resilience");
                t.instant(
                    at,
                    category::FAULT,
                    track,
                    &format!(
                        "failover: proxy {} {how}, tables repaired",
                        self.deployed.topology().device(dead).name()
                    ),
                );
            }
        };

        let mut state = FaultDeployState {
            mem_devices: self.mem_devices.clone(),
            node_mem_rings: self.node_mem_rings.clone(),
            tables: self.tables.clone(),
            gpu_only: false,
        };
        let mut stats = FaultRunStats::default();
        let mut transfer_seq: u64 = 0;
        let multi_node = self.machine.nodes() > 1;
        let mut start = SimTime::ZERO;
        let mut first_period_end = SimTime::ZERO;
        // Latest simulated instant any work touched, including abandoned
        // streams whose times never fed `next_start` — the RunEnd stamp the
        // time-monotonicity oracle audits against.
        let mut run_end = SimTime::ZERO;
        // Shard streams are keyed per (iteration, direction, tensor) so a
        // stream id never legitimately restarts at shard 0: the retry-FIFO
        // oracle then needs resets only for genuine failover restarts.
        let stream_id = |k: u32, pull: bool, tensor: usize| {
            ((k as u64) << 33) | ((pull as u64) << 32) | tensor as u64
        };
        for k in 0..iterations {
            // Round-start dropout detection: a device that died since the
            // last iteration is noticed before the new round's pushes are
            // routed, at the cost of one detection timeout each.
            let detected: Vec<DeviceId> = state
                .mem_devices
                .iter()
                .copied()
                .filter(|&d| plan.device_down(d.index() as u32, start))
                .collect();
            for dead in detected {
                emit(OracleEvent::FaultBite {
                    kind: BiteKind::Dropout,
                    at: start,
                });
                state.fail_over(
                    self.deployed.topology(),
                    &self.workers,
                    dead,
                    policy,
                    &mut stats,
                );
                start += policy.detect_timeout;
                note_failover(start, dead, "lost between rounds");
            }

            let forward_end = start + iter_plan.forward_time();
            let backward_end = forward_end + iter_plan.backward_time();
            let mut next_start = backward_end;
            if !self.input_bytes.is_zero() {
                for &worker in &self.workers {
                    let cpu = self
                        .deployed
                        .topology()
                        .host_cpu(self.deployed.topology().device(worker).node());
                    let rec = engine
                        .transfer_masked(cpu, worker, self.input_bytes, start, PCIE_ONLY)
                        // simlint: allow(panic-in-library, reason = "deployment validation guarantees host-worker-proxy connectivity")
                        .expect("host reaches its workers");
                    next_start = next_start.max(rec.end);
                }
            }

            let mut buckets: Vec<Vec<&coarse_models::training::GradientEvent>> = Vec::new();
            let mut bucket_bytes = ByteSize::ZERO;
            if !state.gpu_only {
                for ev in iter_plan.gradients() {
                    if !proxy_path[ev.tensor] {
                        continue;
                    }
                    let size = model.tensors()[ev.tensor].byte_size();
                    if buckets.is_empty() || bucket_bytes >= BUCKET_TARGET {
                        buckets.push(Vec::new());
                        bucket_bytes = ByteSize::ZERO;
                    }
                    // simlint: allow(panic-in-library, reason = "the branch above pushed a bucket before this read")
                    buckets.last_mut().expect("just pushed").push(ev);
                    bucket_bytes += size;
                }
            }

            'buckets: for (round, bucket) in buckets.iter().enumerate() {
                let mut proxy_ready: BTreeMap<DeviceId, SimTime> = BTreeMap::new();
                let mut latest_emit = forward_end;
                let mut total = ByteSize::ZERO;
                for ev in bucket {
                    let size = model.tensors()[ev.tensor].byte_size();
                    total += size;
                    let emitted = forward_end + ev.ready;
                    latest_emit = latest_emit.max(emitted);
                    for (w, &worker) in self.workers.iter().enumerate() {
                        let mut dest = state.tables[w].route_for(size);
                        let shards: Vec<ByteSize> =
                            shard_sizes(size, state.tables[w].shard_size).collect();
                        let stream = stream_id(k, false, ev.tensor);
                        let mut t = emitted;
                        let mut i = 0;
                        while i < shards.len() {
                            match resilient_shard_transfer(
                                &mut engine,
                                plan,
                                policy,
                                worker,
                                dest,
                                shards[i],
                                t,
                                &mut transfer_seq,
                                &mut stats,
                                &ShardStream {
                                    hub: self.oracles.as_ref(),
                                    worker: w as u32,
                                    stream,
                                    shard: shard_label(i, shards.len(), self.sabotage),
                                },
                            ) {
                                Ok(end) => {
                                    t = end;
                                    i += 1;
                                }
                                Err(dead) => {
                                    // The routed proxy died mid-push: fail
                                    // over and restart this tensor's stream
                                    // toward the repaired route.
                                    state.fail_over(
                                        self.deployed.topology(),
                                        &self.workers,
                                        dead,
                                        policy,
                                        &mut stats,
                                    );
                                    t += policy.detect_timeout;
                                    note_failover(t, dead, "died mid-push");
                                    run_end = run_end.max(t);
                                    if state.gpu_only {
                                        break 'buckets;
                                    }
                                    dest = state.tables[w].route_for(size);
                                    i = 0;
                                    emit(OracleEvent::StreamReset {
                                        worker: w as u32,
                                        stream,
                                        at: t,
                                    });
                                }
                            }
                        }
                        // A stalled proxy services the arrival late.
                        let stall = plan.stall(dest.index() as u32, t);
                        if stall > SimDuration::ZERO {
                            emit(OracleEvent::FaultBite {
                                kind: BiteKind::Stall,
                                at: t,
                            });
                        }
                        let t = t + stall;
                        run_end = run_end.max(t);
                        let e = proxy_ready.entry(dest).or_insert(t);
                        *e = (*e).max(t);
                    }
                }
                let ready_of = |d: DeviceId| proxy_ready.get(&d).copied().unwrap_or(latest_emit);

                // The proxy-tier collective can itself hit faults: a proxy
                // whose dropout instant falls between its last serviced push
                // and the ring step, or a flap severing the only allowed
                // route. A death is detected here (one detection timeout),
                // failed over, and the collective retried over the
                // survivors; a severed route waits out the outage in
                // detection-timeout steps, like the shard path above.
                let mut collective_delay = SimDuration::ZERO;
                let mut flap_waits = 0u32;
                let sync_end = loop {
                    let attempt = if multi_node {
                        let ready: Vec<SimTime> = state
                            .node_mem_rings
                            .iter()
                            .flatten()
                            .map(|&d| ready_of(d) + collective_delay)
                            .collect();
                        hierarchical_allreduce(
                            &mut engine,
                            &state.node_mem_rings,
                            total,
                            &ready,
                            CCI_OR_NETWORK,
                        )
                    } else {
                        let ready: Vec<SimTime> = state
                            .mem_devices
                            .iter()
                            .map(|&d| ready_of(d) + collective_delay)
                            .collect();
                        ring_allreduce(
                            &mut engine,
                            &state.mem_devices,
                            total,
                            &ready,
                            RingDirection::for_group(round),
                            self.proxy_mask,
                        )
                    };
                    match attempt {
                        Ok(res) => break res.end,
                        Err(CollectiveError::Transfer(TransferError::DeviceDown { device })) => {
                            let noticed = state
                                .mem_devices
                                .iter()
                                .map(|&d| ready_of(d))
                                .max()
                                .unwrap_or(latest_emit)
                                + collective_delay
                                + policy.detect_timeout;
                            state.fail_over(
                                self.deployed.topology(),
                                &self.workers,
                                device,
                                policy,
                                &mut stats,
                            );
                            collective_delay += policy.detect_timeout;
                            note_failover(noticed, device, "died before the proxy collective");
                            run_end = run_end.max(noticed);
                            if state.gpu_only {
                                break 'buckets;
                            }
                        }
                        Err(CollectiveError::Transfer(TransferError::NoRoute { .. })) => {
                            assert!(
                                flap_waits < MAX_FLAP_WAITS,
                                "proxy collective never recovered from its flap"
                            );
                            flap_waits += 1;
                            stats.recovery += policy.detect_timeout;
                            collective_delay += policy.detect_timeout;
                        }
                        Err(e) => {
                            // simlint: allow(panic-in-library, reason = "proxy rings are rebuilt non-empty and evenly shaped by fail_over; a shape error here is a bug, not a runtime condition")
                            unreachable!("proxy collective shape violated: {e}")
                        }
                    }
                };

                for ev in bucket {
                    let size = model.tensors()[ev.tensor].byte_size();
                    for (w, &worker) in self.workers.iter().enumerate() {
                        let mut src = state.tables[w].route_for(size);
                        let shards: Vec<ByteSize> =
                            shard_sizes(size, state.tables[w].shard_size).collect();
                        let stream = stream_id(k, true, ev.tensor);
                        let stall = plan.stall(src.index() as u32, sync_end);
                        if stall > SimDuration::ZERO {
                            emit(OracleEvent::FaultBite {
                                kind: BiteKind::Stall,
                                at: sync_end,
                            });
                        }
                        let mut t = sync_end + stall;
                        let mut i = 0;
                        while i < shards.len() {
                            match resilient_shard_transfer(
                                &mut engine,
                                plan,
                                policy,
                                src,
                                worker,
                                shards[i],
                                t,
                                &mut transfer_seq,
                                &mut stats,
                                &ShardStream {
                                    hub: self.oracles.as_ref(),
                                    worker: w as u32,
                                    stream,
                                    shard: shard_label(i, shards.len(), self.sabotage),
                                },
                            ) {
                                Ok(end) => {
                                    t = end;
                                    i += 1;
                                }
                                Err(dead) => {
                                    state.fail_over(
                                        self.deployed.topology(),
                                        &self.workers,
                                        dead,
                                        policy,
                                        &mut stats,
                                    );
                                    t += policy.detect_timeout;
                                    note_failover(t, dead, "died mid-pull");
                                    run_end = run_end.max(t);
                                    if state.gpu_only {
                                        break 'buckets;
                                    }
                                    src = state.tables[w].route_for(size);
                                    i = 0;
                                    emit(OracleEvent::StreamReset {
                                        worker: w as u32,
                                        stream,
                                        at: t,
                                    });
                                }
                            }
                        }
                        run_end = run_end.max(t);
                        next_start = next_start.max(t - self.needed[&ev.tensor]);
                    }
                }
            }

            // Dual sync; when the proxy tier is (or just became) lost, the
            // GPUs re-synchronize the full parameter set this iteration.
            let sync_bytes = if state.gpu_only {
                model.total_bytes()
            } else {
                gpu_bytes
            };
            // Workers have no failover path (losing one ends training, not
            // a proxy tier), but a flapped worker-to-worker route is
            // survivable: wait out the outage in detection-timeout steps,
            // exactly like the shard path.
            let gpu_sync_end = if sync_bytes.is_zero() {
                backward_end
            } else if multi_node || self.gpu_ring.len() >= 2 {
                let mut delay = SimDuration::ZERO;
                let mut flap_waits = 0u32;
                loop {
                    let attempt = if multi_node {
                        let total: usize = self.node_gpu_rings.iter().map(Vec::len).sum();
                        hierarchical_allreduce(
                            &mut engine,
                            &self.node_gpu_rings,
                            sync_bytes,
                            &vec![backward_end + delay; total],
                            LinkMask::ALL,
                        )
                    } else {
                        ring_allreduce(
                            &mut engine,
                            &self.gpu_ring,
                            sync_bytes,
                            &vec![backward_end + delay; self.gpu_ring.len()],
                            RingDirection::Forward,
                            LinkMask::ALL,
                        )
                    };
                    match attempt {
                        Ok(res) => break res.end,
                        Err(CollectiveError::Transfer(TransferError::NoRoute { .. })) => {
                            assert!(
                                flap_waits < MAX_FLAP_WAITS,
                                "worker collective never recovered from its flap"
                            );
                            flap_waits += 1;
                            stats.recovery += policy.detect_timeout;
                            delay += policy.detect_timeout;
                        }
                        Err(e) => {
                            // Worker loss (or a shape violation, which the
                            // builder rules out) ends training: workers have
                            // no failover tier to absorb them.
                            // simlint: allow(panic-in-library, reason = "losing a worker GPU is unsurvivable by design (S III-E covers the proxy tier only), and gpu rings are shape-validated at construction")
                            panic!("worker collective cannot continue: {e}")
                        }
                    }
                }
            } else {
                backward_end
            };
            next_start = next_start.max(gpu_sync_end);
            run_end = run_end.max(next_start);
            emit(OracleEvent::IterationEnd {
                index: k,
                at: next_start,
            });
            emit(OracleEvent::Progress { at: next_start });

            if k == 0 {
                first_period_end = next_start;
            }
            start = next_start;
        }
        stats.degraded_to_gpu = state.gpu_only;
        stats.end = run_end.max(start);
        (
            (start - first_period_end) / (iterations as u64 - 1).max(1),
            stats,
        )
    }

    /// The recovery-engine run: like [`run_faulty`](Self::run_faulty) but
    /// driven by a [`RecoveryPolicy`] — the full detect → decide → recover
    /// → account protocol:
    ///
    /// - **checkpoints are traffic** — every `checkpoint_interval`
    ///   committed iterations each proxy sealed-pushes its parameter shard
    ///   to its ring mirror over the proxy fabric, and training waits for
    ///   the slowest leg;
    /// - **transient failures repair** — corruption and route-outage
    ///   budgets escalate to elastic membership eviction (epoch-stamped,
    ///   routing rebuilt over survivors) instead of spinning;
    /// - **hard failures restore** — a dropped proxy rolls the run back to
    ///   the last committed checkpoint: survivors coherently read the image
    ///   back from their mirrors, the lost iterations are re-executed, and
    ///   the episode (detection + repair + restore reads) is the MTTR.
    ///
    /// Unlike `run_faulty` this handles empty plans: with
    /// `checkpoint_interval = 0` the run times identically to
    /// [`run`](Self::run), making checkpoint overhead and fault damage
    /// separately measurable. Returns the steady-state period plus the full
    /// recovery accounting (wall time included).
    fn run_recovering(
        &self,
        proxy_budget: ByteSize,
        iterations: u32,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
    ) -> (SimDuration, RecoveryRunStats) {
        let res = &policy.resilience;
        let iter_plan = &self.plan;
        let model = self.model;
        let mut proxy_path = vec![false; model.tensors().len()];
        let mut cum = ByteSize::ZERO;
        for ev in iter_plan.gradients() {
            if cum < proxy_budget {
                proxy_path[ev.tensor] = true;
                cum += model.tensors()[ev.tensor].byte_size();
            }
        }
        let gpu_bytes: ByteSize = model
            .tensors()
            .iter()
            .enumerate()
            .filter(|&(i, _)| !proxy_path[i])
            .map(|(_, t)| t.byte_size())
            .sum();

        // Same mesh deployment as `run_faulty`: survivors of an eviction
        // must stay pairwise routable. Healthy-path timing is identical.
        let mut fault_fabric = self.machine.clone();
        if self.machine.topology().p2p_enabled() {
            for ring in &self.node_mem_rings {
                if ring.len() >= 2 {
                    fault_fabric.augment_cci_mesh(ring);
                }
            }
        }
        let mut engine = TransferEngine::new(fault_fabric.topology().clone());
        if !plan.is_empty() {
            engine.set_fault_plan(plan.clone());
        }
        if let Some(m) = &self.metrics {
            engine.set_metrics(m.clone());
        }
        if let Some(hub) = &self.oracles {
            engine.set_oracles(hub.clone());
        }
        let emit = |ev: OracleEvent| {
            if let Some(hub) = &self.oracles {
                hub.emit(ev);
            }
        };
        let tracer = self.tracer.as_ref().filter(|t| t.is_enabled()).cloned();
        if let Some(t) = &tracer {
            engine.set_tracer(t.clone());
            let track = t.track("faults: injected");
            for ev in plan.events() {
                t.instant(ev.at, category::FAULT, track, &ev.label);
            }
        }
        let note_recovery = |at: SimTime, what: &str| {
            if let Some(t) = &tracer {
                let track = t.track("recovery: engine");
                t.instant(at, category::FAULT, track, what);
            }
        };

        let mut state = FaultDeployState {
            mem_devices: self.mem_devices.clone(),
            node_mem_rings: self.node_mem_rings.clone(),
            tables: self.tables.clone(),
            gpu_only: false,
        };
        let mut stats = RecoveryRunStats::default();
        let mut membership = Membership::default();
        let mut transfer_seq: u64 = 0;
        let multi_node = self.machine.nodes() > 1;
        let total_bytes = model.total_bytes();
        let topo = self.deployed.topology();
        let io = PoolIo {
            topo,
            workers: &self.workers,
            proxy_mask: self.proxy_mask,
            total: total_bytes,
            plan,
            policy,
        };
        let mut start = SimTime::ZERO;
        let mut first_period_end = SimTime::ZERO;
        let mut committed_any = false;
        let mut run_end = SimTime::ZERO;
        // Committed iterations: rolled back on restore, so re-executed work
        // is visible as wall-clock without double-counting progress.
        let mut completed: u32 = 0;
        // The committed-iteration index of the last durable pool
        // checkpoint; iteration 0's initial parameter distribution counts
        // as checkpoint 0.
        let mut last_ckpt: u32 = 0;
        // Execution attempts (monotone): stream ids and iteration-end
        // indices key off this so a rollback never reuses either.
        let mut executed: u64 = 0;
        let stream_id =
            |e: u64, pull: bool, tensor: usize| (e << 33) | ((pull as u64) << 32) | tensor as u64;
        'outer: while completed < iterations {
            // Fresh attempt number per execution attempt: an attempt aborted
            // by a hard failure must not reuse its stream ids, or the
            // retry-fifo oracle would see the re-execution as an out-of-order
            // shard replay.
            let attempt = executed;
            executed += 1;
            // Round-start detection, as in `run_faulty` — but a detected
            // dropout now triggers a restore episode, not just repair.
            let detected: Vec<DeviceId> = state
                .mem_devices
                .iter()
                .copied()
                .filter(|&d| plan.device_down(d.index() as u32, start))
                .collect();
            if !detected.is_empty() {
                let episode_start = start;
                for dead in detected {
                    emit(OracleEvent::FaultBite {
                        kind: BiteKind::Dropout,
                        at: start,
                    });
                    state.evict(topo, &self.workers, dead);
                    start += res.detect_timeout;
                    stats.detection_time += res.detect_timeout;
                    membership.bump(start, self.oracles.as_ref());
                    note_recovery(
                        start,
                        &format!(
                            "repair: proxy {} lost between rounds (epoch {})",
                            topo.device(dead).name(),
                            membership.epoch
                        ),
                    );
                }
                run_end = run_end.max(start);
                if !state.gpu_only {
                    let restore_begin = start;
                    let end = pool_restore(
                        &mut engine,
                        &mut state,
                        &io,
                        restore_begin,
                        &mut membership,
                        &mut stats,
                        self.oracles.as_ref(),
                        &mut transfer_seq,
                    );
                    run_end = run_end.max(end);
                    if !state.gpu_only {
                        stats.restores += 1;
                        stats.restore_bytes += total_bytes.as_u64();
                        stats.restore_time += end.saturating_duration_since(restore_begin);
                        stats.mttr_total += end.saturating_duration_since(episode_start);
                        stats.lost_iterations += u64::from(completed - last_ckpt);
                        completed = last_ckpt;
                        note_recovery(
                            end,
                            &format!("restore: rolled back to iteration {completed}"),
                        );
                    }
                    start = end;
                }
                continue 'outer;
            }

            let forward_end = start + iter_plan.forward_time();
            let backward_end = forward_end + iter_plan.backward_time();
            let mut next_start = backward_end;
            if !self.input_bytes.is_zero() {
                for &worker in &self.workers {
                    let cpu = topo.host_cpu(topo.device(worker).node());
                    let rec = engine
                        .transfer_masked(cpu, worker, self.input_bytes, start, PCIE_ONLY)
                        // simlint: allow(panic-in-library, reason = "deployment validation guarantees host-worker-proxy connectivity")
                        .expect("host reaches its workers");
                    next_start = next_start.max(rec.end);
                }
            }

            let mut buckets: Vec<Vec<&coarse_models::training::GradientEvent>> = Vec::new();
            let mut bucket_bytes = ByteSize::ZERO;
            if !state.gpu_only {
                for ev in iter_plan.gradients() {
                    if !proxy_path[ev.tensor] {
                        continue;
                    }
                    let size = model.tensors()[ev.tensor].byte_size();
                    if buckets.is_empty() || bucket_bytes >= BUCKET_TARGET {
                        buckets.push(Vec::new());
                        bucket_bytes = ByteSize::ZERO;
                    }
                    // simlint: allow(panic-in-library, reason = "the branch above pushed a bucket before this read")
                    buckets.last_mut().expect("just pushed").push(ev);
                    bucket_bytes += size;
                }
            }

            // A hard failure (dropped proxy) observed mid-iteration: the
            // iteration is abandoned and a restore episode runs below.
            let mut hard_failure: Option<SimTime> = None;

            'buckets: for (round, bucket) in buckets.iter().enumerate() {
                let mut proxy_ready: BTreeMap<DeviceId, SimTime> = BTreeMap::new();
                let mut latest_emit = forward_end;
                let mut total = ByteSize::ZERO;
                for ev in bucket {
                    let size = model.tensors()[ev.tensor].byte_size();
                    total += size;
                    let emitted = forward_end + ev.ready;
                    latest_emit = latest_emit.max(emitted);
                    for (w, &worker) in self.workers.iter().enumerate() {
                        let mut dest = state.tables[w].route_for(size);
                        let shards: Vec<ByteSize> =
                            shard_sizes(size, state.tables[w].shard_size).collect();
                        let stream = stream_id(attempt, false, ev.tensor);
                        let mut t = emitted;
                        let mut i = 0;
                        while i < shards.len() {
                            match recovering_shard_transfer(
                                &mut engine,
                                plan,
                                policy,
                                worker,
                                dest,
                                dest,
                                shards[i],
                                t,
                                &mut transfer_seq,
                                &mut stats,
                                &ShardStream {
                                    hub: self.oracles.as_ref(),
                                    worker: w as u32,
                                    stream,
                                    shard: shard_label(i, shards.len(), self.sabotage),
                                },
                            ) {
                                ShardOutcome::Done(end) => {
                                    t = end;
                                    i += 1;
                                }
                                ShardOutcome::Evict { device, hard, at } => {
                                    if !state.mem_devices.contains(&device) {
                                        // simlint: allow(panic-in-library, reason = "losing a worker GPU is unsurvivable by design (S III-E covers the proxy tier only)")
                                        panic!("non-proxy device dropped mid-push: unsurvivable");
                                    }
                                    let t2 = at + res.detect_timeout;
                                    stats.detection_time += res.detect_timeout;
                                    state.evict(topo, &self.workers, device);
                                    membership.bump(t2, self.oracles.as_ref());
                                    run_end = run_end.max(t2);
                                    note_recovery(
                                        t2,
                                        &format!(
                                            "{}: proxy {} evicted mid-push (epoch {})",
                                            if hard { "restore" } else { "repair" },
                                            topo.device(device).name(),
                                            membership.epoch
                                        ),
                                    );
                                    if hard {
                                        hard_failure = Some(at);
                                        break 'buckets;
                                    }
                                    stats.repairs += 1;
                                    if state.gpu_only {
                                        break 'buckets;
                                    }
                                    dest = state.tables[w].route_for(size);
                                    t = t2;
                                    i = 0;
                                    emit(OracleEvent::StreamReset {
                                        worker: w as u32,
                                        stream,
                                        at: t,
                                    });
                                }
                            }
                        }
                        let stall = plan.stall(dest.index() as u32, t);
                        if stall > SimDuration::ZERO {
                            emit(OracleEvent::FaultBite {
                                kind: BiteKind::Stall,
                                at: t,
                            });
                        }
                        let t = t + stall;
                        run_end = run_end.max(t);
                        let e = proxy_ready.entry(dest).or_insert(t);
                        *e = (*e).max(t);
                    }
                }
                let ready_of = |d: DeviceId| proxy_ready.get(&d).copied().unwrap_or(latest_emit);

                // Proxy collective: a death here is a hard failure (restore
                // episode); a severed route is waited out within budget and
                // then repaired by evicting the unreachable member.
                let mut collective_delay = SimDuration::ZERO;
                let mut route_waits = 0u32;
                let sync_end = loop {
                    let attempt = if multi_node {
                        let ready: Vec<SimTime> = state
                            .node_mem_rings
                            .iter()
                            .flatten()
                            .map(|&d| ready_of(d) + collective_delay)
                            .collect();
                        hierarchical_allreduce(
                            &mut engine,
                            &state.node_mem_rings,
                            total,
                            &ready,
                            CCI_OR_NETWORK,
                        )
                    } else {
                        let ready: Vec<SimTime> = state
                            .mem_devices
                            .iter()
                            .map(|&d| ready_of(d) + collective_delay)
                            .collect();
                        ring_allreduce(
                            &mut engine,
                            &state.mem_devices,
                            total,
                            &ready,
                            RingDirection::for_group(round),
                            self.proxy_mask,
                        )
                    };
                    match attempt {
                        Ok(res_ok) => break res_ok.end,
                        Err(CollectiveError::Transfer(TransferError::DeviceDown { device })) => {
                            let observed = state
                                .mem_devices
                                .iter()
                                .map(|&d| ready_of(d))
                                .max()
                                .unwrap_or(latest_emit)
                                + collective_delay;
                            let t2 = observed + res.detect_timeout;
                            stats.detection_time += res.detect_timeout;
                            state.evict(topo, &self.workers, device);
                            membership.bump(t2, self.oracles.as_ref());
                            run_end = run_end.max(t2);
                            note_recovery(
                                t2,
                                &format!(
                                    "restore: proxy {} died before the collective (epoch {})",
                                    topo.device(device).name(),
                                    membership.epoch
                                ),
                            );
                            hard_failure = Some(observed);
                            break 'buckets;
                        }
                        Err(CollectiveError::Transfer(TransferError::NoRoute { src, dst })) => {
                            match policy.action_for(FailureKind::RouteOutage, route_waits) {
                                RecoveryAction::Retry => {
                                    route_waits += 1;
                                    stats.backoff_time += res.detect_timeout;
                                    collective_delay += res.detect_timeout;
                                }
                                _ => {
                                    // Budget exhausted: evict whichever
                                    // endpoint of the severed route is a
                                    // pool member and retry over survivors.
                                    let victim = if state.mem_devices.contains(&dst) {
                                        Some(dst)
                                    } else if state.mem_devices.contains(&src) {
                                        Some(src)
                                    } else {
                                        None
                                    };
                                    match victim {
                                        Some(v) => {
                                            let t2 = state
                                                .mem_devices
                                                .iter()
                                                .map(|&d| ready_of(d))
                                                .max()
                                                .unwrap_or(latest_emit)
                                                + collective_delay
                                                + res.detect_timeout;
                                            stats.detection_time += res.detect_timeout;
                                            state.evict(topo, &self.workers, v);
                                            membership.bump(t2, self.oracles.as_ref());
                                            stats.repairs += 1;
                                            run_end = run_end.max(t2);
                                            note_recovery(
                                                t2,
                                                &format!(
                                                    "repair: proxy {} unreachable, evicted (epoch {})",
                                                    topo.device(v).name(),
                                                    membership.epoch
                                                ),
                                            );
                                            if state.gpu_only {
                                                break 'buckets;
                                            }
                                            collective_delay += res.detect_timeout;
                                            route_waits = 0;
                                        }
                                        None => {
                                            assert!(
                                                route_waits < MAX_FLAP_WAITS,
                                                "proxy collective never recovered from its flap"
                                            );
                                            route_waits += 1;
                                            stats.backoff_time += res.detect_timeout;
                                            collective_delay += res.detect_timeout;
                                        }
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            // simlint: allow(panic-in-library, reason = "proxy rings are rebuilt non-empty and evenly shaped by evict; a shape error here is a bug, not a runtime condition")
                            unreachable!("proxy collective shape violated: {e}")
                        }
                    }
                };

                for ev in bucket {
                    let size = model.tensors()[ev.tensor].byte_size();
                    for (w, &worker) in self.workers.iter().enumerate() {
                        let mut src = state.tables[w].route_for(size);
                        let shards: Vec<ByteSize> =
                            shard_sizes(size, state.tables[w].shard_size).collect();
                        let stream = stream_id(attempt, true, ev.tensor);
                        let stall = plan.stall(src.index() as u32, sync_end);
                        if stall > SimDuration::ZERO {
                            emit(OracleEvent::FaultBite {
                                kind: BiteKind::Stall,
                                at: sync_end,
                            });
                        }
                        let mut t = sync_end + stall;
                        let mut i = 0;
                        while i < shards.len() {
                            match recovering_shard_transfer(
                                &mut engine,
                                plan,
                                policy,
                                src,
                                worker,
                                src,
                                shards[i],
                                t,
                                &mut transfer_seq,
                                &mut stats,
                                &ShardStream {
                                    hub: self.oracles.as_ref(),
                                    worker: w as u32,
                                    stream,
                                    shard: shard_label(i, shards.len(), self.sabotage),
                                },
                            ) {
                                ShardOutcome::Done(end) => {
                                    t = end;
                                    i += 1;
                                }
                                ShardOutcome::Evict { device, hard, at } => {
                                    if !state.mem_devices.contains(&device) {
                                        // simlint: allow(panic-in-library, reason = "losing a worker GPU is unsurvivable by design (S III-E covers the proxy tier only)")
                                        panic!("non-proxy device dropped mid-pull: unsurvivable");
                                    }
                                    let t2 = at + res.detect_timeout;
                                    stats.detection_time += res.detect_timeout;
                                    state.evict(topo, &self.workers, device);
                                    membership.bump(t2, self.oracles.as_ref());
                                    run_end = run_end.max(t2);
                                    note_recovery(
                                        t2,
                                        &format!(
                                            "{}: proxy {} evicted mid-pull (epoch {})",
                                            if hard { "restore" } else { "repair" },
                                            topo.device(device).name(),
                                            membership.epoch
                                        ),
                                    );
                                    if hard {
                                        hard_failure = Some(at);
                                        break 'buckets;
                                    }
                                    stats.repairs += 1;
                                    if state.gpu_only {
                                        break 'buckets;
                                    }
                                    src = state.tables[w].route_for(size);
                                    t = t2;
                                    i = 0;
                                    emit(OracleEvent::StreamReset {
                                        worker: w as u32,
                                        stream,
                                        at: t,
                                    });
                                }
                            }
                        }
                        run_end = run_end.max(t);
                        next_start = next_start.max(t - self.needed[&ev.tensor]);
                    }
                }
            }

            if let Some(fail_at) = hard_failure {
                if !state.gpu_only {
                    // The eviction is already done (detection charged at
                    // the failure site); restore the image and roll back.
                    let restore_begin = fail_at + res.detect_timeout;
                    let end = pool_restore(
                        &mut engine,
                        &mut state,
                        &io,
                        restore_begin,
                        &mut membership,
                        &mut stats,
                        self.oracles.as_ref(),
                        &mut transfer_seq,
                    );
                    run_end = run_end.max(end);
                    if !state.gpu_only {
                        stats.restores += 1;
                        stats.restore_bytes += total_bytes.as_u64();
                        stats.restore_time += end.saturating_duration_since(restore_begin);
                        stats.mttr_total += end.saturating_duration_since(fail_at);
                        stats.lost_iterations += u64::from(completed - last_ckpt);
                        completed = last_ckpt;
                        note_recovery(
                            end,
                            &format!("restore: rolled back to iteration {completed}"),
                        );
                        start = end;
                        continue 'outer;
                    }
                    start = end;
                    continue 'outer;
                }
                // The pool died with its last member: nothing to restore
                // from. Fall through and finish this iteration GPU-only.
            }

            let sync_bytes = if state.gpu_only {
                model.total_bytes()
            } else {
                gpu_bytes
            };
            let gpu_sync_end = if sync_bytes.is_zero() {
                backward_end
            } else if multi_node || self.gpu_ring.len() >= 2 {
                let mut delay = SimDuration::ZERO;
                let mut flap_waits = 0u32;
                loop {
                    let attempt = if multi_node {
                        let total: usize = self.node_gpu_rings.iter().map(Vec::len).sum();
                        hierarchical_allreduce(
                            &mut engine,
                            &self.node_gpu_rings,
                            sync_bytes,
                            &vec![backward_end + delay; total],
                            LinkMask::ALL,
                        )
                    } else {
                        ring_allreduce(
                            &mut engine,
                            &self.gpu_ring,
                            sync_bytes,
                            &vec![backward_end + delay; self.gpu_ring.len()],
                            RingDirection::Forward,
                            LinkMask::ALL,
                        )
                    };
                    match attempt {
                        Ok(res_ok) => break res_ok.end,
                        Err(CollectiveError::Transfer(TransferError::NoRoute { .. })) => {
                            // Workers have no failover tier: wait the flap
                            // out (bounded like `run_faulty`).
                            assert!(
                                flap_waits < MAX_FLAP_WAITS,
                                "worker collective never recovered from its flap"
                            );
                            flap_waits += 1;
                            stats.backoff_time += res.detect_timeout;
                            delay += res.detect_timeout;
                        }
                        Err(e) => {
                            // simlint: allow(panic-in-library, reason = "losing a worker GPU is unsurvivable by design (S III-E covers the proxy tier only), and gpu rings are shape-validated at construction")
                            panic!("worker collective cannot continue: {e}")
                        }
                    }
                }
            } else {
                backward_end
            };
            next_start = next_start.max(gpu_sync_end);
            run_end = run_end.max(next_start);
            emit(OracleEvent::IterationEnd {
                index: attempt as u32,
                at: next_start,
            });
            emit(OracleEvent::Progress { at: next_start });
            completed += 1;
            if !committed_any {
                committed_any = true;
                first_period_end = next_start;
            }

            // Pool checkpoint: sealed-push every shard to its mirror and
            // wait for the slowest leg before the next iteration starts.
            if policy.checkpoint_due(completed, iterations) && !state.gpu_only {
                let ckpt_begin = next_start;
                match pool_checkpoint(
                    &mut engine,
                    &mut state,
                    &io,
                    ckpt_begin,
                    &mut membership,
                    &mut stats,
                    self.oracles.as_ref(),
                    &mut transfer_seq,
                ) {
                    PoolIoOutcome::Done(end) => {
                        run_end = run_end.max(end);
                        if !state.gpu_only {
                            stats.checkpoints += 1;
                            stats.checkpoint_bytes += total_bytes.as_u64();
                            stats.checkpoint_time += end.saturating_duration_since(ckpt_begin);
                            last_ckpt = completed;
                        }
                        start = end;
                    }
                    PoolIoOutcome::MemberDown { device, at } => {
                        // A proxy died with its checkpoint shard in flight:
                        // the fresh image never committed, so the restore
                        // rolls back to the previous one.
                        emit(OracleEvent::FaultBite {
                            kind: BiteKind::Dropout,
                            at,
                        });
                        let t2 = at + res.detect_timeout;
                        stats.detection_time += res.detect_timeout;
                        if !state.mem_devices.contains(&device) {
                            // simlint: allow(panic-in-library, reason = "checkpoint legs run between pool members only")
                            panic!("non-member device dropped mid-checkpoint");
                        }
                        state.evict(topo, &self.workers, device);
                        membership.bump(t2, self.oracles.as_ref());
                        run_end = run_end.max(t2);
                        note_recovery(
                            t2,
                            &format!(
                                "restore: proxy {} died mid-checkpoint (epoch {})",
                                topo.device(device).name(),
                                membership.epoch
                            ),
                        );
                        if state.gpu_only {
                            start = t2;
                        } else {
                            let end = pool_restore(
                                &mut engine,
                                &mut state,
                                &io,
                                t2,
                                &mut membership,
                                &mut stats,
                                self.oracles.as_ref(),
                                &mut transfer_seq,
                            );
                            run_end = run_end.max(end);
                            if !state.gpu_only {
                                stats.restores += 1;
                                stats.restore_bytes += total_bytes.as_u64();
                                stats.restore_time += end.saturating_duration_since(t2);
                                stats.mttr_total += end.saturating_duration_since(at);
                                stats.lost_iterations += u64::from(completed - last_ckpt);
                                completed = last_ckpt;
                                note_recovery(
                                    end,
                                    &format!("restore: rolled back to iteration {completed}"),
                                );
                            }
                            start = end;
                        }
                    }
                }
            } else {
                start = next_start;
            }
        }
        stats.degraded_to_gpu = state.gpu_only;
        stats.membership_epoch = membership.epoch;
        stats.end = run_end.max(start);
        stats.wall = start.saturating_duration_since(SimTime::ZERO);
        (
            (start - first_period_end) / (iterations as u64 - 1).max(1),
            stats,
        )
    }
}

/// The shard label the oracle is told about: honest under
/// [`Sabotage::None`], inverted under [`Sabotage::InvertRetryOrder`] so the
/// retry-FIFO oracle sees shard indices regress.
fn shard_label(i: usize, n: usize, sabotage: Sabotage) -> u32 {
    match sabotage {
        Sabotage::None => i as u32,
        Sabotage::InvertRetryOrder => (n - 1 - i) as u32,
    }
}

/// After this many integrity rejections of one shard the retransmission is
/// assumed to land clean (the link re-trains), so 100%-corruption plans
/// still terminate.
const MAX_PUSH_ATTEMPTS: u32 = 32;

/// Cap on waiting out a flapped route before declaring the fabric broken.
const MAX_FLAP_WAITS: u32 = 10_000;

/// Mutable deployment state of one fault-injected run: the surviving
/// proxies and the routing tables currently addressing them.
struct FaultDeployState {
    mem_devices: Vec<DeviceId>,
    node_mem_rings: Vec<Vec<DeviceId>>,
    tables: Vec<RoutingTable>,
    gpu_only: bool,
}

impl FaultDeployState {
    /// Removes `dead` from the deployment, charges one detection timeout,
    /// and repairs the routing tables over the survivors (the §III-E
    /// dynamic re-profiling used as failover). Fewer than two survivors
    /// collapse the run to GPU-only synchronization.
    fn fail_over(
        &mut self,
        topo: &Topology,
        workers: &[DeviceId],
        dead: DeviceId,
        policy: &ResiliencePolicy,
        stats: &mut FaultRunStats,
    ) {
        self.evict(topo, workers, dead);
        stats.failovers += 1;
        stats.recovery += policy.detect_timeout;
    }

    /// The membership surgery of [`fail_over`](Self::fail_over) without the
    /// accounting: removes `dead` and repairs routing over the survivors
    /// (or collapses to GPU-only below two survivors). The recovery engine
    /// calls this directly and does its own epoch/time bookkeeping.
    fn evict(&mut self, topo: &Topology, workers: &[DeviceId], dead: DeviceId) {
        self.mem_devices.retain(|&d| d != dead);
        for ring in &mut self.node_mem_rings {
            ring.retain(|&d| d != dead);
        }
        self.node_mem_rings.retain(|r| !r.is_empty());
        if self.mem_devices.len() < 2 {
            self.gpu_only = true;
        } else {
            self.tables = workers
                .iter()
                .enumerate()
                .map(|(w, &worker)| {
                    build_routing_table_for(topo, worker, &self.mem_devices, w, SimTime::ZERO)
                })
                .collect();
        }
    }
}

/// Accounting of one fault-injected run.
#[derive(Debug, Clone, Copy, Default)]
struct FaultRunStats {
    retries: u64,
    failovers: u64,
    recovery: SimDuration,
    degraded_to_gpu: bool,
    /// Latest simulated instant the run touched (RunEnd stamp).
    end: SimTime,
}

/// Oracle context of one shard stream: where (if anywhere) to report the
/// attempts of one tensor's push or pull.
struct ShardStream<'a> {
    hub: Option<&'a OracleHub>,
    worker: u32,
    stream: u64,
    shard: u32,
}

/// One client-side shard transfer under faults: integrity-rejected
/// transfers are retransmitted after exponential backoff, flapped routes
/// are waited out, and a dropped endpoint is reported to the caller for
/// failover (`Err` carries the dead device).
#[allow(clippy::too_many_arguments)]
fn resilient_shard_transfer(
    engine: &mut TransferEngine,
    plan: &FaultPlan,
    policy: &ResiliencePolicy,
    src: DeviceId,
    dst: DeviceId,
    size: ByteSize,
    at: SimTime,
    transfer_seq: &mut u64,
    stats: &mut FaultRunStats,
    obs: &ShardStream<'_>,
) -> Result<SimTime, DeviceId> {
    let mut t = at;
    let mut attempt = 0u32;
    loop {
        if let Some(hub) = obs.hub {
            hub.emit(OracleEvent::ShardAttempt {
                worker: obs.worker,
                stream: obs.stream,
                shard: obs.shard,
                attempt,
                at: t,
            });
        }
        *transfer_seq += 1;
        match engine.transfer_masked(src, dst, size, t, PCIE_ONLY) {
            Ok(rec) => {
                if attempt < MAX_PUSH_ATTEMPTS
                    && plan.corrupts(dst.index() as u32, rec.end, *transfer_seq)
                {
                    // CRC32 seal rejected at the receiver: back off and
                    // retransmit (a fresh sequence number draws a fresh,
                    // reproducible corruption decision).
                    if let Some(hub) = obs.hub {
                        hub.emit(OracleEvent::FaultBite {
                            kind: BiteKind::Corrupt,
                            at: rec.end,
                        });
                    }
                    stats.retries += 1;
                    let backoff = policy.backoff_after(attempt);
                    stats.recovery += backoff;
                    t = rec.end + backoff;
                    attempt += 1;
                    continue;
                }
                return Ok(rec.end);
            }
            Err(TransferError::DeviceDown { device }) => return Err(device),
            Err(TransferError::NoRoute { .. }) => {
                // A link flap cut every allowed route: wait one detection
                // timeout for the fabric to heal and try again.
                assert!(
                    attempt < MAX_FLAP_WAITS,
                    "route {src:?} -> {dst:?} never recovered from its flap"
                );
                stats.recovery += policy.detect_timeout;
                t += policy.detect_timeout;
                attempt += 1;
            }
        }
    }
}

/// Accounting of one recovery-engine run.
#[derive(Debug, Clone, Copy, Default)]
struct RecoveryRunStats {
    /// Retransmissions of integrity-rejected sealed pushes.
    retries: u64,
    /// Elastic membership repairs (soft evictions, routing rebuilt).
    repairs: u64,
    /// Restore episodes (hard failure, rollback to the last checkpoint).
    restores: u64,
    /// Final membership epoch (number of membership changes).
    membership_epoch: u64,
    /// Pool checkpoints committed.
    checkpoints: u64,
    /// Simulated time training stalled on checkpoint pushes.
    checkpoint_time: SimDuration,
    /// Bytes sealed-pushed into the pool by committed checkpoints.
    checkpoint_bytes: u64,
    /// Simulated time spent coherently reading images back out.
    restore_time: SimDuration,
    /// Bytes coherently read back by restores.
    restore_bytes: u64,
    /// Committed iterations rolled back and re-executed.
    lost_iterations: u64,
    /// Simulated time charged to failure detection.
    detection_time: SimDuration,
    /// Simulated time spent backing off and waiting out outages.
    backoff_time: SimDuration,
    /// Summed failure-to-recovered episode lengths (MTTR numerator).
    mttr_total: SimDuration,
    degraded_to_gpu: bool,
    /// Total wall time of the run (first iteration start to last commit).
    wall: SimDuration,
    /// Latest simulated instant the run touched (RunEnd stamp).
    end: SimTime,
}

/// Epoch-stamped proxy membership view of one recovering run. Epoch 0 is
/// the initial view; every eviction announces a strictly newer epoch.
#[derive(Debug, Clone, Copy, Default)]
struct Membership {
    epoch: u64,
    stamp: SimTime,
}

impl Membership {
    /// Announces the next membership epoch. Concurrent streams are
    /// simulated in program order, so a later eviction can carry an earlier
    /// instant; the control plane serializes views, so announced stamps
    /// never run backward.
    fn bump(&mut self, at: SimTime, oracles: Option<&OracleHub>) {
        self.epoch += 1;
        self.stamp = self.stamp.max(at);
        if let Some(hub) = oracles {
            hub.emit(OracleEvent::MembershipEpoch {
                epoch: self.epoch,
                at: self.stamp,
            });
        }
    }
}

/// Immutable context shared by the pool checkpoint/restore helpers.
struct PoolIo<'a> {
    topo: &'a Topology,
    workers: &'a [DeviceId],
    proxy_mask: LinkMask,
    /// Full parameter-image size (every checkpoint and restore moves it).
    total: ByteSize,
    plan: &'a FaultPlan,
    policy: &'a RecoveryPolicy,
}

/// What a pool checkpoint came to.
enum PoolIoOutcome {
    /// All legs landed; the image is durable as of this instant.
    Done(SimTime),
    /// A pool member died with a leg in flight; the caller escalates to a
    /// restore episode (this image never committed).
    MemberDown { device: DeviceId, at: SimTime },
}

/// What one shard transfer under a [`RecoveryPolicy`] came to.
enum ShardOutcome {
    Done(SimTime),
    /// A device must leave the membership: the transfer's endpoint died
    /// (`hard`, triggering a restore) or exhausted its retry budget
    /// (`!hard`, triggering an elastic repair).
    Evict {
        device: DeviceId,
        hard: bool,
        at: SimTime,
    },
}

/// One client-side shard transfer under a [`RecoveryPolicy`]: like
/// [`resilient_shard_transfer`] but with *bounded* budgets — when the
/// corruption or route-wait budget runs out the proxy endpoint is handed
/// back for eviction instead of retrying forever. `proxy` names the
/// evictable endpoint (the destination for pushes, the source for pulls).
#[allow(clippy::too_many_arguments)]
fn recovering_shard_transfer(
    engine: &mut TransferEngine,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    src: DeviceId,
    dst: DeviceId,
    proxy: DeviceId,
    size: ByteSize,
    at: SimTime,
    transfer_seq: &mut u64,
    stats: &mut RecoveryRunStats,
    obs: &ShardStream<'_>,
) -> ShardOutcome {
    let res = &policy.resilience;
    let mut t = at;
    let mut rejects = 0u32;
    let mut waits = 0u32;
    loop {
        if let Some(hub) = obs.hub {
            hub.emit(OracleEvent::ShardAttempt {
                worker: obs.worker,
                stream: obs.stream,
                shard: obs.shard,
                attempt: rejects + waits,
                at: t,
            });
        }
        *transfer_seq += 1;
        match engine.transfer_masked(src, dst, size, t, PCIE_ONLY) {
            Ok(rec) => {
                if plan.corrupts(dst.index() as u32, rec.end, *transfer_seq) {
                    if let Some(hub) = obs.hub {
                        hub.emit(OracleEvent::FaultBite {
                            kind: BiteKind::Corrupt,
                            at: rec.end,
                        });
                    }
                    match policy.action_for(FailureKind::CorruptStream, rejects) {
                        RecoveryAction::Retry => {
                            stats.retries += 1;
                            let backoff = res.backoff_after(rejects);
                            stats.backoff_time += backoff;
                            t = rec.end + backoff;
                            rejects += 1;
                            continue;
                        }
                        // The seal keeps failing: the proxy's receive path
                        // is suspect — evict it rather than spin.
                        _ => {
                            return ShardOutcome::Evict {
                                device: proxy,
                                hard: false,
                                at: rec.end,
                            }
                        }
                    }
                }
                return ShardOutcome::Done(rec.end);
            }
            Err(TransferError::DeviceDown { device }) => {
                return ShardOutcome::Evict {
                    device,
                    hard: true,
                    at: t,
                }
            }
            Err(TransferError::NoRoute { .. }) => {
                match policy.action_for(FailureKind::RouteOutage, waits) {
                    RecoveryAction::Retry => {
                        stats.backoff_time += res.detect_timeout;
                        t += res.detect_timeout;
                        waits += 1;
                    }
                    _ => {
                        return ShardOutcome::Evict {
                            device: proxy,
                            hard: false,
                            at: t,
                        }
                    }
                }
            }
        }
    }
}

/// One pool checkpoint: every surviving proxy sealed-pushes its shard of
/// the parameter image to its ring mirror (per [`plan_pool_checkpoint`]),
/// all legs in parallel from `at`, and the image commits when the slowest
/// leg lands. Transient failures follow the policy budgets — corruption
/// retries with backoff then evicts the mirror, severed routes are waited
/// out then repaired — and any eviction replans the legs over the shrunken
/// membership (the image restarts; a half-written image is useless). A
/// member death aborts: the caller escalates to a restore episode.
#[allow(clippy::too_many_arguments)]
fn pool_checkpoint(
    engine: &mut TransferEngine,
    state: &mut FaultDeployState,
    io: &PoolIo<'_>,
    at: SimTime,
    membership: &mut Membership,
    stats: &mut RecoveryRunStats,
    oracles: Option<&OracleHub>,
    transfer_seq: &mut u64,
) -> PoolIoOutcome {
    let res = &io.policy.resilience;
    let mut at = at;
    'replan: loop {
        let members = state.mem_devices.clone();
        let legs = plan_pool_checkpoint(members.len(), io.total);
        let mut end = at;
        for leg in &legs.legs {
            let (src, dst) = (members[leg.src], members[leg.mirror]);
            let mut t = at;
            let mut rejects = 0u32;
            let mut waits = 0u32;
            loop {
                *transfer_seq += 1;
                match engine.transfer_masked(src, dst, leg.bytes, t, io.proxy_mask) {
                    Ok(rec) => {
                        if io.plan.corrupts(dst.index() as u32, rec.end, *transfer_seq) {
                            if let Some(hub) = oracles {
                                hub.emit(OracleEvent::FaultBite {
                                    kind: BiteKind::Corrupt,
                                    at: rec.end,
                                });
                            }
                            match io.policy.action_for(FailureKind::CorruptStream, rejects) {
                                RecoveryAction::Retry => {
                                    stats.retries += 1;
                                    let backoff = res.backoff_after(rejects);
                                    stats.backoff_time += backoff;
                                    t = rec.end + backoff;
                                    rejects += 1;
                                    continue;
                                }
                                _ => {
                                    // The mirror's seal keeps failing:
                                    // evict it and replan the image.
                                    stats.detection_time += res.detect_timeout;
                                    let t2 = rec.end + res.detect_timeout;
                                    state.evict(io.topo, io.workers, dst);
                                    membership.bump(t2, oracles);
                                    stats.repairs += 1;
                                    if state.gpu_only {
                                        return PoolIoOutcome::Done(t2);
                                    }
                                    at = t2;
                                    continue 'replan;
                                }
                            }
                        }
                        end = end.max(rec.end);
                        break;
                    }
                    Err(TransferError::DeviceDown { device }) => {
                        return PoolIoOutcome::MemberDown { device, at: t };
                    }
                    Err(TransferError::NoRoute { .. }) => {
                        match io.policy.action_for(FailureKind::RouteOutage, waits) {
                            RecoveryAction::Retry => {
                                stats.backoff_time += res.detect_timeout;
                                t += res.detect_timeout;
                                waits += 1;
                            }
                            _ => {
                                stats.detection_time += res.detect_timeout;
                                let t2 = t + res.detect_timeout;
                                state.evict(io.topo, io.workers, dst);
                                membership.bump(t2, oracles);
                                stats.repairs += 1;
                                if state.gpu_only {
                                    return PoolIoOutcome::Done(t2);
                                }
                                at = t2;
                                continue 'replan;
                            }
                        }
                    }
                }
            }
        }
        return PoolIoOutcome::Done(end);
    }
}

/// One pool restore: every surviving proxy coherently reads its shard of
/// the last committed image back from its ring mirror — the reverse of
/// [`pool_checkpoint`]'s legs, and plain coherent reads rather than sealed
/// pushes, so there is no corruption check on this path. Members that die
/// mid-restore are detected, evicted, and the read replanned over the
/// survivors (membership strictly shrinks, so this terminates); if the
/// pool collapses to fewer than two members the restore is moot and the
/// caller finds `state.gpu_only` set. Returns the instant the image (or
/// the degraded run) is ready.
#[allow(clippy::too_many_arguments)]
fn pool_restore(
    engine: &mut TransferEngine,
    state: &mut FaultDeployState,
    io: &PoolIo<'_>,
    at: SimTime,
    membership: &mut Membership,
    stats: &mut RecoveryRunStats,
    oracles: Option<&OracleHub>,
    transfer_seq: &mut u64,
) -> SimTime {
    let res = &io.policy.resilience;
    let mut at = at;
    'replan: loop {
        if state.gpu_only {
            return at;
        }
        let members = state.mem_devices.clone();
        let legs = plan_pool_checkpoint(members.len(), io.total);
        let mut end = at;
        for leg in &legs.legs {
            let (src, dst) = (members[leg.mirror], members[leg.src]);
            let mut t = at;
            let mut waits = 0u32;
            loop {
                *transfer_seq += 1;
                match engine.transfer_masked(src, dst, leg.bytes, t, io.proxy_mask) {
                    Ok(rec) => {
                        end = end.max(rec.end);
                        break;
                    }
                    Err(TransferError::DeviceDown { device }) => {
                        // Another member died mid-restore: detect, evict,
                        // and replan the reads over the survivors.
                        if let Some(hub) = oracles {
                            hub.emit(OracleEvent::FaultBite {
                                kind: BiteKind::Dropout,
                                at: t,
                            });
                        }
                        if !state.mem_devices.contains(&device) {
                            // simlint: allow(panic-in-library, reason = "restore legs run between pool members only")
                            panic!("non-member device dropped mid-restore");
                        }
                        stats.detection_time += res.detect_timeout;
                        let t2 = t + res.detect_timeout;
                        state.evict(io.topo, io.workers, device);
                        membership.bump(t2, oracles);
                        at = t2;
                        continue 'replan;
                    }
                    Err(TransferError::NoRoute { .. }) => {
                        match io.policy.action_for(FailureKind::RouteOutage, waits) {
                            RecoveryAction::Retry => {
                                stats.backoff_time += res.detect_timeout;
                                t += res.detect_timeout;
                                waits += 1;
                            }
                            _ => {
                                // The mirror is unreachable: evict it and
                                // replan (its shard is re-read from the
                                // survivor ring's reshuffled mirrors).
                                stats.detection_time += res.detect_timeout;
                                let t2 = t + res.detect_timeout;
                                state.evict(io.topo, io.workers, src);
                                membership.bump(t2, oracles);
                                stats.repairs += 1;
                                at = t2;
                                continue 'replan;
                            }
                        }
                    }
                }
            }
        }
        return end;
    }
}

/// Simulates COARSE training on `machine`.
///
/// # Panics
///
/// Panics if the partition has fewer than two memory devices or
/// `iterations < 2`.
pub fn simulate_coarse(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
) -> TrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let (deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    let period = deployment.run(best_m, iterations);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    TrainResult::new(period, deployment.plan.compute_time(), global_batch)
}

/// Steady-state results of a fault-injected COARSE run, together with what
/// the resilience machinery did to survive the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyTrainResult {
    /// Steady-state training result of the faulty run.
    pub result: TrainResult,
    /// Number of fault entries in the injected plan.
    pub injected_faults: usize,
    /// Retransmissions of integrity-rejected pushes.
    pub retries: u64,
    /// Proxy failovers performed (dead device removed, routing repaired).
    pub failovers: u64,
    /// True if the proxy tier was lost and sync degraded to GPU-only.
    pub degraded_to_gpu: bool,
    /// Simulated time spent detecting faults, backing off, and waiting out
    /// outages (summed across iterations and clients).
    pub recovery_time: SimDuration,
}

impl FaultyTrainResult {
    /// True if no fault fired and no resilience mechanism engaged — for an
    /// empty plan this is guaranteed, and the result is byte-identical to
    /// [`simulate_coarse`].
    pub fn is_clean(&self) -> bool {
        self.retries == 0
            && self.failovers == 0
            && !self.degraded_to_gpu
            && self.recovery_time == SimDuration::ZERO
    }
}

/// Simulates COARSE training under an injected [`FaultPlan`].
///
/// The deployment decision (routing tables, dual-sync split) is profiled
/// on the *healthy* fabric — exactly as [`simulate_coarse`] does — and the
/// measured run then travels under the plan: link degradations stretch
/// serialization, flapped links reroute (or are waited out), transient
/// corruption triggers retry-with-backoff, a dropped memory device triggers
/// proxy failover with routing-table repair, and losing the proxy tier
/// degrades synchronization to GPU-only allreduce.
///
/// An **empty plan takes the fast path**: the run is byte-identical to
/// [`simulate_coarse`] and the fault accounting is all zeros. A non-empty
/// plan is byte-deterministic under its seed: two runs of the same plan
/// produce identical results.
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn simulate_coarse_faulty(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    plan: &FaultPlan,
    policy: &ResiliencePolicy,
) -> FaultyTrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let (deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    if plan.is_empty() {
        let period = deployment.run(best_m, iterations);
        return FaultyTrainResult {
            result: TrainResult::new(period, deployment.plan.compute_time(), global_batch),
            injected_faults: 0,
            retries: 0,
            failovers: 0,
            degraded_to_gpu: false,
            recovery_time: SimDuration::ZERO,
        };
    }
    let (period, stats) = deployment.run_faulty(best_m, iterations, plan, policy);
    FaultyTrainResult {
        result: TrainResult::new(period, deployment.plan.compute_time(), global_batch),
        injected_faults: plan.len(),
        retries: stats.retries,
        failovers: stats.failovers,
        degraded_to_gpu: stats.degraded_to_gpu,
        recovery_time: stats.recovery,
    }
}

/// Deterministic FNV-1a fingerprint of a training result: the exact bit
/// patterns of every field, so two results fingerprint equal iff they are
/// byte-identical. Feed the fault-free run's fingerprint to the oracle hub
/// as [`OracleEvent::ReferenceFingerprint`] and the observed run's as
/// [`OracleEvent::RunFingerprint`]; the clean-run-equivalence oracle does
/// the rest.
pub fn result_fingerprint(r: &TrainResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(r.iteration_time.as_nanos());
    mix(r.compute_time.as_nanos());
    mix(r.blocked_comm.as_nanos());
    mix(r.throughput.to_bits());
    h
}

/// [`simulate_coarse_faulty`] with an [`OracleHub`] armed: the run emits
/// the full oracle event stream — fabric transfer ledger entries and fault
/// bites (from the engine), per-shard attempt/reset records, stall and
/// corruption bites, iteration boundaries, fingerprints, and the final
/// `RunEnd` — so every built-in oracle audits the run as it happens.
///
/// `reference` is the fault-free run's [`result_fingerprint`]; when given,
/// the clean-run-equivalence oracle checks that a run whose faults never
/// bit anything reproduces it exactly. `sabotage` deliberately breaks a
/// protocol invariant (see [`Sabotage`]) so self-tests can prove the
/// oracles catch real bugs; pass [`Sabotage::None`] otherwise.
///
/// Observation is passive: the returned result is byte-identical to
/// [`simulate_coarse_faulty`]'s regardless of hub or sabotage.
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_coarse_faulty_observed(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    plan: &FaultPlan,
    policy: &ResiliencePolicy,
    hub: &OracleHub,
    sabotage: Sabotage,
    reference: Option<u64>,
) -> FaultyTrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let (mut deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    deployment.oracles = Some(hub.clone());
    deployment.sabotage = sabotage;
    if let Some(hash) = reference {
        hub.emit(OracleEvent::ReferenceFingerprint { hash });
    }
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    let (result, end) = if plan.is_empty() {
        let period = deployment.run(best_m, iterations);
        (
            FaultyTrainResult {
                result: TrainResult::new(period, deployment.plan.compute_time(), global_batch),
                injected_faults: 0,
                retries: 0,
                failovers: 0,
                degraded_to_gpu: false,
                recovery_time: SimDuration::ZERO,
            },
            SimTime::ZERO,
        )
    } else {
        let (period, stats) = deployment.run_faulty(best_m, iterations, plan, policy);
        (
            FaultyTrainResult {
                result: TrainResult::new(period, deployment.plan.compute_time(), global_batch),
                injected_faults: plan.len(),
                retries: stats.retries,
                failovers: stats.failovers,
                degraded_to_gpu: stats.degraded_to_gpu,
                recovery_time: stats.recovery,
            },
            stats.end,
        )
    };
    hub.emit(OracleEvent::RunFingerprint {
        hash: result_fingerprint(&result.result),
    });
    hub.emit(OracleEvent::RunEnd { at: end });
    result
}

/// Results of a recovery-engine run: the steady-state training result plus
/// the full detect → decide → recover → account ledger. All simulated-time
/// fields are exact sums over the run, so the result is byte-deterministic
/// under its plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveringTrainResult {
    /// Steady-state training result of the recovering run.
    pub result: TrainResult,
    /// Total wall time: first iteration start to last committed iteration,
    /// including every checkpoint, detection, backoff, restore, and
    /// re-executed iteration. The goodput denominator.
    pub wall: SimDuration,
    /// Number of fault entries in the injected plan.
    pub injected_faults: usize,
    /// Retransmissions of integrity-rejected sealed pushes.
    pub retries: u64,
    /// Elastic membership repairs (budget-exhausted transient failures:
    /// the suspect proxy evicted, routing rebuilt over survivors).
    pub repairs: u64,
    /// Restore episodes (hard failures: eviction plus rollback to the last
    /// committed pool checkpoint).
    pub restores: u64,
    /// Final membership epoch — the number of membership changes the run
    /// announced (0 means the initial view survived).
    pub membership_epoch: u64,
    /// Pool checkpoints committed.
    pub checkpoints: u64,
    /// Simulated time training stalled on checkpoint sealed-pushes.
    pub checkpoint_time: SimDuration,
    /// Bytes sealed-pushed into the pool by committed checkpoints.
    pub checkpoint_bytes: ByteSize,
    /// Simulated time spent coherently reading images back out.
    pub restore_time: SimDuration,
    /// Bytes coherently read back by restores.
    pub restore_bytes: ByteSize,
    /// Committed iterations rolled back by restores and re-executed.
    pub lost_iterations: u64,
    /// Simulated time charged to failure detection.
    pub detection_time: SimDuration,
    /// Simulated time spent backing off and waiting out outages.
    pub backoff_time: SimDuration,
    /// Mean time to recovery: failure observation to image restored,
    /// averaged over restore episodes ([`SimDuration::ZERO`] if none).
    pub mttr: SimDuration,
    /// True if the proxy tier was lost and sync degraded to GPU-only.
    pub degraded_to_gpu: bool,
}

impl RecoveringTrainResult {
    /// True if no fault fired and no recovery mechanism engaged (a
    /// zero-interval, empty-plan run is guaranteed clean and byte-identical
    /// to [`simulate_coarse`]).
    pub fn is_clean(&self) -> bool {
        self.retries == 0
            && self.repairs == 0
            && self.restores == 0
            && self.membership_epoch == 0
            && self.checkpoints == 0
            && !self.degraded_to_gpu
            && self.lost_iterations == 0
    }
}

fn recovering_result(
    deployment: &Deployment<'_>,
    global_batch: u32,
    plan: &FaultPlan,
    period: SimDuration,
    stats: RecoveryRunStats,
) -> RecoveringTrainResult {
    RecoveringTrainResult {
        result: TrainResult::new(period, deployment.plan.compute_time(), global_batch),
        wall: stats.wall,
        injected_faults: plan.len(),
        retries: stats.retries,
        repairs: stats.repairs,
        restores: stats.restores,
        membership_epoch: stats.membership_epoch,
        checkpoints: stats.checkpoints,
        checkpoint_time: stats.checkpoint_time,
        checkpoint_bytes: ByteSize::bytes(stats.checkpoint_bytes),
        restore_time: stats.restore_time,
        restore_bytes: ByteSize::bytes(stats.restore_bytes),
        lost_iterations: stats.lost_iterations,
        detection_time: stats.detection_time,
        backoff_time: stats.backoff_time,
        mttr: if stats.restores == 0 {
            SimDuration::ZERO
        } else {
            stats.mttr_total / stats.restores
        },
        degraded_to_gpu: stats.degraded_to_gpu,
    }
}

/// Simulates COARSE training under the full recovery engine: pool
/// checkpoints every [`RecoveryPolicy::checkpoint_interval`] iterations
/// become real sealed-push traffic, transient failures repair the
/// membership elastically (epoch-stamped evictions), and hard failures
/// restore from the last committed pool checkpoint — rolling the run back
/// and re-executing the lost iterations, all on the simulated clock.
///
/// Unlike [`simulate_coarse_faulty`] there is no empty-plan fast path:
/// a zero-fault run still pays its checkpoint cadence (that is the
/// overhead being measured), and with `checkpoint_interval = 0` it times
/// identically to [`simulate_coarse`]. Byte-deterministic under its plan.
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`], plus a dropped *worker* (the
/// proxy tier is the only failover domain).
pub fn simulate_coarse_recovering(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> RecoveringTrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let (deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    let (period, stats) = deployment.run_recovering(best_m, iterations, plan, policy);
    recovering_result(&deployment, global_batch, plan, period, stats)
}

/// [`simulate_coarse_recovering`] with an [`OracleHub`] armed: alongside
/// the fault-run event stream the engine announces every membership epoch
/// ([`OracleEvent::MembershipEpoch`]) for the membership-monotonicity
/// oracle, and iteration ends keep a monotone index across rollbacks so
/// re-execution never trips the time or FIFO oracles. `reference` is the
/// fault-free fingerprint for clean-run equivalence. Observation is
/// passive: the returned result is byte-identical to
/// [`simulate_coarse_recovering`]'s.
///
/// # Panics
///
/// Same conditions as [`simulate_coarse_recovering`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_coarse_recovering_observed(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
    hub: &OracleHub,
    reference: Option<u64>,
) -> RecoveringTrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let (mut deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    deployment.oracles = Some(hub.clone());
    if let Some(hash) = reference {
        hub.emit(OracleEvent::ReferenceFingerprint { hash });
    }
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    let (period, stats) = deployment.run_recovering(best_m, iterations, plan, policy);
    let result = recovering_result(&deployment, global_batch, plan, period, stats);
    hub.emit(OracleEvent::RunFingerprint {
        hash: result_fingerprint(&result.result),
    });
    hub.emit(OracleEvent::RunEnd { at: stats.end });
    result
}

/// [`simulate_coarse_faulty`] with a recording tracer attached: the trace
/// carries one instant per injected fault (category `fault`) plus an
/// instant per resilience action, alongside the usual fabric spans.
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn record_coarse_faulty_trace(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    plan: &FaultPlan,
    policy: &ResiliencePolicy,
) -> (FaultyTrainResult, Trace) {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let rec = RecordingTracer::new();
    let handle: SharedTracer = rec.handle();
    let (mut deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    deployment.tracer = Some(handle);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    let result = if plan.is_empty() {
        let period = deployment.run(best_m, iterations);
        FaultyTrainResult {
            result: TrainResult::new(period, deployment.plan.compute_time(), global_batch),
            injected_faults: 0,
            retries: 0,
            failovers: 0,
            degraded_to_gpu: false,
            recovery_time: SimDuration::ZERO,
        }
    } else {
        let (period, stats) = deployment.run_faulty(best_m, iterations, plan, policy);
        FaultyTrainResult {
            result: TrainResult::new(period, deployment.plan.compute_time(), global_batch),
            injected_faults: plan.len(),
            retries: stats.retries,
            failovers: stats.failovers,
            degraded_to_gpu: stats.degraded_to_gpu,
            recovery_time: stats.recovery,
        }
    };
    (result, rec.take())
}

/// Builds the deployment (fabric, tables, bandwidths, dual-sync pilot) for
/// a COARSE run and returns it with the chosen proxy budget.
fn prepare<'a>(
    machine: &'a Machine,
    partition: &Partition,
    model: &'a ModelProfile,
    batch_per_gpu: u32,
) -> (Deployment<'a>, ByteSize) {
    prepare_traced(machine, partition, model, batch_per_gpu, None, None)
}

/// [`prepare`], optionally recording the dual-sync decision process
/// (analytic candidates, pilot timings, chosen `m*`) on `tracer` and
/// publishing the decision gauges (`dualsync.chosen_m_bytes`,
/// `dualsync.pilot_runs`) into `metrics`. The pilot runs themselves stay
/// untraced and unmetered so the final trace/snapshot holds exactly one
/// run's events.
fn prepare_traced<'a>(
    machine: &'a Machine,
    partition: &Partition,
    model: &'a ModelProfile,
    batch_per_gpu: u32,
    tracer: Option<&SharedTracer>,
    metrics: Option<&MetricRegistry>,
) -> (Deployment<'a>, ByteSize) {
    assert!(
        partition.mem_devices.len() >= 2,
        "COARSE needs at least two memory devices"
    );
    let gpu = gpu_for(machine.sku());
    let plan = IterationPlan::new(model, &gpu, batch_per_gpu);
    let workers = partition.workers.clone();
    let mem_devices = partition.mem_devices.clone();

    // Deploy the dedicated CCI fabric between each node's memory devices
    // (Fig. 4's dashed links). The paper's evaluation *emulates* memory
    // devices with GPUs (§IV-B); on a machine without GPU peer-to-peer (the
    // AWS T4 instance) that emulation cannot provide a device-to-device
    // fabric, so proxy collectives fall back to the staged PCIe path — the
    // reason COARSE trails AllReduce slightly there (§V-D).
    let emulated_p2p = machine.topology().p2p_enabled();
    let mut deployed = machine.clone();
    let mut node_mem_rings: Vec<Vec<DeviceId>> = Vec::new();
    for n in 0..machine.nodes() {
        let on_node: Vec<DeviceId> = mem_devices
            .iter()
            .copied()
            .filter(|&d| machine.topology().device(d).node() == n)
            .collect();
        if on_node.len() >= 2 && emulated_p2p {
            deployed.augment_cci_ring(&on_node);
        }
        if !on_node.is_empty() {
            node_mem_rings.push(on_node);
        }
    }
    let proxy_mask: LinkMask = if emulated_p2p { CCI_ONLY } else { PCIE_ONLY };

    // Profile routing tables against the deployed fabric (PCIe paths only,
    // §IV-B), spreading bandwidth ties across clients.
    let tables: Vec<RoutingTable> = workers
        .iter()
        .enumerate()
        .map(|(w, &worker)| {
            build_routing_table_for(deployed.topology(), worker, &mem_devices, w, SimTime::ZERO)
        })
        .collect();

    // Measured collective bandwidths seed the analytic optimizer.
    let proxy_bw = {
        let intra = probe::measure_unidirectional(
            deployed.topology(),
            node_mem_rings[0][0],
            node_mem_rings[0][std::cmp::min(1, node_mem_rings[0].len() - 1)],
            ByteSize::mib(64),
            proxy_mask,
        );
        let cross = if node_mem_rings.len() > 1 {
            probe::measure_unidirectional(
                deployed.topology(),
                node_mem_rings[0][0],
                node_mem_rings[1][0],
                ByteSize::mib(64),
                CCI_OR_NETWORK,
            )
        } else {
            f64::INFINITY
        };
        Bandwidth::bytes_per_sec(intra.min(cross))
    };
    let gpu_ring = deployed
        .nvlink_ring(&workers)
        .unwrap_or_else(|| workers.clone());
    // Per-node worker rings for the hierarchical GPU collective.
    let node_gpu_rings: Vec<Vec<DeviceId>> = (0..machine.nodes())
        .map(|n| {
            let on_node: Vec<DeviceId> = workers
                .iter()
                .copied()
                .filter(|&w| machine.topology().device(w).node() == n)
                .collect();
            deployed.nvlink_ring(&on_node).unwrap_or(on_node)
        })
        .filter(|r| !r.is_empty())
        .collect();
    let gpu_bw = if gpu_ring.len() >= 2 {
        Bandwidth::bytes_per_sec(probe::measure_unidirectional(
            deployed.topology(),
            gpu_ring[0],
            gpu_ring[1],
            ByteSize::mib(64),
            LinkMask::ALL,
        ))
    } else {
        Bandwidth::gib_per_sec(1000.0)
    };

    let inputs = DualSyncInputs {
        workers: workers.len(),
        total_bytes: model.total_bytes(),
        proxy_bandwidth: proxy_bw,
        gpu_bandwidth: gpu_bw,
        forward: plan.forward_time(),
        backward: plan.backward_time(),
    };
    // Decision events are stamped at SimTime::ZERO: the deployment decision
    // logically precedes the traced run, and a fixed stamp keeps traces
    // byte-identical across runs.
    let analytic = match tracer {
        Some(t) if t.is_enabled() => dualsync::optimize_traced(&inputs, t, SimTime::ZERO),
        _ => dualsync::optimize(&inputs),
    };

    let needed: BTreeMap<usize, SimDuration> = plan
        .forward_needs()
        .iter()
        .map(|n| (n.tensor, n.needed))
        .collect();

    let deployment = Deployment {
        machine,
        proxy_mask,
        deployed,
        plan,
        model,
        workers: workers.clone(),
        mem_devices,
        node_mem_rings,
        tables,
        gpu_ring,
        node_gpu_rings,
        needed,
        input_bytes: ByteSize::ZERO,
        tracer: None,
        metrics: None,
        oracles: None,
        profiler: None,
        critpath: None,
        sabotage: Sabotage::None,
    };

    // Pilot runs pick the m that minimizes the *measured* period.
    let n = model.total_bytes();
    let mut candidates = vec![analytic.proxy_bytes, ByteSize::ZERO, n];
    for eighths in 1..8u64 {
        candidates.push(ByteSize::bytes(n.as_u64() * eighths / 8));
    }
    candidates.sort_unstable();
    candidates.dedup();
    let pilot_runs = candidates.len();
    let debug = pilot_debug();
    let best_m = candidates
        .into_iter()
        .map(|m| {
            let period = deployment.run(m, 2);
            if debug {
                eprintln!("[coarse]   pilot m={m} -> period={period}");
            }
            if let Some(t) = tracer.filter(|t| t.is_enabled()) {
                let track = t.track("dualsync");
                t.counter(
                    SimTime::ZERO,
                    coarse_simcore::trace::category::DUALSYNC,
                    track,
                    &format!("pilot period(m={m})"),
                    period.as_secs_f64(),
                );
            }
            (period, m)
        })
        .min()
        .map(|(_, m)| m)
        // simlint: allow(panic-in-library, reason = "the pilot candidate grid is statically non-empty")
        .expect("non-empty candidate grid");
    if let Some(t) = tracer.filter(|t| t.is_enabled()) {
        let track = t.track("dualsync");
        t.instant(
            SimTime::ZERO,
            coarse_simcore::trace::category::DUALSYNC,
            track,
            &format!("pilot chose m* = {best_m} of {}", model.total_bytes()),
        );
    }
    if let Some(m) = metrics {
        m.gauge(metric::DUALSYNC_CHOSEN_M_BYTES, best_m.as_f64());
        m.gauge(metric::DUALSYNC_PILOT_RUNS, pilot_runs as f64);
    }

    if pilot_debug() {
        eprintln!(
            "[coarse] {}: proxy_bw={:.1}GiB/s gpu_bw={:.1}GiB/s analytic_m={} chosen_m={} of n={}",
            machine.name(),
            proxy_bw.as_gib_per_sec(),
            gpu_bw.as_gib_per_sec(),
            analytic.proxy_bytes,
            best_m,
            n,
        );
    }

    (deployment, best_m)
}

/// Simulates COARSE with the input pipeline modeled: every iteration each
/// worker prefetches its batch (`batch × dataset sample bytes`) from host
/// memory over the same PCIe tree the parameter traffic uses.
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn simulate_coarse_with_input(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    dataset: &coarse_models::dataset::Dataset,
    batch_per_gpu: u32,
    iterations: u32,
) -> TrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let (mut deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    deployment.input_bytes =
        ByteSize::bytes(dataset.sample_bytes().as_u64() * batch_per_gpu as u64);
    let period = deployment.run(best_m, iterations);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    TrainResult::new(period, deployment.plan.compute_time(), global_batch)
}

/// Runs COARSE for three iterations and returns the phase timeline of the
/// final (steady-state) iteration plus its period — the data behind the
/// Gantt rendering in [`crate::timeline`].
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn trace_coarse(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
) -> crate::timeline::IterationTrace {
    let (deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    let (period, _, spans) = deployment.run_inner(best_m, 3, true);
    crate::timeline::IterationTrace::new(spans, period)
}

/// Runs COARSE with a recording tracer attached and returns the training
/// result together with the full structured trace: fabric link-occupancy
/// spans, sync-core ring steps, synthesized proxy queue-depth gauges,
/// per-iteration training phases, and the dual-sync decision events from
/// the pilot grid. Pilot runs stay untraced, so the trace holds exactly
/// one run's simulated events; attaching the tracer never changes the
/// simulated timings (the returned result equals [`simulate_coarse`]'s).
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn record_coarse_trace(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
) -> (TrainResult, Trace) {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let rec = RecordingTracer::new();
    let handle: SharedTracer = rec.handle();
    let (mut deployment, best_m) = prepare_traced(
        machine,
        partition,
        model,
        batch_per_gpu,
        Some(&handle),
        None,
    );
    deployment.tracer = Some(handle);
    let period = deployment.run(best_m, iterations);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    let result = TrainResult::new(period, deployment.plan.compute_time(), global_batch);
    (result, rec.take())
}

/// Runs COARSE with a metric registry attached and returns the training
/// result together with the frozen [`MetricsSnapshot`]: fabric transfer
/// and byte counters, ring-step counts, per-iteration phase-time
/// histograms, blocked time, and the dual-sync decision gauges. Pilot
/// runs stay unmetered, so the snapshot covers exactly one run; attaching
/// the registry never changes the simulated timings (the returned result
/// equals [`simulate_coarse`]'s).
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn record_coarse_metrics(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
) -> (TrainResult, MetricsSnapshot) {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let registry = MetricRegistry::new();
    let (mut deployment, best_m) = prepare_traced(
        machine,
        partition,
        model,
        batch_per_gpu,
        None,
        Some(&registry),
    );
    deployment.metrics = Some(registry.clone());
    let period = deployment.run(best_m, iterations);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    let result = TrainResult::new(period, deployment.plan.compute_time(), global_batch);
    (result, registry.snapshot())
}

/// Runs COARSE with a self-profiler attached to the final run: the transfer
/// engine, kernel hooks, and training phases all record into `profiler`
/// (regions `train.*`, `fabric.link`, `cci.sync_ring`), and the synthesized
/// per-proxy queue depth feeds the `train.proxy_parked` histogram. Pilot
/// runs stay unprofiled, so the profile covers exactly one run; attaching
/// the profiler never changes the simulated timings (the returned result
/// equals [`simulate_coarse`]'s).
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn record_coarse_profile(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    profiler: Profiler,
) -> TrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let (mut deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    deployment.profiler = Some(profiler);
    let period = deployment.run(best_m, iterations);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    TrainResult::new(period, deployment.plan.compute_time(), global_batch)
}

/// Runs COARSE with a critical-path recorder attached to the final run: the
/// transfer engine, collectives, and training phases all register dependency
/// nodes (`compute` spans, fabric busy/queue nodes, ring-step and barrier
/// nodes, pull-ready gates), each iteration boundary is marked as a sink,
/// and the returned rows are the run's busiest directed links with their
/// utilization over the simulated horizon. Pilot runs stay unrecorded, so
/// the graph covers exactly one run; attaching the recorder never changes
/// the simulated timings (the returned result equals [`simulate_coarse`]'s).
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn record_coarse_explain(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
    critpath: CritPath,
) -> (TrainResult, Vec<(String, f64)>) {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let (mut deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    deployment.critpath = Some(critpath);
    let (period, engine) = deployment.run_collecting(best_m, iterations);
    let horizon = SimTime::ZERO + period * u64::from(iterations);
    let links = engine
        .busiest_links(horizon, usize::MAX)
        .into_iter()
        .map(|(lid, util)| {
            let topo = engine.topology();
            let link = topo.link(lid);
            (
                format!(
                    "{} -> {} ({:?})",
                    topo.device(link.src()).name(),
                    topo.device(link.dst()).name(),
                    link.class()
                ),
                util,
            )
        })
        .collect();
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    (
        TrainResult::new(period, deployment.plan.compute_time(), global_batch),
        links,
    )
}

/// Runs COARSE and reports the `top_n` busiest directed links — the
/// congestion hotspots of one training run (diagnostic companion to
/// [`simulate_coarse`]). Returns `(link description, utilization)` rows in
/// descending order.
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn coarse_hotspots(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    top_n: usize,
) -> Vec<(String, f64)> {
    let (deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    let (period, engine) = deployment.run_collecting(best_m, 3);
    let horizon = SimTime::ZERO + period * 3;
    engine
        .busiest_links(horizon, top_n)
        .into_iter()
        .map(|(lid, util)| {
            let topo = engine.topology();
            let link = topo.link(lid);
            (
                format!(
                    "{} -> {} ({:?})",
                    topo.device(link.src()).name(),
                    topo.device(link.dst()).name(),
                    link.class()
                ),
                util,
            )
        })
        .collect()
}

/// Splits a payload into wire shards of `shard` bytes (remainder last); a
/// payload smaller than two full shards travels whole. Allocation-free:
/// push/pull inner loops iterate this once per (tensor, worker).
fn shard_sizes(size: ByteSize, shard: ByteSize) -> impl Iterator<Item = ByteSize> {
    let (full, tail) = if size.as_u64() < 2 * shard.as_u64() {
        (0, Some(size))
    } else {
        let rem = size.as_u64() % shard.as_u64();
        (
            size.as_u64() / shard.as_u64(),
            (rem > 0).then(|| ByteSize::bytes(rem)),
        )
    };
    std::iter::repeat_n(shard, full as usize).chain(tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::simulate_allreduce;
    use crate::dense::simulate_dense;
    use coarse_fabric::machines::{aws_t4, aws_v100, sdsc_p100, PartitionScheme};
    use coarse_models::zoo::{bert_large, resnet50};

    #[test]
    fn shard_sizes_tile_payload() {
        let total: u64 = shard_sizes(ByteSize::bytes(10_000), ByteSize::bytes(3000))
            .map(|s| s.as_u64())
            .sum();
        assert_eq!(total, 10_000);
        assert_eq!(
            shard_sizes(ByteSize::bytes(100), ByteSize::bytes(3000)).count(),
            1
        );
    }

    #[test]
    fn explained_coarse_is_compute_dominated_and_unperturbed() {
        let m = aws_v100();
        let part = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let bare = simulate_coarse(&m, &part, &model, 2, 3);
        let cp = CritPath::new();
        let (wired, links) = record_coarse_explain(&m, &part, &model, 2, 3, cp.clone());
        assert_eq!(bare, wired, "recording must not perturb the result");
        assert!(!links.is_empty(), "utilization rows for every used link");
        let ex = cp.analyze();
        assert_eq!(ex.iterations.len(), 3);
        let sum: f64 = crit_class::ALL.iter().map(|c| ex.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12, "fractions sum to {sum}");
        // COARSE overlaps communication with the backward pass, so compute
        // carries the bulk of the critical path (Fig. 16's headline).
        assert_eq!(
            ex.dominant(),
            Some(crit_class::COMPUTE),
            "blame: {:?}",
            ex.blame
        );
    }

    #[test]
    fn coarse_beats_dense_everywhere() {
        for (machine, model, batch) in [
            (aws_v100(), bert_large(), 2u32),
            (sdsc_p100(), bert_large(), 2),
            (aws_t4(), resnet50(), 64),
        ] {
            let part = machine.partition(PartitionScheme::OneToOne);
            let coarse = simulate_coarse(&machine, &part, &model, batch, 3);
            let dense = simulate_dense(&machine, &part, &model, batch, 3);
            let speedup = coarse.speedup_over(&dense);
            assert!(
                speedup > 1.5,
                "{}: COARSE must clearly beat DENSE, got {speedup:.2}x",
                machine.name()
            );
        }
    }

    #[test]
    fn coarse_beats_allreduce_on_p100() {
        // §V-D: on SDSC P100 COARSE reduces blocked communication vs NCCL.
        let m = sdsc_p100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let coarse = simulate_coarse(&m, &p, &model, 2, 3);
        let allreduce = simulate_allreduce(&m, &p, &model, 2, 3);
        assert!(
            coarse.blocked_comm < allreduce.blocked_comm,
            "COARSE {:?} must beat AllReduce {:?} on P100",
            coarse.blocked_comm,
            allreduce.blocked_comm
        );
    }

    #[test]
    fn coarse_beats_allreduce_on_v100() {
        // §V-D Fig. 17d: COARSE reduces blocked communication 20–42% on the
        // V100 machine despite NCCL running over NVLink.
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let coarse = simulate_coarse(&m, &p, &model, 2, 3);
        let allreduce = simulate_allreduce(&m, &p, &model, 2, 3);
        assert!(
            coarse.blocked_comm < allreduce.blocked_comm,
            "COARSE {:?} must beat AllReduce {:?} on V100",
            coarse.blocked_comm,
            allreduce.blocked_comm
        );
    }

    #[test]
    fn input_pipeline_costs_little_for_these_workloads() {
        use coarse_models::dataset::Dataset;
        // ResNet-50's 37 MB/iteration input stream is small next to its
        // compute; the paper is justified in ignoring the input pipeline.
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = coarse_models::zoo::resnet50();
        let clean = simulate_coarse(&m, &p, &model, 64, 3);
        let with_input = simulate_coarse_with_input(&m, &p, &model, &Dataset::imagenet(), 64, 3);
        assert!(with_input.iteration_time >= clean.iteration_time);
        let overhead =
            with_input.iteration_time.as_secs_f64() / clean.iteration_time.as_secs_f64() - 1.0;
        assert!(
            overhead < 0.05,
            "input pipeline should cost <5%, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn hotspots_identify_busy_links() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let hot = coarse_hotspots(&m, &p, &bert_large(), 2, 5);
        assert_eq!(hot.len(), 5);
        // Utilizations are sorted descending and sane.
        for w in hot.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(hot[0].1 > 0.2, "top hotspot should be busy: {:?}", hot[0]);
        assert!(hot.iter().all(|(_, u)| *u <= 1.0 + 1e-9));
    }

    #[test]
    fn metrics_are_observation_only_and_deterministic() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let plain = simulate_coarse(&m, &p, &model, 2, 3);
        let (metered, snap) = record_coarse_metrics(&m, &p, &model, 2, 3);
        assert_eq!(
            plain.iteration_time, metered.iteration_time,
            "metrics must not perturb timing"
        );
        assert_eq!(snap.counter(metric::TRAIN_ITERATIONS), 3);
        assert!(snap.counter(metric::FABRIC_TRANSFERS) > 0);
        assert!(snap.counter(metric::RING_STEPS) > 0);
        assert!(snap.gauge(metric::DUALSYNC_CHOSEN_M_BYTES).is_some());
        assert!(snap.histogram(metric::TRAIN_FP_NS).is_some());
        // Byte-deterministic across repeated runs.
        let (_, snap2) = record_coarse_metrics(&m, &p, &model, 2, 3);
        assert_eq!(snap, snap2);
    }

    #[test]
    fn faulty_run_with_empty_plan_is_byte_identical() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let clean = simulate_coarse(&m, &p, &model, 2, 3);
        let faulty = simulate_coarse_faulty(
            &m,
            &p,
            &model,
            2,
            3,
            &FaultPlan::empty(),
            &ResiliencePolicy::default(),
        );
        assert!(faulty.is_clean());
        assert_eq!(clean, faulty.result, "empty plan must perturb nothing");
    }

    #[test]
    fn proxy_dropout_fails_over_with_nonzero_recovery() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let policy = ResiliencePolicy::default();
        let clean = simulate_coarse(&m, &p, &model, 2, 3);
        // Kill one proxy shortly after the run starts: the push path hits
        // TransferError::DeviceDown mid-iteration, fails over, repairs the
        // tables, and completes over the three survivors.
        let victim = p.mem_devices[1].index() as u32;
        let plan =
            FaultPlan::new(11).drop_device(victim, SimTime::ZERO + SimDuration::from_millis(1));
        let a = simulate_coarse_faulty(&m, &p, &model, 2, 3, &plan, &policy);
        assert_eq!(a.failovers, 1, "exactly one proxy fails over");
        assert!(!a.degraded_to_gpu, "three survivors keep the proxy tier");
        assert!(
            a.recovery_time > SimDuration::ZERO,
            "failover must charge detection time"
        );
        assert!(
            a.result.iteration_time >= clean.iteration_time,
            "losing a proxy cannot speed the run up"
        );
        // Byte-deterministic across same-seed runs.
        let b = simulate_coarse_faulty(&m, &p, &model, 2, 3, &plan, &policy);
        assert_eq!(a, b, "same plan + seed must reproduce exactly");
    }

    #[test]
    fn losing_every_proxy_degrades_to_gpu_only() {
        let m = sdsc_p100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let mut plan = FaultPlan::new(7);
        for &d in &p.mem_devices {
            plan = plan.drop_device(d.index() as u32, SimTime::ZERO);
        }
        let r = simulate_coarse_faulty(&m, &p, &model, 2, 3, &plan, &ResiliencePolicy::default());
        assert!(r.degraded_to_gpu, "no survivors: GPU-only degradation");
        assert_eq!(r.failovers as usize, p.mem_devices.len());
        assert!(r.result.iteration_time > SimDuration::ZERO);
    }

    #[test]
    fn transient_corruption_retries_with_backoff() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = resnet50();
        let policy = ResiliencePolicy::default();
        let mut plan = FaultPlan::new(99);
        for &d in &p.mem_devices {
            plan = plan.corrupt_transfers(d.index() as u32, SimTime::ZERO, SimTime::MAX, 300_000);
        }
        let r = simulate_coarse_faulty(&m, &p, &model, 64, 3, &plan, &policy);
        assert!(r.retries > 0, "a 30% corruption rate must force retries");
        assert_eq!(r.failovers, 0);
        assert!(r.recovery_time > SimDuration::ZERO, "backoff accumulates");
        let again = simulate_coarse_faulty(&m, &p, &model, 64, 3, &plan, &policy);
        assert_eq!(r, again, "keyed-hash corruption must be reproducible");
    }

    #[test]
    fn faulty_trace_carries_fault_instants() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = resnet50();
        let victim = p.mem_devices[0].index() as u32;
        let plan =
            FaultPlan::new(3).drop_device(victim, SimTime::ZERO + SimDuration::from_millis(1));
        let (r, trace) =
            record_coarse_faulty_trace(&m, &p, &model, 64, 3, &plan, &ResiliencePolicy::default());
        assert_eq!(r.failovers, 1);
        let faults: Vec<_> = trace.events_in(category::FAULT).collect();
        assert!(
            faults.len() >= 2,
            "expected the injected-fault instant plus a failover instant, got {}",
            faults.len()
        );
    }

    #[test]
    fn inert_plan_times_identically_to_the_clean_run() {
        // A non-empty plan whose windows close before any transfer starts
        // must not perturb the run: this is the contract the
        // clean-run-equivalence oracle (and the chaos runner's reference
        // fingerprint) relies on.
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let clean = simulate_coarse(&m, &p, &model, 2, 3);
        let inert = FaultPlan::new(11).corrupt_transfers(
            p.mem_devices[0].index() as u32,
            SimTime::ZERO,
            SimTime::from_nanos(1),
            1_000_000,
        );
        let faulty =
            simulate_coarse_faulty(&m, &p, &model, 2, 3, &inert, &ResiliencePolicy::default());
        assert_eq!(faulty.retries, 0, "the window must never intersect traffic");
        assert_eq!(
            faulty.result, clean,
            "a never-biting plan must be byte-identical to the clean run"
        );
    }

    #[test]
    fn recovering_zero_fault_zero_interval_matches_clean_run() {
        // The recovery engine with nothing to do must be invisible: no
        // checkpoint cadence, no faults, and a result byte-identical to
        // the plain simulator (the zero-perturbation contract).
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let clean = simulate_coarse(&m, &p, &model, 2, 3);
        let policy = RecoveryPolicy {
            checkpoint_interval: 0,
            ..RecoveryPolicy::default()
        };
        let r = simulate_coarse_recovering(&m, &p, &model, 2, 3, &FaultPlan::empty(), &policy);
        assert!(r.is_clean());
        assert_eq!(r.result, clean, "idle recovery engine must perturb nothing");
        assert!(r.wall > SimDuration::ZERO, "wall time is always measured");
    }

    #[test]
    fn checkpoint_cadence_is_real_simulated_traffic() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let free = RecoveryPolicy {
            checkpoint_interval: 0,
            ..RecoveryPolicy::default()
        };
        let every2 = RecoveryPolicy {
            checkpoint_interval: 2,
            ..RecoveryPolicy::default()
        };
        let baseline = simulate_coarse_recovering(&m, &p, &model, 2, 5, &FaultPlan::empty(), &free);
        let ckpt = simulate_coarse_recovering(&m, &p, &model, 2, 5, &FaultPlan::empty(), &every2);
        // 5 iterations at interval 2 checkpoint after iterations 2 and 4
        // (never after the last).
        assert_eq!(ckpt.checkpoints, 2);
        assert_eq!(
            ckpt.checkpoint_bytes,
            model.total_bytes() * 2,
            "each checkpoint mirrors the full image"
        );
        assert!(ckpt.checkpoint_time > SimDuration::ZERO);
        assert!(
            ckpt.wall > baseline.wall,
            "checkpoint pushes must cost wall time: {} vs {}",
            ckpt.wall,
            baseline.wall
        );
        assert_eq!(
            ckpt.wall,
            baseline.wall + ckpt.checkpoint_time,
            "a fault-free run's overhead is exactly its checkpoint stalls"
        );
    }

    #[test]
    fn hard_dropout_restores_from_the_pool() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let policy = RecoveryPolicy {
            checkpoint_interval: 1,
            ..RecoveryPolicy::default()
        };
        let victim = p.mem_devices[1].index() as u32;
        let plan =
            FaultPlan::new(11).drop_device(victim, SimTime::ZERO + SimDuration::from_millis(1));
        let a = simulate_coarse_recovering(&m, &p, &model, 2, 3, &plan, &policy);
        assert_eq!(a.restores, 1, "a dropped proxy is a restore, not a retry");
        assert_eq!(a.membership_epoch, 1, "one eviction announces one epoch");
        assert!(!a.degraded_to_gpu, "three survivors keep the proxy tier");
        assert!(a.mttr > SimDuration::ZERO, "an episode has a length");
        assert_eq!(
            a.restore_bytes,
            model.total_bytes(),
            "one restore reads the whole image back"
        );
        assert!(a.detection_time > SimDuration::ZERO);
        let b = simulate_coarse_recovering(&m, &p, &model, 2, 3, &plan, &policy);
        assert_eq!(a, b, "same plan + seed must reproduce exactly");
    }

    #[test]
    fn uncheckpointed_work_is_lost_and_reexecuted() {
        // A dropout after the first commit, with no checkpoint interval,
        // rolls the run back to iteration 0: the committed iteration is
        // counted lost and re-executed on the wall clock.
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let clean = simulate_coarse(&m, &p, &model, 2, 3);
        let mid_second_iter = SimTime::ZERO + clean.iteration_time + clean.iteration_time / 2;
        let victim = p.mem_devices[2].index() as u32;
        let plan = FaultPlan::new(5).drop_device(victim, mid_second_iter);
        let none = RecoveryPolicy {
            checkpoint_interval: 0,
            ..RecoveryPolicy::default()
        };
        let every = RecoveryPolicy {
            checkpoint_interval: 1,
            ..RecoveryPolicy::default()
        };
        let lossy = simulate_coarse_recovering(&m, &p, &model, 2, 3, &plan, &none);
        assert_eq!(lossy.restores, 1);
        assert!(
            lossy.lost_iterations >= 1,
            "work past the last checkpoint is lost: {lossy:?}"
        );
        let protected = simulate_coarse_recovering(&m, &p, &model, 2, 3, &plan, &every);
        assert_eq!(protected.restores, 1);
        assert!(
            protected.lost_iterations < lossy.lost_iterations,
            "a tighter checkpoint interval must save committed work \
             ({} vs {})",
            protected.lost_iterations,
            lossy.lost_iterations
        );
    }

    #[test]
    fn recovering_observed_is_passive_and_epochs_are_monotone() {
        use coarse_simcore::oracle::{MembershipMonotonicity, OracleHub};
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let policy = RecoveryPolicy {
            checkpoint_interval: 1,
            ..RecoveryPolicy::default()
        };
        let victim = p.mem_devices[1].index() as u32;
        let plan =
            FaultPlan::new(11).drop_device(victim, SimTime::ZERO + SimDuration::from_millis(1));
        let bare = simulate_coarse_recovering(&m, &p, &model, 2, 3, &plan, &policy);
        let hub = OracleHub::with_builtins(SimDuration::from_secs(60));
        hub.register(Box::new(MembershipMonotonicity::new()));
        let observed =
            simulate_coarse_recovering_observed(&m, &p, &model, 2, 3, &plan, &policy, &hub, None);
        assert_eq!(bare, observed, "observation must not perturb the run");
        assert!(hub.violations().is_empty(), "{:?}", hub.violations());
    }

    #[test]
    fn coarse_overlaps_most_communication() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let r = simulate_coarse(&m, &p, &bert_large(), 2, 3);
        // Most of the 1.25 GiB sync hides behind compute.
        assert!(
            r.gpu_utilization() > 0.6,
            "GPU utilization {:.2} too low",
            r.gpu_utilization()
        );
    }
}
