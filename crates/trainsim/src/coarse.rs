//! The COARSE training simulator: streaming pushes overlapped with the
//! backward pass, per-tensor proxy collectives over the dedicated CCI
//! device fabric, dual synchronization of the shallow layers on the worker
//! GPUs, and pulls racing the pushes on the opposite bus direction.
//!
//! The dual-sync split `m` is chosen the way the paper's profiler does:
//! the closed-form optimum of §III-F seeds a small candidate grid, and
//! short pilot runs (a few timed iterations each) pick the split that
//! actually minimizes the iteration period on this fabric — capturing the
//! push/pull contention the analytic model abstracts away.

use std::collections::{BTreeMap, HashMap};

use coarse_cci::synccore::RingDirection;
use coarse_collectives::timed::{hierarchical_allreduce, ring_allreduce};
use coarse_core::dualsync::{self, DualSyncInputs};
use coarse_core::profiler::build_routing_table_for;
use coarse_core::routing::RoutingTable;
use coarse_fabric::device::DeviceId;
use coarse_fabric::engine::TransferEngine;
use coarse_fabric::machines::{Machine, Partition};
use coarse_fabric::probe;
use coarse_fabric::topology::{Link, LinkClass};
use coarse_models::profile::ModelProfile;
use coarse_models::training::IterationPlan;
use coarse_simcore::metrics::{name as metric, MetricRegistry, MetricsSnapshot};
use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::trace::{category, RecordingTracer, SharedTracer, Trace, TrackId};
use coarse_simcore::units::{Bandwidth, ByteSize};

use crate::config::TrainResult;
use crate::gpu_for;

/// Proxy-path gradients are fused into buckets of at least this many bytes
/// before the cross-device collective (the standard gradient-fusion
/// optimization; keeps ring segments large enough to run links at full
/// effective bandwidth).
const BUCKET_TARGET: ByteSize = ByteSize::mib(32);

fn pcie_only(l: &Link) -> bool {
    l.class() == LinkClass::Pcie
}

fn cci_only(l: &Link) -> bool {
    l.class() == LinkClass::Cci
}

fn cci_or_network(l: &Link) -> bool {
    matches!(
        l.class(),
        LinkClass::Cci | LinkClass::Network | LinkClass::Pcie
    )
}

/// Everything fixed about a deployment, shared by pilot and final runs.
struct Deployment<'a> {
    machine: &'a Machine,
    /// Link filter for proxy-to-proxy collectives: the dedicated CCI fabric
    /// normally; the staged PCIe path on machines whose emulation cannot do
    /// peer-to-peer (the paper's AWS T4, §V-D).
    proxy_filter: fn(&Link) -> bool,
    deployed: Machine,
    plan: IterationPlan,
    model: &'a ModelProfile,
    workers: Vec<DeviceId>,
    mem_devices: Vec<DeviceId>,
    node_mem_rings: Vec<Vec<DeviceId>>,
    tables: Vec<RoutingTable>,
    gpu_ring: Vec<DeviceId>,
    /// Per-node worker rings for the hierarchical GPU-path collective on
    /// clusters (NCCL's intra-node-then-network decomposition).
    node_gpu_rings: Vec<Vec<DeviceId>>,
    needed: HashMap<usize, SimDuration>,
    /// Host-to-worker input bytes prefetched each iteration (0 = input
    /// pipeline not modeled).
    input_bytes: ByteSize,
    /// Trace sink for full-detail runs; pilots run untraced.
    tracer: Option<SharedTracer>,
    /// Metric sink for full-detail runs; pilots run unmetered.
    metrics: Option<MetricRegistry>,
}

/// Interned training-phase tracks of one traced run.
struct TrainTracks {
    iter: TrackId,
    compute: TrackId,
    push: TrackId,
    collective: TrackId,
    pull: TrackId,
    /// Per-proxy queue-occupancy tracks, interned on first arrival.
    proxies: HashMap<DeviceId, TrackId>,
}

impl Deployment<'_> {
    /// Runs `iterations` and returns the steady-state period for a given
    /// proxy-path byte budget `m`.
    fn run(&self, proxy_budget: ByteSize, iterations: u32) -> SimDuration {
        self.run_collecting(proxy_budget, iterations).0
    }

    /// Like [`run`](Self::run), but also returns the engine so callers can
    /// inspect link utilization (congestion hotspots).
    fn run_collecting(
        &self,
        proxy_budget: ByteSize,
        iterations: u32,
    ) -> (SimDuration, TransferEngine) {
        let (period, engine, _) = self.run_inner(proxy_budget, iterations, false);
        (period, engine)
    }

    /// Full-detail run: also records the phase spans of the **last**
    /// iteration for timeline rendering.
    fn run_inner(
        &self,
        proxy_budget: ByteSize,
        iterations: u32,
        trace_last: bool,
    ) -> (SimDuration, TransferEngine, Vec<crate::timeline::PhaseSpan>) {
        let plan = &self.plan;
        let model = self.model;
        // Assign the first `m` emitted bytes to the proxy path.
        let mut proxy_path = vec![false; model.tensors().len()];
        let mut cum = ByteSize::ZERO;
        for ev in plan.gradients() {
            if cum < proxy_budget {
                proxy_path[ev.tensor] = true;
                cum += model.tensors()[ev.tensor].byte_size();
            }
        }
        let gpu_bytes: ByteSize = model
            .tensors()
            .iter()
            .enumerate()
            .filter(|&(i, _)| !proxy_path[i])
            .map(|(_, t)| t.byte_size())
            .sum();

        let mut engine = TransferEngine::new(self.deployed.topology().clone());
        if let Some(m) = &self.metrics {
            engine.set_metrics(m.clone());
        }
        let tracer = self.tracer.as_ref().filter(|t| t.is_enabled()).cloned();
        let mut tracks = tracer.as_ref().map(|t| {
            engine.set_tracer(t.clone());
            TrainTracks {
                iter: t.track("train: iteration"),
                compute: t.track("train: compute"),
                push: t.track("train: push"),
                collective: t.track("train: collective"),
                pull: t.track("train: pull"),
                proxies: HashMap::new(),
            }
        });
        // Shards parked at each proxy since its last collective (the
        // analytic run never instantiates ParameterProxy objects, so the
        // queue-depth gauge is synthesized from shard arrivals here).
        let mut parked: BTreeMap<DeviceId, u64> = BTreeMap::new();
        let multi_node = self.machine.nodes() > 1;
        let mut start = SimTime::ZERO;
        let mut first_period_end = SimTime::ZERO;
        let mut spans: Vec<crate::timeline::PhaseSpan> = Vec::new();
        for k in 0..iterations {
            use crate::timeline::{PhaseKind, PhaseSpan};
            let tracing = trace_last && k + 1 == iterations;
            let forward_end = start + plan.forward_time();
            let backward_end = forward_end + plan.backward_time();
            let mut next_start = backward_end;
            if tracing {
                spans.push(PhaseSpan::new(
                    PhaseKind::Forward,
                    start,
                    forward_end,
                    "forward pass",
                ));
                spans.push(PhaseSpan::new(
                    PhaseKind::Backward,
                    forward_end,
                    backward_end,
                    "backward pass",
                ));
            }
            if let (Some(t), Some(tt)) = (&tracer, &tracks) {
                t.span(
                    start,
                    forward_end,
                    category::TRAIN,
                    tt.compute,
                    &format!("forward (iter {k})"),
                );
                t.span(
                    forward_end,
                    backward_end,
                    category::TRAIN,
                    tt.compute,
                    &format!("backward (iter {k})"),
                );
            }
            // Input pipeline: prefetch the next iteration's batch from host
            // memory to each worker, contending with parameter traffic on
            // the PCIe tree. It must land before the next forward starts.
            if !self.input_bytes.is_zero() {
                for &worker in &self.workers {
                    let cpu = self
                        .deployed
                        .topology()
                        .host_cpu(self.deployed.topology().device(worker).node());
                    let rec = engine
                        .transfer_filtered(cpu, worker, self.input_bytes, start, pcie_only)
                        .expect("host reaches its workers");
                    next_start = next_start.max(rec.end);
                }
            }

            // Fuse proxy-path gradients into emission-ordered buckets.
            let mut buckets: Vec<Vec<&coarse_models::training::GradientEvent>> = Vec::new();
            let mut bucket_bytes = ByteSize::ZERO;
            for ev in plan.gradients() {
                if !proxy_path[ev.tensor] {
                    continue;
                }
                let size = model.tensors()[ev.tensor].byte_size();
                if buckets.is_empty() || bucket_bytes >= BUCKET_TARGET {
                    buckets.push(Vec::new());
                    bucket_bytes = ByteSize::ZERO;
                }
                buckets.last_mut().expect("just pushed").push(ev);
                bucket_bytes += size;
            }

            for (round, bucket) in buckets.iter().enumerate() {
                // Push: each worker streams each tensor's shards to its
                // routed proxy as the backward pass emits it. Track
                // per-proxy arrival so the collective pipelines.
                let mut proxy_ready: HashMap<DeviceId, SimTime> = HashMap::new();
                let mut latest_emit = forward_end;
                let mut total = ByteSize::ZERO;
                for ev in bucket {
                    let size = model.tensors()[ev.tensor].byte_size();
                    total += size;
                    let emitted = forward_end + ev.ready;
                    latest_emit = latest_emit.max(emitted);
                    for (w, &worker) in self.workers.iter().enumerate() {
                        let table = &self.tables[w];
                        let dest = table.route_for(size);
                        let mut t = emitted;
                        for s in shard_sizes(size, table.shard_size) {
                            let rec = engine
                                .transfer_filtered(worker, dest, s, t, pcie_only)
                                .expect("worker reaches its proxy");
                            t = rec.end;
                        }
                        let e = proxy_ready.entry(dest).or_insert(t);
                        *e = (*e).max(t);
                        if let (Some(tr), Some(tt)) = (&tracer, &mut tracks) {
                            let depth = parked.entry(dest).or_insert(0);
                            *depth += 1;
                            let track = *tt.proxies.entry(dest).or_insert_with(|| {
                                tr.track(&format!(
                                    "proxy {} queue",
                                    self.deployed.topology().device(dest).name()
                                ))
                            });
                            tr.counter(t, category::PROXY, track, "queue_depth", *depth as f64);
                        }
                    }
                }
                // Proxies with no local contribution are ready immediately.
                let ready_of = |d: DeviceId| proxy_ready.get(&d).copied().unwrap_or(latest_emit);

                // Proxy collective over the CCI device fabric; alternate
                // ring direction per bucket (Fig. 11b).
                let sync_end = if multi_node {
                    let ready: Vec<SimTime> = self
                        .node_mem_rings
                        .iter()
                        .flatten()
                        .map(|&d| ready_of(d))
                        .collect();
                    hierarchical_allreduce(
                        &mut engine,
                        &self.node_mem_rings,
                        total,
                        &ready,
                        cci_or_network,
                    )
                    .expect("memory devices are connected")
                    .end
                } else {
                    let ready: Vec<SimTime> =
                        self.mem_devices.iter().map(|&d| ready_of(d)).collect();
                    ring_allreduce(
                        &mut engine,
                        &self.mem_devices,
                        total,
                        &ready,
                        RingDirection::for_group(round),
                        self.proxy_filter,
                    )
                    .expect("memory devices are connected")
                    .end
                };
                // Pull: updated values flow back on the opposite direction.
                let mut pull_end = sync_end;
                for ev in bucket {
                    let size = model.tensors()[ev.tensor].byte_size();
                    for (w, &worker) in self.workers.iter().enumerate() {
                        let table = &self.tables[w];
                        let src = table.route_for(size);
                        let mut t = sync_end;
                        for s in shard_sizes(size, table.shard_size) {
                            let rec = engine
                                .transfer_filtered(src, worker, s, t, pcie_only)
                                .expect("proxy reaches its worker");
                            t = rec.end;
                        }
                        pull_end = pull_end.max(t);
                        // The tensor must be back before the next forward
                        // pass reaches its layer.
                        next_start = next_start.max(t - self.needed[&ev.tensor]);
                    }
                }
                if tracing || tracks.is_some() {
                    let first_emit = forward_end + bucket[0].ready;
                    let ready_min = self
                        .mem_devices
                        .iter()
                        .map(|&d| ready_of(d))
                        .min()
                        .unwrap_or(latest_emit);
                    let push_end =
                        latest_emit.max(*proxy_ready.values().max().unwrap_or(&latest_emit));
                    let coll_start = ready_min.max(first_emit);
                    if tracing {
                        spans.push(PhaseSpan::new(
                            PhaseKind::Push,
                            first_emit,
                            push_end,
                            format!("bucket {round} push ({total})"),
                        ));
                        spans.push(PhaseSpan::new(
                            PhaseKind::Collective,
                            coll_start,
                            sync_end,
                            format!("bucket {round} collective"),
                        ));
                        spans.push(PhaseSpan::new(
                            PhaseKind::Pull,
                            sync_end,
                            pull_end,
                            format!("bucket {round} pull"),
                        ));
                    }
                    if let (Some(t), Some(tt)) = (&tracer, &mut tracks) {
                        t.span(
                            first_emit,
                            push_end,
                            category::TRAIN,
                            tt.push,
                            &format!("bucket {round} push ({total})"),
                        );
                        t.span(
                            coll_start,
                            sync_end,
                            category::TRAIN,
                            tt.collective,
                            &format!("bucket {round} collective"),
                        );
                        t.span(
                            sync_end,
                            pull_end,
                            category::TRAIN,
                            tt.pull,
                            &format!("bucket {round} pull"),
                        );
                        // The collective consumed every parked shard.
                        for (&d, depth) in parked.iter_mut().filter(|(_, d)| **d > 0) {
                            *depth = 0;
                            let track = tt.proxies[&d];
                            t.counter(sync_end, category::PROXY, track, "queue_depth", 0.0);
                        }
                    }
                }
            }

            // Dual sync: shallow layers reduced by the GPUs, blocking, at
            // the end of the backward pass. On clusters the workers use the
            // hierarchical decomposition (intra-node NVLink, then network).
            let gpu_sync_end = if gpu_bytes.is_zero() {
                backward_end
            } else if multi_node {
                let total: usize = self.node_gpu_rings.iter().map(Vec::len).sum();
                hierarchical_allreduce(
                    &mut engine,
                    &self.node_gpu_rings,
                    gpu_bytes,
                    &vec![backward_end; total],
                    |_| true,
                )
                .expect("workers are connected")
                .end
            } else if self.gpu_ring.len() >= 2 {
                ring_allreduce(
                    &mut engine,
                    &self.gpu_ring,
                    gpu_bytes,
                    &vec![backward_end; self.gpu_ring.len()],
                    RingDirection::Forward,
                    |_| true,
                )
                .expect("workers are connected")
                .end
            } else {
                backward_end
            };
            if tracing && gpu_sync_end > backward_end {
                spans.push(PhaseSpan::new(
                    PhaseKind::GpuSync,
                    backward_end,
                    gpu_sync_end,
                    format!("GPU ring allreduce ({gpu_bytes})"),
                ));
            }
            if let (Some(t), Some(tt)) = (&tracer, &tracks) {
                if gpu_sync_end > backward_end {
                    t.span(
                        backward_end,
                        gpu_sync_end,
                        category::TRAIN,
                        tt.compute,
                        &format!("gpu sync (iter {k}, {gpu_bytes})"),
                    );
                }
            }
            next_start = next_start.max(gpu_sync_end);
            if let (Some(t), Some(tt)) = (&tracer, &tracks) {
                t.span(
                    start,
                    next_start,
                    category::TRAIN,
                    tt.iter,
                    &format!("iteration {k}"),
                );
                let blocked =
                    (next_start - start).saturating_sub(plan.forward_time() + plan.backward_time());
                t.counter(
                    next_start,
                    category::TRAIN,
                    tt.iter,
                    "blocked_us",
                    blocked.as_micros_f64(),
                );
            }
            if let Some(m) = &self.metrics {
                let blocked =
                    (next_start - start).saturating_sub(plan.forward_time() + plan.backward_time());
                m.inc(metric::TRAIN_ITERATIONS, 1);
                m.inc(metric::TRAIN_BLOCKED_NS, blocked.as_nanos());
                m.observe(metric::TRAIN_FP_NS, plan.forward_time().as_nanos() as f64);
                m.observe(metric::TRAIN_BP_NS, plan.backward_time().as_nanos() as f64);
                m.observe(
                    metric::TRAIN_SYNC_NS,
                    next_start
                        .saturating_duration_since(backward_end)
                        .as_nanos() as f64,
                );
            }

            if k == 0 {
                first_period_end = next_start;
            }
            start = next_start;
        }
        (
            (start - first_period_end) / (iterations as u64 - 1).max(1),
            engine,
            spans,
        )
    }
}

/// Simulates COARSE training on `machine`.
///
/// # Panics
///
/// Panics if the partition has fewer than two memory devices or
/// `iterations < 2`.
pub fn simulate_coarse(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
) -> TrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let (deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    let period = deployment.run(best_m, iterations);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    TrainResult::new(period, deployment.plan.compute_time(), global_batch)
}

/// Builds the deployment (fabric, tables, bandwidths, dual-sync pilot) for
/// a COARSE run and returns it with the chosen proxy budget.
fn prepare<'a>(
    machine: &'a Machine,
    partition: &Partition,
    model: &'a ModelProfile,
    batch_per_gpu: u32,
) -> (Deployment<'a>, ByteSize) {
    prepare_traced(machine, partition, model, batch_per_gpu, None, None)
}

/// [`prepare`], optionally recording the dual-sync decision process
/// (analytic candidates, pilot timings, chosen `m*`) on `tracer` and
/// publishing the decision gauges (`dualsync.chosen_m_bytes`,
/// `dualsync.pilot_runs`) into `metrics`. The pilot runs themselves stay
/// untraced and unmetered so the final trace/snapshot holds exactly one
/// run's events.
fn prepare_traced<'a>(
    machine: &'a Machine,
    partition: &Partition,
    model: &'a ModelProfile,
    batch_per_gpu: u32,
    tracer: Option<&SharedTracer>,
    metrics: Option<&MetricRegistry>,
) -> (Deployment<'a>, ByteSize) {
    assert!(
        partition.mem_devices.len() >= 2,
        "COARSE needs at least two memory devices"
    );
    let gpu = gpu_for(machine.sku());
    let plan = IterationPlan::new(model, &gpu, batch_per_gpu);
    let workers = partition.workers.clone();
    let mem_devices = partition.mem_devices.clone();

    // Deploy the dedicated CCI fabric between each node's memory devices
    // (Fig. 4's dashed links). The paper's evaluation *emulates* memory
    // devices with GPUs (§IV-B); on a machine without GPU peer-to-peer (the
    // AWS T4 instance) that emulation cannot provide a device-to-device
    // fabric, so proxy collectives fall back to the staged PCIe path — the
    // reason COARSE trails AllReduce slightly there (§V-D).
    let emulated_p2p = machine.topology().p2p_enabled();
    let mut deployed = machine.clone();
    let mut node_mem_rings: Vec<Vec<DeviceId>> = Vec::new();
    for n in 0..machine.nodes() {
        let on_node: Vec<DeviceId> = mem_devices
            .iter()
            .copied()
            .filter(|&d| machine.topology().device(d).node() == n)
            .collect();
        if on_node.len() >= 2 && emulated_p2p {
            deployed.augment_cci_ring(&on_node);
        }
        if !on_node.is_empty() {
            node_mem_rings.push(on_node);
        }
    }
    let proxy_filter: fn(&Link) -> bool = if emulated_p2p { cci_only } else { pcie_only };

    // Profile routing tables against the deployed fabric (PCIe paths only,
    // §IV-B), spreading bandwidth ties across clients.
    let tables: Vec<RoutingTable> = workers
        .iter()
        .enumerate()
        .map(|(w, &worker)| {
            build_routing_table_for(deployed.topology(), worker, &mem_devices, w, SimTime::ZERO)
        })
        .collect();

    // Measured collective bandwidths seed the analytic optimizer.
    let proxy_bw = {
        let intra = probe::measure_unidirectional(
            deployed.topology(),
            node_mem_rings[0][0],
            node_mem_rings[0][std::cmp::min(1, node_mem_rings[0].len() - 1)],
            ByteSize::mib(64),
            proxy_filter,
        );
        let cross = if node_mem_rings.len() > 1 {
            probe::measure_unidirectional(
                deployed.topology(),
                node_mem_rings[0][0],
                node_mem_rings[1][0],
                ByteSize::mib(64),
                cci_or_network,
            )
        } else {
            f64::INFINITY
        };
        Bandwidth::bytes_per_sec(intra.min(cross))
    };
    let gpu_ring = deployed
        .nvlink_ring(&workers)
        .unwrap_or_else(|| workers.clone());
    // Per-node worker rings for the hierarchical GPU collective.
    let node_gpu_rings: Vec<Vec<DeviceId>> = (0..machine.nodes())
        .map(|n| {
            let on_node: Vec<DeviceId> = workers
                .iter()
                .copied()
                .filter(|&w| machine.topology().device(w).node() == n)
                .collect();
            deployed.nvlink_ring(&on_node).unwrap_or(on_node)
        })
        .filter(|r| !r.is_empty())
        .collect();
    let gpu_bw = if gpu_ring.len() >= 2 {
        Bandwidth::bytes_per_sec(probe::measure_unidirectional(
            deployed.topology(),
            gpu_ring[0],
            gpu_ring[1],
            ByteSize::mib(64),
            |_| true,
        ))
    } else {
        Bandwidth::gib_per_sec(1000.0)
    };

    let inputs = DualSyncInputs {
        workers: workers.len(),
        total_bytes: model.total_bytes(),
        proxy_bandwidth: proxy_bw,
        gpu_bandwidth: gpu_bw,
        forward: plan.forward_time(),
        backward: plan.backward_time(),
    };
    // Decision events are stamped at SimTime::ZERO: the deployment decision
    // logically precedes the traced run, and a fixed stamp keeps traces
    // byte-identical across runs.
    let analytic = match tracer {
        Some(t) if t.is_enabled() => dualsync::optimize_traced(&inputs, t, SimTime::ZERO),
        _ => dualsync::optimize(&inputs),
    };

    let needed: HashMap<usize, SimDuration> = plan
        .forward_needs()
        .iter()
        .map(|n| (n.tensor, n.needed))
        .collect();

    let deployment = Deployment {
        machine,
        proxy_filter,
        deployed,
        plan,
        model,
        workers: workers.clone(),
        mem_devices,
        node_mem_rings,
        tables,
        gpu_ring,
        node_gpu_rings,
        needed,
        input_bytes: ByteSize::ZERO,
        tracer: None,
        metrics: None,
    };

    // Pilot runs pick the m that minimizes the *measured* period.
    let n = model.total_bytes();
    let mut candidates = vec![analytic.proxy_bytes, ByteSize::ZERO, n];
    for eighths in 1..8u64 {
        candidates.push(ByteSize::bytes(n.as_u64() * eighths / 8));
    }
    candidates.sort_unstable();
    candidates.dedup();
    let pilot_runs = candidates.len();
    let debug = std::env::var("COARSE_DEBUG").is_ok();
    let best_m = candidates
        .into_iter()
        .map(|m| {
            let period = deployment.run(m, 2);
            if debug {
                eprintln!("[coarse]   pilot m={m} -> period={period}");
            }
            if let Some(t) = tracer.filter(|t| t.is_enabled()) {
                let track = t.track("dualsync");
                t.counter(
                    SimTime::ZERO,
                    coarse_simcore::trace::category::DUALSYNC,
                    track,
                    &format!("pilot period(m={m})"),
                    period.as_secs_f64(),
                );
            }
            (period, m)
        })
        .min()
        .map(|(_, m)| m)
        .expect("non-empty candidate grid");
    if let Some(t) = tracer.filter(|t| t.is_enabled()) {
        let track = t.track("dualsync");
        t.instant(
            SimTime::ZERO,
            coarse_simcore::trace::category::DUALSYNC,
            track,
            &format!("pilot chose m* = {best_m} of {}", model.total_bytes()),
        );
    }
    if let Some(m) = metrics {
        m.gauge(metric::DUALSYNC_CHOSEN_M_BYTES, best_m.as_f64());
        m.gauge(metric::DUALSYNC_PILOT_RUNS, pilot_runs as f64);
    }

    if std::env::var("COARSE_DEBUG").is_ok() {
        eprintln!(
            "[coarse] {}: proxy_bw={:.1}GiB/s gpu_bw={:.1}GiB/s analytic_m={} chosen_m={} of n={}",
            machine.name(),
            proxy_bw.as_gib_per_sec(),
            gpu_bw.as_gib_per_sec(),
            analytic.proxy_bytes,
            best_m,
            n,
        );
    }

    (deployment, best_m)
}

/// Simulates COARSE with the input pipeline modeled: every iteration each
/// worker prefetches its batch (`batch × dataset sample bytes`) from host
/// memory over the same PCIe tree the parameter traffic uses.
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn simulate_coarse_with_input(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    dataset: &coarse_models::dataset::Dataset,
    batch_per_gpu: u32,
    iterations: u32,
) -> TrainResult {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let (mut deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    deployment.input_bytes =
        ByteSize::bytes(dataset.sample_bytes().as_u64() * batch_per_gpu as u64);
    let period = deployment.run(best_m, iterations);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    TrainResult::new(period, deployment.plan.compute_time(), global_batch)
}

/// Runs COARSE for three iterations and returns the phase timeline of the
/// final (steady-state) iteration plus its period — the data behind the
/// Gantt rendering in [`crate::timeline`].
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn trace_coarse(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
) -> crate::timeline::IterationTrace {
    let (deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    let (period, _, spans) = deployment.run_inner(best_m, 3, true);
    crate::timeline::IterationTrace::new(spans, period)
}

/// Runs COARSE with a recording tracer attached and returns the training
/// result together with the full structured trace: fabric link-occupancy
/// spans, sync-core ring steps, synthesized proxy queue-depth gauges,
/// per-iteration training phases, and the dual-sync decision events from
/// the pilot grid. Pilot runs stay untraced, so the trace holds exactly
/// one run's simulated events; attaching the tracer never changes the
/// simulated timings (the returned result equals [`simulate_coarse`]'s).
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn record_coarse_trace(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
) -> (TrainResult, Trace) {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let rec = RecordingTracer::new();
    let handle: SharedTracer = rec.handle();
    let (mut deployment, best_m) = prepare_traced(
        machine,
        partition,
        model,
        batch_per_gpu,
        Some(&handle),
        None,
    );
    deployment.tracer = Some(handle);
    let period = deployment.run(best_m, iterations);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    let result = TrainResult::new(period, deployment.plan.compute_time(), global_batch);
    (result, rec.take())
}

/// Runs COARSE with a metric registry attached and returns the training
/// result together with the frozen [`MetricsSnapshot`]: fabric transfer
/// and byte counters, ring-step counts, per-iteration phase-time
/// histograms, blocked time, and the dual-sync decision gauges. Pilot
/// runs stay unmetered, so the snapshot covers exactly one run; attaching
/// the registry never changes the simulated timings (the returned result
/// equals [`simulate_coarse`]'s).
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn record_coarse_metrics(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    iterations: u32,
) -> (TrainResult, MetricsSnapshot) {
    assert!(
        iterations >= 2,
        "need ≥2 iterations for a steady-state period"
    );
    let registry = MetricRegistry::new();
    let (mut deployment, best_m) = prepare_traced(
        machine,
        partition,
        model,
        batch_per_gpu,
        None,
        Some(&registry),
    );
    deployment.metrics = Some(registry.clone());
    let period = deployment.run(best_m, iterations);
    let global_batch = batch_per_gpu * partition.workers.len() as u32;
    let result = TrainResult::new(period, deployment.plan.compute_time(), global_batch);
    (result, registry.snapshot())
}

/// Runs COARSE and reports the `top_n` busiest directed links — the
/// congestion hotspots of one training run (diagnostic companion to
/// [`simulate_coarse`]). Returns `(link description, utilization)` rows in
/// descending order.
///
/// # Panics
///
/// Same conditions as [`simulate_coarse`].
pub fn coarse_hotspots(
    machine: &Machine,
    partition: &Partition,
    model: &ModelProfile,
    batch_per_gpu: u32,
    top_n: usize,
) -> Vec<(String, f64)> {
    let (deployment, best_m) = prepare(machine, partition, model, batch_per_gpu);
    let (period, engine) = deployment.run_collecting(best_m, 3);
    let horizon = SimTime::ZERO + period * 3;
    engine
        .busiest_links(horizon, top_n)
        .into_iter()
        .map(|(lid, util)| {
            let topo = engine.topology();
            let link = topo.link(lid);
            (
                format!(
                    "{} -> {} ({:?})",
                    topo.device(link.src()).name(),
                    topo.device(link.dst()).name(),
                    link.class()
                ),
                util,
            )
        })
        .collect()
}

/// Splits a payload into wire shards of `shard` bytes (remainder last); a
/// payload smaller than two full shards travels whole.
fn shard_sizes(size: ByteSize, shard: ByteSize) -> Vec<ByteSize> {
    if size.as_u64() < 2 * shard.as_u64() {
        return vec![size];
    }
    let full = size.as_u64() / shard.as_u64();
    let mut v = vec![shard; full as usize];
    let rem = size.as_u64() % shard.as_u64();
    if rem > 0 {
        v.push(ByteSize::bytes(rem));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::simulate_allreduce;
    use crate::dense::simulate_dense;
    use coarse_fabric::machines::{aws_t4, aws_v100, sdsc_p100, PartitionScheme};
    use coarse_models::zoo::{bert_large, resnet50};

    #[test]
    fn shard_sizes_tile_payload() {
        let total: u64 = shard_sizes(ByteSize::bytes(10_000), ByteSize::bytes(3000))
            .iter()
            .map(|s| s.as_u64())
            .sum();
        assert_eq!(total, 10_000);
        assert_eq!(
            shard_sizes(ByteSize::bytes(100), ByteSize::bytes(3000)).len(),
            1
        );
    }

    #[test]
    fn coarse_beats_dense_everywhere() {
        for (machine, model, batch) in [
            (aws_v100(), bert_large(), 2u32),
            (sdsc_p100(), bert_large(), 2),
            (aws_t4(), resnet50(), 64),
        ] {
            let part = machine.partition(PartitionScheme::OneToOne);
            let coarse = simulate_coarse(&machine, &part, &model, batch, 3);
            let dense = simulate_dense(&machine, &part, &model, batch, 3);
            let speedup = coarse.speedup_over(&dense);
            assert!(
                speedup > 1.5,
                "{}: COARSE must clearly beat DENSE, got {speedup:.2}x",
                machine.name()
            );
        }
    }

    #[test]
    fn coarse_beats_allreduce_on_p100() {
        // §V-D: on SDSC P100 COARSE reduces blocked communication vs NCCL.
        let m = sdsc_p100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let coarse = simulate_coarse(&m, &p, &model, 2, 3);
        let allreduce = simulate_allreduce(&m, &p, &model, 2, 3);
        assert!(
            coarse.blocked_comm < allreduce.blocked_comm,
            "COARSE {:?} must beat AllReduce {:?} on P100",
            coarse.blocked_comm,
            allreduce.blocked_comm
        );
    }

    #[test]
    fn coarse_beats_allreduce_on_v100() {
        // §V-D Fig. 17d: COARSE reduces blocked communication 20–42% on the
        // V100 machine despite NCCL running over NVLink.
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let coarse = simulate_coarse(&m, &p, &model, 2, 3);
        let allreduce = simulate_allreduce(&m, &p, &model, 2, 3);
        assert!(
            coarse.blocked_comm < allreduce.blocked_comm,
            "COARSE {:?} must beat AllReduce {:?} on V100",
            coarse.blocked_comm,
            allreduce.blocked_comm
        );
    }

    #[test]
    fn input_pipeline_costs_little_for_these_workloads() {
        use coarse_models::dataset::Dataset;
        // ResNet-50's 37 MB/iteration input stream is small next to its
        // compute; the paper is justified in ignoring the input pipeline.
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = coarse_models::zoo::resnet50();
        let clean = simulate_coarse(&m, &p, &model, 64, 3);
        let with_input = simulate_coarse_with_input(&m, &p, &model, &Dataset::imagenet(), 64, 3);
        assert!(with_input.iteration_time >= clean.iteration_time);
        let overhead =
            with_input.iteration_time.as_secs_f64() / clean.iteration_time.as_secs_f64() - 1.0;
        assert!(
            overhead < 0.05,
            "input pipeline should cost <5%, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn hotspots_identify_busy_links() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let hot = coarse_hotspots(&m, &p, &bert_large(), 2, 5);
        assert_eq!(hot.len(), 5);
        // Utilizations are sorted descending and sane.
        for w in hot.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(hot[0].1 > 0.2, "top hotspot should be busy: {:?}", hot[0]);
        assert!(hot.iter().all(|(_, u)| *u <= 1.0 + 1e-9));
    }

    #[test]
    fn metrics_are_observation_only_and_deterministic() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let model = bert_large();
        let plain = simulate_coarse(&m, &p, &model, 2, 3);
        let (metered, snap) = record_coarse_metrics(&m, &p, &model, 2, 3);
        assert_eq!(
            plain.iteration_time, metered.iteration_time,
            "metrics must not perturb timing"
        );
        assert_eq!(snap.counter(metric::TRAIN_ITERATIONS), 3);
        assert!(snap.counter(metric::FABRIC_TRANSFERS) > 0);
        assert!(snap.counter(metric::RING_STEPS) > 0);
        assert!(snap.gauge(metric::DUALSYNC_CHOSEN_M_BYTES).is_some());
        assert!(snap.histogram(metric::TRAIN_FP_NS).is_some());
        // Byte-deterministic across repeated runs.
        let (_, snap2) = record_coarse_metrics(&m, &p, &model, 2, 3);
        assert_eq!(snap, snap2);
    }

    #[test]
    fn coarse_overlaps_most_communication() {
        let m = aws_v100();
        let p = m.partition(PartitionScheme::OneToOne);
        let r = simulate_coarse(&m, &p, &bert_large(), 2, 3);
        // Most of the 1.25 GiB sync hides behind compute.
        assert!(
            r.gpu_utilization() > 0.6,
            "GPU utilization {:.2} too low",
            r.gpu_utilization()
        );
    }
}
