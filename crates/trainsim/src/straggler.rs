//! Straggler sensitivity (§II-B).
//!
//! "MPI creates a synchronous point that forces the faster workers to wait
//! for the slower ones, hence degrading the computation utilization of
//! worker devices." This module quantifies that: per-iteration compute
//! times jitter per worker, and we compare a barrier collective (AllReduce)
//! against COARSE's overlapped proxy synchronization, where a fast worker
//! may run ahead into its next forward pass up to the parameter-deadline
//! slack before it actually needs the slowest worker's contribution.
//!
//! Implemented on the deterministic event-driven kernel
//! ([`coarse_simcore::sim::Simulation`]).

use coarse_simcore::prelude::*;

/// How workers synchronize at the end of each iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncModel {
    /// Blocking collective: everyone waits for the slowest, then pays
    /// `sync` together (MPI/NCCL AllReduce).
    Barrier {
        /// Duration of the blocking collective.
        sync: SimDuration,
    },
    /// COARSE: each worker pays only its local `tail` (the GPU-synced
    /// shallow layers), and may run `slack` deep into the next iteration
    /// before the slowest worker's contributions are actually needed.
    Overlapped {
        /// Local blocking tail per worker.
        tail: SimDuration,
        /// How far a worker can run ahead before needing the global sync.
        slack: SimDuration,
    },
}

/// Configuration of one straggler experiment.
#[derive(Debug, Clone)]
pub struct StragglerConfig {
    /// Number of workers.
    pub workers: usize,
    /// Iterations to run.
    pub iterations: u32,
    /// Nominal per-iteration compute time.
    pub compute: SimDuration,
    /// Multiplicative jitter: each worker-iteration's compute is
    /// `compute × (1 + |N(0, σ)|)`.
    pub jitter_sigma: f64,
    /// The synchronization model.
    pub sync: SyncModel,
    /// RNG seed (same seed ⇒ identical jitter across sync models).
    pub seed: u64,
}

/// Results of a straggler run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerResult {
    /// Total makespan of all iterations.
    pub makespan: SimDuration,
    /// Mean time per worker-iteration spent waiting on others.
    pub mean_wait: SimDuration,
    /// 99th-percentile wait (the tail a single slow worker inflicts).
    pub p99_wait: SimDuration,
    /// Aggregate compute utilization: compute time / (workers × makespan).
    pub utilization: f64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Worker `w` finished the compute of iteration `k`.
    ComputeDone { worker: usize, iter: u32 },
}

struct StragglerModel {
    cfg: StragglerConfig,
    /// Pre-drawn compute durations, indexed `[iter][worker]`.
    durations: Vec<Vec<SimDuration>>,
    /// Completion time of each worker's compute in the current iteration.
    done_at: Vec<Vec<Option<SimTime>>>,
    total_wait: SimDuration,
    waits: coarse_simcore::stats::QuantileEstimator,
    waits_recorded: u64,
    finished_at: SimTime,
    total_compute: SimDuration,
}

impl StragglerModel {
    fn new(cfg: StragglerConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let durations: Vec<Vec<SimDuration>> = (0..cfg.iterations)
            .map(|_| {
                (0..cfg.workers)
                    .map(|_| {
                        let jitter = rng.next_gaussian().abs() * cfg.jitter_sigma;
                        cfg.compute.mul_f64(1.0 + jitter)
                    })
                    .collect()
            })
            .collect();
        let total_compute = durations.iter().flatten().copied().sum();
        StragglerModel {
            done_at: vec![vec![None; cfg.workers]; cfg.iterations as usize],
            durations,
            cfg,
            total_wait: SimDuration::ZERO,
            waits: coarse_simcore::stats::QuantileEstimator::new(),
            waits_recorded: 0,
            finished_at: SimTime::ZERO,
            total_compute,
        }
    }
}

impl Model for StragglerModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, queue: &mut EventQueue<Ev>) {
        let Ev::ComputeDone { worker, iter } = ev;
        self.done_at[iter as usize][worker] = Some(now);
        let iter_done = self.done_at[iter as usize].iter().all(Option::is_some);
        match self.cfg.sync {
            SyncModel::Barrier { sync } => {
                // The barrier releases everyone once the slowest arrives.
                if iter_done {
                    let slowest = now; // last arrival is `now`
                    for (w, &d) in self.done_at[iter as usize].iter().enumerate() {
                        // simlint: allow(panic-in-library, reason = "the loop records an arrival for every worker before this read")
                        let arrived = d.expect("all arrived");
                        self.total_wait += slowest - arrived;
                        self.waits.record((slowest - arrived).as_secs_f64());
                        self.waits_recorded += 1;
                        let next = iter + 1;
                        if next < self.cfg.iterations {
                            let dur = self.durations[next as usize][w];
                            queue.schedule_at(
                                slowest + sync + dur,
                                Ev::ComputeDone {
                                    worker: w,
                                    iter: next,
                                },
                            );
                        }
                    }
                    self.finished_at = slowest + sync;
                }
            }
            SyncModel::Overlapped { tail, slack } => {
                // Each worker proceeds after its own tail; it only stalls if
                // it outruns the slowest worker by more than the slack.
                if iter_done {
                    let slowest = now;
                    for (w, &d) in self.done_at[iter as usize].iter().enumerate() {
                        // simlint: allow(panic-in-library, reason = "the loop records an arrival for every worker before this read")
                        let arrived = d.expect("all arrived");
                        let own_next = arrived + tail;
                        let gated = (slowest + tail).saturating_duration_since(own_next + slack);
                        let start = own_next + gated;
                        self.total_wait += gated;
                        self.waits.record(gated.as_secs_f64());
                        self.waits_recorded += 1;
                        let next = iter + 1;
                        if next < self.cfg.iterations {
                            let dur = self.durations[next as usize][w];
                            queue.schedule_at(
                                start + dur,
                                Ev::ComputeDone {
                                    worker: w,
                                    iter: next,
                                },
                            );
                        }
                    }
                    self.finished_at = slowest + tail;
                }
            }
        }
    }

    fn event_label(&self, _ev: &Ev) -> &'static str {
        "straggler.compute_done"
    }
}

/// Runs one straggler experiment.
///
/// # Panics
///
/// Panics if `workers` or `iterations` is zero.
pub fn run_straggler(cfg: StragglerConfig) -> StragglerResult {
    run_straggler_profiled(cfg, None)
}

/// [`run_straggler`] with an optional self-profiler attached to the kernel:
/// event dispatch counts under the `straggler.compute_done` label and the
/// calendar's depth/dwell histograms cover this workload. Observation-only —
/// the result is identical with or without the profiler.
///
/// # Panics
///
/// Panics under the same conditions as [`run_straggler`].
pub fn run_straggler_profiled(cfg: StragglerConfig, profiler: Option<Profiler>) -> StragglerResult {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.iterations > 0, "need at least one iteration");
    let workers = cfg.workers;
    let model = StragglerModel::new(cfg);
    let mut sim = Simulation::new(model);
    if let Some(p) = profiler {
        sim.set_profiler(p);
    }
    for w in 0..workers {
        let dur = sim.model().durations[0][w];
        sim.queue_mut()
            .schedule_at(SimTime::ZERO + dur, Ev::ComputeDone { worker: w, iter: 0 });
    }
    sim.run_to_completion();
    let m = sim.model_mut();
    let makespan = m.finished_at - SimTime::ZERO;
    let mean_wait = if m.waits_recorded == 0 {
        SimDuration::ZERO
    } else {
        m.total_wait / m.waits_recorded
    };
    let p99_wait = m
        .waits
        .p99()
        .map(SimDuration::from_secs_f64)
        .unwrap_or(SimDuration::ZERO);
    let utilization = m.total_compute.as_secs_f64() / (workers as f64 * makespan.as_secs_f64());
    StragglerResult {
        makespan,
        mean_wait,
        p99_wait,
        utilization,
    }
}

/// Convenience comparison at one jitter level: returns
/// `(barrier, overlapped)` results with identical draws.
pub fn compare_straggler(workers: usize, jitter_sigma: f64) -> (StragglerResult, StragglerResult) {
    let base = StragglerConfig {
        workers,
        iterations: 50,
        compute: SimDuration::from_millis(245),
        jitter_sigma,
        sync: SyncModel::Barrier {
            sync: SimDuration::from_millis(85),
        },
        seed: 7,
    };
    let barrier = run_straggler(base.clone());
    let overlapped = run_straggler(StragglerConfig {
        sync: SyncModel::Overlapped {
            tail: SimDuration::from_millis(20),
            slack: SimDuration::from_millis(80),
        },
        ..base
    });
    (barrier, overlapped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_jitter_no_waiting() {
        let cfg = StragglerConfig {
            workers: 4,
            iterations: 10,
            compute: SimDuration::from_millis(100),
            jitter_sigma: 0.0,
            sync: SyncModel::Barrier {
                sync: SimDuration::from_millis(10),
            },
            seed: 1,
        };
        let r = run_straggler(cfg);
        assert_eq!(r.mean_wait, SimDuration::ZERO);
        // 10 iterations × (100 + 10) ms.
        assert_eq!(r.makespan, SimDuration::from_millis(1100));
    }

    #[test]
    fn jitter_makes_barrier_wait() {
        let (barrier, _) = compare_straggler(4, 0.2);
        assert!(barrier.mean_wait > SimDuration::from_millis(5));
        assert!(barrier.utilization < 0.85);
        // The tail is far worse than the mean.
        assert!(barrier.p99_wait > barrier.mean_wait * 2);
    }

    #[test]
    fn overlap_absorbs_stragglers() {
        let (barrier, overlapped) = compare_straggler(4, 0.2);
        assert!(
            overlapped.mean_wait < barrier.mean_wait / 2,
            "overlapped wait {:?} should be far below barrier {:?}",
            overlapped.mean_wait,
            barrier.mean_wait
        );
        assert!(overlapped.makespan < barrier.makespan);
        assert!(overlapped.utilization > barrier.utilization);
    }

    #[test]
    fn waiting_grows_with_worker_count() {
        let (b2, _) = compare_straggler(2, 0.2);
        let (b8, _) = compare_straggler(8, 0.2);
        assert!(
            b8.mean_wait > b2.mean_wait,
            "more workers → worse stragglers: {:?} vs {:?}",
            b8.mean_wait,
            b2.mean_wait
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, _) = compare_straggler(4, 0.3);
        let (b, _) = compare_straggler(4, 0.3);
        assert_eq!(a, b);
    }
}
