//! The recovery harness: goodput accounting under sustained faults.
//!
//! Where [`chaos`](crate::chaos) *searches* for invariant violations under
//! randomized schedules, this module *measures* how well the recovery
//! engine holds training throughput up under a known, reproducible
//! multi-fault schedule. One [`RecoveryReport`] compares three runs of the
//! same scenario:
//!
//! - **baseline** — no faults, no checkpoints: the ideal wall time and the
//!   goodput denominator;
//! - **checkpointed** — no faults, the policy's checkpoint cadence: what
//!   the pool checkpoints cost when nothing goes wrong (the overhead the
//!   paper claims is near-free next to a disk checkpoint);
//! - **faulty** — the [`reference_schedule`] plus the full recovery
//!   engine: MTTR, detection latency, lost iterations, and goodput (the
//!   useful-work fraction `baseline_wall / faulty_wall`).
//!
//! The faulty run carries the full oracle battery plus the two
//! recovery-specific oracles — membership-epoch monotonicity and
//! re-convergence after the last fault clears — and the report embeds any
//! violations. Everything is simulated and seeded, so a report renders to
//! byte-identical JSON on every run ([`RECOVERY_SCHEMA`]).
//!
//! [`interval_sweep`] repeats the measurement across checkpoint intervals,
//! exposing the cost/recovery tradeoff as a matrix: tighter intervals pay
//! more overhead and lose fewer iterations per restore.

use coarse_cci::checkpoint::DiskModel;
use coarse_core::resilience::RecoveryPolicy;
use coarse_simcore::faults::{FaultPlan, FaultSpec};
use coarse_simcore::json::JsonValue;
use coarse_simcore::oracle::{MembershipMonotonicity, OracleHub, Reconvergence};
use coarse_simcore::time::{SimDuration, SimTime};
use coarse_simcore::units::ByteSize;

use crate::chaos::spec_to_json;
use crate::coarse::{result_fingerprint, simulate_coarse_recovering_observed};
use crate::config::TrainError;
use crate::scenario::Scenario;

/// Schema tag of rendered recovery reports.
pub const RECOVERY_SCHEMA: &str = "coarse.recovery-report/v1";

/// Oracle liveness watchdog and re-convergence bound for recovery runs.
/// Detection timeouts, backoff, and restore reads are all far below a
/// simulated minute, so a gap this long is unambiguously a wedge.
const WATCHDOG: SimDuration = SimDuration::from_secs(60);

/// Seed of the reference schedule (the schedule itself is hand-placed; the
/// seed only keys the corruption hash).
const SCHEDULE_SEED: u64 = 0x5EC0_4E4F_5EC0_4E4F;

/// The reference multi-fault schedule for one scenario, scaled to its
/// fault-free horizon so every preset sees the same *shape* of trouble:
///
/// - a transient-corruption window over the first proxy early in the run;
/// - a stall window over the same proxy mid-run;
/// - a hard dropout of the second proxy at ~35% of the horizon;
/// - a second dropout at ~70% when the tier is wide enough to keep two
///   survivors afterwards (restores need a distinct mirror).
///
/// Deterministic: the schedule is a pure function of the scenario.
///
/// # Errors
///
/// Returns a [`TrainError`] if the scenario cannot run fault-free (the
/// horizon comes from that run).
pub fn reference_schedule(scenario: &Scenario) -> Result<FaultPlan, TrainError> {
    let baseline = scenario.clone().faults(FaultPlan::empty()).run()?;
    let span = baseline.iteration_time * u64::from(scenario.iters());
    let t = |f: f64| SimTime::ZERO + SimDuration::from_secs_f64(span.as_secs_f64() * f);
    let part = scenario
        .machine_ref()
        .partition(scenario.partition_scheme());
    let mems: Vec<u32> = part.mem_devices.iter().map(|d| d.index() as u32).collect();
    let mut plan = FaultPlan::new(SCHEDULE_SEED)
        .corrupt_transfers(mems[0], t(0.05), t(0.30), 120_000)
        .stall_device(mems[0], t(0.45), t(0.60), SimDuration::from_micros(200));
    if mems.len() >= 3 {
        plan = plan.drop_device(mems[1], t(0.35));
    }
    if mems.len() >= 4 {
        plan = plan.drop_device(mems[2], t(0.70));
    }
    Ok(plan)
}

/// The instant a plan's last fault clears: the latest window end or
/// dropout instant ([`SimTime::ZERO`] for an empty plan). After this the
/// re-convergence oracle expects the run to commit an iteration within its
/// bound.
pub fn plan_clear_instant(plan: &FaultPlan) -> SimTime {
    plan.specs()
        .iter()
        .map(|s| match *s {
            FaultSpec::Degrade(d) => d.until,
            FaultSpec::Flap(f) => f.until,
            FaultSpec::Dropout(d) => d.at,
            FaultSpec::Stall(s) => s.until,
            FaultSpec::Transient(t) => t.until,
        })
        .max()
        .unwrap_or(SimTime::ZERO)
}

/// Goodput and overhead accounting of one scenario under the recovery
/// engine. Collected by [`recovery_report`]; renders to byte-deterministic
/// JSON under [`RECOVERY_SCHEMA`].
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Preset the report measures.
    pub preset: String,
    /// Iterations per run.
    pub iterations: u32,
    /// The policy under test.
    pub policy: RecoveryPolicy,
    /// The injected reference schedule.
    pub schedule: FaultPlan,
    /// Parameter-image size (what every checkpoint and restore moves).
    pub image_bytes: ByteSize,
    /// Fault-free, checkpoint-free wall time (goodput denominator).
    pub baseline_wall: SimDuration,
    /// Fault-free wall time under the policy's checkpoint cadence.
    pub checkpointed_wall: SimDuration,
    /// Checkpoints committed by the fault-free cadenced run.
    pub checkpoints: u64,
    /// Time the fault-free cadenced run stalled on checkpoint pushes.
    pub checkpoint_time: SimDuration,
    /// The faulty run's full accounting.
    pub faulty: crate::coarse::RecoveringTrainResult,
    /// Disk-cost baseline model the pool checkpoints are compared to.
    pub disk: DiskModel,
    /// Oracle violations of the faulty run (empty means every invariant
    /// held, including membership monotonicity and re-convergence).
    pub violations: Vec<String>,
}

impl RecoveryReport {
    /// Fraction of wall time the fault-free run spends on checkpoints:
    /// `(checkpointed_wall - baseline_wall) / baseline_wall`.
    pub fn checkpoint_overhead(&self) -> f64 {
        (self.checkpointed_wall.as_secs_f64() - self.baseline_wall.as_secs_f64())
            / self.baseline_wall.as_secs_f64()
    }

    /// Useful-work fraction of the faulty run:
    /// `baseline_wall / faulty_wall`. 1.0 means faults cost nothing.
    pub fn goodput(&self) -> f64 {
        self.baseline_wall.as_secs_f64() / self.faulty.wall.as_secs_f64()
    }

    /// Mean time of one committed pool checkpoint
    /// ([`SimDuration::ZERO`] when the cadence never fired).
    pub fn pool_checkpoint_mean(&self) -> SimDuration {
        if self.checkpoints == 0 {
            SimDuration::ZERO
        } else {
            self.checkpoint_time / self.checkpoints
        }
    }

    /// Time the disk baseline would take per checkpoint of the same image.
    pub fn disk_checkpoint(&self) -> SimDuration {
        self.disk.checkpoint_time(self.image_bytes)
    }

    /// Pool-checkpoint cost as a fraction of the disk baseline's — the
    /// paper's "near-free vs disk" claim wants this well below 1.0.
    pub fn pool_vs_disk(&self) -> f64 {
        self.pool_checkpoint_mean().as_secs_f64() / self.disk_checkpoint().as_secs_f64()
    }

    /// The report as a [`JsonValue`] under [`RECOVERY_SCHEMA`].
    pub fn to_json(&self) -> JsonValue {
        let specs: Vec<JsonValue> = self.schedule.specs().iter().map(spec_to_json).collect();
        let violations: Vec<JsonValue> = self.violations.iter().map(JsonValue::str).collect();
        JsonValue::object()
            .with("schema", JsonValue::str(RECOVERY_SCHEMA))
            .with("mode", JsonValue::str("single"))
            .with("preset", JsonValue::str(&self.preset))
            .with("iterations", JsonValue::int(u64::from(self.iterations)))
            .with("policy", policy_to_json(&self.policy))
            .with(
                "schedule",
                JsonValue::object()
                    .with(
                        "seed",
                        JsonValue::str(format!("{:#018x}", self.schedule.seed())),
                    )
                    .with("faults", JsonValue::Array(specs)),
            )
            .with("image_bytes", JsonValue::int(self.image_bytes.as_u64()))
            .with(
                "baseline",
                JsonValue::object().with("wall_ns", JsonValue::int(self.baseline_wall.as_nanos())),
            )
            .with(
                "checkpointed",
                JsonValue::object()
                    .with("wall_ns", JsonValue::int(self.checkpointed_wall.as_nanos()))
                    .with("checkpoints", JsonValue::int(self.checkpoints))
                    .with(
                        "checkpoint_time_ns",
                        JsonValue::int(self.checkpoint_time.as_nanos()),
                    )
                    .with("overhead", JsonValue::num(self.checkpoint_overhead()))
                    .with(
                        "pool_checkpoint_mean_ns",
                        JsonValue::int(self.pool_checkpoint_mean().as_nanos()),
                    )
                    .with(
                        "disk_checkpoint_ns",
                        JsonValue::int(self.disk_checkpoint().as_nanos()),
                    )
                    .with("pool_vs_disk", JsonValue::num(self.pool_vs_disk())),
            )
            .with("faulty", faulty_to_json(&self.faulty))
            .with("goodput", JsonValue::num(self.goodput()))
            .with("violations", JsonValue::Array(violations))
    }

    /// Renders the report as pretty JSON (the on-disk artifact format).
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }
}

fn policy_to_json(p: &RecoveryPolicy) -> JsonValue {
    JsonValue::object()
        .with(
            "checkpoint_interval",
            JsonValue::int(u64::from(p.checkpoint_interval)),
        )
        .with(
            "max_shard_retries",
            JsonValue::int(u64::from(p.max_shard_retries)),
        )
        .with(
            "max_route_waits",
            JsonValue::int(u64::from(p.max_route_waits)),
        )
        .with(
            "detect_timeout_ns",
            JsonValue::int(p.resilience.detect_timeout.as_nanos()),
        )
        .with(
            "base_backoff_ns",
            JsonValue::int(p.resilience.base_backoff.as_nanos()),
        )
        .with(
            "max_backoff_doublings",
            JsonValue::int(u64::from(p.resilience.max_backoff_doublings)),
        )
}

fn faulty_to_json(f: &crate::coarse::RecoveringTrainResult) -> JsonValue {
    JsonValue::object()
        .with("wall_ns", JsonValue::int(f.wall.as_nanos()))
        .with(
            "iteration_ns",
            JsonValue::int(f.result.iteration_time.as_nanos()),
        )
        .with("injected_faults", JsonValue::int(f.injected_faults as u64))
        .with("retries", JsonValue::int(f.retries))
        .with("repairs", JsonValue::int(f.repairs))
        .with("restores", JsonValue::int(f.restores))
        .with("membership_epochs", JsonValue::int(f.membership_epoch))
        .with("checkpoints", JsonValue::int(f.checkpoints))
        .with(
            "checkpoint_time_ns",
            JsonValue::int(f.checkpoint_time.as_nanos()),
        )
        .with("restore_time_ns", JsonValue::int(f.restore_time.as_nanos()))
        .with("restore_bytes", JsonValue::int(f.restore_bytes.as_u64()))
        .with("lost_iterations", JsonValue::int(f.lost_iterations))
        .with(
            "detection_time_ns",
            JsonValue::int(f.detection_time.as_nanos()),
        )
        .with("backoff_time_ns", JsonValue::int(f.backoff_time.as_nanos()))
        .with("mttr_ns", JsonValue::int(f.mttr.as_nanos()))
        .with("degraded_to_gpu", JsonValue::Bool(f.degraded_to_gpu))
}

/// Collects a [`RecoveryReport`] for `preset`: the fault-free baseline,
/// the fault-free checkpoint-cadenced run, and the oracle-observed faulty
/// run under the [`reference_schedule`].
///
/// # Errors
///
/// Returns a [`TrainError`] if the preset is unknown or a run fails
/// validation.
pub fn recovery_report(
    preset: &str,
    iterations: u32,
    policy: &RecoveryPolicy,
) -> Result<RecoveryReport, TrainError> {
    let base = Scenario::try_preset(preset)?.iterations(iterations);
    let schedule = reference_schedule(&base)?;
    collect(&base, schedule, policy)
}

fn collect(
    base: &Scenario,
    schedule: FaultPlan,
    policy: &RecoveryPolicy,
) -> Result<RecoveryReport, TrainError> {
    let free = RecoveryPolicy {
        checkpoint_interval: 0,
        ..*policy
    };
    let baseline = base.clone().run_recovering(&free)?;
    let checkpointed = base.clone().run_recovering(policy)?;

    let hub = OracleHub::with_builtins(WATCHDOG);
    hub.register(Box::new(MembershipMonotonicity::new()));
    hub.register(Box::new(Reconvergence::new(
        plan_clear_instant(&schedule),
        WATCHDOG,
    )));
    let faulty_scenario = base.clone().faults(schedule.clone());
    faulty_scenario.validate()?;
    faulty_scenario.check_memory()?;
    let machine = base.machine_ref();
    let part = machine.partition(base.partition_scheme());
    let faulty = simulate_coarse_recovering_observed(
        machine,
        &part,
        base.model_ref(),
        base.batch(),
        base.iters(),
        &schedule,
        policy,
        &hub,
        Some(result_fingerprint(&baseline.result)),
    );
    let violations = hub.violations().iter().map(|v| v.to_string()).collect();
    Ok(RecoveryReport {
        preset: base.name().to_string(),
        iterations: base.iters(),
        policy: *policy,
        schedule,
        image_bytes: base.model_ref().total_bytes(),
        baseline_wall: baseline.wall,
        checkpointed_wall: checkpointed.wall,
        checkpoints: checkpointed.checkpoints,
        checkpoint_time: checkpointed.checkpoint_time,
        faulty,
        disk: DiskModel::default(),
        violations,
    })
}

/// One checkpoint-interval sweep: [`RecoveryReport`]s for the same preset
/// and schedule across `intervals`, exposing the cost/recovery tradeoff.
#[derive(Debug, Clone)]
pub struct RecoverySweep {
    /// Preset the sweep measures.
    pub preset: String,
    /// Iterations per run.
    pub iterations: u32,
    /// One report per swept interval, in input order.
    pub reports: Vec<RecoveryReport>,
}

impl RecoverySweep {
    /// The sweep as a [`JsonValue`] under [`RECOVERY_SCHEMA`]: per-interval
    /// rows of the tradeoff plus the shared schedule.
    pub fn to_json(&self) -> JsonValue {
        let rows: Vec<JsonValue> = self
            .reports
            .iter()
            .map(|r| {
                JsonValue::object()
                    .with(
                        "interval",
                        JsonValue::int(u64::from(r.policy.checkpoint_interval)),
                    )
                    .with("overhead", JsonValue::num(r.checkpoint_overhead()))
                    .with("goodput", JsonValue::num(r.goodput()))
                    .with("lost_iterations", JsonValue::int(r.faulty.lost_iterations))
                    .with("restores", JsonValue::int(r.faulty.restores))
                    .with("mttr_ns", JsonValue::int(r.faulty.mttr.as_nanos()))
                    .with("faulty_wall_ns", JsonValue::int(r.faulty.wall.as_nanos()))
                    .with("violations", JsonValue::int(r.violations.len() as u64))
            })
            .collect();
        let first = &self.reports[0];
        let specs: Vec<JsonValue> = first.schedule.specs().iter().map(spec_to_json).collect();
        JsonValue::object()
            .with("schema", JsonValue::str(RECOVERY_SCHEMA))
            .with("mode", JsonValue::str("interval-sweep"))
            .with("preset", JsonValue::str(&self.preset))
            .with("iterations", JsonValue::int(u64::from(self.iterations)))
            .with(
                "schedule",
                JsonValue::object()
                    .with(
                        "seed",
                        JsonValue::str(format!("{:#018x}", first.schedule.seed())),
                    )
                    .with("faults", JsonValue::Array(specs)),
            )
            .with(
                "baseline_wall_ns",
                JsonValue::int(first.baseline_wall.as_nanos()),
            )
            .with("sweep", JsonValue::Array(rows))
    }

    /// Renders the sweep as pretty JSON.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }
}

/// Sweeps the checkpoint interval for `preset` over `intervals`, holding
/// the schedule and every other policy knob fixed.
///
/// # Errors
///
/// Returns a [`TrainError`] if the preset is unknown or a run fails.
///
/// # Panics
///
/// Panics if `intervals` is empty.
pub fn interval_sweep(
    preset: &str,
    iterations: u32,
    intervals: &[u32],
    policy: &RecoveryPolicy,
) -> Result<RecoverySweep, TrainError> {
    assert!(!intervals.is_empty(), "sweep needs at least one interval");
    let base = Scenario::try_preset(preset)?.iterations(iterations);
    let schedule = reference_schedule(&base)?;
    let mut reports = Vec::with_capacity(intervals.len());
    for &interval in intervals {
        let p = RecoveryPolicy {
            checkpoint_interval: interval,
            ..*policy
        };
        reports.push(collect(&base, schedule.clone(), &p)?);
    }
    Ok(RecoverySweep {
        preset: preset.to_string(),
        iterations,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_schedule_is_deterministic_and_survivable() {
        let s = Scenario::preset("fig16d").iterations(6);
        let a = reference_schedule(&s).unwrap();
        let b = reference_schedule(&s).unwrap();
        assert_eq!(a.specs(), b.specs());
        assert_eq!(a.seed(), b.seed());
        // Two dropouts on the four-proxy tier: two survivors remain.
        let drops = a
            .specs()
            .iter()
            .filter(|sp| matches!(sp, FaultSpec::Dropout(_)))
            .count();
        assert_eq!(drops, 2);
        assert!(plan_clear_instant(&a) > SimTime::ZERO);
    }

    #[test]
    fn report_is_byte_deterministic_and_green() {
        let policy = RecoveryPolicy {
            checkpoint_interval: 2,
            ..RecoveryPolicy::default()
        };
        let a = recovery_report("fig16d", 6, &policy).unwrap();
        let b = recovery_report("fig16d", 6, &policy).unwrap();
        assert_eq!(a.render(), b.render(), "double-run byte determinism");
        assert_eq!(a.violations, Vec::<String>::new(), "oracles stay green");
        assert!(a.faulty.restores >= 1, "the schedule forces a restore");
        assert!(a.goodput() > 0.0 && a.goodput() < 1.0, "{}", a.goodput());
        assert!(a.checkpoint_overhead() > 0.0);
    }

    #[test]
    fn pool_checkpoints_beat_the_disk_baseline() {
        let policy = RecoveryPolicy {
            checkpoint_interval: 2,
            ..RecoveryPolicy::default()
        };
        let r = recovery_report("fig16d", 6, &policy).unwrap();
        assert!(r.checkpoints >= 1);
        assert!(
            r.pool_vs_disk() < 0.5,
            "pool checkpoints must be far cheaper than disk: {}",
            r.pool_vs_disk()
        );
    }

    #[test]
    fn sweep_exposes_the_interval_tradeoff() {
        let policy = RecoveryPolicy::default();
        let sweep = interval_sweep("fig16d", 6, &[0, 1, 3], &policy).unwrap();
        assert_eq!(sweep.reports.len(), 3);
        let rendered = sweep.render();
        assert_eq!(
            rendered,
            interval_sweep("fig16d", 6, &[0, 1, 3], &policy)
                .unwrap()
                .render(),
            "sweep is byte-deterministic"
        );
        // Interval 0 never checkpoints, so a restore loses every committed
        // iteration; interval 1 checkpoints every iteration and loses none
        // of the committed work a restore rolls over.
        let lost0 = sweep.reports[0].faulty.lost_iterations;
        let lost1 = sweep.reports[1].faulty.lost_iterations;
        assert!(
            lost1 < lost0,
            "tighter interval must lose less work ({lost1} vs {lost0})"
        );
        // And interval 1 pays more overhead than interval 3.
        assert!(
            sweep.reports[1].checkpoint_overhead() > sweep.reports[2].checkpoint_overhead(),
            "tighter interval must cost more"
        );
    }
}
